"""E4 — the EVH1 speedup analyzer (paper §5.2).

Reproduced output: *"the tool automatically calculates the minimum, mean
and maximum values for the speedup [of] every profiled routine."*

Shape expectations asserted:

* compute-bound routines (riemann/parabola/remap) scale near-linearly;
* the MPI_Alltoall transpose degrades at scale (the scalability sink);
* fixed-cost init saturates at speedup ≈ 1;
* per-routine min < mean < max spread reflects boundary-rank imbalance.
"""

from __future__ import annotations

import pytest

from repro.core.session import PerfDMFSession
from repro.core.toolkit import SpeedupAnalyzer
from repro.tau.apps import EVH1

COUNTS = (1, 2, 4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def stored_sweep():
    """Run + store + reload the sweep through the database, as §5.2 did."""
    session = PerfDMFSession("sqlite://:memory:")
    application = session.create_application("evh1")
    experiment = session.create_experiment(application, "strong-scaling")
    app = EVH1(problem_size=1.0, timesteps=2)
    for p in COUNTS:
        session.save_trial(app.run(p), experiment, f"P={p}")
    session.set_experiment(experiment)
    analyzer = SpeedupAnalyzer()
    for trial in session.get_trial_list():
        analyzer.add_trial(trial.get("node_count"), session.load_datasource(trial))
    yield analyzer
    session.close()


def test_speedup_analysis(benchmark, stored_sweep, report):
    curves = benchmark(stored_sweep.analyze)
    by_name = {c.event: c for c in curves}

    riemann = by_name["riemann"].points[-1]
    alltoall = by_name["MPI_Alltoall()"].points[-1]
    init = by_name["init"].points[-1]

    # compute kernel: near-linear (>70% efficiency at P=64)
    assert riemann.mean > 0.7 * 64
    # transpose: clearly degraded (below half-linear) and worse than P=16
    assert alltoall.mean < 32
    p16 = next(pt for pt in by_name["MPI_Alltoall()"].points if pt.processors == 16)
    assert by_name["MPI_Alltoall()"].classify() in ("degrading", "saturating")
    # serial setup: flat
    assert init.mean < 2.0
    # imbalance spread visible
    assert riemann.minimum < riemann.mean < riemann.maximum

    report(
        "E4  §5.2 EVH1 per-routine speedup at P=64  -> "
        f"riemann {riemann.minimum:.1f}/{riemann.mean:.1f}/{riemann.maximum:.1f} "
        f"(min/mean/max), alltoall {alltoall.mean:.1f}, init {init.mean:.2f}"
    )


def test_application_speedup_sublinear(benchmark, stored_sweep, report):
    points = benchmark(stored_sweep.application_speedup)
    last = points[-1]
    assert 0.4 * 64 < last.mean < 64  # sublinear but real speedup
    report(
        f"E4  EVH1 app speedup at P=64               -> "
        f"{last.mean:.1f}x (efficiency {last.efficiency:.0%})"
    )


def test_report_generation(benchmark, stored_sweep):
    text = benchmark(stored_sweep.report)
    assert "riemann" in text and "min" in text
