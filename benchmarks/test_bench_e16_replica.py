"""E16 — replicated read serving: 1 primary + 2 replicas vs single server.

PR 9 adds MVCC snapshot reads, WAL-shipped read replicas, and client
failover.  This benchmark measures the serving-capacity claim: a fleet
of reader threads drives ``imbalance_chart`` (full trial load + numpy
fold per request — server-CPU-bound, small response) against

* a single primary server absorbing both the readers and a concurrent
  ``cluster_trial`` writer, and
* the same primary plus two WAL-shipped read replicas, readers spread
  round-robin across all three.

Every server runs in its own child process, so the replicated
configuration gets real multi-core parallelism — exactly what a
deployment buys by pointing clients at replicas.  The writer keeps
committing during both phases, so replicas are actively tailing WAL
while they serve; at the end each replica must drain to lag 0 and its
reported ``replication_lag_seconds`` must sit under the bound.

Since the serving-core rebuild (ISSUE 10) the whole matrix runs twice —
once per core: the thread-per-connection ``ThreadedSocketServer`` and
the event-loop ``SocketServer``.  The threaded numbers stay at the
JSON's top level (continuing the series ``bench_history.mdb`` has been
tracking since PR 9, so the regression gate compares like-for-like) and
the async core's numbers land under an ``"async"`` section as a fresh
series.

Results land in ``BENCH_e16_replica.json``; CI's smoke job
(``REPRO_E16_RANKS=16``, short duration) only checks the no-pathology
floor — the 1.8x acceptance figure needs >=4 real cores at strict
scale.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.explorer.client import PerfExplorerClient

from conftest import scale

RANKS = int(os.environ.get("REPRO_E16_RANKS", "0")) or scale(64, 256)
DURATION = float(os.environ.get("REPRO_E16_SECONDS", "0")) or scale(4.0, 10.0)
READERS = int(os.environ.get("REPRO_E16_READERS", "0")) or 6
N_REPLICAS = 2

#: Below these the per-request time is microseconds-to-low-ms and the
#: ratio is dominated by client-side dispatch, not server capacity.
STRICT_RANKS = 64
STRICT_SECONDS = 4.0
#: 1 primary + 2 replicas can only beat one server given real cores.
STRICT_CORES = 4

#: Acceptance bound on the lag each replica reports once drained.
LAG_BOUND_SECONDS = float(os.environ.get("REPRO_E16_LAG_BOUND", "5.0"))

CORES = os.cpu_count() or 1

E16_JSON = Path(__file__).resolve().parent.parent / "BENCH_e16_replica.json"
SRC = str(Path(__file__).resolve().parent.parent / "src")

# Primary: serve a Miranda trial from a durable archive (WAL on, so it
# can ship segments), snapshot isolation on so the concurrent writer
# never stalls readers.  argv[3] picks the serving core.  Prints the
# serving address and the trial id.
_PRIMARY_CHILD = """
import sys, time
from repro.explorer.server import (
    AnalysisServer, SocketServer, ThreadedSocketServer,
)
from repro.tau.apps import Miranda

core = {"async": SocketServer, "threaded": ThreadedSocketServer}[sys.argv[3]]
server = AnalysisServer(f"minisql://{sys.argv[1]}")
sock = core(server, port=0)
host, port = sock.start()
session = server.session
app = session.create_application("e16-app")
exp = session.create_experiment(app, "e16-exp")
trial = session.save_trial(Miranda().generate(int(sys.argv[2])), exp, "e16")
session.connection.commit()
session.connection.execute("PRAGMA snapshot_isolation(on)")
print(f"ADDR {host} {port} {trial.id}", flush=True)
while True:
    time.sleep(60)
"""

# Replica: tail the primary's WAL over the wire, then serve read-only
# on the core named by argv[4].  Prints its address only after the
# initial catch-up completes.
_REPLICA_CHILD = """
import sys, time
from repro.db.minisql.replica import Replica, RemoteWalSource
from repro.explorer.server import (
    AnalysisServer, SocketServer, ThreadedSocketServer,
)

core = {"async": SocketServer, "threaded": ThreadedSocketServer}[sys.argv[4]]
rep = Replica(
    RemoteWalSource(sys.argv[1], int(sys.argv[2]), replica_id=sys.argv[3]),
    name=sys.argv[3], poll_interval=0.05,
)
rep.start()
rep.catch_up(timeout=120)
server = AnalysisServer(rep.shared_url(), read_only=True, replica=rep)
sock = core(server, port=0)
host, port = sock.start()
print(f"ADDR {host} {port}", flush=True)
while True:
    time.sleep(60)
"""


def _spawn(code: str, *argv: str) -> tuple[subprocess.Popen, list[str]]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", code, *argv],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("ADDR "):
        err = proc.stderr.read() if proc.poll() is not None else ""
        proc.kill()
        raise RuntimeError(f"child failed to start: {line!r}\n{err}")
    return proc, line.split()[1:]


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _drive(endpoints, trial_id: int, duration: float) -> dict:
    """Readers pinned round-robin over ``endpoints``; one writer keeps
    committing ``cluster_trial`` analyses against the primary
    (``endpoints[0]``) the whole time.  Returns QPS and latency."""
    stop = threading.Event()
    latencies: list[list[float]] = [[] for _ in range(READERS)]
    errors: list[str] = []
    writes = [0]

    def reader(slot: int) -> None:
        host, port = endpoints[slot % len(endpoints)]
        try:
            with PerfExplorerClient(host, port, timeout=60) as client:
                while not stop.is_set():
                    t0 = time.perf_counter()
                    client.imbalance_chart(trial_id, top=5)
                    latencies[slot].append(time.perf_counter() - t0)
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(f"reader[{slot}]: {type(exc).__name__}: {exc}")

    def writer() -> None:
        host, port = endpoints[0]
        try:
            with PerfExplorerClient(host, port, timeout=60) as client:
                while not stop.is_set():
                    client.cluster_trial(trial_id, k=2, save=True)
                    writes[0] += 1
                    stop.wait(0.1)
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(f"writer: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=reader, args=(slot,))
        for slot in range(READERS)
    ]
    threads.append(threading.Thread(target=writer))
    started = time.perf_counter()
    for t in threads:
        t.start()
    time.sleep(duration)
    stop.set()
    for t in threads:
        t.join(timeout=120)
    elapsed = time.perf_counter() - started
    flat = [s for per_reader in latencies for s in per_reader]
    assert errors == [], f"workload errors: {errors}"
    assert flat, "no reads completed"
    return {
        "reads": len(flat),
        "read_qps": len(flat) / elapsed,
        "p50_ms": _percentile(flat, 0.50) * 1e3,
        "p99_ms": _percentile(flat, 0.99) * 1e3,
        "writes": writes[0],
        "write_qps": writes[0] / elapsed,
    }


def _drained_lag(host: str, port: int, timeout: float = 30.0) -> dict:
    """Poll a replica until its record lag reaches 0, then report."""
    deadline = time.monotonic() + timeout
    with PerfExplorerClient(host, port, timeout=60) as client:
        while True:
            status = client.replication_status()
            if status["replication_lag_records"] == 0:
                return status
            if time.monotonic() > deadline:
                return status
            time.sleep(0.2)


def _measure_core(base, core: str) -> dict:
    """One full single-vs-replicated matrix on one serving core."""
    children: list[subprocess.Popen] = []
    try:
        primary, (phost, pport, trial_id) = _spawn(
            _PRIMARY_CHILD, str(base / f"primary-{core}.mdb"), str(RANKS), core
        )
        children.append(primary)
        primary_ep = (phost, int(pport))
        trial = int(trial_id)

        single = _drive([primary_ep], trial, DURATION)

        replica_eps = []
        for i in range(N_REPLICAS):
            proc, (rhost, rport) = _spawn(
                _REPLICA_CHILD, phost, pport, f"e16-{core}-r{i}", core
            )
            children.append(proc)
            replica_eps.append((rhost, int(rport)))

        fleet = [primary_ep, *replica_eps]
        replicated = _drive(fleet, trial, DURATION)

        lags = [_drained_lag(h, p) for h, p in replica_eps]
        return {
            "single": single,
            "replicated": replicated,
            "qps_ratio": replicated["read_qps"] / single["read_qps"],
            "lags": lags,
        }
    finally:
        for proc in children:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)


@pytest.fixture(scope="module")
def measured(tmp_path_factory):
    base = tmp_path_factory.mktemp("e16")
    results = {core: _measure_core(base, core) for core in ("threaded", "async")}
    # Threaded at the top level: that is the series bench_history.mdb
    # has tracked since PR 9 — the regression gate must keep comparing
    # the same engine against its own history.
    out = dict(results["threaded"])
    out["async"] = results["async"]
    yield out


def _strict() -> bool:
    return (
        RANKS >= STRICT_RANKS
        and DURATION >= STRICT_SECONDS
        and CORES >= STRICT_CORES
    )


def _check_qps_ratio(result: dict, core: str, report) -> None:
    single, replicated = result["single"], result["replicated"]
    report(
        f"E16 replicated reads [{core:8s}] (+{N_REPLICAS} replicas) -> "
        f"{result['qps_ratio']:6.2f}x ({single['read_qps']:.0f} -> "
        f"{replicated['read_qps']:.0f} read QPS, p99 "
        f"{single['p99_ms']:.1f} -> {replicated['p99_ms']:.1f} ms, "
        f"{READERS} readers, cores={CORES})"
    )
    if _strict():
        assert result["qps_ratio"] >= 1.8, (
            f"[{core}] replicated fleet must serve >=1.8x the "
            f"single-server read QPS on {CORES} cores, got "
            f"{result['qps_ratio']:.2f}x"
        )
    else:
        # Smoke floor: spreading readers over three processes must never
        # cost throughput outright.
        assert result["qps_ratio"] >= 0.7, (
            f"[{core}] replicated serving fell below the no-pathology "
            f"floor: {result['qps_ratio']:.2f}x"
        )


def test_replicated_read_qps(measured, report):
    """ISSUE acceptance: replicated read QPS >= 1.8x single-server on
    >=4 cores — three serving processes vs one.  Both serving cores
    must clear the same bar."""
    _check_qps_ratio(measured, "threaded", report)
    _check_qps_ratio(measured["async"], "async", report)


def test_writes_kept_flowing(measured):
    """Mixed workload really was mixed: the writer committed in both
    phases (the replicas were tailing live WAL, not an idle archive)."""
    for result in (measured, measured["async"]):
        assert result["single"]["writes"] > 0
        assert result["replicated"]["writes"] > 0


def test_replica_lag_under_bound(measured, report):
    """After the workload the replicas drain and report a lag under the
    configured bound — serving never left them unboundedly behind."""
    for core in ("threaded", "async"):
        result = measured if core == "threaded" else measured["async"]
        worst = max(lag["replication_lag_seconds"] for lag in result["lags"])
        records = max(lag["replication_lag_records"] for lag in result["lags"])
        report(
            f"E16 replica lag [{core:8s}] after mixed load -> "
            f"{worst:6.3f} s / {records} records "
            f"(bound {LAG_BOUND_SECONDS:.1f} s)"
        )
        assert records == 0, (
            f"[{core}] replicas never drained: {records} records behind"
        )
        assert worst <= LAG_BOUND_SECONDS
        for lag in result["lags"]:
            assert lag["role"] == "replica"
            assert lag["state"] == "streaming"


def _phase_payload(result: dict) -> dict:
    return {
        "single": {
            "read_qps": round(result["single"]["read_qps"], 2),
            "p50_ms": round(result["single"]["p50_ms"], 3),
            "p99_ms": round(result["single"]["p99_ms"], 3),
            "write_qps": round(result["single"]["write_qps"], 2),
        },
        "replicated": {
            "read_qps": round(result["replicated"]["read_qps"], 2),
            "p50_ms": round(result["replicated"]["p50_ms"], 3),
            "p99_ms": round(result["replicated"]["p99_ms"], 3),
            "write_qps": round(result["replicated"]["write_qps"], 2),
        },
        "qps_ratio": round(result["qps_ratio"], 3),
        "lag_seconds_worst": round(
            max(l["replication_lag_seconds"] for l in result["lags"]), 6
        ),
    }


def test_write_bench_json(measured):
    payload = {
        "ranks": RANKS,
        "duration_seconds": DURATION,
        "readers": READERS,
        "replicas": N_REPLICAS,
        "cores": CORES,
    }
    payload.update(_phase_payload(measured))  # threaded: the PR 9 series
    payload["async"] = _phase_payload(measured["async"])
    from repro.obs.bench import write_bench_json

    write_bench_json(E16_JSON, "e16_replica", payload)
