"""E10 — many experiments (paper §2 objective).

> "Handle large-scale profile data **and large numbers of experiments**."

E1/E2 cover the first half; this bench covers the second: an archive
holding hundreds of trials across many applications/experiments must
keep entity listings, name lookups and cross-trial queries fast, and the
ParaProf tree must render the whole catalogue.
"""

from __future__ import annotations

import pytest

from repro.core.session import PerfDMFSession
from repro.paraprof import ArchiveManager, ProfileBrowser
from repro.tau.apps import EVH1

from conftest import scale

N_APPLICATIONS = 10
N_EXPERIMENTS = 5
N_TRIALS = scale(4, 8)  # per experiment -> 200 (or 400) trials total


@pytest.fixture(scope="module")
def big_archive():
    session = PerfDMFSession("sqlite://:memory:")
    source = EVH1(problem_size=0.02, timesteps=1).run(2)  # small, reused
    for a in range(N_APPLICATIONS):
        app = session.create_application(f"app_{a:02d}", version=str(a))
        for e in range(N_EXPERIMENTS):
            exp = session.create_experiment(app, f"exp_{e}")
            for t in range(N_TRIALS):
                session.save_trial(source, exp, f"trial_{t}")
    yield session
    session.close()


def total_trials() -> int:
    return N_APPLICATIONS * N_EXPERIMENTS * N_TRIALS


def test_archive_populated(benchmark, big_archive, report):
    count = benchmark(
        big_archive.connection.scalar, "SELECT count(*) FROM trial"
    )
    assert count == total_trials()
    report(
        f"E10 §2 'large numbers of experiments'      -> archive holds "
        f"{count} trials across {N_APPLICATIONS * N_EXPERIMENTS} experiments"
    )


def test_application_listing(benchmark, big_archive):
    apps = benchmark(big_archive.get_application_list)
    assert len(apps) == N_APPLICATIONS


def test_filtered_trial_listing(benchmark, big_archive, report):
    big_archive.reset_selection()
    apps = big_archive.get_application_list()
    big_archive.set_application(apps[3])
    exps = big_archive.get_experiment_list()
    big_archive.set_experiment(exps[2])

    trials = benchmark(big_archive.get_trial_list)
    assert len(trials) == N_TRIALS
    big_archive.reset_selection()
    report(
        f"E10 filtered trial listing                 -> "
        f"{benchmark.stats['mean'] * 1e3:6.2f} ms over {total_trials()} trials"
    )


def test_name_lookup(benchmark, big_archive):
    app = benchmark(big_archive.get_application, "app_07")
    assert app is not None


def test_tree_rendering(benchmark, big_archive, report):
    manager = ArchiveManager(big_archive)
    browser = ProfileBrowser(manager)
    text = benchmark.pedantic(browser.render_tree, rounds=2, iterations=1)
    assert text.count("trial_0") == N_APPLICATIONS * N_EXPERIMENTS
    report(
        f"E10 full-archive tree render               -> "
        f"{benchmark.stats['mean'] * 1e3:6.1f} ms "
        f"({len(text.splitlines())} tree lines)"
    )


def test_cross_trial_metadata_query(benchmark, big_archive):
    """Analyst query spanning the catalogue: every P=... trial of one app."""

    def query():
        return big_archive.connection.query(
            "SELECT t.id FROM trial t "
            "JOIN experiment e ON t.experiment = e.id "
            "JOIN application a ON e.application = a.id "
            "WHERE a.name = 'app_05' AND t.name = 'trial_1'"
        )

    rows = benchmark(query)
    assert len(rows) == N_EXPERIMENTS
