"""Shared benchmark configuration.

Default sizes are laptop-friendly; set ``REPRO_FULL_SCALE=1`` to run the
paper-scale configurations (16K threads for E1/E2, 1024 threads for E5).
Each benchmark emits "paper anchor -> measured" lines, printed in the
terminal summary — those rows are what EXPERIMENTS.md records.
"""

from __future__ import annotations

import os

import pytest

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "") == "1"

_REPORT_LINES: list[str] = []


def scale(default: int, full: int) -> int:
    return full if FULL_SCALE else default


@pytest.fixture(scope="session")
def report():
    """Collects experiment report lines, shown in the terminal summary."""
    return _REPORT_LINES.append


def pytest_terminal_summary(terminalreporter) -> None:
    if not _REPORT_LINES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 78)
    scale_note = "PAPER SCALE" if FULL_SCALE else "default scale; REPRO_FULL_SCALE=1 for paper scale"
    terminalreporter.write_line(
        f"EXPERIMENT REPORT (paper anchor -> measured)  [{scale_note}]"
    )
    terminalreporter.write_line("=" * 78)
    for line in sorted(_REPORT_LINES):
        terminalreporter.write_line(line)
