"""Shared benchmark configuration.

Default sizes are laptop-friendly; set ``REPRO_FULL_SCALE=1`` to run the
paper-scale configurations (16K threads for E1/E2, 1024 threads for E5).
Each benchmark emits "paper anchor -> measured" lines, printed in the
terminal summary — those rows are what EXPERIMENTS.md records.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.bench import write_bench_json  # noqa: E402

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "") == "1"

#: Machine-readable ingest numbers (E1 bulk-load, E6 parallel parse) land
#: here at the repo root; CI's benchmark smoke job archives the file.
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_e1_ingest.json"

_REPORT_LINES: list[str] = []


def scale(default: int, full: int) -> int:
    return full if FULL_SCALE else default


@pytest.fixture(scope="session")
def report():
    """Collects experiment report lines, shown in the terminal summary."""
    return _REPORT_LINES.append


@pytest.fixture(scope="session")
def bench_json():
    """Merge one section into ``BENCH_e1_ingest.json`` at the repo root,
    wrapped in the common bench envelope (git SHA, timestamp, cores)."""

    def write(section: str, payload: dict) -> None:
        write_bench_json(BENCH_JSON, section, payload)

    return write


def pytest_terminal_summary(terminalreporter) -> None:
    if not _REPORT_LINES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 78)
    scale_note = "PAPER SCALE" if FULL_SCALE else "default scale; REPRO_FULL_SCALE=1 for paper scale"
    terminalreporter.write_line(
        f"EXPERIMENT REPORT (paper anchor -> measured)  [{scale_note}]"
    )
    terminalreporter.write_line("=" * 78)
    for line in sorted(_REPORT_LINES):
        terminalreporter.write_line(line)
