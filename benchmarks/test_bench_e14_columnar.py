"""E14 — MiniSQL columnar storage: vectorized vs compiled-row execution.

Columnar tables store typed per-column vectors; the vectorized executor
runs WHERE masks and aggregate sweeps as tight loops over those vectors
instead of per-row closure calls.  This benchmark replays E2/E13's
scan-aggregate access patterns on the *same* engine and the *same*
compiled pipeline, toggling only the storage mode of
``interval_location_profile`` (``PRAGMA columnar(<table> off|on)``).
Identical statement text, identical rows, only the scan layout differs.

Results land in ``BENCH_e14_columnar.json`` at the repo root (per-pattern
row/columnar timings and speedup); CI's smoke job archives the file.

Ranks default to 1024 (``REPRO_FULL_SCALE=1`` -> 4096); CI overrides
with ``REPRO_E14_RANKS`` for a fast smoke run, which relaxes the
speedup assertions to a no-slowdown floor.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.core.session import PerfDMFSession
from repro.tau.apps import Miranda
from repro.tau.apps.miranda import NUM_EVENTS

from conftest import scale

RANKS = int(os.environ.get("REPRO_E14_RANKS", "0")) or scale(1024, 4096)

#: Below this size the per-row constant costs dominate and the ratio is
#: noise; CI smoke only checks that columnar mode is not a slowdown.
STRICT_RANKS = 1024

E14_JSON = Path(__file__).resolve().parent.parent / "BENCH_e14_columnar.json"

ROUNDS = 3

TABLE = "interval_location_profile"


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def _patterns():
    """Single-table scan shapes — the vectorized pipeline's territory.

    (Joins and GROUP BY stay on the compiled row pipeline by design;
    E13 already covers those.)
    """
    mid = RANKS // 2
    return {
        # E2's full-scan SQL aggregate mix, single-table form: one pass,
        # five accumulator sweeps over two numeric columns.
        "scan_agg": (
            f"SELECT count(*), avg(exclusive), min(exclusive), "
            f"max(exclusive), sum(inclusive) FROM {TABLE}",
            (),
        ),
        # Selective WHERE over a column vector, then aggregate sweeps
        # over the selection (the `+ 0` forms defeat the indexes so the
        # predicate really runs per row / per vector element).
        "filtered_agg": (
            f"SELECT count(*), sum(exclusive) FROM {TABLE} "
            f"WHERE node + 0 > ? AND exclusive + 0.0 >= 0.0",
            (mid,),
        ),
        # E13's WHERE-heavy filter sweep: arithmetic, modulo and CASE in
        # the mask, all lowered to vector element loops.
        "filter_sweep": (
            f"SELECT count(*), avg(exclusive) FROM {TABLE} "
            f"WHERE exclusive * 2.0 + inclusive > 100.0 AND node % 2 = 0 "
            f"AND (CASE WHEN num_calls > 0 THEN exclusive / num_calls "
            f"ELSE 0 END) >= 0",
            (),
        ),
        # Plain projection of a selective slice: selection mask plus
        # column gathers, no aggregation.
        "selective": (
            f"SELECT interval_event, node, exclusive FROM {TABLE} "
            f"WHERE node + 0 > ? AND node + 0 <= ?",
            (mid - 4, mid),
        ),
    }


@pytest.fixture(scope="module")
def measured():
    session = PerfDMFSession("minisql://:memory:")
    application = session.create_application("miranda")
    experiment = session.create_experiment(application, "bgl")
    trial = session.save_trial(Miranda().generate(RANKS), experiment, "e14")
    session.set_trial(trial)
    conn = session.connection
    conn.commit()  # storage toggles refuse to run inside a transaction

    results = {}
    for name, (sql, params) in _patterns().items():
        conn.execute(f"PRAGMA columnar({TABLE} off)")
        rows_row, seconds_row = _best_of(lambda: conn.query(sql, params))
        conn.execute(f"PRAGMA columnar({TABLE} on)")
        rows_col, seconds_col = _best_of(lambda: conn.query(sql, params))
        results[name] = {
            "rows_row": rows_row,
            "rows_col": rows_col,
            "row_ms": seconds_row * 1e3,
            "col_ms": seconds_col * 1e3,
            "speedup": seconds_row / seconds_col,
        }
    stats = conn.stats()
    results["_stats"] = {
        key: stats[key]
        for key in (
            "vector_selects", "vector_fallbacks", "columnar_conversions",
        )
    }
    yield results
    session.close()


@pytest.mark.parametrize(
    "pattern", ["scan_agg", "filtered_agg", "filter_sweep", "selective"]
)
def test_rows_identical_both_layouts(measured, pattern):
    """Storage mode must be an invisible optimisation at bench scale."""
    entry = measured[pattern]
    assert entry["rows_row"] == entry["rows_col"]


def test_vector_path_engaged(measured):
    stats = measured["_stats"]
    # Every columnar round of every pattern must have shipped vectorized
    # results — a silent fallback would benchmark the row pipeline
    # against itself.
    assert stats["vector_selects"] >= 4 * ROUNDS
    assert stats["vector_fallbacks"] == 0


def test_scan_aggregate_speedup(measured, report):
    """ISSUE acceptance: >=2x over compiled rows on the E2 scan-agg mix."""
    entry = measured["scan_agg"]
    report(
        f"E14 columnar full-scan aggregate mix       -> "
        f"{entry['speedup']:6.2f}x ({entry['row_ms']:.0f} ms -> "
        f"{entry['col_ms']:.0f} ms, {RANKS * NUM_EVENTS:,} rows)"
    )
    if RANKS >= STRICT_RANKS:
        assert entry["speedup"] >= 2.0, (
            f"vectorized scan-aggregate must beat compiled rows 2x, "
            f"got {entry['speedup']:.2f}x"
        )
    else:
        assert entry["speedup"] >= 0.9, (
            f"columnar mode must not be a slowdown even at smoke scale, "
            f"got {entry['speedup']:.2f}x"
        )


def test_filtered_aggregate_speedup(measured, report):
    entry = measured["filtered_agg"]
    report(
        f"E14 columnar filtered aggregate            -> "
        f"{entry['speedup']:6.2f}x ({entry['row_ms']:.0f} ms -> "
        f"{entry['col_ms']:.0f} ms)"
    )
    floor = 1.5 if RANKS >= STRICT_RANKS else 0.9
    assert entry["speedup"] >= floor


def test_filter_sweep_speedup(measured, report):
    entry = measured["filter_sweep"]
    report(
        f"E14 columnar WHERE-heavy filter sweep      -> "
        f"{entry['speedup']:6.2f}x ({entry['row_ms']:.0f} ms -> "
        f"{entry['col_ms']:.0f} ms)"
    )
    floor = 1.2 if RANKS >= STRICT_RANKS else 0.9
    assert entry["speedup"] >= floor


def test_write_bench_json(measured, report):
    payload = {
        "ranks": RANKS,
        "rows": RANKS * NUM_EVENTS,
        "rounds": ROUNDS,
        "patterns": {
            name: {
                "row_ms": round(entry["row_ms"], 3),
                "col_ms": round(entry["col_ms"], 3),
                "speedup": round(entry["speedup"], 3),
            }
            for name, entry in measured.items()
            if not name.startswith("_")
        },
        "columnar_stats": measured["_stats"],
    }
    from repro.obs.bench import write_bench_json

    write_bench_json(E14_JSON, "e14_columnar", payload)
    selective = measured["selective"]
    report(
        f"E14 columnar selective node slice          -> "
        f"{selective['speedup']:6.2f}x ({selective['row_ms']:.2f} ms -> "
        f"{selective['col_ms']:.2f} ms)"
    )
