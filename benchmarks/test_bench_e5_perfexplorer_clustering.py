"""E5 — PerfExplorer data mining on sPPM (paper §5.3, Figure 3).

Reproduced result: *"Analysis results from Ahn and Vetter were
reproduced with PerfExplorer, showing interesting floating point
operation behavior in the sPPM application."*  Up to 1024 threads and 7
PAPI counters, through the full client-server path.

Shape expectations asserted:

* k-means on PAPI_FP_OPS separates two thread populations;
* the populations coincide with the boundary/interior domain split;
* silhouette selects k=2 automatically;
* results persist and reload through the extended schema.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.session import PerfDMFSession
from repro.db.minisql import reset_shared_databases
from repro.explorer import AnalysisServer, PerfExplorerClient, SocketServer
from repro.tau.apps import SPPM
from repro.tau.apps.sppm import boundary_fraction

from conftest import scale

RANKS = scale(256, 1024)
DB_URL = "minisql://bench-e5"


@pytest.fixture(scope="module")
def service():
    setup = PerfDMFSession(DB_URL)
    application = setup.create_application("sppm")
    experiment = setup.create_experiment(application, "counter-study")
    source = SPPM(problem_size=0.02, timesteps=1).run(RANKS)
    trial = setup.save_trial(source, experiment, f"P={RANKS}")
    server = SocketServer(AnalysisServer(DB_URL))
    host, port = server.start()
    yield host, port, trial.id
    server.stop()
    reset_shared_databases()


def test_clustering_through_client_server(benchmark, service, report):
    host, port, trial_id = service

    def mine():
        with PerfExplorerClient(host, port) as client:
            return client.cluster_trial(
                trial_id, metric_name="PAPI_FP_OPS", max_k=5
            )

    result = benchmark.pedantic(mine, rounds=1, iterations=1)

    assert result["k"] == 2, "silhouette must select the two populations"
    truth = np.array([boundary_fraction(r, RANKS) for r in range(RANKS)])
    labels = np.array(result["labels"]) == 1
    agreement = max((labels == truth).mean(), (labels != truth).mean())
    assert agreement > 0.9, "clusters must match the boundary/interior split"

    report(
        f"E5  §5.3 Ahn&Vetter sPPM FP behaviour      -> k={result['k']}, "
        f"sizes={result['sizes']}, boundary agreement {agreement:.0%}, "
        f"{benchmark.stats['mean']:.2f}s end-to-end ({RANKS} threads)"
    )


def test_results_persist_and_reload(benchmark, service, report):
    host, port, trial_id = service

    def roundtrip():
        with PerfExplorerClient(host, port) as client:
            result = client.cluster_trial(
                trial_id, k=2, metric_name="PAPI_FP_OPS"
            )
            stored = client.get_analysis(result["settings_id"])
            return result, stored

    result, stored = benchmark.pedantic(roundtrip, rounds=1, iterations=1)
    assert stored["results"]["labels"] == result["labels"]
    assert stored["method"] == "kmeans"
    report("E5  analysis results saved+reloaded via extended schema -> ok")


def test_describe_throughput(benchmark, service):
    host, port, trial_id = service
    with PerfExplorerClient(host, port) as client:
        d = benchmark(client.describe_event, trial_id, "hydro_kernel")
        assert d["n"] == RANKS
