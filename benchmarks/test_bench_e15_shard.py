"""E15 — sharded scatter-gather queries and parallel shard ingest.

PR 7 partitions hot tables into N per-shard databases and runs plan
fragments per shard — serially, or on a forked worker pool — merging
partial aggregates at the gather step.  This benchmark replays the E2
scan-aggregate mix on ``interval_location_profile`` under three
configurations of the *same* engine:

* no shards (the PR 6 columnar single-process baseline),
* ``PRAGMA shards(1)`` — the routing hooks attached but never
  scattering, which must stay within noise of the baseline,
* ``PRAGMA shards(N)`` (default 4) with the worker pool engaged when
  the machine has more than one core.

It also races the parallel multi-process shard ingest against the
single-writer ``executemany`` bulk path at 4096-rank row volume.

Results land in ``BENCH_e15_shard.json`` at the repo root; CI's smoke
job (``REPRO_E15_RANKS=128``, shards=2) only checks no-slowdown floors
— the 2.5x acceptance figure needs >=4 real cores and strict scale.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.core.session import PerfDMFSession
from repro.db import minisql
from repro.tau.apps import Miranda
from repro.tau.apps.miranda import NUM_EVENTS

from conftest import scale

RANKS = int(os.environ.get("REPRO_E15_RANKS", "0")) or scale(2048, 16384)
INGEST_RANKS = (
    int(os.environ.get("REPRO_E15_INGEST_RANKS", "0")) or scale(1024, 4096)
)
SHARDS = int(os.environ.get("REPRO_E15_SHARDS", "4"))

#: Below this the queries finish in microseconds and ratios are noise;
#: smoke runs only enforce loose no-slowdown floors.
STRICT_RANKS = 2048
#: The multi-process speedup claims need actual parallel hardware.
STRICT_CORES = 4

CORES = os.cpu_count() or 1

E15_JSON = Path(__file__).resolve().parent.parent / "BENCH_e15_shard.json"

ROUNDS = 5

TABLE = "interval_location_profile"


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def _rows_close(left, right, rel=1e-9):
    """Row-set equality with relative float tolerance.

    Per-shard partial sums reorder float additions, so totals of
    magnitude ~1e6 legitimately differ by ~1e-9 *relative* (not a fixed
    number of decimal places) from the sequential fold.
    """
    if len(left) != len(right):
        return False
    for row_l, row_r in zip(left, right):
        if len(row_l) != len(row_r):
            return False
        for a, b in zip(row_l, row_r):
            if isinstance(a, float) and isinstance(b, float):
                if a != pytest.approx(b, rel=rel):
                    return False
            elif a != b:
                return False
    return True


def _patterns():
    mid = RANKS // 2
    return {
        # E2's full-scan SQL aggregate mix — five accumulator sweeps,
        # each shard folds its slab and the gather merges partials.
        "scan_agg": (
            f"SELECT count(*), avg(exclusive), min(exclusive), "
            f"max(exclusive), sum(inclusive) FROM {TABLE}",
            (),
        ),
        # Selective predicate ahead of the aggregate sweep (the ``+ 0``
        # defeats index routing so every shard really scans its slab).
        "filtered_agg": (
            f"SELECT count(*), sum(exclusive), avg(inclusive) FROM {TABLE} "
            f"WHERE node + 0 > ? AND exclusive + 0.0 >= 0.0",
            (mid,),
        ),
        # Grouped partial aggregation: per-shard GROUP BY, re-grouped
        # and merged (SUM/SUM+COUNT) at the gather, HAVING applied last.
        "grouped": (
            f"SELECT interval_event, count(*), sum(exclusive), "
            f"avg(inclusive) FROM {TABLE} GROUP BY interval_event "
            f"HAVING count(*) > 0 ORDER BY interval_event",
            (),
        ),
    }


@pytest.fixture(scope="module")
def measured():
    session = PerfDMFSession("minisql://:memory:")
    application = session.create_application("miranda")
    experiment = session.create_experiment(application, "bgl")
    trial = session.save_trial(Miranda().generate(RANKS), experiment, "e15")
    session.set_trial(trial)
    conn = session.connection
    conn.commit()  # shard reconfiguration refuses to run in a transaction

    patterns = _patterns()
    results: dict = {name: {} for name in patterns}

    def run_all(tag):
        for name, (sql, params) in patterns.items():
            rows, seconds = _best_of(lambda: conn.query(sql, params))
            results[name][f"rows_{tag}"] = rows
            results[name][f"{tag}_ms"] = seconds * 1e3

    run_all("base")

    conn.execute("PRAGMA shards(1)")
    run_all("s1")

    conn.execute(f"PRAGMA shards({SHARDS})")
    # On a single core the fork pool is pure overhead; auto keeps the
    # scatter serial there, matching what a deployment would run.
    parallel_mode = "on" if CORES > 1 else "auto"
    conn.execute(f"PRAGMA shard_parallel({parallel_mode})")
    conn.query(f"SELECT count(*) FROM {TABLE}")  # warmup: derived rebuild
    run_all("shard")

    for name in patterns:
        entry = results[name]
        entry["speedup"] = entry["base_ms"] / entry["shard_ms"]
        entry["s1_ratio"] = entry["base_ms"] / entry["s1_ms"]

    stats = conn.stats()
    results["_stats"] = {
        key: stats[key]
        for key in ("shard_queries", "shard_pool_queries",
                    "shard_fallbacks", "shard_rebuilds")
    }
    results["_config"] = {
        "cores": CORES,
        "shards": SHARDS,
        "workers": SHARDS if parallel_mode == "on" else 1,
        "parallel_mode": parallel_mode,
        "mp_start_method": multiprocessing.get_start_method(),
    }
    yield results
    session.close()


@pytest.mark.parametrize("pattern", ["scan_agg", "filtered_agg", "grouped"])
def test_rows_identical_all_modes(measured, pattern):
    """Sharding must be an invisible optimisation (floats to 9 places:
    per-shard partial sums reorder float additions)."""
    entry = measured[pattern]
    assert entry["rows_base"] == entry["rows_s1"]
    assert _rows_close(entry["rows_base"], entry["rows_shard"])


def test_shard_path_engaged(measured):
    stats = measured["_stats"]
    # Every sharded round of every pattern must actually have scattered;
    # a silent fallback would benchmark the baseline against itself.
    assert stats["shard_queries"] >= 3 * ROUNDS
    assert stats["shard_fallbacks"] == 0
    if measured["_config"]["parallel_mode"] == "on":
        assert stats["shard_pool_queries"] >= 3 * ROUNDS


def test_scan_aggregate_speedup(measured, report):
    """ISSUE acceptance: >=2.5x at 4 shards over the single-process
    columnar baseline on the E2 scan-agg mix — gated on real cores."""
    entry = measured["scan_agg"]
    config = measured["_config"]
    report(
        f"E15 sharded full-scan aggregate mix        -> "
        f"{entry['speedup']:6.2f}x ({entry['base_ms']:.1f} ms -> "
        f"{entry['shard_ms']:.1f} ms, {RANKS * NUM_EVENTS:,} rows, "
        f"shards={config['shards']}, cores={config['cores']})"
    )
    if RANKS >= STRICT_RANKS and CORES >= STRICT_CORES and SHARDS >= 4:
        assert entry["speedup"] >= 2.5, (
            f"4-shard scatter-gather must beat single-process 2.5x on "
            f"{CORES} cores, got {entry['speedup']:.2f}x"
        )
    else:
        # Serial scatter still does the same total scan work plus a
        # small gather; anything below this floor means real overhead.
        assert entry["speedup"] >= 0.5, (
            f"sharded scan-agg fell below the no-pathology floor: "
            f"{entry['speedup']:.2f}x"
        )


@pytest.mark.parametrize("pattern", ["filtered_agg", "grouped"])
def test_other_patterns_no_slowdown(measured, report, pattern):
    entry = measured[pattern]
    report(
        f"E15 sharded {pattern:<16} query        -> "
        f"{entry['speedup']:6.2f}x ({entry['base_ms']:.1f} ms -> "
        f"{entry['shard_ms']:.1f} ms)"
    )
    floor = (
        1.5 if RANKS >= STRICT_RANKS and CORES >= STRICT_CORES and SHARDS >= 4
        else 0.5
    )
    assert entry["speedup"] >= floor


def test_single_shard_within_noise_of_baseline(measured, report):
    """shards=1 never scatters: the routing hook must cost ~nothing."""
    worst = min(
        measured[name]["s1_ratio"]
        for name in ("scan_agg", "filtered_agg", "grouped")
    )
    report(
        f"E15 shards(1) overhead vs no-shard path    -> "
        f"worst ratio {worst:6.2f}x (floor "
        f"{'0.90' if RANKS >= STRICT_RANKS else '0.60 smoke'})"
    )
    # Acceptance: within 10% at strict scale; smoke timings are
    # microsecond-level and only guard against a gross regression.
    assert worst >= (0.9 if RANKS >= STRICT_RANKS else 0.6)


@pytest.fixture(scope="module")
def ingested(tmp_path_factory):
    base = tmp_path_factory.mktemp("e15ingest")
    total = INGEST_RANKS * NUM_EVENTS
    rows = [
        (i % NUM_EVENTS, i // NUM_EVENTS, 0, 0,
         float(i % 977) * 1.5, float(i % 977) * 2.25, 1 + i % 7)
        for i in range(total)
    ]
    columns = ("interval_event", "node", "context", "thread",
               "exclusive", "inclusive", "num_calls")
    ddl = (
        "CREATE TABLE ilp (interval_event INTEGER, node INTEGER, "
        "context INTEGER, thread INTEGER, exclusive REAL, "
        "inclusive REAL, num_calls INTEGER)"
    )
    sql = (
        f"INSERT INTO ilp ({', '.join(columns)}) "
        f"VALUES ({', '.join('?' for _ in columns)})"
    )

    single = minisql.connect(str(base / "single.mdb"))
    single.execute(ddl)
    single.commit()
    t0 = time.perf_counter()
    single.execute("PRAGMA bulk_load(on)")
    single.executemany(sql, rows)
    single.execute("PRAGMA bulk_load(off)")
    single.commit()
    single_seconds = time.perf_counter() - t0
    count_single = single.execute("SELECT count(*) FROM ilp").fetchall()
    single.close()

    sharded = minisql.connect(str(base / "sharded.mdb"))
    sharded.execute(f"PRAGMA shards({SHARDS})")
    sharded.execute(ddl)
    sharded.commit()
    manager = sharded._database.shard_mgr
    t0 = time.perf_counter()
    went_parallel = manager.parallel_ingest("ilp", columns, rows)
    parallel_seconds = time.perf_counter() - t0
    count_sharded = sharded.execute("SELECT count(*) FROM ilp").fetchall()
    spot = sharded.execute(
        "SELECT sum(num_calls), round(sum(exclusive), 6) FROM ilp"
    ).fetchall()
    sharded.close()
    minisql.reset_shared_databases()

    yield {
        "rows": total,
        "went_parallel": went_parallel,
        "count_single": count_single,
        "count_sharded": count_sharded,
        "spot": spot,
        "expected_spot": [(
            sum(r[6] for r in rows),
            round(sum(r[4] for r in rows), 6),
        )],
        "single_seconds": single_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": single_seconds / parallel_seconds,
    }


def test_parallel_ingest_correct(ingested):
    assert ingested["went_parallel"] is True
    assert ingested["count_sharded"] == ingested["count_single"]
    assert ingested["count_sharded"] == [(ingested["rows"],)]
    assert _rows_close(ingested["spot"], ingested["expected_spot"])


def test_parallel_ingest_speedup(ingested, report):
    report(
        f"E15 parallel shard ingest ({ingested['rows']:,} rows)"
        f"{'':<6}-> {ingested['speedup']:6.2f}x "
        f"({ingested['single_seconds'] * 1e3:.0f} ms single-writer -> "
        f"{ingested['parallel_seconds'] * 1e3:.0f} ms, "
        f"{SHARDS} writer processes)"
    )
    if INGEST_RANKS >= 1024 and CORES >= STRICT_CORES:
        assert ingested["speedup"] > 1.0, (
            f"parallel shard ingest must beat the single writer on "
            f"{CORES} cores, got {ingested['speedup']:.2f}x"
        )
    else:
        # The numbers are recorded above, but with one core (writer
        # processes serialised) or at smoke scale (fixed fork cost
        # dwarfing milliseconds of actual writing) the ratio says
        # nothing about the ingest pipeline.
        pytest.skip(
            f"{CORES} core(s), {INGEST_RANKS} ranks: parallel-ingest "
            "speedup assertion not meaningful at this configuration"
        )


def test_write_bench_json(measured, ingested):
    payload = {
        "ranks": RANKS,
        "rows": RANKS * NUM_EVENTS,
        "rounds": ROUNDS,
        **measured["_config"],
        "patterns": {
            name: {
                "base_ms": round(entry["base_ms"], 3),
                "shards1_ms": round(entry["s1_ms"], 3),
                "shard_ms": round(entry["shard_ms"], 3),
                "speedup": round(entry["speedup"], 3),
            }
            for name, entry in measured.items()
            if not name.startswith("_")
        },
        "shard_stats": measured["_stats"],
        "ingest": {
            "ranks": INGEST_RANKS,
            "rows": ingested["rows"],
            "went_parallel": ingested["went_parallel"],
            "single_writer_seconds": round(ingested["single_seconds"], 3),
            "parallel_seconds": round(ingested["parallel_seconds"], 3),
            "speedup": round(ingested["speedup"], 2),
        },
    }
    from repro.obs.bench import write_bench_json

    write_bench_json(E15_JSON, "e15_shard", payload)
