"""E3 — the Figure 2 multi-format archive (paper §5.1).

Scenario reproduced: one database holding trials of the same application
imported from three different profiling tools (HPMToolkit, mpiP, TAU),
browsed through ParaProf.  Measured: per-format import time; asserted:
the archive tree matches the figure and every trial opens and displays.
"""

from __future__ import annotations

import pytest

from repro.paraprof import ArchiveManager, ProfileBrowser
from repro.tau.apps import SPPM
from repro.tau.writers import (
    write_hpm_output, write_mpip_report, write_tau_profiles,
)

RANKS = 32


@pytest.fixture(scope="module")
def tool_outputs(tmp_path_factory):
    base = tmp_path_factory.mktemp("e3")
    run = SPPM(problem_size=0.02, timesteps=1).run(RANKS)
    write_tau_profiles(run, base / "tau")
    write_mpip_report(run, base / "run.mpiP")
    write_hpm_output(run, base / "hpm")
    return base


@pytest.mark.parametrize(
    "fmt,target,trial_name",
    [
        ("tau", "tau", "TAU trial"),
        ("mpip", "run.mpiP", "mpiP trial"),
        ("hpmtoolkit", "hpm", "HPMToolkit trial"),
    ],
)
def test_import_format(benchmark, tool_outputs, fmt, target, trial_name, report):
    def import_once():
        manager = ArchiveManager("sqlite://:memory:")
        return manager.import_profile(
            tool_outputs / target, "sppm", "multi-tool", trial_name
        )

    trial = benchmark.pedantic(import_once, rounds=2, iterations=1)
    assert trial.id is not None
    report(
        f"E3  Fig.2 import [{fmt:<11}]              -> "
        f"{benchmark.stats['mean'] * 1e3:7.1f} ms for {RANKS} ranks"
    )


def test_figure2_archive_end_to_end(benchmark, tool_outputs, report):
    def build_and_browse():
        manager = ArchiveManager("sqlite://:memory:")
        manager.import_profile(
            tool_outputs / "tau", "sppm", "multi-tool", "TAU trial"
        )
        manager.import_profile(
            tool_outputs / "run.mpiP", "sppm", "multi-tool", "mpiP trial"
        )
        manager.import_profile(
            tool_outputs / "hpm", "sppm", "multi-tool", "HPM trial"
        )
        browser = ProfileBrowser(manager)
        views = [browser.render_tree()]
        for trial_name in ("TAU trial", "mpiP trial", "HPM trial"):
            browser.open_trial("sppm", "multi-tool", trial_name)
            views.append(browser.show_aggregate(top=5))
        return manager.tree(), views

    tree, views = benchmark.pedantic(build_and_browse, rounds=1, iterations=1)
    assert tree == {"sppm": {"multi-tool": ["TAU trial", "mpiP trial", "HPM trial"]}}
    assert all(t in views[0] for t in ("TAU trial", "mpiP trial", "HPM trial"))
    assert all(views)
    report("E3  Fig.2 archive: 3 tools in one DB, all browsable -> reproduced")
