"""E6 — importer correctness and throughput (paper §3.1's format list).

The same logical run is emitted in all seven formats; each import must
reconstruct a consistent model (same thread count; matching values for
the fields that format carries), and the XML exchange representation
must round-trip exactly.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.io_ import export_xml, load_profile, parse_profiles
from repro.core.toolkit.stats import event_statistics
from repro.tau.apps import SPPM
from repro.tau.writers import (
    write_dynaprof_output, write_gprof_output, write_hpm_output,
    write_mpip_report, write_psrun_output, write_svpablo_output,
    write_tau_profiles,
)

RANKS = 16


@pytest.fixture(scope="module")
def everything(tmp_path_factory):
    base = tmp_path_factory.mktemp("e6")
    run = SPPM(problem_size=0.02, timesteps=1).run(RANKS)
    write_tau_profiles(run, base / "tau")
    write_gprof_output(run, base / "gprof")
    write_mpip_report(run, base / "run.mpiP")
    write_dynaprof_output(run, base / "dyna")
    write_hpm_output(run, base / "hpm")
    write_psrun_output(run, base / "psrun")
    write_svpablo_output(run, base / "sv.sddf")
    export_xml(run, base / "trial.xml")
    return base, run


FORMATS = [
    ("tau", "tau"),
    ("gprof", "gprof"),
    ("mpip", "run.mpiP"),
    ("dynaprof", "dyna"),
    ("hpmtoolkit", "hpm"),
    ("psrun", "psrun"),
    ("svpablo", "sv.sddf"),
    ("xml", "trial.xml"),
]


@pytest.mark.parametrize("fmt,target", FORMATS)
def test_import_throughput(benchmark, everything, fmt, target, report):
    base, run = everything
    source = benchmark(load_profile, base / target)
    assert source.num_threads == RANKS
    report(
        f"E6  §3.1 importer [{fmt:<10}]             -> "
        f"{benchmark.stats['mean'] * 1e3:7.2f} ms, "
        f"{source.num_interval_events} events"
    )


def test_cross_format_value_consistency(benchmark, everything, report):
    """Formats carrying full per-event times must agree on them."""
    base, run = everything
    reference = event_statistics(run, "hydro_kernel", metric=0).mean

    def check() -> int:
        checked = 0
        for fmt, target, tolerance in [
            ("tau", "tau", 1e-6),
            ("dynaprof", "dyna", 1e-3),
            ("svpablo", "sv.sddf", 1e-6),
            ("xml", "trial.xml", 1e-9),
        ]:
            source = load_profile(base / target)
            time_metric = source.time_metric()
            got = event_statistics(
                source, "hydro_kernel", metric=time_metric.index
            ).mean
            assert got == pytest.approx(reference, rel=tolerance), fmt
            checked += 1
        return checked

    checked = benchmark.pedantic(check, rounds=1, iterations=1)
    report(
        f"E6  cross-format value agreement           -> "
        f"{checked} full-fidelity formats agree on hydro_kernel mean"
    )


def test_parallel_parse_speedup(benchmark, tmp_path_factory, report, bench_json):
    """Fan profile parsing out over a process pool (bulk-ingest stage 1).

    Parsing is CPU-bound pure-Python work, so worker processes should
    give near-linear speedup; the >1.5x assertion only applies on
    machines with at least 4 cores.  Single-core boxes still record
    their numbers (with ``cores``/``workers``) in
    ``BENCH_e1_ingest.json`` but then *skip* visibly rather than
    reporting a meaningless 1.0x pass.
    """
    base = tmp_path_factory.mktemp("e6par")
    dirs = []
    for i in range(8):
        run = SPPM(problem_size=0.02, timesteps=1, seed=50 + i).run(RANKS)
        d = base / f"run{i}"
        write_tau_profiles(run, d)
        dirs.append(d)
    cores = os.cpu_count() or 1
    workers = min(cores, len(dirs))

    def measure() -> dict:
        t0 = time.perf_counter()
        serial = parse_profiles(dirs, workers=1)
        serial_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = parse_profiles(dirs, workers=workers)
        parallel_seconds = time.perf_counter() - t0
        assert len(serial) == len(parallel) == len(dirs)
        for a, b in zip(serial, parallel):
            assert a.num_threads == b.num_threads == RANKS
        import multiprocessing

        return {
            "files": len(dirs),
            "cores": cores,
            # The fan-out configuration the parallel leg actually ran
            # with, so single-core records are self-describing instead
            # of implying an 8-worker pool that never existed.
            "workers": workers,
            "serial_workers": 1,
            "mp_start_method": multiprocessing.get_start_method(),
            # Profile parsing fans out per *file*; table sharding
            # (BENCH_e15_shard.json) is a separate axis — recorded as 0
            # here so the two payloads join unambiguously on config.
            "shards": 0,
            "serial_seconds": round(serial_seconds, 3),
            "parallel_seconds": round(parallel_seconds, 3),
            "speedup": round(serial_seconds / parallel_seconds, 2),
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    bench_json("e6_parallel_parse", result)
    report(
        f"E6  parallel profile parse                 -> "
        f"{result['speedup']:.2f}x over serial for {result['files']} files "
        f"[cores={result['cores']}, workers={result['workers']}]"
    )
    if workers == 1:
        # The numbers are still recorded above, but a 1.0x "speedup"
        # from a pool of one says nothing about the pipeline.
        pytest.skip(
            f"only {cores} core(s) available: worker pool degenerates to "
            "serial, speedup assertion not meaningful"
        )
    if cores >= 4:
        assert result["speedup"] > 1.5, (
            f"parallel parse must beat serial by >1.5x on {cores} cores, "
            f"got {result['speedup']}x"
        )


def test_xml_roundtrip_exact(benchmark, everything, report):
    base, run = everything
    back = benchmark(load_profile, base / "trial.xml")
    assert back.num_threads == run.num_threads
    assert set(back.interval_events) == set(run.interval_events)
    assert [m.name for m in back.metrics] == [m.name for m in run.metrics]
    for name, event in run.interval_events.items():
        back_event = back.get_interval_event(name)
        for thread in run.all_threads():
            src = thread.function_profiles.get(event.index)
            if src is None:
                continue
            dst = back.get_thread(*thread.triple).function_profiles[
                back_event.index
            ]
            for m, inc, exc in src.iter_metrics():
                assert dst.get_inclusive(m) == inc
                assert dst.get_exclusive(m) == exc
    report("E6  common-XML round trip                  -> exact (bit-equal)")
