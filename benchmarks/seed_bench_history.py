"""Seed (or top up) the committed bench history from git history.

Replays every committed version of every ``BENCH_*.json`` at the repo
root, oldest first, ingesting each into ``bench_history.mdb``.  Legacy
files (no envelope) get their provenance from the commit that wrote
them: the commit SHA and author date become the trial metadata.  Ingest
is idempotent, so re-running after new bench commits only appends the
new runs.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/seed_bench_history.py [HISTORY]
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.bench import DEFAULT_HISTORY, BenchArchive, tidy_archive  # noqa: E402


#: Pre-envelope files whose top level was the payload itself rather than
#: a ``{section: payload}`` mapping — a one-time seeding concern; every
#: current writer goes through ``write_bench_json``.
LEGACY_BARE_SECTIONS = {
    "BENCH_e13_compile.json": "e13_compile",
    "BENCH_e14_columnar.json": "e14_columnar",
    "BENCH_e15_shard.json": "e15_shard",
}


def _git(*argv: str) -> str:
    return subprocess.run(
        ["git", *argv], cwd=REPO, capture_output=True, text=True, check=True
    ).stdout


def bench_versions() -> list[tuple[str, str, str, str]]:
    """Every (commit_sha, iso_date, path, blob_text), oldest commit first."""
    paths = sorted(
        line for line in _git("ls-files").splitlines()
        if line.startswith("BENCH_") and line.endswith(".json")
    )
    versions: list[tuple[str, str, str, str]] = []
    for path in paths:
        log = _git(
            "log", "--follow", "--reverse", "--format=%H %aI", "--", path
        )
        for line in log.splitlines():
            sha, _, date = line.strip().partition(" ")
            try:
                blob = _git("show", f"{sha}:{path}")
            except subprocess.CalledProcessError:
                continue  # the commit deleted or renamed the file
            versions.append((sha, date, path, blob))
    versions.sort(key=lambda v: v[1])
    return versions


def main(argv: list[str]) -> int:
    history = argv[0] if argv else str(REPO / DEFAULT_HISTORY)
    versions = bench_versions()
    stored_total = 0
    with BenchArchive(history) as archive:
        for sha, date, path, blob in versions:
            try:
                doc = json.loads(blob)
            except ValueError:
                print(f"skipping unparseable {path} @ {sha[:12]}")
                continue
            section = LEGACY_BARE_SECTIONS.get(path)
            if section is not None and "benchmarks" not in doc:
                doc = {section: doc}
            stored = archive.ingest_document(
                doc, source=f"{sha[:12]}:{path}",
                default_sha=sha, default_timestamp=date,
            )
            stored_total += len(stored)
            if stored:
                sections = ", ".join(run.experiment for run in stored)
                print(f"{sha[:12]} {date} {path}: {sections}")
    tidy_archive(history)
    print(f"stored {stored_total} new run(s) in {history} "
          f"({len(versions)} file version(s) replayed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
