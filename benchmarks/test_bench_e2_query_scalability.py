"""E2 — query scalability on the stored Miranda trial (paper §5.3).

Claim reproduced: *"The 16K processor run consisted of over 1.6 million
data points, and the PerfDMF API was able to handle the data without
problems."*

Against a stored large trial we measure the paper's three access
patterns: selective queries (node slice — must not touch the full
trial), precomputed summary retrieval, and SQL aggregates over all rows.
Shape expectation: the selective paths stay in the millisecond range
regardless of trial size; full-scan aggregates complete comfortably.
"""

from __future__ import annotations

import pytest

from repro.core.session import PerfDMFSession
from repro.tau.apps import Miranda
from repro.tau.apps.miranda import NUM_EVENTS

from conftest import scale

RANKS = scale(4096, 16384)


@pytest.fixture(scope="module")
def loaded():
    session = PerfDMFSession("sqlite://:memory:")
    application = session.create_application("miranda")
    experiment = session.create_experiment(application, "bgl")
    trial = session.save_trial(Miranda().generate(RANKS), experiment, "big")
    session.set_trial(trial)
    yield session
    session.close()


def test_datapoint_count(benchmark, loaded, report):
    count = benchmark(loaded.count_data_points)
    assert count == RANKS * NUM_EVENTS
    full = 16384 * NUM_EVENTS
    report(
        f"E2  §5.3 '1.6M data points handled'        -> "
        f"{count:,} rows stored (full scale would be {full:,})"
    )


def test_node_slice_query(benchmark, loaded, report):
    """A one-node selective query — the 'don't load the whole trial' path."""

    def slice_query():
        loaded.set_node(RANKS // 2)
        rows = loaded.get_interval_event_data()
        loaded.set_node(None)
        return rows

    rows = benchmark(slice_query)
    assert len(rows) == NUM_EVENTS
    report(
        f"E2  node-slice selective query             -> "
        f"{benchmark.stats['mean'] * 1e3:6.2f} ms for {len(rows)} rows"
    )


def test_event_slice_query(benchmark, loaded):
    def event_query():
        loaded.set_event("fft_kernel_00")
        rows = loaded.get_interval_event_data()
        loaded.set_event(None)
        return rows

    rows = benchmark(event_query)
    assert len(rows) == RANKS


def test_summary_retrieval(benchmark, loaded, report):
    rows = benchmark(loaded.get_summary, "mean", metric_name="TIME")
    assert len(rows) == NUM_EVENTS
    report(
        f"E2  precomputed mean-summary retrieval     -> "
        f"{benchmark.stats['mean'] * 1e3:6.2f} ms for {len(rows)} events"
    )


def test_full_scan_aggregate(benchmark, loaded, report):
    value = benchmark(loaded.aggregate, "stddev", "exclusive")
    assert value is not None and value > 0
    report(
        f"E2  stddev over all {RANKS * NUM_EVENTS:,} rows        -> "
        f"{benchmark.stats['mean'] * 1e3:6.1f} ms"
    )


def test_summary_precompute_ablation(benchmark, loaded, report):
    """DESIGN.md ablation: precomputed summary tables vs computing the
    same aggregates from the location profiles at query time."""
    import time

    precomputed = loaded.get_summary("mean", metric_name="TIME")

    def on_demand():
        return loaded.connection.query(
            "SELECT e.name, avg(p.inclusive), avg(p.exclusive) "
            "FROM interval_location_profile p "
            "JOIN interval_event e ON p.interval_event = e.id "
            "GROUP BY e.name ORDER BY e.id"
        )

    t0 = time.perf_counter()
    computed = on_demand()
    on_demand_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    loaded.get_summary("mean", metric_name="TIME")
    precomputed_seconds = time.perf_counter() - t0

    # same values either way
    by_name = {row[0]: row for row in computed}
    for name, inclusive, _exc, _calls, _subrs in precomputed:
        assert by_name[name][1] == pytest.approx(inclusive, rel=1e-9)

    speedup = on_demand_seconds / precomputed_seconds
    benchmark.pedantic(
        lambda: loaded.get_summary("mean", metric_name="TIME"),
        rounds=3, iterations=1,
    )
    report(
        f"E2  summary precompute vs on-demand        -> {speedup:6.0f}x faster "
        f"({on_demand_seconds * 1e3:.0f} ms -> {precomputed_seconds * 1e3:.2f} ms)"
    )
    assert speedup > 10, "precomputed summaries must beat full aggregation"


def test_full_trial_reload(benchmark, loaded, report):
    source = benchmark.pedantic(loaded.load_datasource, rounds=1, iterations=1)
    assert source.num_threads == RANKS
    report(
        f"E2  full-trial materialisation             -> "
        f"{benchmark.stats['mean']:6.2f} s for {RANKS:,} threads"
    )


# --- MiniSQL access-path planner: range scans and top-N pushdown ------------
#
# The pure-Python engine stores the same trial; its ordered (BTREE)
# indexes on interval_location_profile (node, exclusive) must make
# selective range queries and ORDER BY ... LIMIT independent of trial
# size.  Each benchmark times the planner-served query against the same
# query rewritten so no index applies (``col + 0`` defeats the planner),
# and requires at least the 2x separation the ISSUE acceptance sets.

MINISQL_RANKS = scale(512, 2048)


@pytest.fixture(scope="module")
def mini_loaded():
    session = PerfDMFSession("minisql://:memory:")
    application = session.create_application("miranda")
    experiment = session.create_experiment(application, "bgl")
    trial = session.save_trial(
        Miranda().generate(MINISQL_RANKS), experiment, "big"
    )
    session.set_trial(trial)
    yield session
    session.close()


def _best_of(fn, rounds=3):
    import time

    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_minisql_range_scan(benchmark, mini_loaded, report):
    conn = mini_loaded.connection
    lo, hi = MINISQL_RANKS // 2 - 4, MINISQL_RANKS // 2
    indexed_sql = (
        "SELECT interval_event, node, exclusive "
        "FROM interval_location_profile WHERE node > ? AND node <= ?"
    )
    naive_sql = indexed_sql.replace("node >", "node + 0 >").replace(
        "node <=", "node + 0 <="
    )

    conn.reset_stats()
    rows = benchmark(conn.query, indexed_sql, (lo, hi))
    stats = conn.stats()
    assert len(rows) == 4 * NUM_EVENTS
    # the planner must serve this from the ordered node index: rows
    # scanned stays proportional to the slice, not the trial
    assert stats["index_range_scans"] >= 1
    assert stats["full_scans"] == 0
    scanned_per_query = stats["rows_scanned"] / max(stats["index_range_scans"], 1)
    assert scanned_per_query <= 2 * len(rows)

    naive_rows, naive_seconds = _best_of(lambda: conn.query(naive_sql, (lo, hi)))
    assert sorted(naive_rows) == sorted(rows)
    speedup = naive_seconds / benchmark.stats["mean"]
    report(
        f"E2  minisql node-range via ordered index   -> {speedup:6.1f}x vs "
        f"full scan ({MINISQL_RANKS * NUM_EVENTS:,} rows)"
    )
    assert speedup >= 2.0, "range scan must beat the unindexed plan 2x"


def test_minisql_top_n(benchmark, mini_loaded, report):
    conn = mini_loaded.connection
    indexed_sql = (
        "SELECT interval_event, node, exclusive "
        "FROM interval_location_profile ORDER BY exclusive DESC LIMIT 20"
    )
    naive_sql = indexed_sql.replace("ORDER BY exclusive", "ORDER BY exclusive + 0")

    conn.reset_stats()
    rows = benchmark(conn.query, indexed_sql)
    stats = conn.stats()
    assert len(rows) == 20
    assert stats["order_pushdowns"] >= 1
    # early LIMIT stop: only the result rows are read from the index
    assert stats["rows_scanned"] / max(stats["order_pushdowns"], 1) <= 40

    naive_rows, naive_seconds = _best_of(lambda: conn.query(naive_sql))
    assert [r[2] for r in naive_rows] == [r[2] for r in rows]
    speedup = naive_seconds / benchmark.stats["mean"]
    report(
        f"E2  minisql top-20 via ORDER BY pushdown   -> {speedup:6.1f}x vs "
        f"full sort ({MINISQL_RANKS * NUM_EVENTS:,} rows)"
    )
    assert speedup >= 2.0, "top-N pushdown must beat the full sort 2x"
