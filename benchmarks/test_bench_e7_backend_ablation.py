"""E7 — storage-engine ablation (paper §4's portability claim).

Claim reproduced: *"Because all supported databases are accessed through
a common interface, the tool programmer does not need to worry about
vendor-specific SQL syntax."*

The full PerfDMF workload (schema install, bulk trial store, selective
queries, aggregates) runs unmodified on both engines; results must be
identical, and the ablation quantifies the cost of the pure-Python
engine.  Also ablates the bulk-insert strategy (executemany vs
row-at-a-time) called out in DESIGN.md §4.
"""

from __future__ import annotations

import pytest

from repro.core.session import PerfDMFSession
from repro.tau.apps import Miranda

RANKS = 512


@pytest.fixture(scope="module")
def trial_data():
    return Miranda().generate(RANKS)


def _workload(url: str, trial_data):
    """The complete store-then-query workload, backend-agnostic."""
    session = PerfDMFSession(url)
    application = session.create_application("miranda")
    experiment = session.create_experiment(application, "ablation")
    trial = session.save_trial(trial_data, experiment, "t")
    session.set_trial(trial)
    count = session.count_data_points()
    mean = session.aggregate("mean", event_name="fft_kernel_00")
    stddev = session.aggregate("stddev", event_name="fft_kernel_00")
    session.set_node(3)
    slice_rows = len(session.get_interval_event_data())
    session.close()
    return count, round(mean, 6), round(stddev, 6), slice_rows


@pytest.mark.parametrize("backend", ["sqlite", "minisql"])
def test_full_workload_per_backend(benchmark, backend, trial_data, report):
    url = "sqlite://:memory:" if backend == "sqlite" else "minisql://:memory:"
    result = benchmark.pedantic(
        _workload, args=(url, trial_data), rounds=1, iterations=1
    )
    assert result[0] == RANKS * 101
    report(
        f"E7  §4 backend ablation [{backend:<7}]        -> "
        f"{benchmark.stats['mean']:6.2f}s for the full workload"
    )


def test_backends_produce_identical_results(benchmark, trial_data, report):
    def both():
        return (
            _workload("sqlite://:memory:", trial_data),
            _workload("minisql://:memory:", trial_data),
        )

    sqlite_result, minisql_result = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    assert sqlite_result == minisql_result
    report(
        "E7  identical results across engines       -> "
        f"count/mean/stddev/slice all equal: {sqlite_result[:3]}"
    )


@pytest.mark.parametrize("strategy", ["executemany", "row_at_a_time"])
def test_bulk_insert_strategy_ablation(benchmark, strategy, report):
    """DESIGN.md ablation: the batched insert path vs naive row loop."""
    from repro.db import connect

    rows = [(i, i % 101, float(i) * 0.5) for i in range(20_000)]

    def batched():
        conn = connect("minisql://:memory:")
        conn.execute("CREATE TABLE p (thread INTEGER, event INTEGER, v REAL)")
        conn.executemany("INSERT INTO p VALUES (?, ?, ?)", rows)
        conn.commit()
        n = conn.scalar("SELECT count(*) FROM p")
        conn.close()
        return n

    def row_loop():
        conn = connect("minisql://:memory:")
        conn.execute("CREATE TABLE p (thread INTEGER, event INTEGER, v REAL)")
        for row in rows:
            conn.execute("INSERT INTO p VALUES (?, ?, ?)", row)
        conn.commit()
        n = conn.scalar("SELECT count(*) FROM p")
        conn.close()
        return n

    fn = batched if strategy == "executemany" else row_loop
    count = benchmark.pedantic(fn, rounds=1, iterations=1)
    assert count == len(rows)
    report(
        f"E7  insert strategy [{strategy:<13}]      -> "
        f"{len(rows) / benchmark.stats['mean']:>10,.0f} rows/s"
    )


def test_index_pushdown_ablation(benchmark, report):
    """DESIGN.md ablation: indexed equality probe vs full scan."""
    from repro.db import connect

    conn = connect("minisql://:memory:")
    conn.execute("CREATE TABLE p (thread INTEGER, event INTEGER, v REAL)")
    conn.executemany(
        "INSERT INTO p VALUES (?, ?, ?)",
        [(i % 512, i % 101, float(i)) for i in range(51_712)],
    )
    conn.commit()

    scan_time = benchmark.pedantic(
        _time_query, args=(conn,), rounds=1, iterations=1
    )
    conn.execute("CREATE INDEX idx_thread ON p (thread)")
    probe_time = _time_query(conn)
    speedup = scan_time / probe_time
    report(
        f"E7  index probe vs full scan               -> {speedup:5.1f}x faster "
        f"({scan_time * 1e3:.1f} ms -> {probe_time * 1e3:.2f} ms)"
    )
    assert speedup > 3.0, "hash-index pushdown must beat the full scan"
    conn.close()


def _time_query(conn) -> float:
    import time

    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        rows = conn.query("SELECT v FROM p WHERE thread = 77")
        best = min(best, time.perf_counter() - t0)
        assert len(rows) == 101
    return best
