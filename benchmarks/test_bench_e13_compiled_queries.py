"""E13 — MiniSQL query compilation: compiled vs interpreted (PR 5).

The query compiler lowers bound expression trees into Python closures at
prepare time and runs scans in batches with projection pushdown.  This
benchmark replays E2's access patterns — selective node slice, the
dbsession full-scan aggregate mix, and top-N — plus a WHERE-heavy
filter sweep, on the *same* engine under ``PRAGMA compile(off)`` then
``PRAGMA compile(on)``.  Identical statement text, identical rows, only
the execution path differs.

Results land in ``BENCH_e13_compile.json`` at the repo root (per-pattern
off/on timings and speedup); CI's smoke job archives the file.

Ranks default to 1024 (``REPRO_FULL_SCALE=1`` -> 4096); CI overrides
with ``REPRO_E13_RANKS`` for a fast smoke run, which relaxes the
speedup assertion to a noise margin.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.core.session import PerfDMFSession
from repro.tau.apps import Miranda
from repro.tau.apps.miranda import NUM_EVENTS

from conftest import scale

RANKS = int(os.environ.get("REPRO_E13_RANKS", "0")) or scale(1024, 4096)

#: Below this size the engine is fast either way and the ratio is noise;
#: CI smoke only checks that compilation is not a slowdown.
STRICT_RANKS = 1024

E13_JSON = Path(__file__).resolve().parent.parent / "BENCH_e13_compile.json"

ROUNDS = 3


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def _patterns(trial_id):
    """E2's access patterns plus a WHERE-heavy filter sweep."""
    mid = RANKS // 2
    return {
        # E2 node slice, written so no index applies: the row-at-a-time
        # predicate is exactly what compilation accelerates.
        "selective": (
            "SELECT interval_event, node, exclusive "
            "FROM interval_location_profile "
            "WHERE node + 0 > ? AND node + 0 <= ?",
            (mid - 4, mid),
        ),
        # dbsession.aggregate's full-scan SQL aggregate mix (E2's
        # test_full_scan_aggregate shape): scan + hash join + hash agg.
        "aggregate": (
            "SELECT avg(p.exclusive), min(p.exclusive), max(p.exclusive) "
            "FROM interval_location_profile p "
            "JOIN interval_event e ON p.interval_event = e.id "
            "WHERE e.trial = ?",
            (trial_id,),
        ),
        # E2 top-N: served by the ordered-index ORDER BY pushdown, which
        # reads ~20 rows — compilation is expected to be a wash here and
        # the JSON records that honestly.
        "topn": (
            "SELECT interval_event, node, exclusive "
            "FROM interval_location_profile "
            "ORDER BY exclusive DESC LIMIT 20",
            (),
        ),
        # WHERE-heavy single-table sweep: arithmetic, modulo and CASE in
        # the predicate, evaluated for every stored row.
        "filter_sweep": (
            "SELECT count(*), avg(exclusive) "
            "FROM interval_location_profile "
            "WHERE exclusive * 2.0 + inclusive > 100.0 AND node % 2 = 0 "
            "AND (CASE WHEN num_calls > 0 THEN exclusive / num_calls "
            "ELSE 0 END) >= 0",
            (),
        ),
    }


@pytest.fixture(scope="module")
def measured():
    session = PerfDMFSession("minisql://:memory:")
    application = session.create_application("miranda")
    experiment = session.create_experiment(application, "bgl")
    trial = session.save_trial(Miranda().generate(RANKS), experiment, "e13")
    session.set_trial(trial)
    conn = session.connection

    results = {}
    for name, (sql, params) in _patterns(trial.id).items():
        conn.execute("PRAGMA compile(off)")
        rows_off, seconds_off = _best_of(lambda: conn.query(sql, params))
        conn.execute("PRAGMA compile(on)")
        rows_on, seconds_on = _best_of(lambda: conn.query(sql, params))
        results[name] = {
            "rows_off": rows_off,
            "rows_on": rows_on,
            "off_ms": seconds_off * 1e3,
            "on_ms": seconds_on * 1e3,
            "speedup": seconds_off / seconds_on,
        }
    stats = conn.stats()
    results["_stats"] = {
        key: stats[key]
        for key in ("plan_cache_hits", "plan_cache_misses", "compile_fallbacks")
    }
    yield results
    session.close()


@pytest.mark.parametrize(
    "pattern", ["selective", "aggregate", "topn", "filter_sweep"]
)
def test_rows_identical_both_modes(measured, pattern):
    """Compilation must be an invisible optimisation at bench scale."""
    entry = measured[pattern]
    assert entry["rows_off"] == entry["rows_on"]


def test_aggregate_speedup(measured, report):
    """ISSUE acceptance: >=2.5x on E2's full-scan SQL aggregate mix."""
    entry = measured["aggregate"]
    report(
        f"E13 compiled full-scan aggregate mix       -> "
        f"{entry['speedup']:6.2f}x ({entry['off_ms']:.0f} ms -> "
        f"{entry['on_ms']:.0f} ms, {RANKS * NUM_EVENTS:,} rows)"
    )
    if RANKS >= STRICT_RANKS:
        assert entry["speedup"] >= 2.5, (
            f"compiled aggregate must beat the interpreter 2.5x, "
            f"got {entry['speedup']:.2f}x"
        )
    else:
        assert entry["speedup"] >= 0.9, (
            f"compilation must not be a slowdown even at smoke scale, "
            f"got {entry['speedup']:.2f}x"
        )


def test_filter_sweep_speedup(measured, report):
    entry = measured["filter_sweep"]
    report(
        f"E13 compiled WHERE-heavy filter sweep      -> "
        f"{entry['speedup']:6.2f}x ({entry['off_ms']:.0f} ms -> "
        f"{entry['on_ms']:.0f} ms)"
    )
    floor = 2.0 if RANKS >= STRICT_RANKS else 0.9
    assert entry["speedup"] >= floor


def test_selective_speedup(measured, report):
    entry = measured["selective"]
    report(
        f"E13 compiled selective node slice          -> "
        f"{entry['speedup']:6.2f}x ({entry['off_ms']:.0f} ms -> "
        f"{entry['on_ms']:.0f} ms)"
    )
    floor = 2.0 if RANKS >= STRICT_RANKS else 0.9
    assert entry["speedup"] >= floor


def test_plan_cache_exercised(measured):
    stats = measured["_stats"]
    assert stats["plan_cache_misses"] >= 4  # one compile per pattern
    assert stats["plan_cache_hits"] >= 4 * (ROUNDS - 1)  # reruns hit


def test_write_bench_json(measured, report):
    payload = {
        "ranks": RANKS,
        "rows": RANKS * NUM_EVENTS,
        "rounds": ROUNDS,
        "patterns": {
            name: {
                "off_ms": round(entry["off_ms"], 3),
                "on_ms": round(entry["on_ms"], 3),
                "speedup": round(entry["speedup"], 3),
            }
            for name, entry in measured.items()
            if not name.startswith("_")
        },
        "compile_stats": measured["_stats"],
    }
    from repro.obs.bench import write_bench_json

    write_bench_json(E13_JSON, "e13_compile", payload)
    topn = measured["topn"]
    report(
        f"E13 top-20 (index pushdown, compile moot)  -> "
        f"{topn['speedup']:6.2f}x ({topn['off_ms']:.2f} ms -> "
        f"{topn['on_ms']:.2f} ms)"
    )
