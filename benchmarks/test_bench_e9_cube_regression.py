"""E9 — CUBE trial algebra + regression tracking (paper §7 future work).

Reproduced capabilities: the CUBE-algebra integration (*"implement
high-level comparative queries and analysis operations"*) and history
tracking (*"efficiently tracking the performance history of a single
application code"*).

Asserted: diff/merge/mean close over trials and localise an injected
slowdown; the regression detector flags exactly the bad version.
"""

from __future__ import annotations

import pytest

from repro.core.toolkit import (
    detect_regressions, diff, mean, merge, top_events,
)
from repro.tau.apps import EVH1

RANKS = 8


def _version(version: int, slow: bool = False):
    source = EVH1(problem_size=0.3, timesteps=2, seed=500 + version).run(RANKS)
    if slow:
        event = source.get_interval_event("riemann")
        for thread in source.all_threads():
            fp = thread.function_profiles[event.index]
            fp.set_exclusive(0, fp.get_exclusive(0) * 1.8)
            fp.set_inclusive(0, fp.get_inclusive(0) * 1.8)
        source.generate_statistics()
    return source


@pytest.fixture(scope="module")
def history():
    trials = [(f"v{i}", _version(i)) for i in range(1, 5)]
    trials.append(("v5", _version(5, slow=True)))
    return trials


def test_cube_diff(benchmark, history, report):
    good = history[3][1]
    bad = history[4][1]
    delta = benchmark(diff, bad, good)
    ranked = top_events(delta, n=1)
    assert ranked[0].event == "riemann", "diff must localise the slowdown"
    report(
        f"E9  §7 CUBE diff localises regression      -> top delta event: "
        f"{ranked[0].event} (+{ranked[0].mean:,.0f} usec mean), "
        f"{benchmark.stats['mean'] * 1e3:.1f} ms"
    )


def test_cube_merge_mean(benchmark, history):
    trials = [t for _label, t in history[:3]]
    averaged = benchmark(mean, trials)
    event = averaged.get_interval_event("riemann")
    values = [
        t.function_profiles[event.index].get_exclusive(0)
        for t in averaged.all_threads()
    ]
    per_trial = []
    for trial in trials:
        e = trial.get_interval_event("riemann")
        per_trial.append(
            sum(
                t.function_profiles[e.index].get_exclusive(0)
                for t in trial.all_threads()
            )
        )
    assert sum(values) == pytest.approx(sum(per_trial) / 3)


def test_merge_then_diff_closure(benchmark, history):
    a = history[0][1]
    b = history[1][1]
    recovered = benchmark.pedantic(
        lambda: diff(merge(a, b), b), rounds=1, iterations=1
    )
    event = a.get_interval_event("riemann")
    rec_event = recovered.get_interval_event("riemann")
    for thread in a.all_threads():
        src = thread.function_profiles[event.index].get_exclusive(0)
        dst = recovered.get_thread(*thread.triple).function_profiles[
            rec_event.index
        ].get_exclusive(0)
        assert dst == pytest.approx(src, rel=1e-9)


def test_regression_detection(benchmark, history, report):
    regressions = benchmark(detect_regressions, history, 0, 3)
    flagged = {(r.event, r.trial_label) for r in regressions}
    assert ("riemann", "v5") in flagged, "the injected slowdown must be found"
    false_positives = [r for r in regressions if r.trial_label != "v5"]
    assert not false_positives, f"clean versions flagged: {false_positives}"
    report(
        "E9  §7 regression tracking                 -> injected v5 slowdown "
        f"flagged ({regressions[0].factor:.1f}x), 0 false positives"
    )
