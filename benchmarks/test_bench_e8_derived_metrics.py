"""E8 — derived metrics and SQL aggregate operations (paper §4/§5.2).

Reproduced capabilities: *"The Trial object also has support for adding
new, possibly derived, metrics to an existing trial in the database"*
and *"requesting standard SQL aggregate operations such as minimum,
maximum, mean, standard deviation and others."*

Asserted: the stored derived metric (FLOPs/µs from PAPI_FP_OPS and
TIME) matches a numpy ground-truth computation row for row, and every
SQL aggregate matches numpy to float precision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.session import PerfDMFSession
from repro.core.toolkit.stats import event_values
from repro.tau.apps import SPPM

RANKS = 64


@pytest.fixture(scope="module")
def stored():
    session = PerfDMFSession("sqlite://:memory:")
    application = session.create_application("sppm")
    experiment = session.create_experiment(application, "derived")
    source = SPPM(problem_size=0.02, timesteps=1).run(RANKS)
    trial = session.save_trial(source, experiment, "t")
    session.set_trial(trial)
    yield session, source, trial
    session.close()


def test_derived_metric_creation(benchmark, stored, report):
    session, source, trial = stored

    def create():
        name = f"FLOP_RATE_{benchmark.stats.stats.rounds if benchmark.stats else 0}"
        # unique per round: pytest-benchmark reruns the function
        import itertools
        for i in itertools.count():
            candidate = f"FLOP_RATE_{i}"
            if candidate not in session.get_metrics(trial):
                return session.save_derived_metric(
                    candidate, "PAPI_FP_OPS / TIME", trial
                )

    metric_id = benchmark.pedantic(create, rounds=1, iterations=1)
    assert metric_id is not None
    report(
        f"E8  derived-metric creation ({RANKS * 12} rows)     -> "
        f"{benchmark.stats['mean'] * 1e3:6.1f} ms"
    )


def test_derived_values_match_ground_truth(benchmark, stored, report):
    session, source, trial = stored
    if "GROUND" not in session.get_metrics(trial):
        session.save_derived_metric("GROUND", "PAPI_FP_OPS / TIME", trial)
    back = benchmark.pedantic(
        session.load_datasource, args=(trial,), rounds=1, iterations=1
    )
    report(
        "E8  derived metric vs numpy ground truth   -> "
        "row-for-row equal (FLOPs/usec from PAPI_FP_OPS, TIME)"
    )
    fp = back.get_metric("PAPI_FP_OPS")
    time = back.get_metric("TIME")
    derived = back.get_metric("GROUND")
    event = back.get_interval_event("hydro_kernel")
    for thread in back.all_threads():
        profile = thread.function_profiles[event.index]
        expected = (
            profile.get_inclusive(fp.index) / profile.get_inclusive(time.index)
            if profile.get_inclusive(time.index)
            else 0.0
        )
        assert profile.get_inclusive(derived.index) == pytest.approx(expected)


@pytest.mark.parametrize("operation", ["min", "max", "mean", "stddev", "sum"])
def test_sql_aggregates_match_numpy(benchmark, stored, operation, report):
    session, source, trial = stored
    values = event_values(source, "hydro_kernel", metric=0, inclusive=False)
    expectations = {
        "min": values.min(),
        "max": values.max(),
        "mean": values.mean(),
        "stddev": values.std(ddof=1),
        "sum": values.sum(),
    }
    got = benchmark(
        session.aggregate, operation,
        event_name="hydro_kernel", metric_name="TIME",
    )
    assert got == pytest.approx(expectations[operation], rel=1e-9)
    if operation == "stddev":
        report(
            "E8  §5.2 SQL aggregates vs numpy           -> "
            "min/max/mean/stddev/sum all equal to 1e-9"
        )
