"""E12 — WAL durability overhead on the E1 bulk-load workload.

The crash-safety work (write-ahead log + checkpoint/recovery) must not
undo the paper's headline scaling result: at ``PRAGMA synchronous(off)``
— flush-to-OS at commit, the policy matching "survives kill -9, not
power loss" — a file-backed archive must ingest the E1 Miranda workload
within 15% of the pure in-memory engine.  Numbers land in
``BENCH_e12_wal.json`` for CI to archive, and the run double-checks that
the archive it just wrote actually recovers.
"""

from __future__ import annotations

import gc
import os
import time
from pathlib import Path

from repro.core.session import PerfDMFSession
from repro.db import minisql
from repro.tau.apps import Miranda
from repro.tau.apps.miranda import NUM_EVENTS

from conftest import scale

RANKS = int(os.environ.get("REPRO_E12_RANKS") or scale(4096, 16384))

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_e12_wal.json"

MAX_OVERHEAD = 0.15


def _ingest(url: str, trial_data, synchronous: str | None = None):
    session = PerfDMFSession(url)
    if synchronous is not None:
        session.connection.execute(f"PRAGMA synchronous({synchronous})")
    application = session.create_application("miranda")
    experiment = session.create_experiment(application, "bgl")
    gc.collect()
    t0 = time.perf_counter()
    trial = session.save_trial(trial_data, experiment, "bench")
    seconds = time.perf_counter() - t0
    count = session.count_data_points(trial)
    stats = session.connection.stats()
    session.close()
    return seconds, count, stats


def test_wal_overhead_under_15_percent(benchmark, tmp_path, report):
    trial_data = Miranda().generate(RANKS)
    expected_rows = RANKS * NUM_EVENTS

    def measure() -> dict:
        # Three interleaved rounds per mode, best-of each: the first big
        # ingest in a process pays one-off allocator growth, and
        # interleaving keeps slow system moments from biasing one side.
        memory_seconds = wal_seconds = wal_stats = count = keep = None
        for attempt in range(3):
            seconds, count, _stats = _ingest("minisql://:memory:", trial_data)
            memory_seconds = min(memory_seconds or seconds, seconds)
            minisql.reset_shared_databases()

            archive = tmp_path / f"run{attempt}" / "archive.mdb"
            archive.parent.mkdir()
            seconds, wal_count, stats = _ingest(
                f"minisql://{archive}", trial_data, synchronous="off"
            )
            assert wal_count == count
            if wal_seconds is None or seconds < wal_seconds:
                wal_seconds, wal_stats = seconds, stats
                keep = archive
            minisql.reset_shared_databases()

        # The durable archive must actually be durable: reopen the best
        # run's file (recovery path) and find every row.
        verify = PerfDMFSession(f"minisql://{keep}")
        stored = verify.connection.scalar(
            "SELECT count(*) FROM interval_location_profile"
        )
        assert stored == expected_rows
        verify.close()
        minisql.reset_shared_databases()

        return {
            "ranks": RANKS,
            "rows": count,
            "synchronous": "off",
            "memory_seconds": round(memory_seconds, 3),
            "wal_seconds": round(wal_seconds, 3),
            "overhead": round(wal_seconds / memory_seconds - 1.0, 4),
            "wal_bytes": wal_stats.get("wal_bytes", 0),
            "wal_records": wal_stats.get("wal_records", 0),
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert result["rows"] == expected_rows

    from repro.obs.bench import write_bench_json

    write_bench_json(BENCH_JSON, "e12_wal_overhead", result)
    report(
        f"E12 WAL overhead (synchronous=off)          -> "
        f"{result['ranks']:>6} ranks: {result['overhead']:+.1%} "
        f"({result['memory_seconds']:.2f}s -> {result['wal_seconds']:.2f}s, "
        f"{result['wal_bytes'] / 1e6:.1f} MB logged)"
    )
    assert result["overhead"] < MAX_OVERHEAD, (
        f"WAL at synchronous=off costs {result['overhead']:.1%} over "
        f"in-memory ingest; the durability budget is {MAX_OVERHEAD:.0%}"
    )
