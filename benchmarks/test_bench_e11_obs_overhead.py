"""E11 — observability overhead on the E2 query workload.

The tracing/metrics instrumentation is always compiled in (ISSUE 3's
"always compiled, cheap when off"), so its disabled-path cost must be
guarded: this benchmark runs an E2-style MiniSQL query mix twice — once
as shipped (tracer disabled, hooks present) and once with the
observability hooks monkeypatched out entirely — and asserts the
disabled path costs < 5% extra.

It also records the *enabled*-path ratio for the report (informational,
not asserted: span capture is allowed to cost real time) and leaves an
example Chrome trace at the repo root for CI to archive.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.session import PerfDMFSession
from repro.db.api import DBConnection
from repro.db.minisql.engine import Cursor, InterfaceError, ProgrammingError
from repro.obs.trace import tracer
from repro.tau.apps import Miranda
from repro.tau.apps.miranda import NUM_EVENTS

from conftest import scale

RANKS = scale(256, 2048)
ROUNDS = 9
QUERIES_PER_ROUND = 60

#: Example trace for the CI artifact step (satellite: artifacts upload).
TRACE_EXAMPLE = Path(__file__).resolve().parent.parent / "BENCH_e11_trace_example.json"


@pytest.fixture(scope="module")
def mini_loaded():
    session = PerfDMFSession("minisql://:memory:")
    application = session.create_application("miranda")
    experiment = session.create_experiment(application, "bgl")
    trial = session.save_trial(Miranda().generate(RANKS), experiment, "big")
    session.set_trial(trial)
    yield session
    session.close()


def _workload(conn: DBConnection) -> int:
    """An E2-shaped query mix: selective range, top-N, point, aggregate."""
    total = 0
    lo, hi = RANKS // 2 - 2, RANKS // 2
    for _ in range(QUERIES_PER_ROUND // 4):
        total += len(conn.query(
            "SELECT interval_event, node, exclusive "
            "FROM interval_location_profile WHERE node > ? AND node <= ?",
            (lo, hi),
        ))
        total += len(conn.query(
            "SELECT interval_event, node, exclusive "
            "FROM interval_location_profile ORDER BY exclusive DESC LIMIT 20"
        ))
        total += len(conn.query(
            "SELECT id, name FROM interval_event WHERE id = ?", (1,)
        ))
        total += len(conn.query(
            "SELECT count(*) FROM interval_location_profile"
        ))
    return total


def _bare_db_execute(self, sql, params=()):
    """DBConnection.execute with the tracer hook stripped."""
    with self._lock:
        return self._raw.execute(sql, tuple(params))


def _bare_cursor_execute(self, sql, params=()):
    """minisql Cursor.execute with the observation branch stripped."""
    self._check_open()
    if isinstance(params, (str, bytes)):
        raise InterfaceError("parameters must be a sequence, not a string")
    statements = self.connection._parse(sql)
    if len(statements) != 1:
        raise ProgrammingError(
            "execute() accepts exactly one statement; use executescript()"
        )
    result = self.connection._run(statements[0], tuple(params), self)
    self._install(result)
    return self


def _best_of(fn, rounds):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_disabled_overhead_under_5_percent(
    mini_loaded, monkeypatch, report, bench_json
):
    conn = mini_loaded.connection
    assert not tracer.enabled

    # Warm both code paths (statement cache, table data) before timing.
    expected = _workload(conn)

    # Interleave the two variants round by round so clock drift and cache
    # state hit both equally; compare best-of times.
    shipped_best = float("inf")
    stripped_best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        rows = _workload(conn)
        shipped_best = min(shipped_best, time.perf_counter() - t0)
        assert rows == expected

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(DBConnection, "execute", _bare_db_execute)
            mp.setattr(Cursor, "execute", _bare_cursor_execute)
            t0 = time.perf_counter()
            rows = _workload(conn)
            stripped_best = min(stripped_best, time.perf_counter() - t0)
        assert rows == expected

    overhead = shipped_best / stripped_best - 1.0
    report(
        f"E11 disabled-tracing overhead on E2 queries -> "
        f"{overhead * 100:+5.2f}% "
        f"({stripped_best * 1e3:.1f} ms bare, {shipped_best * 1e3:.1f} ms shipped)"
    )
    bench_json("e11_obs_overhead", {
        "ranks": RANKS,
        "queries_per_round": QUERIES_PER_ROUND,
        "bare_seconds": stripped_best,
        "shipped_seconds": shipped_best,
        "disabled_overhead_fraction": overhead,
    })
    assert overhead < 0.05, (
        f"disabled observability path costs {overhead * 100:.2f}% "
        f"(budget: 5%)"
    )


def test_telemetry_endpoint_overhead(mini_loaded, report, bench_json):
    """A live /metrics endpoint being scraped must not measurably slow
    the E2 query mix: the listener sits on its own daemon thread and a
    scrape only snapshots the registry."""
    import threading
    import urllib.request

    from repro.obs.telemetry import TelemetryServer

    conn = mini_loaded.connection
    _, base = _best_of(lambda: _workload(conn), 5)

    server = TelemetryServer(host="127.0.0.1", port=0)
    host, port = server.start()
    stop = threading.Event()
    scrapes = [0]

    def scraper() -> None:
        # 100 ms cadence is already ~150x a production Prometheus
        # scrape interval; anything hotter just benchmarks the GIL.
        url = f"http://{host}:{port}/metrics"
        while not stop.is_set():
            with urllib.request.urlopen(url, timeout=5.0) as resp:
                resp.read()
            scrapes[0] += 1
            stop.wait(0.1)

    thread = threading.Thread(target=scraper, daemon=True)
    thread.start()
    try:
        _, scraped = _best_of(lambda: _workload(conn), 5)
    finally:
        stop.set()
        thread.join(timeout=10.0)
        server.stop()

    overhead = scraped / base - 1.0
    report(
        f"E11 live /metrics scrape overhead on E2     -> "
        f"{overhead * 100:+5.2f}% ({scrapes[0]} scrapes during run)"
    )
    bench_json("e11_telemetry_overhead", {
        "base_seconds": base,
        "scraped_seconds": scraped,
        "scrapes": scrapes[0],
        "overhead_fraction": overhead,
    })
    assert scrapes[0] > 0, "the scraper never reached the endpoint"
    # Generous bound: best-of-5 absorbs scheduler noise, and the scrape
    # path must stay off the query thread's critical path entirely.
    assert overhead < 0.25, (
        f"a scraped telemetry endpoint costs {overhead * 100:.1f}% on the "
        f"query mix; it must be off the critical path"
    )


def test_enabled_trace_produces_example_artifact(mini_loaded, report):
    """Enabled-path sanity: the same workload under tracing yields a
    loadable Chrome trace (archived by CI) and a bounded slowdown."""
    conn = mini_loaded.connection
    _, base = _best_of(lambda: _workload(conn), 3)

    tracer.enable()
    tracer.clear()
    try:
        _, traced_time = _best_of(lambda: _workload(conn), 3)
        count = tracer.export_chrome(TRACE_EXAMPLE)
    finally:
        tracer.disable()
        tracer.clear()

    doc = json.loads(TRACE_EXAMPLE.read_text())
    assert count == len(doc["traceEvents"]) > 0
    names = {e["name"] for e in doc["traceEvents"]}
    assert "db.execute" in names
    assert "minisql.execute" in names
    ratio = traced_time / base
    report(
        f"E11 enabled tracing ({count} spans captured)  -> "
        f"{ratio:5.2f}x the untraced workload"
    )
