"""E1 — bulk-load scalability (paper §3.1).

Claim reproduced: *"Our tests with large profile data (101 events on 16K
processors) showed the framework adequately handled the mass of data."*

We load Miranda-analog trials (101 events, 1 metric) at growing thread
counts and measure parse+store wall time and stored row counts.  Shape
expectation: time grows ~linearly in data points, and the 16K
configuration (REPRO_FULL_SCALE=1) completes without error on a laptop.
"""

from __future__ import annotations

import time

import pytest

from repro.core.session import PerfDMFSession
from repro.tau.apps import Miranda
from repro.tau.apps.miranda import NUM_EVENTS

from conftest import FULL_SCALE, scale

SWEEP = [256, 1024, scale(4096, 16384)]


@pytest.fixture(scope="module")
def generated():
    app = Miranda()
    return {ranks: app.generate(ranks) for ranks in SWEEP}


def _load(trial_data):
    session = PerfDMFSession("sqlite://:memory:")
    application = session.create_application("miranda")
    experiment = session.create_experiment(application, "bgl")
    trial = session.save_trial(trial_data, experiment, "bench")
    count = session.count_data_points(trial)
    session.close()
    return count


@pytest.mark.parametrize("ranks", SWEEP)
def test_bulk_load(benchmark, generated, ranks, report):
    trial_data = generated[ranks]
    assert trial_data.num_events == NUM_EVENTS == 101

    count = benchmark.pedantic(_load, args=(trial_data,), rounds=1, iterations=1)
    assert count == ranks * NUM_EVENTS

    seconds = benchmark.stats["mean"]
    rate = count / seconds
    report(
        f"E1  §3.1 '101 events on 16K procs handled'  -> "
        f"{ranks:>6} threads: {count:>9,} rows in {seconds:6.2f}s "
        f"({rate:,.0f} rows/s)"
    )


def test_linear_scaling_shape(benchmark, generated, report):
    """Store time per data point must stay ~constant across the sweep."""

    def measure() -> float:
        rates = []
        for ranks in SWEEP[:2]:
            trial_data = generated[ranks]
            t0 = time.perf_counter()
            count = _load(trial_data)
            seconds = time.perf_counter() - t0
            rates.append(count / seconds)
        return max(rates) / min(rates)

    ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(f"E1  load-rate variation across sweep: {ratio:.2f}x (expect < 3x)")
    assert ratio < 3.0, "load cost must scale ~linearly in data points"
