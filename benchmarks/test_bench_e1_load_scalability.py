"""E1 — bulk-load scalability (paper §3.1).

Claim reproduced: *"Our tests with large profile data (101 events on 16K
processors) showed the framework adequately handled the mass of data."*

We load Miranda-analog trials (101 events, 1 metric) at growing thread
counts and measure parse+store wall time and stored row counts.  Shape
expectation: time grows ~linearly in data points, and the 16K
configuration (REPRO_FULL_SCALE=1) completes without error on a laptop.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from repro.core.session import PerfDMFSession
from repro.tau.apps import Miranda
from repro.tau.apps.miranda import NUM_EVENTS

from conftest import FULL_SCALE, scale

SWEEP = [256, 1024, scale(4096, 16384)]

#: Rank tier for the bulk-load vs. legacy comparison — the acceptance
#: tier by default; CI's smoke job shrinks it via the env var.
BULK_RANKS = int(os.environ.get("REPRO_E1_BULK_RANKS") or scale(4096, 16384))


@pytest.fixture(scope="module")
def generated():
    app = Miranda()
    return {ranks: app.generate(ranks) for ranks in SWEEP}


def _load(trial_data):
    session = PerfDMFSession("sqlite://:memory:")
    application = session.create_application("miranda")
    experiment = session.create_experiment(application, "bgl")
    trial = session.save_trial(trial_data, experiment, "bench")
    count = session.count_data_points(trial)
    session.close()
    return count


@pytest.mark.parametrize("ranks", SWEEP)
def test_bulk_load(benchmark, generated, ranks, report):
    trial_data = generated[ranks]
    assert trial_data.num_events == NUM_EVENTS == 101

    count = benchmark.pedantic(_load, args=(trial_data,), rounds=1, iterations=1)
    assert count == ranks * NUM_EVENTS

    seconds = benchmark.stats["mean"]
    rate = count / seconds
    report(
        f"E1  §3.1 '101 events on 16K procs handled'  -> "
        f"{ranks:>6} threads: {count:>9,} rows in {seconds:6.2f}s "
        f"({rate:,.0f} rows/s)"
    )


def test_bulk_mode_speedup(benchmark, generated, report, bench_json):
    """MiniSQL bulk-load mode vs. the per-row legacy ingest path.

    Same data, same engine; the only difference is deferred secondary
    index maintenance + batched append (``bulk=True``, the default)
    against the pre-bulk per-row path (``bulk=False``).  Numbers land in
    ``BENCH_e1_ingest.json`` for CI to archive.
    """
    trial_data = generated.get(BULK_RANKS) or Miranda().generate(BULK_RANKS)

    def ingest(bulk: bool) -> tuple[float, int]:
        session = PerfDMFSession("minisql://:memory:")
        application = session.create_application("miranda")
        experiment = session.create_experiment(application, "bgl")
        gc.collect()
        t0 = time.perf_counter()
        trial = session.save_trial(trial_data, experiment, "bench", bulk=bulk)
        seconds = time.perf_counter() - t0
        count = session.count_data_points(trial)
        session.close()
        return seconds, count

    def measure() -> dict:
        # Two rounds per mode, best-of: the first large ingest in a
        # process pays one-off allocator growth that the steady state
        # (and any isolated run) does not.
        legacy_seconds, count = min(ingest(bulk=False) for _ in range(2))
        bulk_seconds, bulk_count = min(ingest(bulk=True) for _ in range(2))
        assert count == bulk_count == BULK_RANKS * NUM_EVENTS
        return {
            "ranks": BULK_RANKS,
            "rows": count,
            "legacy_seconds": round(legacy_seconds, 3),
            "bulk_seconds": round(bulk_seconds, 3),
            "legacy_rows_per_second": round(count / legacy_seconds),
            "bulk_rows_per_second": round(count / bulk_seconds),
            "speedup": round(legacy_seconds / bulk_seconds, 2),
        }

    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    bench_json("e1_bulk_load", result)
    report(
        f"E1  bulk-load mode vs per-row ingest        -> "
        f"{result['ranks']:>6} ranks: {result['speedup']:.2f}x "
        f"({result['legacy_rows_per_second']:,} -> "
        f"{result['bulk_rows_per_second']:,} rows/s)"
    )
    if BULK_RANKS >= 4096:
        assert result["speedup"] >= 3.0, (
            "bulk-load mode must be at least 3x faster than the per-row "
            f"path at the {BULK_RANKS}-rank tier, got {result['speedup']}x"
        )
    else:  # smoke scale: direction must still be right
        assert result["speedup"] > 1.0


def test_linear_scaling_shape(benchmark, generated, report):
    """Store time per data point must stay ~constant across the sweep."""

    def measure() -> float:
        rates = []
        for ranks in SWEEP[:2]:
            trial_data = generated[ranks]
            t0 = time.perf_counter()
            count = _load(trial_data)
            seconds = time.perf_counter() - t0
            rates.append(count / seconds)
        return max(rates) / min(rates)

    ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(f"E1  load-rate variation across sweep: {ratio:.2f}x (expect < 3x)")
    assert ratio < 3.0, "load cost must scale ~linearly in data points"
