"""E17 — async serving capacity: event-loop core vs thread-per-connection.

ISSUE 10 replaces the thread-per-client accept loop with a selectors
reactor.  This benchmark measures the claim that justified the rebuild:
**connections must stop costing threads**.  Each serving core runs in
its own child process holding one Miranda trial; the parent

* opens ``CLIENTS`` connections (each proving itself live with one
  ``ping``) and reads the child's ``/proc/<pid>/status`` before and
  after — VmRSS gives memory per held connection, ``Threads`` gives the
  thread bill;
* drives a mixed phase: ``ACTIVE_READERS`` clients hammer
  ``imbalance_chart`` while the idle herd stays attached — the loop
  must keep serving with hundreds of quiet sockets in its selector;
* closes the herd and measures plain read QPS at ``QPS_CLIENTS``
  (32) active clients — the async core must not trade idle capacity
  for active throughput.

Headline metrics: ``capacity_ratio`` — connections the async core
sustains per MB relative to threaded (threaded per-connection RSS /
async per-connection RSS; the acceptance bar is >= 3x at 500 clients)
— and ``qps32_ratio`` (async / threaded read QPS at 32 clients; bar:
no worse than 0.9x).  Strict asserts are gated on a real box (>= 2
cores, >= 500 clients, /proc available); small boxes take a visible
no-pathology floor instead.

Results land in ``BENCH_e17_async.json``; CI runs a reduced-client
smoke (``REPRO_E17_CLIENTS=100``) and the bench-regress gate tracks
the numbers in ``bench_history.mdb``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.explorer.client import PerfExplorerClient
from repro.explorer.protocol import MessageStream

from conftest import scale

CLIENTS = int(os.environ.get("REPRO_E17_CLIENTS", "0")) or scale(500, 1000)
DURATION = float(os.environ.get("REPRO_E17_SECONDS", "0")) or scale(3.0, 8.0)
RANKS = int(os.environ.get("REPRO_E17_RANKS", "0")) or scale(64, 256)
ACTIVE_READERS = 8
QPS_CLIENTS = 32

#: Below these the idle herd is too small for per-connection RSS to
#: stand out of allocator noise, and one core serializes both engines
#: onto the same GIL-bound floor.
STRICT_CLIENTS = 500
STRICT_SECONDS = 3.0
STRICT_CORES = 2

CORES = os.cpu_count() or 1

E17_JSON = Path(__file__).resolve().parent.parent / "BENCH_e17_async.json"
SRC = str(Path(__file__).resolve().parent.parent / "src")

# One serving core (argv[1]) holding one Miranda trial (argv[2] = db
# path, argv[3] = ranks).  Raises its fd limit first: the threaded core
# needs a descriptor per connection thread, the async core one per
# selector entry.
_SERVER_CHILD = """
import resource, sys, time
from repro.explorer.server import (
    AnalysisServer, SocketServer, ThreadedSocketServer,
)
from repro.tau.apps import Miranda

soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
limit = hard if hard != resource.RLIM_INFINITY else 65536
resource.setrlimit(resource.RLIMIT_NOFILE, (min(65536, limit), hard))

core = {"async": SocketServer, "threaded": ThreadedSocketServer}[sys.argv[1]]
server = AnalysisServer(f"minisql://{sys.argv[2]}")
sock = core(server, port=0)
host, port = sock.start()
session = server.session
app = session.create_application("e17-app")
exp = session.create_experiment(app, "e17-exp")
trial = session.save_trial(Miranda().generate(int(sys.argv[3])), exp, "e17")
session.connection.commit()
print(f"ADDR {host} {port} {trial.id}", flush=True)
while True:
    time.sleep(60)
"""


def _proc_status(pid: int) -> dict:
    """VmRSS (kB) and Threads from /proc — the child's real footprint."""
    out = {}
    with open(f"/proc/{pid}/status") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                out["rss_kb"] = float(line.split()[1])
            elif line.startswith("Threads:"):
                out["threads"] = int(line.split()[1])
    return out


def _spawn(core: str, db: str) -> tuple[subprocess.Popen, str, int, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", _SERVER_CHILD, core, db, str(RANKS)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("ADDR "):
        err = proc.stderr.read() if proc.poll() is not None else ""
        proc.kill()
        raise RuntimeError(f"{core} server failed to start: {line!r}\n{err}")
    _, host, port, trial = line.split()
    return proc, host, int(port), int(trial)


def _open_herd(host: str, port: int, count: int) -> list[MessageStream]:
    """``count`` live-but-idle connections, each proven with one ping."""
    import socket as _socket

    herd = []
    for i in range(count):
        stream = MessageStream(
            _socket.create_connection((host, port), timeout=30)
        )
        stream.send({"id": i, "method": "ping", "params": {}})
        reply = stream.receive(timeout=30)
        assert reply["result"] == "pong", f"connection {i} never served"
        herd.append(stream)
    return herd


def _drive_readers(host: str, port: int, trial: int, readers: int,
                   duration: float) -> dict:
    stop = threading.Event()
    latencies: list[list[float]] = [[] for _ in range(readers)]
    errors: list[str] = []

    def reader(slot: int) -> None:
        try:
            with PerfExplorerClient(host, port, timeout=60) as client:
                while not stop.is_set():
                    t0 = time.perf_counter()
                    client.imbalance_chart(trial, top=5)
                    latencies[slot].append(time.perf_counter() - t0)
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(f"reader[{slot}]: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=reader, args=(slot,))
        for slot in range(readers)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    time.sleep(duration)
    stop.set()
    for t in threads:
        t.join(timeout=120)
    elapsed = time.perf_counter() - started
    flat = [s for per in latencies for s in per]
    assert errors == [], f"reader errors: {errors}"
    assert flat, "no reads completed"
    ordered = sorted(flat)
    return {
        "reads": len(flat),
        "read_qps": len(flat) / elapsed,
        "p99_ms": ordered[min(len(ordered) - 1,
                              int(0.99 * (len(ordered) - 1) + 0.5))] * 1e3,
    }


def _measure_core(base: Path, core: str) -> dict:
    proc, host, port, trial = _spawn(core, str(base / f"{core}.mdb"))
    herd: list[MessageStream] = []
    try:
        before = _proc_status(proc.pid)
        herd = _open_herd(host, port, CLIENTS)
        after = _proc_status(proc.pid)
        per_conn_kb = max(0.0, after["rss_kb"] - before["rss_kb"]) / CLIENTS
        mixed = _drive_readers(host, port, trial, ACTIVE_READERS, DURATION)
        for stream in herd:
            stream.close()
        herd = []
        qps32 = _drive_readers(host, port, trial, QPS_CLIENTS, DURATION)
        return {
            "clients": CLIENTS,
            "rss_before_mb": round(before["rss_kb"] / 1024.0, 2),
            "rss_idle_mb": round(after["rss_kb"] / 1024.0, 2),
            "per_conn_kb": round(per_conn_kb, 3),
            "threads_before": before["threads"],
            "threads_idle": after["threads"],
            "thread_growth": after["threads"] - before["threads"],
            "mixed_read_qps": round(mixed["read_qps"], 2),
            "mixed_p99_ms": round(mixed["p99_ms"], 3),
            "qps32_read_qps": round(qps32["read_qps"], 2),
            "qps32_p99_ms": round(qps32["p99_ms"], 3),
        }
    finally:
        for stream in herd:
            try:
                stream.close()
            except OSError:
                pass
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


@pytest.fixture(scope="module")
def measured(tmp_path_factory):
    if not os.path.exists(f"/proc/{os.getpid()}/status"):
        pytest.skip("E17 needs /proc/<pid>/status for RSS accounting")
    base = tmp_path_factory.mktemp("e17")
    results = {
        core: _measure_core(base, core) for core in ("threaded", "async")
    }
    threaded, saved = results["threaded"], results["async"]
    yield {
        "threaded": threaded,
        "async": saved,
        # Connections per MB, async relative to threaded: how many more
        # clients one box holds at equal RSS.  The denominator is
        # floored at 10 bytes/connection so a delta lost in allocator
        # noise yields a large finite ratio, not Infinity in the JSON.
        "capacity_ratio": (
            threaded["per_conn_kb"] / max(saved["per_conn_kb"], 0.01)
        ),
        "qps32_ratio": (
            saved["qps32_read_qps"] / threaded["qps32_read_qps"]
        ),
    }


def _strict() -> bool:
    return (
        CLIENTS >= STRICT_CLIENTS
        and DURATION >= STRICT_SECONDS
        and CORES >= STRICT_CORES
    )


def test_async_core_threads_stay_bounded(measured):
    """The structural claim, asserted at every scale: the threaded core
    pays a thread per connection; the reactor pays zero — its thread
    count must not move when the herd attaches."""
    assert measured["threaded"]["thread_growth"] >= CLIENTS * 0.9, (
        "threaded core should cost ~one thread per connection "
        f"(grew {measured['threaded']['thread_growth']} for {CLIENTS})"
    )
    assert measured["async"]["thread_growth"] <= 4, (
        f"async core grew {measured['async']['thread_growth']} threads "
        f"while holding {CLIENTS} connections; the reactor must not "
        "spawn per-connection threads"
    )


def test_connection_capacity(measured, report):
    """ISSUE acceptance: >= 3x the connection count at equal RSS —
    equivalently, per-connection RSS at most a third of threaded's."""
    threaded, saved = measured["threaded"], measured["async"]
    ratio = measured["capacity_ratio"]
    report(
        f"E17 connections at equal RSS (async/threaded) -> "
        f"{ratio:6.2f}x ({threaded['per_conn_kb']:.0f} -> "
        f"{saved['per_conn_kb']:.0f} KB/conn at {CLIENTS} clients, "
        f"threads {threaded['threads_idle']} -> {saved['threads_idle']}, "
        f"cores={CORES}{'' if _strict() else '; SMOKE — floors only'})"
    )
    if _strict():
        assert ratio >= 3.0, (
            f"async core must hold >=3x the connections at equal RSS, "
            f"got {ratio:.2f}x ({saved['per_conn_kb']:.1f} KB/conn vs "
            f"threaded {threaded['per_conn_kb']:.1f})"
        )
    else:
        # Smoke floor: the reactor must never cost *more* memory per
        # held connection than a whole thread does.
        assert ratio >= 0.8, (
            f"async per-connection RSS above threaded at smoke scale: "
            f"{ratio:.2f}x"
        )


def test_read_qps_not_worse_at_32_clients(measured, report):
    """ISSUE acceptance: the loop + bounded executor serves reads no
    worse than thread-per-connection at 32 active clients."""
    ratio = measured["qps32_ratio"]
    report(
        f"E17 read QPS at {QPS_CLIENTS} clients (async/threaded) -> "
        f"{ratio:6.2f}x ({measured['threaded']['qps32_read_qps']:.0f} -> "
        f"{measured['async']['qps32_read_qps']:.0f} QPS, p99 "
        f"{measured['threaded']['qps32_p99_ms']:.1f} -> "
        f"{measured['async']['qps32_p99_ms']:.1f} ms"
        f"{'' if _strict() else '; SMOKE — floors only'})"
    )
    if _strict():
        assert ratio >= 0.9, (
            f"async read QPS fell below threaded at {QPS_CLIENTS} "
            f"clients: {ratio:.2f}x"
        )
    else:
        assert ratio >= 0.6, (
            f"async read QPS pathologically below threaded at smoke "
            f"scale: {ratio:.2f}x"
        )


def test_mixed_phase_served_under_idle_herd(measured):
    """Active reads completed while the idle herd was attached — on
    both cores, and without a single failed request (asserted inside
    the drive)."""
    assert measured["async"]["mixed_read_qps"] > 0
    assert measured["threaded"]["mixed_read_qps"] > 0


def test_write_bench_json(measured):
    payload = {
        "clients": CLIENTS,
        "ranks": RANKS,
        "duration_seconds": DURATION,
        "active_readers": ACTIVE_READERS,
        "qps_clients": QPS_CLIENTS,
        "cores": CORES,
        "threaded": measured["threaded"],
        "async": measured["async"],
        "capacity_ratio": round(measured["capacity_ratio"], 3),
        "qps32_ratio": round(measured["qps32_ratio"], 3),
    }
    from repro.obs.bench import write_bench_json

    write_bench_json(E17_JSON, "e17_async_serving", payload)
