"""Smoke tests: every shipped example must run end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "stored trial id=1" in out
    assert "ParaProf aggregate view" in out
    assert "exported common XML" in out


def test_multiformat_archive():
    out = run_example("multiformat_archive.py")
    assert "TAU trial" in out and "mpiP trial" in out and "HPMToolkit trial" in out
    assert "Performance Data Archive" in out


def test_evh1_speedup():
    out = run_example("evh1_speedup.py")
    assert "per-routine speedup" in out
    assert "application speedup" in out
    assert "riemann" in out


def test_sppm_datamining():
    out = run_example("sppm_datamining.py")
    assert "Ahn & Vetter behaviour reproduced" in out
    assert "cluster analysis [kmeans]" in out


def test_regression_tracking():
    out = run_example("regression_tracking.py")
    assert "Detected regressions" in out
    assert "riemann" in out
    assert "v5" in out


def test_snapshot_drift():
    out = run_example("snapshot_drift.py")
    assert "monotonicity problems: 0" in out
    assert "drift report" in out
    assert "riemann" in out


def test_scaling_prediction():
    out = run_example("scaling_prediction.py")
    assert "riemann" in out
    assert "R²" in out
    assert "ground truth" in out


def test_large_scale_miranda_reduced():
    out = run_example("large_scale_miranda.py", "512")
    assert "handled without problems" in out
    assert "51,712" in out  # 512 * 101 data points
