"""Tests for the structured JSON-lines logger."""

import io
import json

import pytest

from repro.obs import log as obslog


@pytest.fixture
def sink():
    stream = io.StringIO()
    obslog.configure(stream=stream, level="debug")
    yield stream
    obslog.configure()  # restore stderr/warning defaults


def events(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


def test_json_line_shape(sink):
    obslog.get_logger("test").info("hello", a=1, b="x")
    (rec,) = events(sink)
    assert rec["level"] == "info"
    assert rec["logger"] == "test"
    assert rec["event"] == "hello"
    assert rec["a"] == 1
    assert rec["b"] == "x"
    assert isinstance(rec["ts"], float)


def test_level_filtering(sink):
    obslog.set_level("warning")
    logger = obslog.get_logger("test")
    logger.debug("quiet")
    logger.info("quiet")
    logger.warning("loud")
    logger.error("loud")
    assert [r["level"] for r in events(sink)] == ["warning", "error"]


def test_non_serializable_fields_stringified(sink):
    obslog.get_logger("test").info("obj", val=object())
    (rec,) = events(sink)
    assert isinstance(rec["val"], str)


def test_closed_sink_is_swallowed():
    stream = io.StringIO()
    obslog.configure(stream=stream, level="debug")
    try:
        stream.close()
        obslog.get_logger("test").info("dropped")  # must not raise
    finally:
        obslog.configure()
