"""Tests for the span API, ring buffer, and trace exporters."""

import json
import threading

import pytest

from repro.obs.trace import Tracer, chrome_event, new_trace_id


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    yield t
    t.disable()


class TestSpans:
    def test_disabled_span_records_nothing(self):
        t = Tracer()
        with t.span("work", key="v"):
            pass
        assert t.finished() == []

    def test_enabled_span_records(self, tracer):
        with tracer.span("work", key="v"):
            pass
        (rec,) = tracer.finished()
        assert rec["name"] == "work"
        assert rec["attributes"] == {"key": "v"}
        assert rec["duration"] >= 0.0
        assert rec["parent_id"] is None

    def test_nesting_assigns_parent_and_trace(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner_rec, outer_rec = tracer.finished()
        assert inner_rec["name"] == "inner"
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert inner_rec["trace_id"] == outer_rec["trace_id"]
        assert outer.span_id == outer_rec["span_id"]

    def test_sibling_spans_get_distinct_ids(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.finished()
        assert a["span_id"] != b["span_id"]
        # Separate top-level spans start separate traces.
        assert a["trace_id"] != b["trace_id"]

    def test_exception_is_annotated_and_stack_unwound(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (rec,) = tracer.finished()
        assert rec["attributes"]["error"] == "ValueError"
        assert tracer.current_context() is None

    def test_set_attaches_attributes(self, tracer):
        with tracer.span("work") as sp:
            sp.set(rows=7)
        (rec,) = tracer.finished()
        assert rec["attributes"]["rows"] == 7

    def test_record_manual_span(self, tracer):
        tracer.record("manual", 0.25, n=1)
        (rec,) = tracer.finished()
        assert rec["duration"] == 0.25
        assert rec["attributes"] == {"n": 1}

    def test_record_nests_under_active_span(self, tracer):
        with tracer.span("outer") as outer:
            tracer.record("manual", 0.01)
        manual = [r for r in tracer.finished() if r["name"] == "manual"][0]
        assert manual["parent_id"] == outer.span_id

    def test_thread_local_stacks(self, tracer):
        seen = {}

        def worker():
            with tracer.span("thread-span"):
                seen["ctx"] = tracer.current_context()

        with tracer.span("main-span"):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        # The worker thread's span must NOT have parented under main's.
        records = {r["name"]: r for r in tracer.finished()}
        assert records["thread-span"]["parent_id"] is None
        assert records["thread-span"]["trace_id"] != records["main-span"]["trace_id"]


class TestRemoteContext:
    def test_context_adopts_remote_parent(self, tracer):
        with tracer.context("cafebabe", "deadbeef-1"):
            with tracer.span("server-side"):
                pass
        (rec,) = tracer.finished()
        assert rec["trace_id"] == "cafebabe"
        assert rec["parent_id"] == "deadbeef-1"

    def test_adopt_merges_foreign_spans(self, tracer):
        foreign = [{"name": "w", "trace_id": "t", "span_id": "s",
                    "parent_id": None, "pid": 1, "tid": 2,
                    "start": 0.0, "duration": 0.1, "attributes": {}}]
        assert tracer.adopt(foreign) == 1
        assert tracer.finished()[0]["name"] == "w"

    def test_drain_clears(self, tracer):
        with tracer.span("x"):
            pass
        drained = tracer.drain()
        assert len(drained) == 1
        assert tracer.finished() == []


class TestRingBuffer:
    def test_capacity_bound(self):
        t = Tracer(capacity=4)
        t.enable()
        for i in range(10):
            with t.span(f"s{i}"):
                pass
        names = [r["name"] for r in t.finished()]
        assert names == ["s6", "s7", "s8", "s9"]


class TestExporters:
    def test_jsonl_export(self, tracer, tmp_path):
        with tracer.span("a", file="x"):
            pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 1
        lines = path.read_text().strip().splitlines()
        rec = json.loads(lines[0])
        assert rec["name"] == "a"
        assert rec["attributes"]["file"] == "x"

    def test_chrome_export_shape(self, tracer, tmp_path):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.json"
        assert tracer.export_chrome(path) == 2
        doc = json.loads(path.read_text())
        assert set(doc) >= {"traceEvents"}
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(event)
        inner = [e for e in doc["traceEvents"] if e["name"] == "inner"][0]
        outer = [e for e in doc["traceEvents"] if e["name"] == "outer"][0]
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]

    def test_chrome_event_microseconds(self):
        rec = {"name": "n", "trace_id": "t", "span_id": "s", "parent_id": None,
               "pid": 3, "tid": 4, "start": 1.5, "duration": 0.25,
               "attributes": {}}
        event = chrome_event(rec)
        assert event["ts"] == 1.5e6
        assert event["dur"] == 0.25e6


def test_new_trace_ids_unique():
    assert new_trace_id() != new_trace_id()
