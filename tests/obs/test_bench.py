"""Tests for the continuous-benchmarking archive and regression
detection (repro.obs.bench)."""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.obs.bench import (
    BenchArchive,
    KeyPolicy,
    RegressPolicy,
    archive_url,
    bench_envelope,
    betainc_regularized,
    detect_regressions,
    exact_quantile,
    flatten_metrics,
    format_regress_report,
    infer_direction,
    median,
    normalize_document,
    open_for_reading,
    student_t_sf,
    tidy_archive,
    welch_t_test,
    write_bench_json,
)


# -- envelope ----------------------------------------------------------------


class TestEnvelope:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SHA", "a" * 40)
        monkeypatch.setenv("REPRO_BENCH_TIMESTAMP", "2026-01-02T03:04:05Z")
        env = bench_envelope()
        assert env["git_sha"] == "a" * 40
        assert env["timestamp"] == "2026-01-02T03:04:05Z"
        assert env["schema_version"] == 1
        assert env["host_cores"] >= 1

    def test_write_creates_envelope(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SHA", "b" * 40)
        path = tmp_path / "BENCH_x.json"
        write_bench_json(path, "e1", {"wall_seconds": 1.5})
        doc = json.loads(path.read_text())
        assert doc["git_sha"] == "b" * 40
        assert doc["benchmarks"] == {"e1": {"wall_seconds": 1.5}}

    def test_write_merges_sections(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_bench_json(path, "e1", {"a": 1})
        write_bench_json(path, "e2", {"b": 2})
        doc = json.loads(path.read_text())
        assert set(doc["benchmarks"]) == {"e1", "e2"}

    def test_write_upgrades_legacy_file(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"old_section": {"v": 1}}))
        write_bench_json(path, "e1", {"a": 1})
        doc = json.loads(path.read_text())
        assert set(doc["benchmarks"]) == {"old_section", "e1"}

    def test_normalize_envelope_document(self):
        doc = {
            "schema_version": 1, "git_sha": "c" * 40,
            "timestamp": "2026-01-01T00:00:00Z", "host_cores": 8,
            "benchmarks": {"e1": {"v": 1.0}},
        }
        envelope, sections = normalize_document(doc)
        assert envelope["git_sha"] == "c" * 40
        assert sections == {"e1": {"v": 1.0}}

    def test_normalize_legacy_uses_defaults(self):
        doc = {"e1": {"v": 1.0}, "not_a_section": 3}
        envelope, sections = normalize_document(
            doc, default_sha="d" * 40, default_timestamp="2026-02-02T00:00:00Z"
        )
        assert envelope["git_sha"] == "d" * 40
        assert envelope["timestamp"] == "2026-02-02T00:00:00Z"
        assert sections == {"e1": {"v": 1.0}}

    def test_normalize_drops_metricless_sections(self):
        doc = {"benchmarks": {"good": {"v": 1}, "empty": {"note": "hi"}}}
        _, sections = normalize_document(doc, default_sha=None)
        assert set(sections) == {"good"}

    def test_flatten(self):
        flat = flatten_metrics({
            "a": 1, "b": 2.5, "flag": True, "name": "x",
            "nested": {"x": 3, "deeper": {"y": 4}},
            "bad": float("nan"),
        })
        assert flat == {"a": 1.0, "b": 2.5, "nested.x": 3.0,
                        "nested.deeper.y": 4.0}


# -- statistics --------------------------------------------------------------


class TestStatistics:
    def test_betainc_against_known_values(self):
        # I_x(a, b) closed forms: I_x(1, 1) = x; I_x(1, b) = 1-(1-x)^b.
        assert betainc_regularized(1.0, 1.0, 0.3) == pytest.approx(0.3)
        assert betainc_regularized(1.0, 3.0, 0.2) == pytest.approx(
            1 - 0.8 ** 3, rel=1e-12
        )
        assert betainc_regularized(2.0, 2.0, 0.5) == pytest.approx(0.5)

    def test_student_t_sf_symmetry_and_limits(self):
        assert student_t_sf(0.0, 5.0) == pytest.approx(0.5)
        assert student_t_sf(100.0, 5.0) < 1e-6
        assert student_t_sf(-100.0, 5.0) > 1 - 1e-6

    def test_welch_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = random.Random(7)
        a = [rng.gauss(10.0, 1.0) for _ in range(9)]
        b = [rng.gauss(11.0, 2.0) for _ in range(14)]
        ours = welch_t_test(a, b)
        ref = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours.t == pytest.approx(ref.statistic, rel=1e-10)
        assert ours.p_value == pytest.approx(ref.pvalue, rel=1e-9)

    def test_welch_identical_constant_samples(self):
        result = welch_t_test([1.0, 1.0, 1.0], [1.0, 1.0])
        assert result.p_value == 1.0

    def test_welch_differing_constant_samples(self):
        result = welch_t_test([1.0, 1.0, 1.0], [2.0, 2.0])
        assert result.p_value == 0.0

    def test_welch_rejects_tiny_samples(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [2.0, 3.0])

    def test_exact_quantile(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert exact_quantile(values, 0.0) == 1.0
        assert exact_quantile(values, 0.5) == 3.0
        assert exact_quantile(values, 1.0) == 5.0
        assert exact_quantile(values, 0.25) == 2.0
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5


# -- archive -----------------------------------------------------------------


def _doc(sha: str, ts: str, wall: float, qps: float = 1000.0) -> dict:
    return {
        "schema_version": 1, "git_sha": sha, "timestamp": ts,
        "host_cores": 4,
        "benchmarks": {"e_test": {"wall_seconds": wall,
                                  "rows_per_second": qps}},
    }


def _fill(archive: BenchArchive, walls, qps=None, start=0) -> None:
    for i, wall in enumerate(walls, start=start):
        archive.ingest_document(_doc(
            f"{i:02d}" + "0" * 38, f"2026-03-{(i % 27) + 1:02d}T00:{i:02d}:00Z",
            wall, 1000.0 if qps is None else qps[i - start],
        ))


class TestArchiveUrl:
    def test_mdb_path(self, tmp_path):
        url = archive_url(tmp_path / "h.mdb")
        assert url.startswith("minisql:///")
        assert url.endswith("h.mdb")

    def test_url_passthrough(self):
        assert archive_url("sqlite://x.db") == "sqlite://x.db"


class TestBenchArchive:
    def test_ingest_and_read_back(self):
        with BenchArchive("minisql://:memory:") as archive:
            stored = archive.ingest_document(
                _doc("e" * 40, "2026-03-01T00:00:00Z", 1.25)
            )
            assert [run.experiment for run in stored] == ["e_test"]
            runs = archive.runs("e_test")
            assert len(runs) == 1
            assert runs[0].git_sha == "e" * 40
            assert runs[0].metrics["wall_seconds"] == 1.25
            assert runs[0].sha12 == "e" * 12

    def test_reingest_is_idempotent(self):
        with BenchArchive("minisql://:memory:") as archive:
            doc = _doc("f" * 40, "2026-03-01T00:00:00Z", 2.0)
            assert len(archive.ingest_document(doc)) == 1
            assert len(archive.ingest_document(doc)) == 0
            assert len(archive.runs("e_test")) == 1

    def test_series_ordering(self):
        with BenchArchive("minisql://:memory:") as archive:
            _fill(archive, [1.0, 1.1, 1.2])
            series = archive.series("e_test")
            assert [v for _, v in series["wall_seconds"]] == [1.0, 1.1, 1.2]

    def test_runs_visible_to_plain_sql(self):
        """Bench trials are ordinary PerfDMF rows, not a private format."""
        with BenchArchive("minisql://:memory:") as archive:
            _fill(archive, [1.0, 2.0])
            count = archive.connection.scalar(
                "SELECT count(*) FROM trial"
            )
            assert count == 2
            names = [row[0] for row in archive.connection.query(
                "SELECT name FROM metric ORDER BY name"
            )]
            assert "wall_seconds" in names

    def test_file_archive_roundtrip_stays_single_file(self, tmp_path):
        path = tmp_path / "hist.mdb"
        with BenchArchive(path) as archive:
            _fill(archive, [1.0, 1.5])
        tidy_archive(path)
        assert [p.name for p in tmp_path.iterdir()] == ["hist.mdb"]

        reader = open_for_reading(path)
        try:
            assert len(reader.runs("e_test")) == 2
        finally:
            reader.close()
        # Reading must not have touched the committed file's directory.
        assert [p.name for p in tmp_path.iterdir()] == ["hist.mdb"]


# -- regression detection ----------------------------------------------------


class TestDirections:
    def test_inference(self):
        assert infer_direction("wall_seconds") == "lower"
        assert infer_direction("patterns.topn.on_ms") == "lower"
        assert infer_direction("speedup") == "higher"
        assert infer_direction("rows_per_second") == "higher"
        assert infer_direction("overhead") == "lower"
        assert infer_direction("ranks") is None


class TestPolicy:
    def test_override_later_wins(self):
        policy = RegressPolicy(overrides=[
            ("e_test.*", {"threshold": 0.5}),
            ("*.wall_seconds", {"threshold": 0.1}),
        ])
        assert policy.for_key("e_test.wall_seconds").threshold == 0.1
        assert policy.for_key("e_test.other").threshold == 0.5
        assert policy.for_key("x.y").threshold == KeyPolicy().threshold

    def test_from_file(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text(json.dumps({
            "defaults": {"threshold": 0.4, "min_runs": 4},
            "keys": {"*.ranks": {"ignore": True}},
        }))
        policy = RegressPolicy.from_file(path)
        assert policy.defaults.threshold == 0.4
        assert policy.for_key("e.ranks").ignore is True

    def test_committed_policy_parses(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "benchmarks" / \
            "regress_policy.json"
        policy = RegressPolicy.from_file(path)
        assert policy.for_key("e_x.ranks").ignore is True
        assert policy.for_key("e13_compile.compile_stats.plan_cache_hits").ignore


class TestDetection:
    def _policy(self, **kw) -> RegressPolicy:
        defaults = dict(threshold=0.25, alpha=0.01, min_runs=6,
                        recent=3, baseline=12)
        defaults.update(kw)
        return RegressPolicy(defaults=KeyPolicy(**defaults))

    def test_stable_series_is_quiet(self):
        rng = random.Random(3)
        with BenchArchive("minisql://:memory:") as archive:
            _fill(archive, [1.0 + rng.uniform(-0.02, 0.02) for _ in range(12)])
            report = detect_regressions(archive, self._policy())
        assert not report.regressed
        assert report.checked == 2  # wall_seconds and rows_per_second

    def test_detects_slowdown(self):
        """The ISSUE acceptance shape: a 2x wall-time jump is named."""
        rng = random.Random(5)
        with BenchArchive("minisql://:memory:") as archive:
            walls = [1.0 + rng.uniform(-0.02, 0.02) for _ in range(9)]
            walls += [2.0 + rng.uniform(-0.04, 0.04) for _ in range(3)]
            _fill(archive, walls)
            report = detect_regressions(archive, self._policy())
        assert report.regressed
        finding = report.findings[0]
        assert finding.full_key == "e_test.wall_seconds"
        assert finding.direction == "lower"
        assert finding.shift == pytest.approx(1.0, abs=0.15)
        assert finding.p_value < 0.01
        assert ".." in finding.window

    def test_detects_throughput_drop(self):
        rng = random.Random(11)
        with BenchArchive("minisql://:memory:") as archive:
            qps = [1000 + rng.uniform(-5, 5) for _ in range(9)]
            qps += [500 + rng.uniform(-5, 5) for _ in range(3)]
            _fill(archive, [1.0] * 12, qps=qps)
            report = detect_regressions(archive, self._policy())
        keys = [f.full_key for f in report.findings]
        assert "e_test.rows_per_second" in keys

    def test_improvement_not_flagged(self):
        rng = random.Random(13)
        with BenchArchive("minisql://:memory:") as archive:
            walls = [2.0 + rng.uniform(-0.02, 0.02) for _ in range(9)]
            walls += [1.0 + rng.uniform(-0.02, 0.02) for _ in range(3)]
            _fill(archive, walls)
            report = detect_regressions(archive, self._policy())
        assert not report.regressed

    def test_short_series_skipped(self):
        with BenchArchive("minisql://:memory:") as archive:
            _fill(archive, [1.0, 1.0, 2.0])
            report = detect_regressions(archive, self._policy())
        assert not report.regressed
        assert report.skipped_short > 0

    def test_small_shift_not_flagged(self):
        """Statistically real but practically irrelevant: +5% with tiny
        variance passes the t-test but not the median guard."""
        with BenchArchive("minisql://:memory:") as archive:
            walls = [1.0 + 0.0001 * i for i in range(9)]
            walls += [1.05, 1.0501, 1.0502]
            _fill(archive, walls)
            report = detect_regressions(archive, self._policy())
        assert not report.regressed

    def test_noise_jump_not_flagged(self):
        """A big median shift with huge variance fails the t-test."""
        rng = random.Random(17)
        with BenchArchive("minisql://:memory:") as archive:
            walls = [1.0 + rng.uniform(-0.9, 0.9) for _ in range(9)]
            walls += [1.4 + rng.uniform(-0.9, 0.9) for _ in range(3)]
            _fill(archive, walls)
            report = detect_regressions(archive, self._policy())
        assert not report.regressed

    def test_policy_ignore_silences(self):
        rng = random.Random(5)
        with BenchArchive("minisql://:memory:") as archive:
            walls = [1.0 + rng.uniform(-0.02, 0.02) for _ in range(9)]
            walls += [2.0] * 3
            _fill(archive, walls)
            policy = self._policy()
            policy.overrides.append(("*.wall_seconds", {"ignore": True}))
            report = detect_regressions(archive, policy)
        assert not report.regressed

    def test_policy_direction_override(self):
        """A key with no inferable direction is tested once the policy
        supplies one."""
        with BenchArchive("minisql://:memory:") as archive:
            for i in range(12):
                value = 10.0 if i < 9 else 20.0
                archive.ingest_document({
                    "git_sha": f"{i:02d}" + "0" * 38,
                    "timestamp": f"2026-03-01T00:{i:02d}:00Z",
                    "benchmarks": {"e_test": {"latency": value}},
                })
            baseline = detect_regressions(archive, self._policy())
            assert baseline.skipped_direction == 1
            policy = self._policy()
            policy.overrides.append(("*.latency", {"direction": "lower"}))
            report = detect_regressions(archive, policy)
        assert report.regressed

    def test_key_filter(self):
        rng = random.Random(5)
        with BenchArchive("minisql://:memory:") as archive:
            walls = [1.0 + rng.uniform(-0.02, 0.02) for _ in range(9)]
            walls += [2.0] * 3
            _fill(archive, walls)
            report = detect_regressions(
                archive, self._policy(), key_filter="*.rows_per_second"
            )
        assert not report.regressed
        assert report.checked == 1

    def test_report_formatting(self):
        rng = random.Random(5)
        with BenchArchive("minisql://:memory:") as archive:
            walls = [1.0 + rng.uniform(-0.02, 0.02) for _ in range(9)]
            walls += [2.0 + rng.uniform(-0.02, 0.02) for _ in range(3)]
            _fill(archive, walls)
            report = detect_regressions(archive, self._policy())
        text = format_regress_report(report)
        assert "e_test.wall_seconds" in text
        assert "p-value" in text
        assert "commit window" in text
        assert "1 regression(s)" in text
        assert not math.isnan(report.findings[0].p_value)

    def test_quiet_report_formatting(self):
        with BenchArchive("minisql://:memory:") as archive:
            _fill(archive, [1.0, 1.0])
            report = detect_regressions(archive, self._policy())
        assert "no regressions detected" in format_regress_report(report)
