"""Tests for the live HTTP telemetry endpoint (repro.obs.telemetry)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.telemetry import PROMETHEUS_CONTENT_TYPE, TelemetryServer


@pytest.fixture
def server():
    srv = TelemetryServer(host="127.0.0.1", port=0)
    srv.start()
    yield srv
    srv.stop()


def _get(server: TelemetryServer, path: str):
    host, port = server.address
    return urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10.0)


class TestEndpoints:
    def test_metrics_exposition(self, server):
        registry.counter("telemetry_test.hits").inc(4)
        with _get(server, "/metrics") as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            body = resp.read().decode()
        assert "telemetry_test_hits 4" in body

    def test_healthz(self, server):
        with _get(server, "/healthz") as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == "application/json"
            doc = json.loads(resp.read())
        assert doc["status"] == "ok"
        assert doc["uptime_seconds"] >= 0

    def test_stats_json(self, server):
        registry.counter("telemetry_test.stats").inc()
        with _get(server, "/stats.json") as resp:
            doc = json.loads(resp.read())
        assert doc["metrics"]["telemetry_test.stats"]["value"] >= 1

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nope")
        assert err.value.code == 404

    def test_query_string_ignored(self, server):
        with _get(server, "/healthz?verbose=1") as resp:
            assert resp.status == 200

    def test_request_counters(self, server):
        before = registry.counter("telemetry.requests").value
        _get(server, "/metrics").close()
        _get(server, "/healthz").close()
        assert registry.counter("telemetry.requests").value >= before + 2


class TestReplicationExposition:
    """The fault-tolerance metrics must survive the dot->underscore
    prometheus renaming and appear on ``/metrics`` — dashboards key on
    these exact exposition names."""

    def test_replication_and_failover_metrics_exposed(self, server):
        # Importing the replica module registers the lag gauges.
        import repro.db.minisql.replica  # noqa: F401
        from repro.explorer.client import CircuitBreaker
        from repro.explorer.server import AnalysisServer

        breaker = CircuitBreaker(name="expo:1", threshold=1)
        breaker.record_failure()  # trips open -> gauge set to 2
        analysis = AnalysisServer("minisql://:memory:")
        analysis.handle_request("get_stats", {})  # registers shed counter
        with _get(server, "/metrics") as resp:
            body = resp.read().decode()
        assert "replica_replication_lag_seconds" in body
        assert "replica_replication_lag_records" in body
        assert "explorer_client_circuit_breaker_state 2" in body
        assert "server_admission_shed_total" in body


class TestHealthCallable:
    def test_health_extras_merged(self):
        srv = TelemetryServer(port=0, health=lambda: {"in_flight": 3})
        srv.start()
        try:
            with _get(srv, "/healthz") as resp:
                doc = json.loads(resp.read())
            assert doc["status"] == "ok"
            assert doc["in_flight"] == 3
        finally:
            srv.stop()

    def test_broken_health_reports_degraded_not_500(self):
        def broken() -> dict:
            raise RuntimeError("db gone")

        srv = TelemetryServer(port=0, health=broken)
        srv.start()
        try:
            with _get(srv, "/healthz") as resp:
                assert resp.status == 200
                doc = json.loads(resp.read())
            assert doc["status"] == "degraded"
            assert "db gone" in doc["health_error"]
        finally:
            srv.stop()


class TestCustomRegistry:
    def test_serves_the_given_registry(self):
        private = MetricsRegistry()
        private.counter("private.only").inc(9)
        srv = TelemetryServer(port=0, registry=private)
        srv.start()
        try:
            with _get(srv, "/metrics") as resp:
                body = resp.read().decode()
            assert "private_only 9" in body
        finally:
            srv.stop()


class TestLifecycle:
    def test_stop_releases_port_for_reuse(self):
        srv = TelemetryServer(host="127.0.0.1", port=0)
        host, port = srv.start()
        srv.stop()
        # The port is free again: a new listener can claim it.
        srv2 = TelemetryServer(host=host, port=port)
        srv2.start()
        try:
            with _get(srv2, "/healthz") as resp:
                assert resp.status == 200
        finally:
            srv2.stop()
