"""Tests for counters, gauges, log2 histograms, and the registry."""

import json
import math

import pytest

from repro.obs.metrics import (
    LOG2_BOUNDS, Counter, Gauge, Histogram, MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_reset(self):
        c = Counter("c")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_inc_reset(self):
        g = Gauge("g")
        g.set(2.5)
        g.inc(0.5)
        assert g.value == 3.0
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_observations_tracked(self):
        h = Histogram("h")
        for v in (0.001, 0.002, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(4.003)
        assert snap["min"] == 0.001
        assert snap["max"] == 4.0
        assert snap["mean"] == pytest.approx(4.003 / 3)
        assert sum(snap["buckets"].values()) == 3

    def test_log2_bucket_assignment(self):
        h = Histogram("h")
        h.observe(0.75)  # <= 1.0 bucket
        snap = h.snapshot()
        (le,) = snap["buckets"]
        assert le == 1.0

    def test_overflow_goes_to_inf_bucket(self):
        h = Histogram("h")
        h.observe(LOG2_BOUNDS[-1] * 10)
        snap = h.snapshot()
        assert list(snap["buckets"]) == [math.inf]

    def test_empty_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] is None
        assert snap["buckets"] == {}

    def test_reset(self):
        h = Histogram("h")
        h.observe(1.0)
        h.reset()
        assert h.count == 0
        assert h.snapshot()["buckets"] == {}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_absorb_publishes_numeric_values_as_gauges(self):
        reg = MetricsRegistry()
        reg.absorb("db", {"rows": 10, "elapsed": 1.5, "name": "x", "flag": True})
        assert reg.gauge("db.rows").value == 10
        assert reg.gauge("db.elapsed").value == 1.5
        # Strings and bools are skipped.
        assert reg.get("db.name") is None
        assert reg.get("db.flag") is None

    def test_snapshot_and_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        assert reg.names() == ["a", "b"]
        assert list(reg.snapshot()) == ["a", "b"]

    def test_reset_clears_all(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("h").observe(1.0)
        reg.reset()
        assert reg.counter("c").value == 0
        assert reg.histogram("h").count == 0

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        doc = json.loads(reg.to_json())
        assert doc["metrics"]["c"] == {"type": "counter", "value": 2}

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("db.pool.acquires").inc(3)
        reg.histogram("lat").observe(0.75)
        reg.histogram("lat").observe(3.0)
        text = reg.to_prometheus()
        assert "# TYPE db_pool_acquires counter" in text
        assert "db_pool_acquires 3" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1.0"}' in text
        assert "lat_count 2" in text
        # Buckets are cumulative: the largest finite bucket covers both.
        assert 'lat_bucket{le="4.0"} 2' in text

    def test_prometheus_sanitizes_names(self):
        reg = MetricsRegistry()
        reg.counter("a.b-c").inc()
        assert "a_b_c 1" in reg.to_prometheus()
