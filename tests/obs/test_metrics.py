"""Tests for counters, gauges, log2 histograms, and the registry."""

import json
import math
import random
import re

import pytest

from repro.obs.metrics import (
    LOG2_BOUNDS, Counter, Gauge, Histogram, MetricsRegistry,
    escape_label_value, render_prometheus,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"type": "counter", "value": 5}

    def test_reset(self):
        c = Counter("c")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_inc_reset(self):
        g = Gauge("g")
        g.set(2.5)
        g.inc(0.5)
        assert g.value == 3.0
        g.reset()
        assert g.value == 0.0


class TestHistogram:
    def test_observations_tracked(self):
        h = Histogram("h")
        for v in (0.001, 0.002, 4.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(4.003)
        assert snap["min"] == 0.001
        assert snap["max"] == 4.0
        assert snap["mean"] == pytest.approx(4.003 / 3)
        assert sum(snap["buckets"].values()) == 3

    def test_log2_bucket_assignment(self):
        h = Histogram("h")
        h.observe(0.75)  # <= 1.0 bucket
        snap = h.snapshot()
        (le,) = snap["buckets"]
        assert le == 1.0

    def test_overflow_goes_to_inf_bucket(self):
        h = Histogram("h")
        h.observe(LOG2_BOUNDS[-1] * 10)
        snap = h.snapshot()
        assert list(snap["buckets"]) == [math.inf]

    def test_empty_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] is None
        assert snap["buckets"] == {}

    def test_reset(self):
        h = Histogram("h")
        h.observe(1.0)
        h.reset()
        assert h.count == 0
        assert h.snapshot()["buckets"] == {}


class TestHistogramQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram("h")
        assert h.quantile(0.5) is None
        snap = h.snapshot()
        assert snap["p50"] is None and snap["p95"] is None

    def test_out_of_range_q_rejected(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_single_observation(self):
        h = Histogram("h")
        h.observe(0.3)
        # Clamped to the observed range: every quantile is the value.
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.quantile(q) == pytest.approx(0.3)

    def test_estimates_within_a_bucket_of_exact(self):
        """The log2-bucket estimator must land within one octave of the
        exact quantile on known distributions."""
        from repro.obs.bench import exact_quantile

        rng = random.Random(42)
        distributions = {
            "uniform": [rng.uniform(0.001, 10.0) for _ in range(5000)],
            "lognormal": [rng.lognormvariate(0.0, 1.5) for _ in range(5000)],
            "exponential": [rng.expovariate(2.0) for _ in range(5000)],
        }
        for name, values in distributions.items():
            h = Histogram("h")
            for v in values:
                h.observe(v)
            for q in (0.50, 0.95, 0.99):
                estimate = h.quantile(q)
                exact = exact_quantile(sorted(values), q)
                # One octave of error either way is the bucket width.
                assert exact / 2 <= estimate <= exact * 2, (
                    f"{name} p{int(q * 100)}: estimate {estimate:.4f} "
                    f"vs exact {exact:.4f}"
                )

    def test_estimates_never_leave_observed_range(self):
        h = Histogram("h")
        for v in (0.7, 0.9, 3.3):
            h.observe(v)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert 0.7 <= h.quantile(q) <= 3.3

    def test_snapshot_quantiles_ordered(self):
        rng = random.Random(1)
        h = Histogram("h")
        for _ in range(500):
            h.observe(rng.expovariate(1.0))
        snap = h.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"]


class TestLabelEscaping:
    def test_plain_value_untouched(self):
        assert escape_label_value("1.0") == "1.0"

    def test_special_characters(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_absorb_publishes_numeric_values_as_gauges(self):
        reg = MetricsRegistry()
        reg.absorb("db", {"rows": 10, "elapsed": 1.5, "name": "x", "flag": True})
        assert reg.gauge("db.rows").value == 10
        assert reg.gauge("db.elapsed").value == 1.5
        # Strings and bools are skipped.
        assert reg.get("db.name") is None
        assert reg.get("db.flag") is None

    def test_snapshot_and_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a").set(1)
        assert reg.names() == ["a", "b"]
        assert list(reg.snapshot()) == ["a", "b"]

    def test_reset_clears_all(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("h").observe(1.0)
        reg.reset()
        assert reg.counter("c").value == 0
        assert reg.histogram("h").count == 0

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        doc = json.loads(reg.to_json())
        assert doc["metrics"]["c"] == {"type": "counter", "value": 2}

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("db.pool.acquires").inc(3)
        reg.histogram("lat").observe(0.75)
        reg.histogram("lat").observe(3.0)
        text = reg.to_prometheus()
        assert "# TYPE db_pool_acquires counter" in text
        assert "db_pool_acquires 3" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1.0"}' in text
        assert "lat_count 2" in text
        # Buckets are cumulative: the largest finite bucket covers both.
        assert 'lat_bucket{le="4.0"} 2' in text

    def test_prometheus_sanitizes_names(self):
        reg = MetricsRegistry()
        reg.counter("a.b-c").inc()
        assert "a_b_c 1" in reg.to_prometheus()

    def test_prometheus_buckets_cumulative_and_monotone(self):
        """Every _bucket series must be non-decreasing in le order and
        end at the observation count — the scrape contract."""
        reg = MetricsRegistry()
        rng = random.Random(9)
        for _ in range(1000):
            reg.histogram("lat").observe(rng.lognormvariate(-2.0, 2.0))
        text = reg.to_prometheus()
        pairs = re.findall(r'lat_bucket\{le="([^"]+)"\} (\d+)', text)
        assert pairs, text
        les = [math.inf if le == "+Inf" else float(le) for le, _ in pairs]
        counts = [int(n) for _, n in pairs]
        assert les == sorted(les)
        assert counts == sorted(counts)
        assert counts[-1] == 1000
        assert les[-1] == math.inf

    def test_prometheus_counter_monotonic_across_scrapes(self):
        reg = MetricsRegistry()
        reg.counter("reqs").inc(2)
        first = int(re.search(r"^reqs (\d+)$", reg.to_prometheus(),
                              re.MULTILINE).group(1))
        reg.counter("reqs").inc(3)
        second = int(re.search(r"^reqs (\d+)$", reg.to_prometheus(),
                               re.MULTILINE).group(1))
        assert first == 2 and second == 5

    def test_render_prometheus_from_json_snapshot(self):
        """The exposition must survive a JSON round trip (RPC shipping
        stringifies bucket keys, inf becomes "Infinity")."""
        reg = MetricsRegistry()
        reg.histogram("lat").observe(0.75)
        reg.histogram("lat").observe(LOG2_BOUNDS[-1] * 10)
        reg.counter("c").inc(7)
        shipped = json.loads(json.dumps(reg.snapshot()))
        assert reg.to_prometheus() == render_prometheus(shipped)
