"""Bulk-ingest tracing: worker processes ship spans back with payloads.

The acceptance criterion: a traced parallel ingest produces a Chrome
trace whose worker parse spans nest under the coordinator's parse-stage
span, with pids distinct from the coordinator's.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.io_ import ingest_profiles, parse_profiles
from repro.core.session import PerfDMFSession
from repro.obs.metrics import registry
from repro.obs.trace import tracer
from repro.tau.apps import SPPM
from repro.tau.writers import write_tau_profiles

RANKS = 4


@pytest.fixture(scope="module")
def profile_dirs(tmp_path_factory):
    base = tmp_path_factory.mktemp("trace_ingest")
    dirs = []
    for i in range(3):
        run = SPPM(problem_size=0.01, timesteps=1, seed=70 + i).run(RANKS)
        d = base / f"run{i}"
        write_tau_profiles(run, d)
        dirs.append(d)
    return dirs


@pytest.fixture
def tracing():
    tracer.enable()
    tracer.clear()
    yield tracer
    tracer.disable()
    tracer.clear()


def test_serial_parse_records_spans_locally(tracing, profile_dirs):
    parse_profiles(profile_dirs[:1], workers=1)
    names = [r["name"] for r in tracer.finished()]
    assert "ingest.parse_file" in names
    assert "ingest.load_profile" in names
    assert "ingest.columnarize" in names


def test_worker_spans_shipped_and_nested(tracing, profile_dirs):
    with tracer.span("test.parse_stage") as stage:
        payloads = parse_profiles(profile_dirs, workers=2)
    spans = tracer.finished()
    parse_spans = [r for r in spans if r["name"] == "ingest.parse_file"]
    assert len(parse_spans) == len(profile_dirs)
    # Spans were recorded in worker processes...
    assert any(r["pid"] != os.getpid() for r in parse_spans)
    # ...yet parent under the coordinator's span with its trace id.
    for rec in parse_spans:
        assert rec["parent_id"] == stage.span_id
        assert rec["trace_id"] == stage.trace_id
    # Nested worker-side spans hang off the shipped parse_file spans.
    parse_ids = {r["span_id"] for r in parse_spans}
    loads = [r for r in spans if r["name"] == "ingest.load_profile"]
    assert loads and all(r["parent_id"] in parse_ids for r in loads)
    # The shipping channel is cleaned off the payloads afterwards.
    assert all(getattr(p, "trace_spans", None) is None for p in payloads)


def test_untraced_parallel_parse_ships_nothing(profile_dirs):
    assert not tracer.enabled
    payloads = parse_profiles(profile_dirs, workers=2)
    assert tracer.finished() == []
    assert all(getattr(p, "trace_spans", None) is None for p in payloads)


def test_ingest_trace_loads_as_chrome_format(tracing, profile_dirs, tmp_path):
    files_before = registry.counter("ingest.files").value
    session = PerfDMFSession("sqlite://:memory:")
    try:
        app = session.create_application("sppm")
        exp = session.create_experiment(app, "e")
        report = ingest_profiles(session, exp, profile_dirs, workers=2)
    finally:
        session.close()
    assert report.files == len(profile_dirs)

    path = tmp_path / "ingest_trace.json"
    written = tracer.export_chrome(path)
    assert written > 0
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    by_name = {}
    for event in events:
        by_name.setdefault(event["name"], []).append(event)
    assert "ingest.run" in by_name
    assert "ingest.parse_stage" in by_name
    assert len(by_name["ingest.store_trial"]) == len(profile_dirs)
    # Worker parse spans nest under the coordinator's parse stage.
    stage_id = by_name["ingest.parse_stage"][0]["args"]["span_id"]
    workers = by_name["ingest.parse_file"]
    assert len(workers) == len(profile_dirs)
    assert all(e["args"]["parent_id"] == stage_id for e in workers)
    assert any(e["pid"] != os.getpid() for e in workers)

    # Ingest metrics accumulated in the registry.
    assert registry.counter("ingest.files").value == files_before + len(profile_dirs)
    assert registry.histogram("ingest.parse_stage_seconds").count >= 1
