"""Tests for the extended CLI subcommands (transfer/workflow/serve)."""

import json

import pytest

from repro.cli import main
from repro.paraprof import ArchiveManager
from repro.tau.apps import EVH1, SPPM


@pytest.fixture
def src_db(tmp_path):
    db = f"sqlite://{tmp_path}/src.db"
    manager = ArchiveManager(db)
    app = EVH1(problem_size=0.05, timesteps=1)
    for p in (1, 2):
        manager.import_profile(app.run(p), "evh1", "scaling", f"P={p}")
    manager.session.close()
    return db


class TestTransfer:
    def test_single_trial(self, src_db, tmp_path, capsys):
        dst = f"sqlite://{tmp_path}/dst.db"
        assert main([
            "transfer", "--from-db", src_db, "--to-db", dst,
            "--trial-id", "1", "--rename", "copied",
        ]) == 0
        out = capsys.readouterr().out
        assert "transferred trial 1" in out
        assert main(["list", "--db", dst]) == 0
        assert "copied" in capsys.readouterr().out

    def test_synchronise_all(self, src_db, tmp_path, capsys):
        dst = f"sqlite://{tmp_path}/dst.db"
        assert main(["transfer", "--from-db", src_db, "--to-db", dst]) == 0
        out = capsys.readouterr().out
        assert "synchronised 2 trial(s)" in out
        # idempotent
        assert main(["transfer", "--from-db", src_db, "--to-db", dst]) == 0
        assert "synchronised 0 trial(s)" in capsys.readouterr().out


class TestWorkflowCommand:
    def test_runs_workflow_file(self, tmp_path, capsys):
        db = f"sqlite://{tmp_path}/w.db"
        manager = ArchiveManager(db)
        manager.import_profile(
            SPPM(problem_size=0.01, timesteps=1).run(8), "sppm", "e", "t"
        )
        manager.session.close()
        workflow = [
            {"op": "load_trial", "trial": 1, "as": "t"},
            {"op": "top_events", "input": "t", "n": 2, "as": "top"},
        ]
        path = tmp_path / "wf.json"
        path.write_text(json.dumps(workflow))
        capsys.readouterr()
        assert main(["workflow", "--db", db, str(path)]) == 0
        out = json.loads(capsys.readouterr().out)
        assert len(out["top"]) == 2
        assert "t" not in out  # trial slots are not printable

    def test_workflow_error_exit_code(self, tmp_path, capsys):
        db = f"sqlite://{tmp_path}/w.db"
        main(["configure", "--db", db])
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"op": "nope"}]))
        capsys.readouterr()
        assert main(["workflow", "--db", db, str(path)]) == 1
        assert "unknown operation" in capsys.readouterr().err


class TestServe:
    def test_serve_once_prints_address(self, tmp_path, capsys):
        db = f"sqlite://{tmp_path}/s.db"
        assert main(["serve", "--db", db, "--once"]) == 0
        out = capsys.readouterr().out
        assert "listening on 127.0.0.1:" in out


class TestReport:
    def test_html_report_written(self, src_db, tmp_path, capsys):
        out = tmp_path / "trial.html"
        assert main([
            "report", "--db", src_db, "--trial-id", "1", "-o", str(out),
        ]) == 0
        text = out.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "riemann" in text

    def test_missing_trial_fails(self, src_db, tmp_path, capsys):
        code = main([
            "report", "--db", src_db, "--trial-id", "99",
            "-o", str(tmp_path / "x.html"),
        ])
        assert code == 1
