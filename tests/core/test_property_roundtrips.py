"""Property-based round-trip tests over randomised trials.

The strongest integration invariant PerfDMF offers: any valid profile,
stored and reloaded (through either storage engine, or through the XML
exchange format), is the same profile.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.io_ import export_xml, parse_xml
from repro.core.model import DataSource
from repro.core.session import PerfDMFSession

# -- trial generation strategy ------------------------------------------------

_names = st.sampled_from(
    ["main", "solve", "MPI_Send()", "io_write", "kernel<double>", "a => b"]
)
_values = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)


@st.composite
def trials(draw) -> DataSource:
    ds = DataSource()
    n_metrics = draw(st.integers(min_value=1, max_value=3))
    for m in range(n_metrics):
        ds.add_metric(f"M{m}")
    event_names = draw(
        st.lists(_names, min_size=1, max_size=4, unique=True)
    )
    events = [ds.add_interval_event(name) for name in event_names]
    n_threads = draw(st.integers(min_value=1, max_value=4))
    for t in range(n_threads):
        thread = ds.add_thread(t, 0, 0)
        for event in events:
            if draw(st.booleans()):
                continue  # sparse: event absent on this thread
            profile = thread.get_or_create_function_profile(event)
            for m in range(n_metrics):
                exclusive = draw(_values)
                extra = draw(_values)
                profile.set_exclusive(m, exclusive)
                profile.set_inclusive(m, exclusive + extra)
            profile.calls = draw(st.integers(min_value=1, max_value=1000))
            profile.subroutines = draw(st.integers(min_value=0, max_value=100))
    ds.generate_statistics()
    return ds


def assert_equivalent(a: DataSource, b: DataSource) -> None:
    assert b.num_threads == a.num_threads
    assert set(b.interval_events) == set(a.interval_events)
    assert [m.name for m in b.metrics] == [m.name for m in a.metrics]
    for name, event in a.interval_events.items():
        b_event = b.get_interval_event(name)
        for thread in a.all_threads():
            a_profile = thread.function_profiles.get(event.index)
            b_thread = b.get_thread(*thread.triple)
            b_profile = (
                b_thread.function_profiles.get(b_event.index)
                if b_thread is not None
                else None
            )
            if a_profile is None:
                if b_profile is not None:
                    # storing can materialise empty rows; values must be 0
                    for m, inc, exc in b_profile.iter_metrics():
                        assert inc == 0.0 and exc == 0.0
                continue
            assert b_profile is not None, (name, thread.triple)
            for m, inc, exc in a_profile.iter_metrics():
                assert b_profile.get_inclusive(m) == pytest.approx(inc, rel=1e-12)
                assert b_profile.get_exclusive(m) == pytest.approx(exc, rel=1e-12)
            assert b_profile.calls == a_profile.calls


@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=trials())
def test_xml_roundtrip_property(source, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("xmlprop")
    path = export_xml(source, tmp / "t.xml")
    assert_equivalent(source, parse_xml(path))


@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=trials())
@pytest.mark.parametrize("url", ["sqlite://:memory:", "minisql://:memory:"])
def test_database_roundtrip_property(url, source):
    session = PerfDMFSession(url)
    app = session.create_application("prop")
    exp = session.create_experiment(app, "e")
    trial = session.save_trial(source, exp, "t")
    reloaded = session.load_datasource(trial)
    assert_equivalent(source, reloaded)
    session.close()


@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=trials())
def test_engines_store_identically_property(source):
    """Both engines must hold byte-identical logical content."""
    snapshots = []
    for url in ("sqlite://:memory:", "minisql://:memory:"):
        session = PerfDMFSession(url)
        app = session.create_application("prop")
        exp = session.create_experiment(app, "e")
        trial = session.save_trial(source, exp, "t")
        rows = session.connection.query(
            "SELECT e.name, p.node, p.thread, m.name, p.inclusive, "
            "p.exclusive, p.num_calls FROM interval_location_profile p "
            "JOIN interval_event e ON p.interval_event = e.id "
            "JOIN metric m ON p.metric = m.id "
            "ORDER BY e.name, p.node, p.thread, m.name"
        )
        snapshots.append(rows)
        session.close()
    assert snapshots[0] == snapshots[1]
