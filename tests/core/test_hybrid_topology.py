"""Integration tests for hybrid (MPI+threads) topologies end to end.

The paper's schema stores node_count / contexts_per_node /
max_threads_per_context (§3.2) precisely because runs are not always
flat MPI; these tests drive a hybrid run through simulation → storage →
retrieval → display.
"""

import pytest

from repro.core.session import PerfDMFSession
from repro.paraprof import thread_profile_view
from repro.tau import SimulationConfig, Topology, run_simulation
from repro.tau.apps import SMG2000


@pytest.fixture(scope="module")
def hybrid_trial():
    """4 nodes × 4 threads/node — an MPI+OpenMP style run."""
    app = SMG2000(problem_size=0.5)
    config = app.config(16)
    config.topology = Topology.hybrid(nodes=4, threads_per_node=4)
    return run_simulation(app.kernel, config)


class TestHybridSimulation:
    def test_topology_shape(self, hybrid_trial):
        assert hybrid_trial.node_count == 4
        assert hybrid_trial.contexts_per_node == 1
        assert hybrid_trial.max_threads_per_context == 4
        assert hybrid_trial.num_threads == 16

    def test_thread_triples_distinct(self, hybrid_trial):
        triples = hybrid_trial.thread_triples()
        assert len(set(triples)) == 16
        assert (0, 0, 3) in triples
        assert (3, 0, 0) in triples


class TestHybridStorage:
    @pytest.fixture
    def stored(self, db_url, hybrid_trial):
        session = PerfDMFSession(db_url)
        app = session.create_application("smg2000")
        exp = session.create_experiment(app, "hybrid")
        trial = session.save_trial(hybrid_trial, exp, "4x4")
        session.set_trial(trial)
        yield session, trial
        session.close()

    def test_topology_columns(self, stored):
        _session, trial = stored
        assert trial.get("node_count") == 4
        assert trial.get("max_threads_per_context") == 4

    def test_context_thread_filters(self, stored):
        session, _trial = stored
        session.set_node(2)
        session.set_thread(3)
        rows = session.get_interval_event_data()
        assert rows
        assert all(r[1] == 2 and r[3] == 3 for r in rows)

    def test_roundtrip_preserves_hierarchy(self, stored, hybrid_trial):
        session, trial = stored
        back = session.load_datasource(trial)
        assert back.node_count == 4
        assert back.max_threads_per_context == 4
        assert back.get_thread(1, 0, 2) is not None

    def test_display_addresses_hybrid_thread(self, stored):
        session, trial = stored
        back = session.load_datasource(trial)
        text = thread_profile_view(back, node=2, context=0, thread_id=1)
        assert "node 2" in text and "thread 1" in text
