"""Importer robustness against real-world formatting variants.

Each fixture mimics quirks the real tools produce: wrapped headers,
aggregate rows, extra sections, comment noise, blank lines, Windows
line endings.
"""

import textwrap

import pytest

from repro.core.io_ import (
    parse_dynaprof, parse_gprof, parse_hpm, parse_mpip, parse_tau_profiles,
)


class TestTauVariants:
    def test_crlf_line_endings(self, tmp_path):
        content = (
            "1 templated_functions_MULTI_TIME\r\n"
            "# Name Calls Subrs Excl Incl ProfileCalls #\r\n"
            '"main" 1 0 5 10 0 GROUP="TAU_DEFAULT"\r\n'
            "0 aggregates\r\n0 userevents\r\n"
        )
        (tmp_path / "profile.0.0.0").write_bytes(content.encode())
        ds = parse_tau_profiles(tmp_path)
        assert ds.get_interval_event("main") is not None

    def test_missing_group_attribute(self, tmp_path):
        content = textwrap.dedent("""\
            1 templated_functions_MULTI_TIME
            # Name Calls Subrs Excl Incl ProfileCalls #
            "main" 1 0 5 10 0
            0 aggregates
            0 userevents
            """)
        (tmp_path / "profile.0.0.0").write_text(content)
        ds = parse_tau_profiles(tmp_path)
        assert ds.get_interval_event("main").group == "TAU_DEFAULT"

    def test_scientific_notation_values(self, tmp_path):
        content = textwrap.dedent("""\
            1 templated_functions_MULTI_TIME
            # Name Calls Subrs Excl Incl ProfileCalls #
            "main" 1e3 0 1.5e+06 2.5E6 0 GROUP="X"
            0 aggregates
            0 userevents
            """)
        (tmp_path / "profile.0.0.0").write_text(content)
        ds = parse_tau_profiles(tmp_path)
        fp = ds.get_thread(0, 0, 0).function_profiles[
            ds.get_interval_event("main").index
        ]
        assert fp.calls == 1000.0
        assert fp.get_inclusive(0) == 2.5e6

    def test_old_style_header_without_metric(self, tmp_path):
        content = textwrap.dedent("""\
            1 templated_functions
            # Name Calls Subrs Excl Incl ProfileCalls #
            "main" 1 0 5 10 0
            0 aggregates
            0 userevents
            """)
        (tmp_path / "profile.0.0.0").write_text(content)
        ds = parse_tau_profiles(tmp_path)
        assert ds.metrics[0].name == "TIME"

    def test_high_thread_numbers(self, tmp_path):
        content = textwrap.dedent("""\
            1 templated_functions_MULTI_TIME
            # Name Calls Subrs Excl Incl ProfileCalls #
            "main" 1 0 5 10 0
            0 aggregates
            0 userevents
            """)
        (tmp_path / "profile.1023.2.15").write_text(content)
        ds = parse_tau_profiles(tmp_path)
        assert ds.get_thread(1023, 2, 15) is not None


class TestMpipVariants:
    REPORT = textwrap.dedent("""\
        @ mpiP
        @ Command : ./app -n 100
        @ Version : 3.1.0
        @ MPIP env var     : [null]

        @--- MPI Time (seconds) ---------------------------------------------
        Task    AppTime    MPITime     MPI%
           0       10.5        2.1    20.00
           1       10.4        2.3    22.12
           *       20.9        4.4    21.05

        @--- Aggregate Time (top twenty, descending, milliseconds) ----------
        Call                 Site       Time    App%    MPI%     COV
        Send                    1   2.2e+03   10.53   50.00    0.05

        @--- Callsites: 1 ---------------------------------------------------
         ID Lev File/Address        Line Parent_Funct             MPI_Call
          1   0 comm.c               42  exchange                 Send

        @--- Callsite Time statistics (all, milliseconds): 3 ----------------
        Name              Site Rank  Count      Max     Mean      Min   App%   MPI%
        Send                 1    0    500     4.5      4.2      4.0   20.00  100.00
        Send                 1    1    510     4.6      4.5      4.1   22.00  100.00
        Send                 1    *   1010     4.6      4.35     4.0   21.00  100.00

        @--- End of Report --------------------------------------------------
        """)

    def test_full_report_with_aggregate_sections(self, tmp_path):
        path = tmp_path / "app.mpiP"
        path.write_text(self.REPORT)
        ds = parse_mpip(path)
        assert ds.num_threads == 2
        send = ds.get_interval_event("MPI_Send() [site 1]")
        assert send is not None
        fp0 = ds.get_thread(0, 0, 0).function_profiles[send.index]
        assert fp0.calls == 500
        assert fp0.get_inclusive(0) == pytest.approx(500 * 4.2 * 1000)

    def test_star_rows_skipped(self, tmp_path):
        path = tmp_path / "app.mpiP"
        path.write_text(self.REPORT)
        ds = parse_mpip(path)
        # only tasks 0 and 1, no '*' pseudo-thread
        assert sorted(t.node_id for t in ds.all_threads()) == [0, 1]

    def test_app_time_preserved(self, tmp_path):
        path = tmp_path / "app.mpiP"
        path.write_text(self.REPORT)
        ds = parse_mpip(path)
        app = ds.get_interval_event("Application")
        fp = ds.get_thread(0, 0, 0).function_profiles[app.index]
        assert fp.get_inclusive(0) == pytest.approx(10.5e6)


class TestHpmVariants:
    OUTPUT = textwrap.dedent("""\
        libhpm (Version 2.5.4) summary
        Total execution time of instrumented code (wall time): 12.5 seconds

        ############################################################
        Instrumented section: 1 - Label: main loop
         file: solver.f, lines: 100 <--> 250
         Count: 50
         Wall Clock Time: 11.2 seconds
         Total time in user mode: 10.9 seconds
         PM_FPU0_CMPL (FPU 0 instructions): 1500000
         PAPI_FP_OPS (Floating point operations): 3000000
         Instructions per cycle: 0.8
        """)

    def test_unknown_counters_and_extra_lines(self, tmp_path):
        (tmp_path / "perfhpm0001").write_text(self.OUTPUT)
        ds = parse_hpm(tmp_path)
        event = ds.get_interval_event("main loop")
        assert event is not None
        fp = ds.get_thread(1, 0, 0).function_profiles[event.index]
        assert fp.calls == 50
        assert fp.get_inclusive(0) == pytest.approx(11.2e6)
        fp_metric = ds.get_metric("PAPI_FP_OPS")
        assert fp.get_inclusive(fp_metric.index) == 3000000
        # IBM-specific counters also captured as metrics
        assert ds.get_metric("PM_FPU0_CMPL") is not None

    def test_no_exclusive_falls_back_to_inclusive(self, tmp_path):
        (tmp_path / "perfhpm0001").write_text(self.OUTPUT)
        ds = parse_hpm(tmp_path)
        event = ds.get_interval_event("main loop")
        fp = ds.get_thread(1, 0, 0).function_profiles[event.index]
        assert fp.get_exclusive(0) == fp.get_inclusive(0)


class TestDynaprofVariants:
    def test_blank_lines_and_dashes(self, tmp_path):
        content = textwrap.dedent("""\
            Exclusive Profile.

            Name                     Percent      Total       Calls
            --------------------------------------------------------

            TOTAL                    100          5e+06       1
            compute_kernel           80           4e+06       100

            helper                   20           1e+06       50

            Inclusive Profile.

            Name                     Percent      Total       Calls
            --------------------------------------------------------
            TOTAL                    100          5e+06       1
            compute_kernel           80           4e+06       100
            helper                   20           1e+06       50
            """)
        (tmp_path / "app.dynaprof.3").write_text(content)
        ds = parse_dynaprof(tmp_path)
        assert ds.get_thread(3, 0, 0) is not None
        kernel = ds.get_interval_event("compute_kernel")
        fp = ds.get_thread(3, 0, 0).function_profiles[kernel.index]
        assert fp.get_exclusive(0) == 4e6
        assert fp.calls == 100


class TestGprofVariants:
    def test_functions_without_call_counts(self, tmp_path):
        """gprof omits calls for functions compiled without -pg."""
        content = textwrap.dedent("""\
            Flat profile:

            Each sample counts as 0.01 seconds.
              %   cumulative   self              self     total
             time   seconds   seconds    calls  ms/call  ms/call  name
             70.00      0.70     0.70     1000     0.70     0.90  compute
             30.00      1.00     0.30                             mcount
            """)
        (tmp_path / "gprof.out.0.0.0").write_text(content)
        ds = parse_gprof(tmp_path)
        mcount = ds.get_interval_event("mcount")
        fp = ds.get_thread(0, 0, 0).function_profiles[mcount.index]
        assert fp.get_exclusive(0) == pytest.approx(0.30e6)
        assert fp.calls == 0
