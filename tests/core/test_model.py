"""Unit tests for the common profile data model."""

import numpy as np
import pytest

from repro.core.model import (
    CALLPATH_SEPARATOR, ColumnarTrial, DataSource, FunctionProfile,
    IntervalEvent, Metric, Thread, UserEventProfile, group,
)


@pytest.fixture
def simple_trial() -> DataSource:
    """4 threads, 3 events, 2 metrics, deterministic values."""
    ds = DataSource()
    time = ds.add_metric("TIME")
    flops = ds.add_metric("PAPI_FP_OPS")
    main = ds.add_interval_event("main", group.DEFAULT)
    solve = ds.add_interval_event("solve", group.COMPUTATION)
    send = ds.add_interval_event("MPI_Send()", group.COMMUNICATION)
    for rank in range(4):
        thread = ds.add_thread(rank, 0, 0)
        fp_main = thread.get_or_create_function_profile(main)
        fp_main.set_inclusive(time.index, 100.0)
        fp_main.set_exclusive(time.index, 10.0)
        fp_main.set_inclusive(flops.index, 1e6)
        fp_main.set_exclusive(flops.index, 1e5)
        fp_main.calls = 1
        fp_main.subroutines = 2
        fp_solve = thread.get_or_create_function_profile(solve)
        fp_solve.set_inclusive(time.index, 80.0 + rank)
        fp_solve.set_exclusive(time.index, 80.0 + rank)
        fp_solve.set_inclusive(flops.index, 9e5)
        fp_solve.set_exclusive(flops.index, 9e5)
        fp_solve.calls = 10
        fp_send = thread.get_or_create_function_profile(send)
        fp_send.set_inclusive(time.index, 10.0 - rank)
        fp_send.set_exclusive(time.index, 10.0 - rank)
        fp_send.calls = 100
    ds.generate_statistics()
    return ds


class TestMetric:
    def test_add_metric_assigns_index(self):
        ds = DataSource()
        assert ds.add_metric("TIME").index == 0
        assert ds.add_metric("PAPI_FP_OPS").index == 1

    def test_add_metric_idempotent(self):
        ds = DataSource()
        a = ds.add_metric("TIME")
        b = ds.add_metric("TIME")
        assert a is b
        assert ds.num_metrics == 1

    def test_time_metric_detection(self):
        assert Metric("TIME").is_time()
        assert Metric("GET_TIME_OF_DAY").is_time()
        assert not Metric("PAPI_TOT_CYC").is_time()
        assert not Metric("PAPI_REAL_TIME_COUNTER").is_time()  # PAPI excluded

    def test_time_metric_falls_back_to_first(self):
        ds = DataSource()
        ds.add_metric("PAPI_FP_OPS")
        assert ds.time_metric().name == "PAPI_FP_OPS"

    def test_adding_metric_extends_existing_threads(self):
        ds = DataSource()
        ds.add_metric("TIME")
        event = ds.add_interval_event("main")
        thread = ds.add_thread(0, 0, 0)
        profile = thread.get_or_create_function_profile(event)
        profile.set_inclusive(0, 5.0)
        ds.add_metric("PAPI_L1_DCM")
        assert profile.num_metrics == 2
        assert profile.get_inclusive(1) == 0.0


class TestEvents:
    def test_event_registration(self):
        ds = DataSource()
        e = ds.add_interval_event("main")
        assert e.index == 0
        assert ds.add_interval_event("main") is e

    def test_groups(self):
        e = IntervalEvent("x", group="MPI|IO")
        assert e.groups == ("MPI", "IO")

    def test_callpath_properties(self):
        e = IntervalEvent(f"main{CALLPATH_SEPARATOR}solve{CALLPATH_SEPARATOR}MPI_Send()")
        assert e.is_callpath()
        assert e.leaf_name == "MPI_Send()"
        assert e.parent_name == "main => solve"
        assert e.path_components() == ["main", "solve", "MPI_Send()"]

    def test_flat_event_has_no_parent(self):
        e = IntervalEvent("main")
        assert not e.is_callpath()
        assert e.parent_name is None
        assert e.leaf_name == "main"

    def test_group_classification(self):
        assert group.classify_event_name("MPI_Send()") == group.COMMUNICATION
        assert group.classify_event_name("fwrite") == group.IO
        assert group.classify_event_name("malloc") == group.MEMORY
        assert group.classify_event_name("a => b") == group.CALLPATH
        assert group.classify_event_name("solve") == group.DEFAULT

    def test_events_in_group(self, simple_trial):
        comm = simple_trial.events_in_group(group.COMMUNICATION)
        assert [e.name for e in comm] == ["MPI_Send()"]


class TestThreadHierarchy:
    def test_add_thread_creates_hierarchy(self):
        ds = DataSource()
        thread = ds.add_thread(3, 1, 2)
        assert thread.triple == (3, 1, 2)
        assert ds.nodes[3].contexts[1].threads[2] is thread

    def test_add_thread_idempotent(self):
        ds = DataSource()
        assert ds.add_thread(0, 0, 0) is ds.add_thread(0, 0, 0)
        assert ds.num_threads == 1

    def test_get_thread_missing(self):
        ds = DataSource()
        assert ds.get_thread(9, 9, 9) is None

    def test_topology_properties(self):
        ds = DataSource()
        for node in range(4):
            for thr in range(2):
                ds.add_thread(node, 0, thr)
        assert ds.node_count == 4
        assert ds.contexts_per_node == 1
        assert ds.max_threads_per_context == 2
        assert ds.num_threads == 8

    def test_max_inclusive_is_run_duration(self, simple_trial):
        thread = simple_trial.get_thread(0, 0, 0)
        assert thread.max_inclusive(0) == 100.0


class TestFunctionProfile:
    def test_inclusive_per_call(self):
        fp = FunctionProfile(IntervalEvent("f"), 1)
        fp.set_inclusive(0, 50.0)
        fp.calls = 5
        assert fp.get_inclusive_per_call(0) == 10.0

    def test_inclusive_per_call_zero_calls(self):
        fp = FunctionProfile(IntervalEvent("f"), 1)
        fp.set_inclusive(0, 50.0)
        assert fp.get_inclusive_per_call(0) == 0.0

    def test_accumulate(self):
        fp = FunctionProfile(IntervalEvent("f"), 2)
        fp.accumulate(0, 10.0, 5.0, calls=2, subroutines=1)
        fp.accumulate(0, 10.0, 5.0, calls=2, subroutines=1)
        fp.accumulate(1, 1.0, 1.0, calls=2)  # metric 1: calls not recounted
        assert fp.get_inclusive(0) == 20.0
        assert fp.calls == 4
        assert fp.get_inclusive(1) == 1.0

    def test_iter_metrics(self):
        fp = FunctionProfile(IntervalEvent("f"), 2)
        fp.set_inclusive(1, 7.0)
        assert list(fp.iter_metrics()) == [(0, 0.0, 0.0), (1, 7.0, 0.0)]


class TestUserEventProfile:
    def test_add_samples(self):
        up = UserEventProfile(IntervalEvent("heap"))
        for v in [10.0, 20.0, 30.0]:
            up.add_sample(v)
        assert up.count == 3
        assert up.min_value == 10.0
        assert up.max_value == 30.0
        assert up.mean_value == pytest.approx(20.0)
        assert up.stddev == pytest.approx(np.std([10, 20, 30]))

    def test_set_summary_with_stddev(self):
        up = UserEventProfile(IntervalEvent("msg size"))
        up.set_summary(count=4, max_value=8, min_value=2, mean_value=5, stddev=1.5)
        assert up.stddev == pytest.approx(1.5)

    def test_empty_profile(self):
        up = UserEventProfile(IntervalEvent("x"))
        assert up.count == 0
        assert up.stddev == 0.0


class TestStatistics:
    def test_total_sums_over_threads(self, simple_trial):
        total = simple_trial.total_data
        main = simple_trial.get_interval_event("main")
        fp = total.function_profiles[main.index]
        assert fp.get_inclusive(0) == 400.0
        assert fp.calls == 4

    def test_mean_divides_by_thread_count(self, simple_trial):
        mean = simple_trial.mean_data
        solve = simple_trial.get_interval_event("solve")
        fp = mean.function_profiles[solve.index]
        # (80 + 81 + 82 + 83) / 4
        assert fp.get_inclusive(0) == pytest.approx(81.5)

    def test_mean_counts_missing_threads_as_zero(self):
        ds = DataSource()
        ds.add_metric("TIME")
        event = ds.add_interval_event("rare")
        t0 = ds.add_thread(0, 0, 0)
        ds.add_thread(1, 0, 0)  # never calls 'rare'
        fp = t0.get_or_create_function_profile(event)
        fp.set_inclusive(0, 10.0)
        ds.generate_statistics()
        assert ds.mean_data.function_profiles[event.index].get_inclusive(0) == 5.0

    def test_statistics_on_empty_trial(self):
        ds = DataSource()
        ds.generate_statistics()
        assert ds.total_data is not None
        assert len(ds.total_data.function_profiles) == 0


class TestDerivedMetrics:
    def test_flops_per_second(self, simple_trial):
        metric = simple_trial.create_derived_metric("FLOPS", "PAPI_FP_OPS / TIME")
        assert metric.derived
        thread = simple_trial.get_thread(0, 0, 0)
        main = simple_trial.get_interval_event("main")
        fp = thread.function_profiles[main.index]
        assert fp.get_inclusive(metric.index) == pytest.approx(1e6 / 100.0)

    def test_expression_with_constants(self, simple_trial):
        metric = simple_trial.create_derived_metric("TIME_MS", "TIME * 1000")
        thread = simple_trial.get_thread(1, 0, 0)
        solve = simple_trial.get_interval_event("solve")
        assert thread.function_profiles[solve.index].get_inclusive(
            metric.index
        ) == pytest.approx(81000.0)

    def test_division_by_zero_yields_zero(self):
        ds = DataSource()
        ds.add_metric("A")
        ds.add_metric("B")
        event = ds.add_interval_event("f")
        t = ds.add_thread(0, 0, 0)
        fp = t.get_or_create_function_profile(event)
        fp.set_inclusive(0, 5.0)  # A=5, B=0
        m = ds.create_derived_metric("R", "A / B")
        assert fp.get_inclusive(m.index) == 0.0

    def test_duplicate_name_rejected(self, simple_trial):
        with pytest.raises(ValueError):
            simple_trial.create_derived_metric("TIME", "TIME * 1")

    def test_quoted_metric_names(self):
        ds = DataSource()
        ds.add_metric("WALL CLOCK")
        event = ds.add_interval_event("f")
        fp = ds.add_thread(0, 0, 0).get_or_create_function_profile(event)
        fp.set_inclusive(0, 3.0)
        m = ds.create_derived_metric("DOUBLED", '"WALL CLOCK" * 2')
        assert fp.get_inclusive(m.index) == 6.0

    def test_derived_also_computed_on_aggregates(self, simple_trial):
        m = simple_trial.create_derived_metric("X", "TIME * 2")
        total = simple_trial.total_data
        main = simple_trial.get_interval_event("main")
        assert total.function_profiles[main.index].get_inclusive(m.index) == 800.0


class TestValidation:
    def test_valid_trial_passes(self, simple_trial):
        assert simple_trial.validate() == []

    def test_exclusive_exceeding_inclusive_flagged(self):
        ds = DataSource()
        ds.add_metric("TIME")
        event = ds.add_interval_event("bad")
        fp = ds.add_thread(0, 0, 0).get_or_create_function_profile(event)
        fp.set_inclusive(0, 1.0)
        fp.set_exclusive(0, 2.0)
        problems = ds.validate()
        assert any("exclusive > inclusive" in p for p in problems)
