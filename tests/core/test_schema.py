"""Schema DDL and flexible-schema tests on both backends."""

import pytest

from repro.core.schema import (
    DEFAULT_METADATA, REQUIRED_COLUMNS, TABLE_NAMES, SchemaError,
    SchemaManager, ddl_statements, render_ddl,
)


@pytest.fixture
def manager(conn):
    m = SchemaManager(conn)
    m.install()
    return m


class TestInstall:
    def test_all_tables_created(self, manager, conn):
        existing = {t.lower() for t in conn.table_names()}
        for table in TABLE_NAMES:
            assert table in existing

    def test_idempotent(self, manager):
        manager.install()  # second call is a no-op
        assert manager.is_installed()

    def test_verify_clean(self, manager):
        assert manager.verify() == []

    def test_verify_detects_missing_table(self, manager, conn):
        conn.execute("DROP TABLE metric")
        problems = manager.verify()
        assert any("metric" in p for p in problems)

    def test_not_installed_initially(self, conn):
        assert not SchemaManager(conn).is_installed()


class TestFlexibleSchema:
    """Paper §3.2: columns can be added/removed without code changes."""

    def test_add_column_visible_in_metadata(self, manager):
        manager.add_metadata_column("experiment", "os_version", "STRING")
        assert "os_version" in manager.metadata_columns("experiment")

    def test_added_column_usable_by_entities(self, manager, conn):
        from repro.core.api.entities import Application

        manager.add_metadata_column("application", "funding_source", "STRING")
        app = Application(conn, name="x", funding_source="DOE")
        app.save()
        assert conn.scalar(
            "SELECT funding_source FROM application WHERE id = ?", (app.id,)
        ) == "DOE"

    def test_only_flexible_tables(self, manager):
        with pytest.raises(SchemaError, match="metadata columns"):
            manager.add_metadata_column("metric", "notes")

    def test_type_validation(self, manager):
        with pytest.raises(SchemaError, match="abstract type"):
            manager.add_metadata_column("trial", "x", "BLOB")

    def test_identifier_validation(self, manager):
        with pytest.raises(SchemaError, match="invalid column name"):
            manager.add_metadata_column("trial", "x; DROP TABLE trial")

    def test_default_metadata_present(self, manager):
        columns = manager.metadata_columns("trial")
        for name, _type in DEFAULT_METADATA["trial"]:
            assert name in columns

    def test_required_columns_by_table(self):
        assert REQUIRED_COLUMNS["experiment"] == ("id", "name", "application")


class TestDDLGeneration:
    @pytest.mark.parametrize(
        "dialect", ["sqlite", "minisql", "postgresql", "mysql", "oracle", "db2"]
    )
    def test_renders_for_all_dialects(self, dialect):
        text = render_ddl(dialect)
        for table in TABLE_NAMES:
            assert f"CREATE TABLE {table}" in text

    def test_postgres_uses_serial(self):
        assert "SERIAL PRIMARY KEY" in render_ddl("postgresql")

    def test_oracle_types(self):
        text = render_ddl("oracle")
        assert "VARCHAR2(4000)" in text
        assert "BINARY_DOUBLE" in text

    def test_statement_splitting(self):
        statements = ddl_statements("sqlite")
        assert len(statements) == len(TABLE_NAMES) + 14  # tables + indexes
        assert all(not s.endswith(";") for s in statements)

    def test_minisql_gets_ordered_indexes(self):
        text = render_ddl("minisql")
        assert "ON trial (experiment) USING BTREE" in text
        assert (
            "ON interval_location_profile (interval_event, metric) USING BTREE"
            in text
        )
        # sqlite (every index is already a b-tree) must not see the clause
        assert "USING" not in render_ddl("sqlite")
