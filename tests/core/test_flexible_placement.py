"""The §3.2 flexibility claim, verbatim.

> "the analysis team is free to organize the performance attribute data
> in any way they like — the compiler information can be stored in the
> APPLICATION, EXPERIMENT or TRIAL table, or not at all."
"""

import pytest

from repro.core.api.entities import Application, Experiment, Trial
from repro.core.schema import SchemaManager
from repro.core.session import PerfDMFSession


@pytest.mark.parametrize("table", ["application", "experiment", "trial"])
def test_compiler_info_placeable_in_any_flexible_table(conn, table):
    manager = SchemaManager(conn)
    manager.install()
    manager.add_metadata_column(table, "compiler_name", "STRING")
    manager.add_metadata_column(table, "compiler_version", "STRING")

    app = Application(conn, name="app")
    app.save()
    exp = Experiment(conn, name="exp", application=app.id)
    exp.save()
    trial = Trial(conn, name="t", experiment=exp.id)
    trial.save()

    target = {"application": app, "experiment": exp, "trial": trial}[table]
    target.set("compiler_name", "xlf")
    target.set("compiler_version", "8.1")
    target.save()
    target.refresh()
    assert target.get("compiler_name") == "xlf"
    assert target.get("compiler_version") == "8.1"


def test_or_not_at_all(db_url):
    """A deployment with no compiler columns anywhere still works."""
    session = PerfDMFSession(db_url)
    app = session.create_application("bare")
    exp = session.create_experiment(app, "e")
    from repro.tau.apps import EVH1

    trial = session.save_trial(
        EVH1(problem_size=0.02, timesteps=1).run(2), exp, "t"
    )
    session.set_trial(trial)
    assert session.count_data_points() > 0
    # and the entities simply report the column as absent
    assert app.get("compiler_name", "absent") == "absent"
    session.close()


def test_sessions_agnostic_to_extra_columns(db_url):
    """Adding deployment-specific columns never breaks stored queries."""
    session = PerfDMFSession(db_url)
    manager = session.schema
    manager.add_metadata_column("trial", "queue", "STRING")
    manager.add_metadata_column("trial", "account_id", "INT")
    app = session.create_application("a")
    exp = session.create_experiment(app, "e")
    from repro.tau.apps import EVH1

    trial = session.save_trial(
        EVH1(problem_size=0.02, timesteps=1).run(2), exp, "t",
        queue="batch", account_id=42,
    )
    session.set_experiment(exp)
    (listed,) = session.get_trial_list()
    assert listed.get("queue") == "batch"
    assert listed.get("account_id") == 42
    session.close()
