"""Unit tests for the shared process-pool plumbing (repro.core.parallel).

Both fan-out subsystems (bulk-ingest parsing, shard query execution)
lean on these semantics: spec-order results, TaskFailure sentinels
instead of raised exceptions, termination after timeouts, and pool
re-creation after a BrokenProcessPool.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.parallel import TaskFailure, WorkerPool, default_workers, run_tasks


def _square(x):
    return x * x


def _raise(x):
    raise ValueError(f"task {x} failed")


def _sleep(seconds):
    time.sleep(seconds)
    return seconds


def _die(x):
    os._exit(1)


def _identify(_x):
    return os.getpid()


class TestRunTasks:
    def test_results_in_spec_order(self):
        assert run_tasks(_square, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]

    def test_empty_specs(self):
        assert run_tasks(_square, []) == []

    def test_exception_becomes_task_failure(self):
        results = run_tasks(_raise, [7])
        assert len(results) == 1
        failure = results[0]
        assert isinstance(failure, TaskFailure)
        assert isinstance(failure.error, ValueError)
        assert "task 7 failed" in str(failure.error)
        assert not failure.timed_out
        assert not failure.broken_pool

    def test_mixed_success_and_failure(self):
        def pick(results, index):
            return results[index]

        results = run_tasks(_square, [2, 3]) + run_tasks(_raise, [0])
        assert pick(results, 0) == 4
        assert pick(results, 1) == 9
        assert isinstance(pick(results, 2), TaskFailure)

    def test_task_timeout_marks_failure(self):
        results = run_tasks(_sleep, [30.0], workers=1, task_timeout=0.5)
        assert isinstance(results[0], TaskFailure)
        assert results[0].timed_out

    def test_worker_death_is_broken_pool(self):
        results = run_tasks(_die, [1, 2], workers=1)
        assert all(isinstance(r, TaskFailure) for r in results)
        assert any(r.broken_pool for r in results)


class TestWorkerPool:
    def test_pool_is_lazy_and_reusable(self):
        pool = WorkerPool(workers=1)
        assert not pool.active
        try:
            assert pool.run(_square, [6]) == [36]
            assert pool.active
            first = pool.run(_identify, [None])[0]
            second = pool.run(_identify, [None])[0]
            # Same worker process across calls — the pool is persistent,
            # not re-forked per batch.
            assert first == second
        finally:
            pool.shutdown()
        assert not pool.active

    def test_broken_pool_discarded_then_reforked(self):
        pool = WorkerPool(workers=1)
        try:
            results = pool.run(_die, [1])
            assert isinstance(results[0], TaskFailure)
            assert not pool.active  # dead pool discarded eagerly
            assert pool.run(_square, [9]) == [81]  # next run re-forks
        finally:
            pool.shutdown()

    def test_timeout_tears_pool_down(self):
        pool = WorkerPool(workers=1)
        try:
            results = pool.run(_sleep, [30.0], task_timeout=0.5)
            assert results[0].timed_out
            # Terminated, not joined: the stuck worker must not survive
            # into the next batch.
            assert not pool.active
        finally:
            pool.shutdown(terminate=True)

    def test_shutdown_idempotent(self):
        pool = WorkerPool(workers=1)
        pool.shutdown()
        pool.shutdown(terminate=True)

    def test_workers_floor_is_one(self):
        assert WorkerPool(workers=0).workers == 1
        assert WorkerPool(workers=-3).workers == 1

    def test_fork_context_with_initializer(self):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("fork start method unavailable")
        pool = WorkerPool(
            workers=1, mp_context="fork",
            initializer=_init_marker, initargs=(42,),
        )
        try:
            assert pool.run(_read_marker, [None]) == [42]
        finally:
            pool.shutdown()


_MARKER = None


def _init_marker(value):
    global _MARKER
    _MARKER = value


def _read_marker(_x):
    return _MARKER


class TestDefaultWorkers:
    def test_capped_by_task_count(self):
        assert default_workers(1) == 1
        assert default_workers(10 ** 6) == (os.cpu_count() or 1)
