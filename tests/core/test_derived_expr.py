"""Tests for the derived-metric expression evaluator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model.derived_expr import (
    DerivedExpressionError, evaluate_metric_expression, metric_names_in,
    tokenize_expression,
)

LOOKUP = {"TIME": 100.0, "PAPI_FP_OPS": 5000.0, "WALL CLOCK": 7.0, "A": 2.0, "B": 3.0}


def ev(expr: str) -> float:
    return evaluate_metric_expression(expr, lambda n: LOOKUP[n])


class TestTokenizer:
    def test_basic(self):
        assert tokenize_expression("A + B*2") == ["A", "+", "B", "*", "2"]

    def test_quoted_names(self):
        assert tokenize_expression('"WALL CLOCK" / 2') == ['"WALL CLOCK"', "/", "2"]

    def test_scientific_notation(self):
        assert tokenize_expression("1.5e-3") == ["1.5e-3"]

    def test_unterminated_quote(self):
        with pytest.raises(DerivedExpressionError):
            tokenize_expression('"oops')

    def test_bad_character(self):
        with pytest.raises(DerivedExpressionError):
            tokenize_expression("A @ B")


class TestEvaluation:
    def test_metric_lookup(self):
        assert ev("TIME") == 100.0

    def test_arithmetic_precedence(self):
        assert ev("A + B * 2") == 8.0
        assert ev("(A + B) * 2") == 10.0

    def test_division(self):
        assert ev("PAPI_FP_OPS / TIME") == 50.0

    def test_division_by_zero_yields_zero(self):
        assert evaluate_metric_expression("A / 0", lambda n: 1.0) == 0.0

    def test_unary_minus(self):
        assert ev("-A + B") == 1.0

    def test_quoted_name(self):
        assert ev('"WALL CLOCK" * 2') == 14.0

    def test_numbers(self):
        assert ev("2.5 * 4") == 10.0
        assert ev("1e2 + 1") == 101.0

    def test_unknown_metric(self):
        with pytest.raises(DerivedExpressionError, match="unknown metric"):
            ev("NOPE")

    def test_empty_expression(self):
        with pytest.raises(DerivedExpressionError):
            ev("")

    def test_trailing_garbage(self):
        with pytest.raises(DerivedExpressionError, match="trailing"):
            ev("A B")

    def test_missing_paren(self):
        with pytest.raises(DerivedExpressionError):
            ev("(A + B")


class TestMetricNamesIn:
    def test_extracts_names(self):
        assert metric_names_in("PAPI_FP_OPS / TIME") == ["PAPI_FP_OPS", "TIME"]

    def test_skips_numbers(self):
        assert metric_names_in("A * 2 + 1e3") == ["A"]

    def test_quoted(self):
        assert metric_names_in('"WALL CLOCK" + A') == ["WALL CLOCK", "A"]


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        a=st.floats(min_value=-1e6, max_value=1e6),
        b=st.floats(min_value=-1e6, max_value=1e6),
    )
    def test_matches_python_semantics(self, a, b):
        lookup = {"A": a, "B": b}.__getitem__
        assert evaluate_metric_expression("A + B", lookup) == pytest.approx(a + b)
        assert evaluate_metric_expression("A * B - A", lookup) == pytest.approx(
            a * b - a
        )
        expected_div = a / b if b != 0 else 0.0
        assert evaluate_metric_expression("A / B", lookup) == pytest.approx(
            expected_div
        )

    @settings(max_examples=50, deadline=None)
    @given(x=st.floats(min_value=0.001, max_value=1e6))
    def test_identity_roundtrip(self, x):
        lookup = {"X": x}.__getitem__
        assert evaluate_metric_expression("X * 2 / 2", lookup) == pytest.approx(x)
