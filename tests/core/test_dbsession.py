"""PerfDMFSession tests: storage, selection, queries, derived metrics."""

import numpy as np
import pytest

from repro.core.model import ColumnarTrial, DataSource
from repro.core.session import PerfDMFSession
from repro.tau.apps import EVH1, Miranda, SPPM


@pytest.fixture
def session(db_url):
    s = PerfDMFSession(db_url)
    yield s
    s.close()


@pytest.fixture
def populated(session):
    """A session holding one EVH1 trial, with selection set."""
    app = session.create_application("evh1", version="1.0")
    exp = session.create_experiment(app, "scaling")
    source = EVH1(problem_size=0.05, timesteps=1).run(4)
    trial = session.save_trial(source, exp, "P=4")
    session.set_application(app)
    session.set_experiment(exp)
    session.set_trial(trial)
    return session, source, app, exp, trial


class TestEntityManagement:
    def test_application_listing(self, session):
        session.create_application("a")
        session.create_application("b")
        assert [a.name for a in session.get_application_list()] == ["a", "b"]

    def test_get_or_create(self, session):
        a1 = session.get_or_create_application("x")
        a2 = session.get_or_create_application("x")
        assert a1.id == a2.id

    def test_experiment_filtered_by_application(self, session):
        a = session.create_application("a")
        b = session.create_application("b")
        session.create_experiment(a, "ea")
        session.create_experiment(b, "eb")
        session.set_application(a)
        assert [e.name for e in session.get_experiment_list()] == ["ea"]

    def test_trial_filtered_by_experiment(self, populated):
        session, _src, app, exp, _trial = populated
        assert [t.name for t in session.get_trial_list()] == ["P=4"]

    def test_trial_filtered_by_application_only(self, populated):
        session, _src, app, _exp, _trial = populated
        session.set_application(app)  # clears experiment selection
        assert [t.name for t in session.get_trial_list()] == ["P=4"]

    def test_selection_narrowing_resets_children(self, populated):
        session, *_ = populated
        assert session.selection.trial_id is not None
        session.set_application(None)
        assert session.selection.trial_id is None


class TestTrialStorage:
    def test_topology_fields_derived(self, populated):
        _session, _source, _app, _exp, trial = populated
        assert trial.get("node_count") == 4
        assert trial.get("contexts_per_node") == 1
        assert trial.get("max_threads_per_context") == 1

    def test_datapoint_count(self, populated):
        session, source, *_ = populated
        expected = source.num_threads * source.num_interval_events
        assert session.count_data_points() == expected

    def test_metrics_stored(self, populated):
        session, *_ = populated
        assert session.get_metrics() == ["TIME"]

    def test_events_with_groups(self, populated):
        session, source, *_ = populated
        events = session.get_interval_events()
        assert len(events) == source.num_interval_events
        by_name = {e["name"]: e for e in events}
        assert by_name["MPI_Alltoall()"]["group"] == "MPI"

    def test_atomic_events_stored(self, populated):
        session, source, *_ = populated
        assert len(session.get_atomic_events()) == len(source.atomic_events)

    def test_columnar_storage(self, session):
        app = session.create_application("miranda")
        exp = session.create_experiment(app, "bgl")
        trial_data = Miranda().generate(64)
        trial = session.save_trial(trial_data, exp, "64p")
        assert session.count_data_points(trial) == 64 * 101

    def test_multi_metric_storage(self, session):
        app = session.create_application("sppm")
        exp = session.create_experiment(app, "counters")
        source = SPPM(problem_size=0.01, timesteps=1).run(8)
        trial = session.save_trial(source, exp, "P=8")
        assert len(session.get_metrics(trial)) == 8


class TestSelectiveQueries:
    def test_node_filter(self, populated):
        session, source, *_ = populated
        session.set_node(2)
        rows = session.get_interval_event_data()
        assert rows
        assert all(r[1] == 2 for r in rows)

    def test_metric_and_event_filter(self, populated):
        session, *_ = populated
        session.set_metric("TIME")
        session.set_event("riemann")
        rows = session.get_interval_event_data()
        assert len(rows) == 4  # one per thread
        assert all(r[0] == "riemann" for r in rows)

    def test_filters_compose(self, populated):
        session, *_ = populated
        session.set_node(1)
        session.set_event("riemann")
        rows = session.get_interval_event_data()
        assert len(rows) == 1

    def test_values_roundtrip(self, populated):
        session, source, *_ = populated
        session.set_event("riemann")
        session.set_metric("TIME")
        rows = session.get_interval_event_data()
        event = source.get_interval_event("riemann")
        for name, node, ctx, thr, metric, inc, exc, calls, subrs in rows:
            fp = source.get_thread(node, ctx, thr).function_profiles[event.index]
            assert inc == pytest.approx(fp.get_inclusive(0))
            assert exc == pytest.approx(fp.get_exclusive(0))
            assert calls == fp.calls

    def test_no_trial_selected_raises(self, session):
        with pytest.raises(ValueError, match="no trial selected"):
            session.get_interval_event_data()


class TestSummaries:
    def test_mean_summary_matches_model(self, populated):
        session, source, *_ = populated
        rows = {r[0]: r for r in session.get_summary("mean", metric_name="TIME")}
        event = source.get_interval_event("riemann")
        model_mean = source.mean_data.function_profiles[event.index]
        assert rows["riemann"][1] == pytest.approx(model_mean.get_inclusive(0))

    def test_total_summary_matches_model(self, populated):
        session, source, *_ = populated
        rows = {r[0]: r for r in session.get_summary("total", metric_name="TIME")}
        event = source.get_interval_event("riemann")
        model_total = source.total_data.function_profiles[event.index]
        assert rows["riemann"][2] == pytest.approx(model_total.get_exclusive(0))

    def test_bad_kind_rejected(self, populated):
        session, *_ = populated
        with pytest.raises(ValueError):
            session.get_summary("median")


class TestAggregates:
    def test_aggregate_matches_numpy(self, populated):
        session, source, *_ = populated
        from repro.core.toolkit.stats import event_values

        values = event_values(source, "riemann", inclusive=False)
        assert session.aggregate("min", event_name="riemann") == pytest.approx(values.min())
        assert session.aggregate("max", event_name="riemann") == pytest.approx(values.max())
        assert session.aggregate("mean", event_name="riemann") == pytest.approx(values.mean())
        assert session.aggregate("stddev", event_name="riemann") == pytest.approx(
            values.std(ddof=1)
        )

    def test_aggregate_inclusive_column(self, populated):
        session, *_ = populated
        v = session.aggregate("sum", "inclusive", event_name="main")
        assert v > 0

    def test_invalid_operation(self, populated):
        session, *_ = populated
        with pytest.raises(ValueError, match="unsupported aggregate"):
            session.aggregate("mode")

    def test_invalid_column(self, populated):
        session, *_ = populated
        with pytest.raises(ValueError, match="unknown profile column"):
            session.aggregate("min", "secret")


class TestLoadDatasource:
    def test_full_roundtrip(self, populated):
        session, source, _app, _exp, trial = populated
        back = session.load_datasource(trial)
        assert back.num_threads == source.num_threads
        assert set(back.interval_events) == set(source.interval_events)
        for name, event in source.interval_events.items():
            back_event = back.get_interval_event(name)
            for thread in source.all_threads():
                src = thread.function_profiles.get(event.index)
                dst = back.get_thread(*thread.triple).function_profiles.get(
                    back_event.index
                )
                if src is None:
                    continue
                assert dst.get_inclusive(0) == pytest.approx(src.get_inclusive(0))
                assert dst.calls == src.calls

    def test_trial_metadata_roundtrip(self, session):
        app = session.create_application("meta")
        exp = session.create_experiment(app, "e")
        source = EVH1(problem_size=0.02, timesteps=1).run(2)
        source.metadata["platform"] = "BlueGene/L"
        source.metadata["compiler"] = "xlf 8.1"
        trial = session.save_trial(source, exp, "t")
        back = session.load_datasource(trial)
        assert back.metadata["platform"] == "BlueGene/L"
        assert back.metadata["compiler"] == "xlf 8.1"

    def test_atomic_events_roundtrip(self, populated):
        session, source, _app, _exp, trial = populated
        back = session.load_datasource(trial)
        assert set(back.atomic_events) == set(source.atomic_events)
        name = next(iter(source.atomic_events))
        src_up = source.get_thread(0, 0, 0).user_event_profiles[
            source.get_atomic_event(name).index
        ]
        dst_up = back.get_thread(0, 0, 0).user_event_profiles[
            back.get_atomic_event(name).index
        ]
        assert dst_up.count == src_up.count
        assert dst_up.mean_value == pytest.approx(src_up.mean_value)


class TestDerivedMetrics:
    def test_derived_on_stored_trial(self, session):
        app = session.create_application("sppm")
        exp = session.create_experiment(app, "x")
        source = SPPM(problem_size=0.01, timesteps=1).run(4)
        trial = session.save_trial(source, exp, "t")
        session.set_trial(trial)
        session.save_derived_metric("MFLOPS", "PAPI_FP_OPS / TIME")
        assert "MFLOPS" in session.get_metrics()
        fp = session.aggregate("mean", "inclusive", event_name="hydro_kernel",
                               metric_name="PAPI_FP_OPS")
        t = session.aggregate("mean", "inclusive", event_name="hydro_kernel",
                              metric_name="TIME")
        # per-row ratio then mean != mean ratio, so compare per-row
        session.set_event("hydro_kernel")
        session.set_metric("MFLOPS")
        rows = session.get_interval_event_data()
        assert rows
        assert all(r[5] > 0 for r in rows)

    def test_duplicate_name_rejected(self, populated):
        session, *_ = populated
        with pytest.raises(ValueError, match="already exists"):
            session.save_derived_metric("TIME", "TIME")

    def test_unknown_source_metric(self, populated):
        session, *_ = populated
        with pytest.raises(ValueError, match="unknown metric"):
            session.save_derived_metric("X", "PAPI_FP_OPS / TIME")

    def test_derived_flag_set(self, populated):
        session, _src, _a, _e, trial = populated
        session.save_derived_metric("T2", "TIME * 2")
        derived = session.connection.scalar(
            "SELECT derived FROM metric WHERE name = 'T2'"
        )
        assert derived == 1

    def test_derived_summary_rows_written(self, populated):
        session, _src, _a, _e, trial = populated
        mid = session.save_derived_metric("T2", "TIME * 2")
        count = session.connection.scalar(
            "SELECT count(*) FROM interval_total_summary WHERE metric = ?",
            (mid,),
        )
        assert count > 0

    def test_derived_loadable(self, populated):
        session, source, _a, _e, trial = populated
        session.save_derived_metric("T2", "TIME * 2")
        back = session.load_datasource(trial)
        t2 = back.get_metric("T2")
        assert t2 is not None and t2.derived
        event = back.get_interval_event("riemann")
        fp = back.get_thread(0, 0, 0).function_profiles[event.index]
        assert fp.get_inclusive(t2.index) == pytest.approx(
            fp.get_inclusive(0) * 2
        )
