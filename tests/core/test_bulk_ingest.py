"""Parallel bulk-ingest pipeline: parse fan-out + single-writer store.

Parsing profile files in worker processes must be invisible in the
results — same payloads, same database contents — and ``save_trial``'s
bulk-load path must match the per-row legacy path on both backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.io_ import IngestReport, ingest_profiles, parse_profiles
from repro.core.model.columnar import ColumnarTrial
from repro.core.session import PerfDMFSession
from repro.tau.apps import SPPM
from repro.tau.writers import write_tau_profiles

RANKS = 8


@pytest.fixture(scope="module")
def profile_dirs(tmp_path_factory):
    base = tmp_path_factory.mktemp("ingest")
    dirs = []
    for i in range(3):
        run = SPPM(problem_size=0.01, timesteps=1, seed=40 + i).run(RANKS)
        d = base / f"run{i}"
        write_tau_profiles(run, d)
        dirs.append(d)
    return dirs


def _payloads_equal(a: ColumnarTrial, b: ColumnarTrial) -> bool:
    if (a.event_names, a.event_groups, a.metric_names) != (
        b.event_names, b.event_groups, b.metric_names
    ):
        return False
    if not np.array_equal(a.thread_triples, b.thread_triples):
        return False
    for m in range(a.num_metrics):
        if not np.array_equal(a.inclusive[m], b.inclusive[m]):
            return False
        if not np.array_equal(a.exclusive[m], b.exclusive[m]):
            return False
    return np.array_equal(a.calls, b.calls) and np.array_equal(
        a.subroutines, b.subroutines
    )


class TestParallelParse:
    def test_parallel_matches_serial(self, profile_dirs):
        serial = parse_profiles(profile_dirs, workers=1)
        parallel = parse_profiles(profile_dirs, workers=2)  # forces the pool
        assert len(serial) == len(parallel) == len(profile_dirs)
        for a, b in zip(serial, parallel):
            assert _payloads_equal(a, b)

    def test_order_preserved_and_source_recorded(self, profile_dirs):
        payloads = parse_profiles(profile_dirs, workers=2)
        for target, payload in zip(profile_dirs, payloads):
            assert payload.metadata["ingest_source"] == str(target)

    def test_single_target_skips_pool(self, profile_dirs):
        (only,) = parse_profiles(profile_dirs[:1])
        assert only.num_threads == RANKS


class TestIngestPipeline:
    @pytest.fixture(params=["sqlite", "minisql"])
    def session(self, request):
        s = PerfDMFSession(f"{request.param}://:memory:")
        yield s
        s.close()

    def test_ingest_stores_every_trial(self, session, profile_dirs):
        app = session.create_application("sppm")
        exp = session.create_experiment(app, "e")
        report = ingest_profiles(session, exp, profile_dirs, workers=2)
        assert isinstance(report, IngestReport)
        assert report.files == len(profile_dirs)
        assert len(report.trials) == len(profile_dirs)
        assert report.rows == session.connection.scalar(
            "SELECT count(*) FROM interval_location_profile"
        )
        assert {t.name for t in report.trials} == {
            d.name for d in profile_dirs
        }

    def test_pipeline_stats_reach_connection(self, session, profile_dirs):
        app = session.create_application("sppm")
        exp = session.create_experiment(app, "e")
        report = ingest_profiles(session, exp, profile_dirs, workers=2)
        stats = session.connection.stats()
        assert stats["ingest_rows"] == report.rows
        assert stats["ingest_parse_seconds"] == report.parse_seconds
        assert stats["ingest_rows_per_second"] == report.rows_per_second
        assert report.total_seconds > 0

    def test_custom_names_and_length_check(self, session, profile_dirs):
        app = session.create_application("sppm")
        exp = session.create_experiment(app, "e")
        names = [f"trial-{i}" for i in range(len(profile_dirs))]
        report = ingest_profiles(
            session, exp, profile_dirs, workers=1, names=names
        )
        assert [t.name for t in report.trials] == names
        with pytest.raises(ValueError):
            ingest_profiles(session, exp, profile_dirs, names=["just-one"])


class TestSaveTrialBulkParity:
    @pytest.fixture(scope="class")
    def columnar(self):
        trial = ColumnarTrial.allocate(
            [f"ev{i}" for i in range(9)],
            ["TIME", "PAPI_FP_OPS"],
            ColumnarTrial.flat_topology(17),
        )
        rng = np.random.default_rng(7)
        for m in range(2):
            trial.inclusive[m][:] = rng.random((17, 9)) * 100
            trial.exclusive[m][:] = trial.inclusive[m] * 0.5
        trial.calls[:] = rng.integers(1, 50, (17, 9)).astype(float)
        trial.subroutines[:] = rng.integers(0, 5, (17, 9)).astype(float)
        return trial

    @pytest.mark.parametrize("url", ["sqlite://:memory:", "minisql://:memory:"])
    def test_bulk_and_legacy_paths_store_identical_rows(self, url, columnar):
        contents = {}
        for bulk in (True, False):
            s = PerfDMFSession(url)
            app = s.create_application("a")
            exp = s.create_experiment(app, "e")
            s.save_trial(columnar, exp, "t", bulk=bulk)
            conn = s.connection
            contents[bulk] = (
                conn.query(
                    "SELECT * FROM interval_location_profile "
                    "ORDER BY metric, interval_event, node"
                ),
                conn.query(
                    "SELECT * FROM interval_total_summary "
                    "ORDER BY metric, interval_event"
                ),
                conn.query(
                    "SELECT * FROM interval_mean_summary "
                    "ORDER BY metric, interval_event"
                ),
            )
            s.close()
        assert contents[True] == contents[False]

    def test_ingest_stats_cover_every_stage(self, columnar):
        s = PerfDMFSession("minisql://:memory:")
        app = s.create_application("a")
        exp = s.create_experiment(app, "e")
        s.save_trial(columnar, exp, "t")
        stats = s.connection.stats()
        for key in (
            "ingest_parse_seconds", "ingest_insert_seconds",
            "ingest_index_seconds", "ingest_summary_seconds",
        ):
            assert stats[key] >= 0.0
        assert stats["ingest_rows"] == columnar.num_data_points
        assert stats["ingest_rows_per_second"] > 0
        assert stats["bulk_loads"] == 1
        assert stats["bulk_index_rebuilds"] > 0
        s.close()

    def test_location_rows_vectorised_matches_generator(self, columnar):
        for m in range(columnar.num_metrics):
            fast = columnar.location_rows(m)
            slow = list(columnar.iter_location_rows(m))
            assert len(fast) == len(slow)
            for f, s in zip(fast, slow):
                assert f == pytest.approx(s)


class TestParseRetryAndErrors:
    """Coordinator-side resilience: a failed or timed-out worker parse is
    retried once serially, and a genuinely bad file fails the batch with
    an error that names it."""

    def test_corrupt_profile_names_its_path(self, profile_dirs, tmp_path):
        from repro.core.io_.bulk import ProfileParseError

        corrupt = tmp_path / "corrupt_run"
        corrupt.mkdir()
        (corrupt / "profile.0.0.0").write_text("this is not a TAU profile\n")
        targets = [profile_dirs[0], corrupt, profile_dirs[1]]
        with pytest.raises(ProfileParseError) as exc_info:
            parse_profiles(targets, workers=2)
        assert exc_info.value.path == str(corrupt)
        assert str(corrupt) in str(exc_info.value)
        assert exc_info.value.cause is not None
        # The serial path reports identically.
        with pytest.raises(ProfileParseError) as serial_info:
            parse_profiles([corrupt], workers=1)
        assert serial_info.value.path == str(corrupt)

    def test_transient_worker_failure_retried_once(
        self, profile_dirs, monkeypatch
    ):
        """A parse that fails only in the worker process succeeds on the
        coordinator's serial retry; the batch completes with a counter
        bump instead of an error."""
        import os as _os

        from repro.core.io_ import bulk
        from repro.obs.metrics import registry as _registry

        parent_pid = _os.getpid()
        flaky_target = str(profile_dirs[1])
        real_load = bulk.load_profile

        def load_flaky_in_workers(target, format_name=None):
            # Workers are forked after the patch, so they inherit this
            # wrapper; only the coordinator process parses successfully.
            if _os.getpid() != parent_pid and str(target) == flaky_target:
                raise RuntimeError("transient worker failure")
            return real_load(target, format_name)

        monkeypatch.setattr(bulk, "load_profile", load_flaky_in_workers)
        before = _registry.counter("ingest.parse_retries").value
        payloads = parse_profiles(profile_dirs, workers=2)
        assert len(payloads) == len(profile_dirs)
        assert all(p is not None for p in payloads)
        assert payloads[1].metadata["ingest_source"] == flaky_target
        assert _registry.counter("ingest.parse_retries").value == before + 1

    def test_task_timeout_falls_back_to_serial_retry(
        self, profile_dirs, monkeypatch
    ):
        import os as _os
        import time as _time

        from repro.core.io_ import bulk

        parent_pid = _os.getpid()
        slow_target = str(profile_dirs[0])
        real_load = bulk.load_profile

        def load_slow_in_workers(target, format_name=None):
            if _os.getpid() != parent_pid and str(target) == slow_target:
                _time.sleep(15.0)  # far past the task timeout
            return real_load(target, format_name)

        monkeypatch.setattr(bulk, "load_profile", load_slow_in_workers)
        t0 = _time.perf_counter()
        payloads = parse_profiles(
            [profile_dirs[0], profile_dirs[1]], workers=2, task_timeout=1.0
        )
        elapsed = _time.perf_counter() - t0
        assert len(payloads) == 2 and all(p is not None for p in payloads)
        assert payloads[0].metadata["ingest_source"] == slow_target
        # The hung worker sleeps 15s; pool teardown must terminate it
        # rather than join it, so the whole call stays well under that.
        assert elapsed < 10.0, f"pool shutdown joined a hung worker ({elapsed:.1f}s)"
