"""Tests for the vectorised columnar trial loader."""

import numpy as np
import pytest

from repro.core.model import ColumnarTrial
from repro.core.session import PerfDMFSession
from repro.tau.apps import EVH1, Miranda, SPPM


@pytest.fixture
def session(db_url):
    s = PerfDMFSession(db_url)
    yield s
    s.close()


class TestLoadColumnar:
    def test_matches_generated_data(self, session):
        app = session.create_application("m")
        exp = session.create_experiment(app, "e")
        generated = Miranda().generate(64)
        trial = session.save_trial(generated, exp, "t")
        loaded = session.load_columnar(trial)
        assert loaded.event_names == generated.event_names
        assert loaded.metric_names == generated.metric_names
        np.testing.assert_allclose(loaded.inclusive[0], generated.inclusive[0])
        np.testing.assert_allclose(loaded.exclusive[0], generated.exclusive[0])
        np.testing.assert_allclose(loaded.calls, generated.calls)

    def test_matches_object_loader(self, session):
        app = session.create_application("e")
        exp = session.create_experiment(app, "x")
        source = EVH1(problem_size=0.05, timesteps=1).run(4)
        trial = session.save_trial(source, exp, "t")
        columnar = session.load_columnar(trial)
        objectful = ColumnarTrial.from_datasource(session.load_datasource(trial))
        assert columnar.event_names == objectful.event_names
        np.testing.assert_allclose(columnar.inclusive[0], objectful.inclusive[0])
        np.testing.assert_allclose(columnar.subroutines, objectful.subroutines)

    def test_multi_metric(self, session):
        app = session.create_application("s")
        exp = session.create_experiment(app, "x")
        source = SPPM(problem_size=0.01, timesteps=1).run(8)
        trial = session.save_trial(source, exp, "t")
        columnar = session.load_columnar(trial)
        assert columnar.num_metrics == 8
        fp_index = columnar.metric_names.index("PAPI_FP_OPS")
        assert columnar.exclusive[fp_index].sum() > 0

    def test_usable_for_clustering(self, session):
        from repro.explorer import cluster_trial

        app = session.create_application("s2")
        exp = session.create_experiment(app, "x")
        source = SPPM(problem_size=0.01, timesteps=1).run(27)
        trial = session.save_trial(source, exp, "t")
        columnar = session.load_columnar(trial)
        fp_index = columnar.metric_names.index("PAPI_FP_OPS")
        result = cluster_trial(columnar, k=2, metric=fp_index)
        assert sum(result.sizes) == 27

    def test_empty_trial_raises(self, session):
        app = session.create_application("empty")
        exp = session.create_experiment(app, "x")
        from repro.core.api.entities import Trial

        trial = Trial(session.connection, name="bare", experiment=exp.id)
        trial.save()
        with pytest.raises(ValueError, match="no stored profile data"):
            session.load_columnar(trial)

    def test_groups_preserved(self, session):
        app = session.create_application("g")
        exp = session.create_experiment(app, "x")
        source = EVH1(problem_size=0.05, timesteps=1).run(2)
        trial = session.save_trial(source, exp, "t")
        columnar = session.load_columnar(trial)
        index = columnar.event_names.index("MPI_Alltoall()")
        assert columnar.event_groups[index] == "MPI"
