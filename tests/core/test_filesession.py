"""FileDataSession tests — the flat-file access method (paper §4)."""

import pytest

from repro.core.session import FileDataSession
from repro.tau.apps import SPPM
from repro.tau.writers import write_tau_profiles


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    base = tmp_path_factory.mktemp("filesession")
    source = SPPM(problem_size=0.01, timesteps=1).run(8)
    write_tau_profiles(source, base / "tau")
    return FileDataSession(
        base / "tau",
        application_name="sppm",
        experiment_name="counters",
        trial_name="P=8",
    )


class TestVirtualHierarchy:
    def test_single_application(self, session):
        apps = session.get_application_list()
        assert apps == [{"id": 0, "name": "sppm"}]

    def test_single_experiment(self, session):
        exps = session.get_experiment_list()
        assert exps[0]["name"] == "counters"

    def test_trial_reports_topology(self, session):
        (trial,) = session.get_trial_list()
        assert trial["name"] == "P=8"
        assert trial["node_count"] == 8
        assert trial["max_threads_per_context"] == 1

    def test_preselected(self, session):
        assert session.selection.trial_id == 0


class TestQueries:
    def test_metrics(self, session):
        metrics = session.get_metrics()
        assert len(metrics) == 8  # TIME + 7 PAPI counters

    def test_interval_events(self, session):
        events = session.get_interval_events()
        names = {e["name"] for e in events}
        assert "hydro_kernel" in names

    def test_event_name_filter(self, session):
        session.set_event("hydro_kernel")
        assert len(session.get_interval_events()) == 1
        session.set_event(None)

    def test_atomic_events(self, session):
        events = session.get_atomic_events()
        assert any("Timestep zones" in e["name"] for e in events)

    def test_interval_event_data_filters(self, session):
        session.set_node(3)
        rows = session.get_interval_event_data()
        assert rows and all(r[1] == 3 for r in rows)
        session.set_metric(session.get_metrics()[0])
        filtered = session.get_interval_event_data()
        assert len(filtered) < len(rows)
        session.reset_selection()

    def test_row_shape_matches_db_session(self, session):
        session.reset_selection()
        session.set_event("hydro_kernel")
        row = session.get_interval_event_data()[0]
        assert len(row) == 9  # event,node,ctx,thr,metric,inc,exc,calls,subrs
        assert row[0] == "hydro_kernel"
        session.reset_selection()

    def test_load_datasource(self, session):
        source = session.load_datasource()
        assert source.num_threads == 8


class TestConstruction:
    def test_from_datasource_directly(self):
        source = SPPM(problem_size=0.01, timesteps=1).run(2)
        session = FileDataSession(source)
        assert session.load_datasource() is source

    def test_explicit_format(self, tmp_path):
        source = SPPM(problem_size=0.01, timesteps=1).run(2)
        write_tau_profiles(source, tmp_path)
        session = FileDataSession(tmp_path, format_name="tau")
        assert session.load_datasource().num_threads == 2

    def test_context_manager(self):
        source = SPPM(problem_size=0.01, timesteps=1).run(2)
        with FileDataSession(source) as session:
            assert session.get_metrics()
