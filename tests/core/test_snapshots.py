"""Tests for snapshot (time-series) profiles and drift analysis."""

import numpy as np
import pytest

from repro.core.model import DataSource
from repro.core.model.snapshot import Snapshot, SnapshotSeries, drift_report
from repro.tau.apps import EVH1
from repro.tau.snapshots import capture_series


def make_source(value: float, events=("f",)) -> DataSource:
    ds = DataSource()
    ds.add_metric("TIME")
    thread = ds.add_thread(0, 0, 0)
    for name in events:
        event = ds.add_interval_event(name)
        fp = thread.get_or_create_function_profile(event)
        fp.set_inclusive(0, value)
        fp.set_exclusive(0, value)
        fp.calls = 1
    ds.generate_statistics()
    return ds


class TestSeriesBasics:
    def test_add_ordered(self):
        series = SnapshotSeries()
        series.add(1.0, make_source(10.0))
        series.add(2.0, make_source(20.0))
        assert len(series) == 2
        assert series.final is series.snapshots[-1].source

    def test_timestamps_must_increase(self):
        series = SnapshotSeries()
        series.add(2.0, make_source(10.0))
        with pytest.raises(ValueError, match="increase"):
            series.add(1.0, make_source(20.0))

    def test_empty_final_raises(self):
        with pytest.raises(ValueError):
            SnapshotSeries().final

    def test_default_labels(self):
        series = SnapshotSeries()
        snapshot = series.add(3.5, make_source(1.0))
        assert snapshot.label == "t=3.5s"


class TestIntervals:
    def test_interval_is_difference(self):
        series = SnapshotSeries()
        series.add(1.0, make_source(10.0))
        series.add(2.0, make_source(25.0))
        (label, interval), = series.intervals()
        event = interval.get_interval_event("f")
        fp = interval.get_thread(0, 0, 0).function_profiles[event.index]
        assert fp.get_exclusive(0) == pytest.approx(15.0)

    def test_interval_count(self):
        series = SnapshotSeries()
        for t in (1.0, 2.0, 3.0, 4.0):
            series.add(t, make_source(t * 10))
        assert len(series.intervals()) == 3


class TestEventSeries:
    def test_cumulative_series(self):
        series = SnapshotSeries()
        for t, v in [(1.0, 10.0), (2.0, 30.0), (3.0, 60.0)]:
            series.add(t, make_source(v))
        timestamps, values = series.event_series("f")
        np.testing.assert_allclose(timestamps, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(values, [10.0, 30.0, 60.0])

    def test_per_interval_series(self):
        series = SnapshotSeries()
        for t, v in [(1.0, 10.0), (2.0, 30.0), (3.0, 60.0)]:
            series.add(t, make_source(v))
        timestamps, increments = series.event_series("f", per_interval=True)
        np.testing.assert_allclose(increments, [20.0, 30.0])

    def test_missing_event_is_zero(self):
        series = SnapshotSeries()
        series.add(1.0, make_source(10.0, events=("g",)))
        series.add(2.0, make_source(10.0, events=("g", "f")))
        _ts, values = series.event_series("f")
        assert values[0] == 0.0


class TestValidation:
    def test_monotonic_series_clean(self):
        series = SnapshotSeries()
        for t, v in [(1.0, 10.0), (2.0, 20.0)]:
            series.add(t, make_source(v))
        assert series.validate() == []

    def test_decrease_detected(self):
        series = SnapshotSeries()
        series.add(1.0, make_source(20.0))
        series.add(2.0, make_source(10.0))
        problems = series.validate()
        assert any("decreased" in p for p in problems)

    def test_vanished_event_detected(self):
        series = SnapshotSeries()
        series.add(1.0, make_source(10.0, events=("f", "g")))
        series.add(2.0, make_source(20.0, events=("f",)))
        problems = series.validate()
        assert any("vanished" in p for p in problems)


class TestDriftReport:
    def test_growing_event_flagged(self):
        series = SnapshotSeries()
        # f grows 10 per interval at first, then 40: drifting
        for t, v in [(1.0, 10.0), (2.0, 20.0), (3.0, 60.0)]:
            series.add(t, make_source(v))
        report = drift_report(series, threshold=1.5)
        assert report and report[0]["event"] == "f"
        assert report[0]["ratio"] == pytest.approx(4.0)

    def test_steady_event_not_flagged(self):
        series = SnapshotSeries()
        for t, v in [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]:
            series.add(t, make_source(v))
        assert drift_report(series, threshold=1.5) == []

    def test_short_series_empty(self):
        series = SnapshotSeries()
        series.add(1.0, make_source(10.0))
        series.add(2.0, make_source(20.0))
        assert drift_report(series) == []


class TestCaptureFromSimulator:
    @pytest.fixture(scope="class")
    def series(self):
        return capture_series(
            lambda n: EVH1(problem_size=0.1, timesteps=n, seed=7),
            ranks=2,
            steps=[1, 2, 3],
        )

    def test_replay_is_cumulative(self, series):
        assert series.validate() == []

    def test_steps_must_increase(self):
        with pytest.raises(ValueError):
            capture_series(
                lambda n: EVH1(timesteps=n), ranks=2, steps=[2, 1]
            )

    def test_per_step_activity_positive(self, series):
        _ts, increments = series.event_series("riemann", per_interval=True)
        assert (increments > 0).all()

    def test_init_only_in_first_interval(self, series):
        """Setup cost happens once: later intervals add ~nothing."""
        _ts, increments = series.event_series("init", per_interval=True)
        assert abs(increments[-1]) < 1e-6
