"""Tests for callpath utilities and the columnar representation."""

import numpy as np
import pytest

from repro.core.model import (
    ColumnarTrial, DataSource, build_call_graph, callpath_depth, children_of,
    flatten_callpaths, root_events, split_callpath,
)
from repro.core.model.events import IntervalEvent


@pytest.fixture
def callpath_trial() -> DataSource:
    ds = DataSource()
    ds.add_metric("TIME")
    paths = {
        "main": (100.0, 5.0, 1),
        "main => solve": (60.0, 20.0, 10),
        "main => solve => MPI_Send()": (40.0, 40.0, 100),
        "main => io": (35.0, 35.0, 2),
    }
    thread = ds.add_thread(0, 0, 0)
    for name, (inc, exc, calls) in paths.items():
        event = ds.add_interval_event(name)
        fp = thread.get_or_create_function_profile(event)
        fp.set_inclusive(0, inc)
        fp.set_exclusive(0, exc)
        fp.calls = calls
    ds.generate_statistics()
    return ds


class TestCallpath:
    def test_split(self):
        assert split_callpath("a => b => c") == ["a", "b", "c"]

    def test_depth(self):
        assert callpath_depth(IntervalEvent("a")) == 1
        assert callpath_depth(IntervalEvent("a => b => c")) == 3

    def test_call_graph_edges(self, callpath_trial):
        graph = build_call_graph(callpath_trial)
        assert set(graph.edges) == {
            ("main", "solve"), ("solve", "MPI_Send()"), ("main", "io"),
        }

    def test_root_events(self, callpath_trial):
        roots = root_events(callpath_trial)
        assert [e.name for e in roots] == ["main"]

    def test_children_of(self, callpath_trial):
        kids = children_of(callpath_trial, "main")
        assert sorted(e.name for e in kids) == ["main => io", "main => solve"]

    def test_children_of_deeper(self, callpath_trial):
        kids = children_of(callpath_trial, "main => solve")
        assert [e.name for e in kids] == ["main => solve => MPI_Send()"]

    def test_flatten_sums_exclusive(self, callpath_trial):
        flat = flatten_callpaths(callpath_trial)
        thread = flat.get_thread(0, 0, 0)
        send = flat.get_interval_event("MPI_Send()")
        fp = thread.function_profiles[send.index]
        assert fp.get_exclusive(0) == 40.0
        assert fp.get_inclusive(0) == 40.0
        assert fp.calls == 100

    def test_flatten_merges_same_leaf(self):
        ds = DataSource()
        ds.add_metric("TIME")
        thread = ds.add_thread(0, 0, 0)
        for name, exc in [("a => x", 1.0), ("b => x", 2.0)]:
            fp = thread.get_or_create_function_profile(ds.add_interval_event(name))
            fp.set_inclusive(0, exc)
            fp.set_exclusive(0, exc)
            fp.calls = 1
        flat = flatten_callpaths(ds)
        x = flat.get_interval_event("x")
        fp = flat.get_thread(0, 0, 0).function_profiles[x.index]
        assert fp.get_exclusive(0) == 3.0
        assert fp.calls == 2

    def test_flatten_avoids_recursion_double_count(self):
        ds = DataSource()
        ds.add_metric("TIME")
        thread = ds.add_thread(0, 0, 0)
        fp = thread.get_or_create_function_profile(
            ds.add_interval_event("fib => fib")
        )
        fp.set_inclusive(0, 10.0)
        fp.set_exclusive(0, 10.0)
        flat = flatten_callpaths(ds)
        fib = flat.get_interval_event("fib")
        flat_fp = flat.get_thread(0, 0, 0).function_profiles[fib.index]
        assert flat_fp.get_exclusive(0) == 10.0
        assert flat_fp.get_inclusive(0) == 0.0  # recursive frame not re-counted


class TestColumnarTrial:
    @pytest.fixture
    def trial(self) -> ColumnarTrial:
        trial = ColumnarTrial.allocate(
            event_names=["main", "solve"],
            metric_names=["TIME"],
            thread_triples=ColumnarTrial.flat_topology(4),
        )
        trial.inclusive[0][:, 0] = 100.0
        trial.exclusive[0][:, 0] = 10.0
        trial.inclusive[0][:, 1] = [90, 80, 70, 60]
        trial.exclusive[0][:, 1] = [90, 80, 70, 60]
        trial.calls[:, :] = 1.0
        return trial

    def test_shapes(self, trial):
        assert trial.num_threads == 4
        assert trial.num_events == 2
        assert trial.num_metrics == 1
        assert trial.num_data_points == 8

    def test_flat_topology(self):
        triples = ColumnarTrial.flat_topology(3)
        assert triples.tolist() == [[0, 0, 0], [1, 0, 0], [2, 0, 0]]

    def test_total_summary(self, trial):
        totals = trial.total_summary(0)
        assert totals["inclusive"].tolist() == [400.0, 300.0]

    def test_mean_summary(self, trial):
        means = trial.mean_summary(0)
        assert means["inclusive"].tolist() == [100.0, 75.0]

    def test_inclusive_percent_reference_is_thread_max(self, trial):
        pct = trial.inclusive_percent(0)
        assert pct[0, 0] == 100.0
        assert pct[0, 1] == pytest.approx(90.0)
        assert pct[3, 1] == pytest.approx(60.0)

    def test_per_call(self, trial):
        trial.calls[:, 1] = 2.0
        per_call = trial.inclusive_per_call(0)
        assert per_call[1, 1] == 40.0

    def test_per_call_zero_calls_is_zero(self, trial):
        trial.calls[:, :] = 0.0
        assert trial.inclusive_per_call(0).max() == 0.0

    def test_imbalance(self, trial):
        imb = trial.imbalance(0)
        assert imb[0] == pytest.approx(1.0)
        assert imb[1] == pytest.approx(90.0 / 75.0)

    def test_location_rows_count(self, trial):
        rows = list(trial.iter_location_rows(0))
        assert len(rows) == 8
        event, node, ctx, thr = rows[0][:4]
        assert (event, node, ctx, thr) == (0, 0, 0, 0)

    def test_roundtrip_through_datasource(self, trial):
        ds = trial.to_datasource()
        back = ColumnarTrial.from_datasource(ds)
        assert back.event_names == trial.event_names
        np.testing.assert_allclose(back.inclusive[0], trial.inclusive[0])
        np.testing.assert_allclose(back.calls, trial.calls)

    def test_from_datasource_preserves_sparsity(self):
        ds = DataSource()
        ds.add_metric("TIME")
        rare = ds.add_interval_event("rare")
        t0 = ds.add_thread(0, 0, 0)
        ds.add_thread(1, 0, 0)
        fp = t0.get_or_create_function_profile(rare)
        fp.set_inclusive(0, 4.0)
        fp.calls = 1
        trial = ColumnarTrial.from_datasource(ds)
        assert trial.inclusive[0][0, 0] == 4.0
        assert trial.inclusive[0][1, 0] == 0.0
        # and back: thread 1 has no profile for 'rare'
        ds2 = trial.to_datasource()
        assert ds2.get_thread(1, 0, 0).function_profiles == {}
