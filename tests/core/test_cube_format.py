"""Tests for CUBE 3.x export/import (§7's CUBE integration)."""

import pytest

from repro.core.io_ import detect_format, export_cube, load_profile, parse_cube
from repro.core.io_.base import ProfileParseError
from repro.core.model import DataSource
from repro.tau.apps import EVH1, SPPM
from repro.tau.simulator import run_simulation


@pytest.fixture(scope="module")
def callpath_trial():
    """An instrumented trial with TAU_CALLPATH events enabled."""
    app = EVH1(problem_size=0.05, timesteps=1)
    config = app.config(4)
    config.callpaths = True
    return run_simulation(app.kernel, config)


@pytest.fixture(scope="module")
def counter_trial():
    return SPPM(problem_size=0.01, timesteps=1).run(4)


class TestExport:
    def test_document_structure(self, counter_trial, tmp_path):
        path = export_cube(counter_trial, tmp_path / "t.cube")
        text = path.read_text()
        for tag in ("<cube version=\"3.0\">", "<metrics>", "<program>",
                    "<system>", "<severity>", "visits"):
            assert tag in text

    def test_autodetected(self, counter_trial, tmp_path):
        path = export_cube(counter_trial, tmp_path / "t.cube")
        assert detect_format(path) == "cube"

    def test_all_metrics_exported(self, counter_trial, tmp_path):
        path = export_cube(counter_trial, tmp_path / "t.cube")
        text = path.read_text()
        for metric in counter_trial.metrics:
            assert f"<uniq_name>{metric.name}</uniq_name>" in text


class TestRoundtrip:
    def test_exclusive_values(self, counter_trial, tmp_path):
        path = export_cube(counter_trial, tmp_path / "t.cube")
        back = parse_cube(path)
        assert back.num_threads == counter_trial.num_threads
        assert set(back.interval_events) == set(counter_trial.interval_events)
        for name, event in counter_trial.interval_events.items():
            back_event = back.get_interval_event(name)
            for thread in counter_trial.all_threads():
                src = thread.function_profiles.get(event.index)
                if src is None:
                    continue
                dst = back.get_thread(*thread.triple).function_profiles[
                    back_event.index
                ]
                for m, _inc, exc in src.iter_metrics():
                    assert dst.get_exclusive(m) == pytest.approx(exc)

    def test_calls_roundtrip_via_visits(self, counter_trial, tmp_path):
        path = export_cube(counter_trial, tmp_path / "t.cube")
        back = parse_cube(path)
        event = counter_trial.get_interval_event("hydro_kernel")
        back_event = back.get_interval_event("hydro_kernel")
        src = counter_trial.get_thread(0, 0, 0).function_profiles[event.index]
        dst = back.get_thread(0, 0, 0).function_profiles[back_event.index]
        assert dst.calls == src.calls

    def test_inclusive_reconstructed_from_tree(self, callpath_trial, tmp_path):
        """CUBE stores exclusives; inclusives come from the cnode tree."""
        path = export_cube(callpath_trial, tmp_path / "t.cube")
        back = parse_cube(path)
        assert back.validate() == []
        # roots must have inclusive >= exclusive with real child time
        main_event = back.get_interval_event("main")
        fp = back.get_thread(0, 0, 0).function_profiles[main_event.index]
        assert fp.get_inclusive(0) > fp.get_exclusive(0)

    def test_loadable_through_registry(self, counter_trial, tmp_path):
        path = export_cube(counter_trial, tmp_path / "t.cube")
        source = load_profile(path)
        assert source.num_threads == 4


class TestParserErrors:
    def test_wrong_root(self, tmp_path):
        p = tmp_path / "x.cube"
        p.write_text("<other/>")
        with pytest.raises(ProfileParseError, match="cube"):
            parse_cube(p)

    def test_malformed(self, tmp_path):
        p = tmp_path / "x.cube"
        p.write_text("<cube><broken>")
        with pytest.raises(ProfileParseError, match="malformed"):
            parse_cube(p)

    def test_missing_metrics(self, tmp_path):
        p = tmp_path / "x.cube"
        p.write_text('<cube version="3.0"></cube>')
        with pytest.raises(ProfileParseError, match="metrics"):
            parse_cube(p)


class TestEmptyAndEdgeCases:
    def test_empty_trial(self, tmp_path):
        ds = DataSource()
        ds.add_metric("TIME")
        path = export_cube(ds, tmp_path / "empty.cube")
        back = parse_cube(path)
        assert back.num_threads == 0
        assert back.num_interval_events == 0

    def test_special_characters_in_names(self, tmp_path):
        ds = DataSource()
        ds.add_metric("TIME")
        event = ds.add_interval_event("op<T>&co")
        fp = ds.add_thread(0, 0, 0).get_or_create_function_profile(event)
        fp.set_exclusive(0, 5.0)
        fp.set_inclusive(0, 5.0)
        path = export_cube(ds, tmp_path / "s.cube")
        back = parse_cube(path)
        assert back.get_interval_event("op<T>&co") is not None
