"""§4's two access methods must agree.

> "The two methods logically organize the profile data in the same way."
> "The selection of one method does not preclude the use of the other,
> and the two are not mutually exclusive."

The same trial accessed through FileDataSession (flat files) and
PerfDMFSession (database) must yield identical query results for every
shared operation and every selection filter.
"""

import pytest

from repro.core.session import FileDataSession, PerfDMFSession
from repro.tau.apps import SPPM
from repro.tau.writers import write_tau_profiles


@pytest.fixture(scope="module")
def both_sessions(tmp_path_factory):
    source = SPPM(problem_size=0.01, timesteps=1).run(8)
    base = tmp_path_factory.mktemp("twoways")
    write_tau_profiles(source, base / "tau")

    file_session = FileDataSession(base / "tau")

    db_session = PerfDMFSession("sqlite://:memory:")
    app = db_session.create_application("sppm")
    exp = db_session.create_experiment(app, "e")
    # store the *parsed* trial so both sessions share one lineage
    trial = db_session.save_trial(file_session.datasource, exp, "t")
    db_session.set_trial(trial)
    return file_session, db_session


def normalise(rows):
    return sorted(
        (r[0], r[1], r[2], r[3], r[4], round(r[5], 6), round(r[6], 6),
         float(r[7]), float(r[8]))
        for r in rows
    )


class TestTwoAccessMethods:
    def test_metric_lists_agree(self, both_sessions):
        file_session, db_session = both_sessions
        assert file_session.get_metrics() == db_session.get_metrics()

    def test_event_lists_agree(self, both_sessions):
        file_session, db_session = both_sessions
        file_names = {e["name"] for e in file_session.get_interval_events()}
        db_names = {e["name"] for e in db_session.get_interval_events()}
        assert file_names == db_names

    def test_atomic_event_lists_agree(self, both_sessions):
        file_session, db_session = both_sessions
        assert {e["name"] for e in file_session.get_atomic_events()} == {
            e["name"] for e in db_session.get_atomic_events()
        }

    def test_unfiltered_data_agrees(self, both_sessions):
        file_session, db_session = both_sessions
        assert normalise(file_session.get_interval_event_data()) == normalise(
            db_session.get_interval_event_data()
        )

    @pytest.mark.parametrize(
        "selection",
        [
            {"node": 3},
            {"event": "hydro_kernel"},
            {"metric": "PAPI_FP_OPS"},
            {"node": 1, "event": "hydro_kernel", "metric": "TIME"},
        ],
        ids=["node", "event", "metric", "combined"],
    )
    def test_filtered_data_agrees(self, both_sessions, selection):
        file_session, db_session = both_sessions
        for session in (file_session, db_session):
            session.reset_selection()
            if isinstance(session, PerfDMFSession):
                session.set_trial(1)
            if "node" in selection:
                session.set_node(selection["node"])
            if "event" in selection:
                session.set_event(selection["event"])
            if "metric" in selection:
                session.set_metric(selection["metric"])
        file_rows = normalise(file_session.get_interval_event_data())
        db_rows = normalise(db_session.get_interval_event_data())
        assert file_rows == db_rows
        assert file_rows  # filters must actually match something

    def test_datasource_views_agree(self, both_sessions):
        file_session, db_session = both_sessions
        a = file_session.load_datasource()
        b = db_session.load_datasource(1)
        assert a.num_threads == b.num_threads
        assert set(a.interval_events) == set(b.interval_events)
        event = a.get_interval_event("hydro_kernel")
        b_event = b.get_interval_event("hydro_kernel")
        time_a = a.get_metric("TIME").index
        time_b = b.get_metric("TIME").index
        for thread in a.all_threads():
            pa = thread.function_profiles[event.index]
            pb = b.get_thread(*thread.triple).function_profiles[b_event.index]
            assert pb.get_inclusive(time_b) == pytest.approx(
                pa.get_inclusive(time_a)
            )
