"""Entity-object tests (the dynamic-field Application/Experiment/Trial)."""

import pytest

from repro.core.api.entities import Application, Experiment, Trial
from repro.core.schema import SchemaManager


@pytest.fixture
def schema_conn(conn):
    SchemaManager(conn).install()
    return conn


class TestSaveAndLoad:
    def test_insert_assigns_id(self, schema_conn):
        app = Application(schema_conn, name="sppm")
        assert app.id is None
        app.save()
        assert isinstance(app.id, int)

    def test_update_in_place(self, schema_conn):
        app = Application(schema_conn, name="sppm", version="1.0")
        app.save()
        first_id = app.id
        app.set("version", "2.0")
        app.save()
        assert app.id == first_id
        assert schema_conn.scalar(
            "SELECT version FROM application WHERE id = ?", (app.id,)
        ) == "2.0"

    def test_unique_name_enforced(self, schema_conn):
        Application(schema_conn, name="dup").save()
        from repro.db import IntegrityError

        with pytest.raises(IntegrityError):
            Application(schema_conn, name="dup").save()

    def test_refresh_picks_up_external_changes(self, schema_conn):
        app = Application(schema_conn, name="x", version="1")
        app.save()
        schema_conn.execute(
            "UPDATE application SET version = '9' WHERE id = ?", (app.id,)
        )
        app.refresh()
        assert app.get("version") == "9"

    def test_refresh_unsaved_raises(self, schema_conn):
        with pytest.raises(ValueError):
            Application(schema_conn, name="x").refresh()

    def test_empty_save_rejected(self, schema_conn):
        with pytest.raises(ValueError):
            Application(schema_conn).save()


class TestDynamicFields:
    def test_unknown_column_rejected_at_construction(self, schema_conn):
        with pytest.raises(KeyError, match="no column"):
            Application(schema_conn, name="x", nonexistent="y")

    def test_unknown_column_rejected_at_set(self, schema_conn):
        app = Application(schema_conn, name="x")
        with pytest.raises(KeyError):
            app.set("bogus", 1)

    def test_new_schema_column_immediately_usable(self, schema_conn):
        schema_conn.execute("ALTER TABLE trial ADD COLUMN queue_name TEXT")
        app = Application(schema_conn, name="a")
        app.save()
        exp = Experiment(schema_conn, name="e", application=app.id)
        exp.save()
        trial = Trial(
            schema_conn, name="t", experiment=exp.id, queue_name="batch"
        )
        trial.save()
        trial.refresh()
        assert trial.get("queue_name") == "batch"

    def test_get_with_default(self, schema_conn):
        app = Application(schema_conn, name="x")
        assert app.get("version", "unknown") == "unknown"

    def test_fields_returns_copy(self, schema_conn):
        app = Application(schema_conn, name="x")
        fields = app.fields()
        fields["name"] = "mutated"
        assert app.name == "x"


class TestHierarchy:
    def test_fk_references(self, schema_conn):
        app = Application(schema_conn, name="a")
        app.save()
        exp = Experiment(schema_conn, name="e", application=app.id)
        exp.save()
        trial = Trial(schema_conn, name="t", experiment=exp.id, node_count=16)
        trial.save()
        assert exp.application_id == app.id
        assert trial.experiment_id == exp.id
        assert trial.get("node_count") == 16

    def test_from_row(self, schema_conn):
        Application(schema_conn, name="a", version="3").save()
        columns = schema_conn.column_names("application")
        row = schema_conn.query_one(
            f"SELECT {', '.join(columns)} FROM application"
        )
        app = Application.from_row(schema_conn, columns, row)
        assert app.name == "a"
        assert app.get("version") == "3"
        assert app.id is not None
