"""Importer tests: writer round-trips plus hand-written fixtures."""

import textwrap

import pytest

from repro.core.io_ import (
    ProfileParseError, detect_format, discover_files, load_profile,
    parse_dynaprof, parse_gprof, parse_hpm, parse_mpip, parse_psrun,
    parse_svpablo, parse_tau_profiles, parse_xml, export_xml,
)
from repro.tau.apps import EVH1, SPPM
from repro.tau.writers import (
    write_dynaprof_output, write_gprof_output, write_hpm_output,
    write_mpip_report, write_psrun_output, write_svpablo_output,
    write_tau_profiles,
)


@pytest.fixture(scope="module")
def trial():
    ds = EVH1(problem_size=0.05, timesteps=1).run(4)
    ds.metadata["platform"] = "simulated"
    return ds


@pytest.fixture(scope="module")
def counter_trial():
    return SPPM(problem_size=0.01, timesteps=1).run(8)


def _time_value(ds, event_name, node=0, inclusive=True):
    metric = ds.get_metric("TIME")
    event = ds.get_interval_event(event_name)
    profile = ds.get_thread(node, 0, 0).function_profiles[event.index]
    return (
        profile.get_inclusive(metric.index)
        if inclusive
        else profile.get_exclusive(metric.index)
    )


class TestTauFormat:
    def test_roundtrip_values(self, trial, tmp_path):
        write_tau_profiles(trial, tmp_path)
        back = parse_tau_profiles(tmp_path)
        assert back.num_threads == trial.num_threads
        assert set(back.interval_events) == set(trial.interval_events)
        assert _time_value(back, "riemann") == pytest.approx(
            _time_value(trial, "riemann")
        )

    def test_roundtrip_calls_and_groups(self, trial, tmp_path):
        write_tau_profiles(trial, tmp_path)
        back = parse_tau_profiles(tmp_path)
        event = back.get_interval_event("MPI_Alltoall()")
        assert "MPI" in event.groups
        src_event = trial.get_interval_event("riemann")
        src = trial.get_thread(1, 0, 0).function_profiles[src_event.index]
        dst = back.get_thread(1, 0, 0).function_profiles[
            back.get_interval_event("riemann").index
        ]
        assert dst.calls == src.calls
        assert dst.subroutines == src.subroutines

    def test_roundtrip_userevents(self, trial, tmp_path):
        write_tau_profiles(trial, tmp_path)
        back = parse_tau_profiles(tmp_path)
        assert set(back.atomic_events) == set(trial.atomic_events)
        name = next(iter(trial.atomic_events))
        src = trial.get_thread(0, 0, 0).user_event_profiles[
            trial.get_atomic_event(name).index
        ]
        dst = back.get_thread(0, 0, 0).user_event_profiles[
            back.get_atomic_event(name).index
        ]
        assert dst.count == src.count
        assert dst.mean_value == pytest.approx(src.mean_value)
        assert dst.stddev == pytest.approx(src.stddev, abs=1e-6)

    def test_metadata_roundtrip(self, trial, tmp_path):
        write_tau_profiles(trial, tmp_path)
        back = parse_tau_profiles(tmp_path)
        assert back.metadata["platform"] == "simulated"

    def test_multi_metric_layout(self, counter_trial, tmp_path):
        files = write_tau_profiles(counter_trial, tmp_path)
        multi_dirs = {f.parent.name for f in files}
        assert all(d.startswith("MULTI__") for d in multi_dirs)
        assert len(multi_dirs) == 8
        back = parse_tau_profiles(tmp_path)
        assert back.num_metrics == 8
        assert {m.name for m in back.metrics} == {
            m.name for m in counter_trial.metrics
        }

    def test_single_file_parse(self, trial, tmp_path):
        write_tau_profiles(trial, tmp_path)
        back = parse_tau_profiles(tmp_path / "profile.0.0.0")
        assert back.num_threads == 1

    def test_quoted_names_with_spaces(self, tmp_path):
        content = textwrap.dedent("""\
            2 templated_functions_MULTI_TIME
            # Name Calls Subrs Excl Incl ProfileCalls #
            "void foo(int, double) [file.cpp]" 3 0 10.5 20.5 0 GROUP="TAU_USER"
            "main" 1 1 5 25.5 0 GROUP="TAU_DEFAULT"
            0 aggregates
            0 userevents
            """)
        (tmp_path / "profile.0.0.0").write_text(content)
        ds = parse_tau_profiles(tmp_path)
        event = ds.get_interval_event("void foo(int, double) [file.cpp]")
        assert event is not None
        assert event.group == "TAU_USER"
        fp = ds.get_thread(0, 0, 0).function_profiles[event.index]
        assert fp.calls == 3

    def test_truncated_file_raises(self, tmp_path):
        (tmp_path / "profile.0.0.0").write_text(
            '5 templated_functions_MULTI_TIME\n"main" 1 0 1 1 0\n'
        )
        with pytest.raises(ProfileParseError, match="expected 5"):
            parse_tau_profiles(tmp_path)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ProfileParseError):
            parse_tau_profiles(tmp_path)


class TestGprofFormat:
    def test_roundtrip_exclusive(self, trial, tmp_path):
        write_gprof_output(trial, tmp_path)
        back = parse_gprof(tmp_path)
        assert back.num_threads == trial.num_threads
        # seconds resolution: 0.01s = 1e4 usec tolerance
        assert _time_value(back, "riemann", inclusive=False) == pytest.approx(
            _time_value(trial, "riemann", inclusive=False), abs=2e4
        )

    def test_callgraph_recovers_inclusive(self, trial, tmp_path):
        write_gprof_output(trial, tmp_path)
        back = parse_gprof(tmp_path)
        main_inc = _time_value(back, "main")
        riemann_inc = _time_value(back, "riemann")
        assert main_inc > riemann_inc

    def test_mpi_events_classified(self, trial, tmp_path):
        write_gprof_output(trial, tmp_path)
        back = parse_gprof(tmp_path)
        event = back.get_interval_event("MPI_Alltoall()")
        assert "MPI" in event.groups

    def test_fixture_flat_profile(self, tmp_path):
        content = textwrap.dedent("""\
            Flat profile:

            Each sample counts as 0.01 seconds.
              %   cumulative   self              self     total
             time   seconds   seconds    calls  ms/call  ms/call  name
             60.00      0.60     0.60     1000     0.60     0.80  compute
             40.00      1.00     0.40      500     0.80     0.80  helper
            """)
        (tmp_path / "gprof.out.0.0.0").write_text(content)
        ds = parse_gprof(tmp_path)
        fp = ds.get_thread(0, 0, 0).function_profiles[
            ds.get_interval_event("compute").index
        ]
        assert fp.get_exclusive(0) == pytest.approx(0.60 * 1e6)
        assert fp.calls == 1000

    def test_no_data_raises(self, tmp_path):
        (tmp_path / "gprof.out.0.0.0").write_text("nothing here\n")
        with pytest.raises(ProfileParseError):
            parse_gprof(tmp_path)


class TestMpipFormat:
    def test_roundtrip_tasks(self, trial, tmp_path):
        path = write_mpip_report(trial, tmp_path / "app.mpiP")
        back = parse_mpip(path)
        assert back.num_threads == trial.num_threads
        assert "Application" in back.interval_events

    def test_app_time_close_to_source(self, trial, tmp_path):
        path = write_mpip_report(trial, tmp_path / "app.mpiP")
        back = parse_mpip(path)
        app = back.get_interval_event("Application")
        src_duration = trial.get_thread(0, 0, 0).max_inclusive(0)
        dst = back.get_thread(0, 0, 0).function_profiles[app.index]
        assert dst.get_inclusive(0) == pytest.approx(src_duration, rel=0.01)

    def test_mpi_sites_present(self, trial, tmp_path):
        path = write_mpip_report(trial, tmp_path / "app.mpiP")
        back = parse_mpip(path)
        mpi_events = [n for n in back.interval_events if n.startswith("MPI_")]
        assert len(mpi_events) >= 2
        assert all("[site" in n for n in mpi_events)

    def test_missing_header_raises(self, tmp_path):
        bad = tmp_path / "x.mpiP"
        bad.write_text("not an mpiP report\n")
        with pytest.raises(ProfileParseError, match="@ mpiP"):
            parse_mpip(bad)


class TestDynaprofFormat:
    def test_roundtrip(self, trial, tmp_path):
        write_dynaprof_output(trial, tmp_path)
        back = parse_dynaprof(tmp_path)
        assert back.num_threads == trial.num_threads
        assert _time_value(back, "riemann", inclusive=False) == pytest.approx(
            _time_value(trial, "riemann", inclusive=False), rel=1e-4
        )

    def test_total_row_skipped(self, trial, tmp_path):
        write_dynaprof_output(trial, tmp_path)
        back = parse_dynaprof(tmp_path)
        assert "TOTAL" not in back.interval_events

    def test_metric_name_from_header(self, tmp_path):
        content = textwrap.dedent("""\
            Exclusive Profile of metric PAPI_FP_OPS.

            Name                         Percent      Total          Calls
            ----------------------------------------------------------------
            TOTAL                        100          2e+09          1
            main                         100          2e+09          1

            Inclusive Profile of metric PAPI_FP_OPS.

            Name                         Percent      Total          Calls
            ----------------------------------------------------------------
            TOTAL                        100          2e+09          1
            main                         100          2e+09          1
            """)
        (tmp_path / "app.dynaprof.0").write_text(content)
        ds = parse_dynaprof(tmp_path)
        assert ds.metrics[0].name == "PAPI_FP_OPS"


class TestHpmFormat:
    def test_roundtrip_counters(self, counter_trial, tmp_path):
        write_hpm_output(counter_trial, tmp_path)
        back = parse_hpm(tmp_path)
        assert back.num_threads == counter_trial.num_threads
        assert {m.name for m in back.metrics} == {
            m.name for m in counter_trial.metrics
        }

    def test_counter_values_roundtrip(self, counter_trial, tmp_path):
        write_hpm_output(counter_trial, tmp_path)
        back = parse_hpm(tmp_path)
        src_fp = counter_trial.get_metric("PAPI_FP_OPS")
        dst_fp = back.get_metric("PAPI_FP_OPS")
        event = "hydro_kernel"
        src = counter_trial.get_thread(0, 0, 0).function_profiles[
            counter_trial.get_interval_event(event).index
        ]
        dst = back.get_thread(0, 0, 0).function_profiles[
            back.get_interval_event(event).index
        ]
        assert dst.get_inclusive(dst_fp.index) == pytest.approx(
            src.get_inclusive(src_fp.index), rel=1e-6, abs=1.0
        )

    def test_no_sections_raises(self, tmp_path):
        (tmp_path / "perfhpm0000.0.0").write_text("libhpm summary\n")
        with pytest.raises(ProfileParseError):
            parse_hpm(tmp_path)


class TestPsrunFormat:
    def test_single_event_per_rank(self, counter_trial, tmp_path):
        write_psrun_output(counter_trial, tmp_path)
        back = parse_psrun(tmp_path)
        assert back.num_interval_events == 1
        assert "Entire application" in back.interval_events
        assert back.num_threads == counter_trial.num_threads

    def test_counters_become_metrics(self, counter_trial, tmp_path):
        write_psrun_output(counter_trial, tmp_path)
        back = parse_psrun(tmp_path)
        assert back.get_metric("PAPI_FP_OPS") is not None

    def test_malformed_xml_raises(self, tmp_path):
        (tmp_path / "psrun.0.xml").write_text("<hwpcreport><broken>")
        with pytest.raises(ProfileParseError, match="malformed XML"):
            parse_psrun(tmp_path)

    def test_wrong_root_raises(self, tmp_path):
        (tmp_path / "psrun.0.xml").write_text("<other/>")
        with pytest.raises(ProfileParseError, match="hwpcreport"):
            parse_psrun(tmp_path)


class TestSvPabloFormat:
    def test_roundtrip(self, trial, tmp_path):
        path = write_svpablo_output(trial, tmp_path / "t.sddf")
        back = parse_svpablo(path)
        assert back.num_threads == trial.num_threads
        assert _time_value(back, "riemann") == pytest.approx(
            _time_value(trial, "riemann")
        )

    def test_empty_file_raises(self, tmp_path):
        p = tmp_path / "t.sddf"
        p.write_text("/* header only */\n")
        with pytest.raises(ProfileParseError):
            parse_svpablo(p)


class TestXmlRoundtrip:
    def test_lossless(self, counter_trial, tmp_path):
        path = export_xml(counter_trial, tmp_path / "t.xml")
        back = parse_xml(path)
        assert back.num_threads == counter_trial.num_threads
        assert [m.name for m in back.metrics] == [
            m.name for m in counter_trial.metrics
        ]
        for name, event in counter_trial.interval_events.items():
            back_event = back.get_interval_event(name)
            assert back_event.group == event.group
            for src_t, dst_t in zip(
                counter_trial.all_threads(), back.all_threads()
            ):
                src_p = src_t.function_profiles.get(event.index)
                dst_p = dst_t.function_profiles.get(back_event.index)
                if src_p is None:
                    assert dst_p is None
                    continue
                for m, inc, exc in src_p.iter_metrics():
                    assert dst_p.get_inclusive(m) == inc
                    assert dst_p.get_exclusive(m) == exc

    def test_special_characters_in_names(self, tmp_path):
        from repro.core.model import DataSource

        ds = DataSource()
        ds.add_metric("TIME")
        event = ds.add_interval_event('foo<T>&"bar"')
        fp = ds.add_thread(0, 0, 0).get_or_create_function_profile(event)
        fp.set_inclusive(0, 1.0)
        path = export_xml(ds, tmp_path / "special.xml")
        back = parse_xml(path)
        assert back.get_interval_event('foo<T>&"bar"') is not None


class TestRegistry:
    def test_autodetect_every_format(self, trial, counter_trial, tmp_path):
        write_tau_profiles(trial, tmp_path / "tau")
        write_gprof_output(trial, tmp_path / "gprof")
        write_mpip_report(trial, tmp_path / "r.mpiP")
        write_dynaprof_output(trial, tmp_path / "dyna")
        write_hpm_output(counter_trial, tmp_path / "hpm")
        write_psrun_output(counter_trial, tmp_path / "ps")
        write_svpablo_output(trial, tmp_path / "sv.sddf")
        export_xml(trial, tmp_path / "t.xml")
        expectations = {
            "tau": "tau", "gprof": "gprof", "r.mpiP": "mpip",
            "dyna": "dynaprof", "hpm": "hpmtoolkit", "ps": "psrun",
            "sv.sddf": "svpablo", "t.xml": "xml",
        }
        for path, expected in expectations.items():
            assert detect_format(tmp_path / path) == expected, path

    def test_load_profile_autodetect(self, trial, tmp_path):
        write_tau_profiles(trial, tmp_path / "tau")
        ds = load_profile(tmp_path / "tau")
        assert ds.num_threads == trial.num_threads

    def test_load_profile_explicit_format(self, trial, tmp_path):
        path = write_svpablo_output(trial, tmp_path / "data.txt")
        ds = load_profile(path, "svpablo")
        assert ds.num_threads == trial.num_threads

    def test_unknown_format_name(self, tmp_path):
        with pytest.raises(ValueError, match="unknown profile format"):
            load_profile(tmp_path, "vampir")

    def test_undetectable_raises(self, tmp_path):
        p = tmp_path / "mystery.bin"
        p.write_text("0000000")
        with pytest.raises(ProfileParseError, match="auto-detect"):
            load_profile(p)


class TestDiscoverFiles:
    def test_prefix_and_suffix(self, tmp_path):
        for name in ("profile.0.0.0", "profile.1.0.0", "events.xml", "notes.txt"):
            (tmp_path / name).write_text("x")
        assert len(discover_files(tmp_path, prefix="profile.")) == 2
        assert len(discover_files(tmp_path, suffix=".xml")) == 1
        assert len(discover_files(tmp_path, prefix="profile.", suffix=".0")) == 2

    def test_pattern(self, tmp_path):
        for name in ("a1", "a2", "b1"):
            (tmp_path / name).write_text("x")
        assert len(discover_files(tmp_path, pattern=r"^a\d$")) == 2

    def test_single_file_passthrough(self, tmp_path):
        p = tmp_path / "one"
        p.write_text("x")
        assert discover_files(p) == [p]

    def test_missing_target(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            discover_files(tmp_path / "nope")
