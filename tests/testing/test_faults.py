"""Unit tests for the fault-injection harness itself."""

from __future__ import annotations

import io
import subprocess
import sys

import pytest

from repro.testing import faults


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm_all()
    yield
    faults.disarm_all()


class TestParseSpec:
    def test_single_point(self):
        faults.parse_spec("wal.commit.after_record")
        assert faults.armed_points() == ["wal.commit.after_record"]

    def test_hit_count(self):
        faults.parse_spec("wal.append.before@3")
        fault = faults._armed["wal.append.before"]
        assert fault.hits == 3 and fault.torn_bytes is None

    def test_torn_form(self):
        faults.parse_spec("torn:wal.append:17")
        fault = faults._armed["wal.append"]
        assert fault.torn_bytes == 17

    def test_comma_separated_and_blanks(self):
        faults.parse_spec("a, b@2,, torn:c:5")
        assert faults.armed_points() == ["a", "b", "c"]

    def test_malformed_torn_spec(self):
        with pytest.raises(ValueError):
            faults.parse_spec("torn:17")

    def test_reload_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "x@2")
        faults.reload_from_env()
        assert faults.armed_points() == ["x"]
        monkeypatch.delenv(faults.ENV_VAR)
        faults.disarm_all()
        faults.reload_from_env()  # unset env is a no-op
        assert faults.armed_points() == []


class TestTriggering:
    def test_unarmed_point_is_inert(self):
        faults.crash_point("never.armed")  # must simply return

    def test_crash_point_exits_with_137(self):
        code = (
            "from repro.testing import faults\n"
            "faults.arm('boom')\n"
            "faults.crash_point('boom')\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == faults.CRASH_EXIT_STATUS
        assert "survived" not in proc.stdout

    def test_hit_count_defers_firing(self):
        code = (
            "from repro.testing import faults\n"
            "faults.arm('boom', hits=3)\n"
            "faults.crash_point('boom')\n"
            "faults.crash_point('boom')\n"
            "print('two down', flush=True)\n"
            "faults.crash_point('boom')\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == faults.CRASH_EXIT_STATUS
        assert "two down" in proc.stdout and "survived" not in proc.stdout

    def test_torn_write_writes_prefix_then_dies(self, tmp_path):
        target = tmp_path / "out.bin"
        code = (
            "from repro.testing import faults\n"
            "faults.arm('w', torn_bytes=4)\n"
            f"fh = open({str(target)!r}, 'wb')\n"
            "faults.write(fh, b'0123456789', 'w')\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert proc.returncode == faults.CRASH_EXIT_STATUS
        assert target.read_bytes() == b"0123"

    def test_write_without_fault_is_passthrough(self):
        buf = io.BytesIO()
        assert faults.write(buf, b"abcdef", "unrelated") == 6
        assert buf.getvalue() == b"abcdef"

    def test_torn_fault_does_not_trip_plain_crash_point(self):
        # A torn fault on a point must only fire through write(), never
        # through crash_point() — they share the name space.
        faults.arm("p", torn_bytes=2)
        faults.crash_point("p")  # must not die
