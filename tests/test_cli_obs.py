"""Tests for the observability CLI surface: `repro stats`, `repro sql`,
`load --stats`, and `--trace FILE` export."""

import json
import time

import pytest

from repro.cli import main
from repro.obs.metrics import registry
from repro.obs.trace import tracer
from repro.tau.apps import EVH1
from repro.tau.writers import write_tau_profiles


@pytest.fixture
def db(tmp_path):
    return f"sqlite://{tmp_path}/cli.db"


@pytest.fixture
def profiles(tmp_path):
    source = EVH1(problem_size=0.05, timesteps=1).run(4)
    target = tmp_path / "profiles"
    write_tau_profiles(source, target)
    return target


def load_args(db, profiles):
    return [
        "load", "--db", db, "--app", "evh1", "--exp", "scaling",
        "--trial", "P=4", str(profiles),
    ]


class TestStatsCommand:
    def test_text_dump(self, capsys):
        registry.counter("cli.test_counter").inc(3)
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "cli.test_counter: 3" in out

    def test_json_dump(self, capsys):
        registry.counter("cli.test_counter").inc()
        assert main(["stats", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "cli.test_counter" in doc["metrics"]

    def test_prometheus_dump(self, capsys):
        registry.counter("cli.test_counter").inc()
        assert main(["stats", "--format", "prometheus"]) == 0
        assert "# TYPE cli_test_counter counter" in capsys.readouterr().out

    def test_reset(self, capsys):
        registry.counter("cli.reset_counter").inc(9)
        assert main(["stats", "--reset"]) == 0
        captured = capsys.readouterr()
        assert "cli.reset_counter: 9" in captured.out
        assert "reset" in captured.err
        assert registry.counter("cli.reset_counter").value == 0

    def test_db_counters_absorbed(self, db, profiles, capsys):
        assert main(["configure", "--db", db]) == 0
        assert main(load_args(db, profiles)) == 0
        capsys.readouterr()
        assert main(["stats", "--db", db, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        # save_trial's per-stage timings surface as db.* gauges.
        assert doc["metrics"]["db.ingest_rows"]["value"] > 0


class TestLoadStats:
    def test_load_stats_prints_stage_timings(self, db, profiles, capsys):
        assert main(["configure", "--db", db]) == 0
        assert main(load_args(db, profiles) + ["--stats"]) == 0
        out = capsys.readouterr().out
        assert "ingest stage timings:" in out
        assert "parse" in out
        assert "insert" in out
        assert "rows/second" in out


class TestTraceExport:
    def test_load_trace_writes_chrome_file(self, db, profiles, tmp_path, capsys):
        assert main(["configure", "--db", db]) == 0
        trace = tmp_path / "load.json"
        assert main(load_args(db, profiles) + ["--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"trace span(s) to {trace}" in out
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "session.save_trial" in names
        assert "db.execute" in names
        assert not tracer.enabled  # turned back off on exit

    def test_jsonl_extension_selects_jsonl(self, db, profiles, tmp_path, capsys):
        assert main(["configure", "--db", db]) == 0
        trace = tmp_path / "load.jsonl"
        assert main(load_args(db, profiles) + ["--trace", str(trace)]) == 0
        capsys.readouterr()
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        assert records and all("span_id" in r for r in records)


class TestSqlCommand:
    def test_select_prints_rows(self, db, capsys):
        assert main(["configure", "--db", db]) == 0
        capsys.readouterr()
        assert main(["sql", "--db", db, "SELECT 1 AS one"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "one"
        assert out[1] == "1"

    def test_explain_analyze_against_fresh_archive(self, tmp_path, capsys):
        db = f"minisql://{tmp_path.name}-sqlcmd"
        assert main(["configure", "--db", db]) == 0
        capsys.readouterr()
        assert main([
            "sql", "--db", db,
            "EXPLAIN ANALYZE SELECT * FROM trial WHERE experiment = 1",
        ]) == 0
        out = capsys.readouterr().out
        header, *rows = out.splitlines()
        assert header.split("\t") == [
            "id", "detail", "rows", "time_ms", "compiled", "vectorized",
        ]
        assert any("RESULT" in row for row in rows)

    def test_dml_reports_rowcount(self, db, capsys):
        assert main(["configure", "--db", db]) == 0
        capsys.readouterr()
        assert main([
            "sql", "--db", db,
            "INSERT INTO application (name) VALUES ('from-sql')",
        ]) == 0
        assert "1 row(s) affected" in capsys.readouterr().out
        assert main(["sql", "--db", db, "SELECT name FROM application"]) == 0
        assert "from-sql" in capsys.readouterr().out

    def test_sql_error_reported(self, db, capsys):
        assert main(["configure", "--db", db]) == 0
        capsys.readouterr()
        code = main(["sql", "--db", db, "SELECT * FROM missing_table"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestStatsServer:
    """`repro stats --server HOST:PORT` reads a live server's registry
    over the get_stats RPC; --watch survives a server restart."""

    @pytest.fixture
    def server(self, db):
        from repro.explorer import AnalysisServer, SocketServer

        assert main(["configure", "--db", db]) == 0
        sock = SocketServer(AnalysisServer(db))
        host, port = sock.start()
        yield sock, host, port
        sock.stop()

    def test_single_shot_remote_snapshot(self, server, capsys):
        _sock, host, port = server
        assert main(["stats", "--server", f"{host}:{port}"]) == 0
        out = capsys.readouterr().out
        assert "server.requests" in out

    def test_remote_prometheus_format(self, server, capsys):
        _sock, host, port = server
        assert main(["stats", "--server", f"{host}:{port}",
                     "--format", "prometheus"]) == 0
        assert "# TYPE server_requests counter" in capsys.readouterr().out

    def test_bad_server_spec(self, capsys):
        assert main(["stats", "--server", "nonsense"]) == 1
        assert "HOST:PORT" in capsys.readouterr().err

    def test_histogram_percentiles_in_text(self, capsys):
        registry.histogram("cli.latency_test").observe(0.5)
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "p50=" in out and "p95=" in out and "p99=" in out

    def test_watch_survives_server_restart(self, db, capsys):
        """The satellite fix: a restarting server must not crash
        --watch; the loop reconnects with the client's backoff."""
        import threading

        from repro.explorer import AnalysisServer, SocketServer

        assert main(["configure", "--db", db]) == 0
        sock = SocketServer(AnalysisServer(db))
        host, port = sock.start()

        result = {}

        def watch() -> None:
            result["rc"] = main([
                "stats", "--server", f"{host}:{port}",
                "--watch", "0.2", "--watch-count", "12",
            ])

        thread = threading.Thread(target=watch)
        thread.start()
        try:
            time.sleep(0.5)   # a few successful ticks
            sock.stop()       # server goes away mid-watch
            # Long enough that at least one tick exhausts the client's
            # in-call reconnect backoff and reports the outage.
            time.sleep(1.5)
            sock = SocketServer(AnalysisServer(db), host=host, port=port)
            sock.start()      # same address comes back
            thread.join(timeout=30.0)
            assert not thread.is_alive()
        finally:
            sock.stop()
        assert result["rc"] == 0
        captured = capsys.readouterr()
        # Ticks kept flowing the whole time...
        assert captured.out.count("--\n") == 12
        # ...the outage was reported, not fatal...
        assert "server unavailable" in captured.err
        # ...and snapshots flowed again after the restart.
        assert captured.out.count("server.requests") >= 2
