"""Tests for the `repro bench` CLI: ingest, report, regress — including
the acceptance scenario of a synthetic 2x slowdown injected into a copy
of the repository's committed bench history."""

from __future__ import annotations

import json
import random
import shutil
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
COMMITTED_HISTORY = REPO_ROOT / "bench_history.mdb"


def _doc(sha: str, ts: str, sections: dict) -> dict:
    return {
        "schema_version": 1, "git_sha": sha, "timestamp": ts,
        "host_cores": 4, "benchmarks": sections,
    }


def _write_runs(tmp_path, walls, *, section="e_cli", start=0):
    paths = []
    for i, wall in enumerate(walls, start=start):
        doc = _doc(
            f"{i:03d}" + "a" * 37, f"2026-04-01T{i // 60:02d}:{i % 60:02d}:00Z",
            {section: {"wall_seconds": wall}},
        )
        path = tmp_path / f"run{i}.json"
        path.write_text(json.dumps(doc))
        paths.append(str(path))
    return paths


class TestIngest:
    def test_ingest_and_report(self, tmp_path, capsys):
        history = str(tmp_path / "hist.mdb")
        paths = _write_runs(tmp_path, [1.0, 1.1])
        assert main(["bench", "ingest", "--history", history, *paths]) == 0
        out = capsys.readouterr().out
        assert "ingested 2 new run(s)" in out
        # History stays a single committed-friendly file — no WAL turds.
        assert [p.name for p in tmp_path.glob("hist.mdb*")] == ["hist.mdb"]

        assert main(["bench", "report", "--history", history]) == 0
        out = capsys.readouterr().out
        assert "e_cli (2 runs)" in out
        assert "wall_seconds" in out

    def test_reingest_is_noop(self, tmp_path, capsys):
        history = str(tmp_path / "hist.mdb")
        paths = _write_runs(tmp_path, [1.0])
        assert main(["bench", "ingest", "--history", history, *paths]) == 0
        assert main(["bench", "ingest", "--history", history, *paths]) == 0
        assert "ingested 0 new run(s)" in capsys.readouterr().out

    def test_legacy_file_with_provenance_flags(self, tmp_path, capsys):
        history = str(tmp_path / "hist.mdb")
        legacy = tmp_path / "BENCH_legacy.json"
        legacy.write_text(json.dumps({"e_old": {"wall_seconds": 3.0}}))
        assert main([
            "bench", "ingest", "--history", history, str(legacy),
            "--sha", "f" * 40, "--timestamp", "2026-04-02T00:00:00Z",
        ]) == 0
        assert main(["bench", "report", "--history", history]) == 0
        assert "f" * 12 in capsys.readouterr().out

    def test_report_key_filter(self, tmp_path, capsys):
        history = str(tmp_path / "hist.mdb")
        paths = _write_runs(tmp_path, [1.0])
        main(["bench", "ingest", "--history", history, *paths])
        capsys.readouterr()
        assert main(["bench", "report", "--history", history,
                     "--key", "*.nomatch"]) == 0
        assert "e_cli" not in capsys.readouterr().out


class TestRegress:
    def _seed(self, tmp_path, walls):
        history = str(tmp_path / "hist.mdb")
        paths = _write_runs(tmp_path, walls)
        assert main(["bench", "ingest", "--history", history, *paths]) == 0
        return history

    def test_quiet_on_stable_history(self, tmp_path, capsys):
        rng = random.Random(2)
        history = self._seed(
            tmp_path, [1.0 + rng.uniform(-0.02, 0.02) for _ in range(12)]
        )
        assert main(["bench", "regress", "--history", history]) == 0
        assert "no regressions detected" in capsys.readouterr().out

    def test_exit_2_names_metric_on_slowdown(self, tmp_path, capsys):
        rng = random.Random(4)
        walls = [1.0 + rng.uniform(-0.02, 0.02) for _ in range(9)]
        walls += [2.0 + rng.uniform(-0.04, 0.04) for _ in range(3)]
        history = self._seed(tmp_path, walls)
        assert main(["bench", "regress", "--history", history]) == 2
        out = capsys.readouterr().out
        assert "e_cli.wall_seconds" in out
        assert "regression(s)" in out

    def test_threshold_flag_overrides(self, tmp_path):
        rng = random.Random(4)
        walls = [1.0 + rng.uniform(-0.002, 0.002) for _ in range(9)]
        walls += [1.3 + rng.uniform(-0.002, 0.002) for _ in range(3)]
        history = self._seed(tmp_path, walls)
        # +30% trips the default 25% threshold but not a 50% one.
        assert main(["bench", "regress", "--history", history]) == 2
        assert main(["bench", "regress", "--history", history,
                     "--threshold", "0.5"]) == 0

    def test_policy_file_ignore(self, tmp_path):
        walls = [1.0] * 4 + [1.001] * 5 + [2.0, 2.001, 2.002]
        history = self._seed(tmp_path, walls)
        policy = tmp_path / "policy.json"
        policy.write_text(json.dumps(
            {"keys": {"*.wall_seconds": {"ignore": True}}}
        ))
        assert main(["bench", "regress", "--history", history]) == 2
        assert main(["bench", "regress", "--history", history,
                     "--policy", str(policy)]) == 0

    def test_report_file_written(self, tmp_path):
        history = self._seed(tmp_path, [1.0, 1.0, 1.0])
        out_file = tmp_path / "report.txt"
        assert main(["bench", "regress", "--history", history,
                     "--report", str(out_file)]) == 0
        assert "no regressions" in out_file.read_text()

    def test_missing_history(self, tmp_path):
        missing = str(tmp_path / "none.mdb")
        assert main(["bench", "regress", "--history", missing]) == 0
        assert main(["bench", "regress", "--history", missing,
                     "--strict"]) == 2

    def test_strict_demands_testable_history(self, tmp_path):
        history = self._seed(tmp_path, [1.0, 1.1])  # too short to test
        assert main(["bench", "regress", "--history", history]) == 0
        assert main(["bench", "regress", "--history", history,
                     "--strict"]) == 2

    def test_regress_leaves_history_untouched(self, tmp_path):
        history = self._seed(tmp_path, [1.0, 1.1, 1.2])
        before = Path(history).read_bytes()
        assert main(["bench", "regress", "--history", history]) == 0
        assert Path(history).read_bytes() == before
        assert [p.name for p in tmp_path.glob("hist.mdb*")] == ["hist.mdb"]


@pytest.mark.skipif(
    not COMMITTED_HISTORY.exists(), reason="no committed bench history"
)
class TestCommittedHistory:
    """The ISSUE acceptance criteria, against the real archive."""

    def test_committed_history_is_quiet(self, capsys):
        assert main([
            "bench", "regress", "--history", str(COMMITTED_HISTORY),
            "--policy", str(REPO_ROOT / "benchmarks" / "regress_policy.json"),
        ]) == 0
        assert "no regressions detected" in capsys.readouterr().out

    def test_synthetic_slowdown_detected_in_copy(self, tmp_path, capsys):
        """Inject a 2x e1 bulk-load slowdown into a copy of the committed
        history; regress must exit non-zero and name the benchmark."""
        history = tmp_path / "copy.mdb"
        shutil.copy2(COMMITTED_HISTORY, history)
        rng = random.Random(6)
        paths = []
        for i in range(9):
            slow = i >= 6  # last three runs regress
            seconds = (7.4 if slow else 3.7) + rng.uniform(-0.05, 0.05)
            # Timestamps must postdate the committed runs so the slow
            # injections form the "recent" window.
            doc = _doc(
                f"{i:03d}" + "b" * 37, f"2026-12-01T00:{i:02d}:00Z",
                {"e1_bulk_load": {
                    "ranks": 4096,
                    "bulk_seconds": round(seconds, 3),
                    "bulk_rows_per_second": round(413696 / seconds),
                }},
            )
            path = tmp_path / f"synthetic{i}.json"
            path.write_text(json.dumps(doc))
            paths.append(str(path))
        assert main(["bench", "ingest", "--history", str(history),
                     *paths]) == 0
        capsys.readouterr()
        rc = main([
            "bench", "regress", "--history", str(history),
            "--policy", str(REPO_ROOT / "benchmarks" / "regress_policy.json"),
        ])
        out = capsys.readouterr().out
        assert rc == 2
        assert "e1_bulk_load.bulk_seconds" in out
        assert "+" in out  # the effect size is shown signed
