"""Tests for archive federation (cross-repository trial transfer)."""

import pytest

from repro.core.session import PerfDMFSession
from repro.paraprof import ArchiveManager, synchronize, transfer_trial
from repro.tau.apps import EVH1, SPPM


@pytest.fixture
def source_session(tmp_path):
    session = PerfDMFSession(f"sqlite://{tmp_path}/src.db")
    app = session.create_application("evh1", version="1.2", language="F90")
    exp = session.create_experiment(app, "scaling", system_info="cluster-A")
    trial = session.save_trial(
        EVH1(problem_size=0.05, timesteps=1).run(4), exp, "P=4",
        problem_definition="shocktube",
    )
    yield session, trial
    session.close()


class TestTransferTrial:
    def test_profile_moves_with_values(self, source_session, tmp_path):
        source, trial = source_session
        destination = PerfDMFSession(f"minisql://:memory:")
        copied = transfer_trial(source, destination, trial.id)
        destination.set_trial(copied)
        assert destination.count_data_points() == source.count_data_points(trial)
        src_mean = source.aggregate("mean", event_name="riemann", trial=trial)
        dst_mean = destination.aggregate("mean", event_name="riemann")
        assert dst_mean == pytest.approx(src_mean)

    def test_context_recreated_with_metadata(self, source_session, tmp_path):
        source, trial = source_session
        destination = PerfDMFSession("sqlite://:memory:")
        transfer_trial(source, destination, trial.id)
        app = destination.get_application("evh1")
        assert app is not None
        app.refresh()
        assert app.get("version") == "1.2"
        destination.set_application(app)
        (exp,) = destination.get_experiment_list()
        assert exp.name == "scaling"
        assert exp.get("system_info") == "cluster-A"
        (copied,) = destination.get_trial_list()
        assert copied.get("problem_definition") == "shocktube"
        assert copied.get("node_count") == 4

    def test_atomic_events_travel(self, source_session):
        source, trial = source_session
        destination = PerfDMFSession("sqlite://:memory:")
        copied = transfer_trial(source, destination, trial.id)
        assert destination.get_atomic_events(copied)

    def test_rename(self, source_session):
        source, trial = source_session
        destination = PerfDMFSession("sqlite://:memory:")
        copied = transfer_trial(source, destination, trial.id, rename="imported")
        assert copied.name == "imported"

    def test_missing_trial(self, source_session):
        source, _trial = source_session
        destination = PerfDMFSession("sqlite://:memory:")
        with pytest.raises(LookupError):
            transfer_trial(source, destination, 999)

    def test_existing_context_reused(self, source_session):
        source, trial = source_session
        destination = PerfDMFSession("sqlite://:memory:")
        transfer_trial(source, destination, trial.id, rename="one")
        transfer_trial(source, destination, trial.id, rename="two")
        assert len(destination.get_application_list()) == 1


class TestSynchronize:
    def test_copies_missing_trials_only(self, tmp_path):
        src = PerfDMFSession(f"sqlite://{tmp_path}/a.db")
        dst = PerfDMFSession(f"sqlite://{tmp_path}/b.db")
        manager = ArchiveManager(src)
        app = EVH1(problem_size=0.05, timesteps=1)
        for p in (1, 2):
            manager.import_profile(app.run(p), "evh1", "scaling", f"P={p}")
        created = synchronize(src, dst)
        assert len(created) == 2
        # second sync is a no-op
        assert synchronize(src, dst) == []
        # add one more to the source and resync
        manager.import_profile(app.run(4), "evh1", "scaling", "P=4")
        created = synchronize(src, dst)
        assert [t.name for t in created] == ["P=4"]
        src.close()
        dst.close()

    def test_cross_backend_sync(self, tmp_path):
        src = PerfDMFSession("minisql://:memory:")
        dst = PerfDMFSession(f"sqlite://{tmp_path}/dst.db")
        manager = ArchiveManager(src)
        manager.import_profile(
            SPPM(problem_size=0.01, timesteps=1).run(8), "sppm", "e", "t"
        )
        (created,) = synchronize(src, dst)
        dst.set_trial(created)
        assert len(dst.get_metrics()) == 8
        src.close()
        dst.close()
