"""Tests for the callgraph display and the interactive shell."""

import io

import pytest

from repro.paraprof import (
    ArchiveManager, ParaProfShell, call_graph_dot, call_graph_stats,
    call_tree_view,
)
from repro.tau.apps import EVH1
from repro.tau.simulator import run_simulation


@pytest.fixture(scope="module")
def callpath_trial():
    app = EVH1(problem_size=0.05, timesteps=1)
    config = app.config(4)
    config.callpaths = True
    return run_simulation(app.kernel, config)


@pytest.fixture(scope="module")
def flat_trial():
    return EVH1(problem_size=0.05, timesteps=1).run(2)


class TestCallTreeView:
    def test_tree_structure(self, callpath_trial):
        text = call_tree_view(callpath_trial)
        lines = text.splitlines()
        assert lines[0].startswith("main")
        assert any("└─" in line or "├─" in line for line in lines)
        assert "riemann" in text

    def test_root_is_100_percent(self, callpath_trial):
        first = call_tree_view(callpath_trial).splitlines()[0]
        assert "100.0%" in first

    def test_no_callpath_data(self, flat_trial):
        assert "no callpath data" in call_tree_view(flat_trial)

    def test_max_depth_limits_output(self, callpath_trial):
        shallow = call_tree_view(callpath_trial, max_depth=1)
        deep = call_tree_view(callpath_trial, max_depth=6)
        assert len(shallow.splitlines()) < len(deep.splitlines())


class TestCallGraph:
    def test_dot_output(self, callpath_trial):
        dot = call_graph_dot(callpath_trial)
        assert dot.startswith("digraph callgraph {")
        assert '"main" -> ' in dot

    def test_stats(self, callpath_trial):
        stats = call_graph_stats(callpath_trial)
        assert stats["is_dag"]
        assert stats["nodes"] > 5
        assert stats["depth"] >= 2

    def test_stats_empty(self):
        from repro.core.model import DataSource

        stats = call_graph_stats(DataSource())
        assert stats["nodes"] == 0


class TestShell:
    @pytest.fixture
    def shell(self, db_url, flat_trial):
        manager = ArchiveManager(db_url)
        manager.import_profile(flat_trial, "evh1", "scaling", "P=2")
        out = io.StringIO()
        return ParaProfShell(manager, stdout=out), out

    def run(self, shell, out, *commands):
        for command in commands:
            if shell.onecmd(command):
                break
        return out.getvalue()

    def test_tree(self, shell):
        sh, out = shell
        text = self.run(sh, out, "tree")
        assert "evh1" in text and "P=2" in text

    def test_open_and_aggregate(self, shell):
        sh, out = shell
        text = self.run(sh, out, "open evh1 scaling P=2", "aggregate 5")
        assert "opened evh1/scaling/P=2" in text
        assert "riemann" in text

    def test_open_bad_trial(self, shell):
        sh, out = shell
        text = self.run(sh, out, "open evh1 scaling nope")
        assert "error" in text

    def test_commands_require_open_trial(self, shell):
        sh, out = shell
        text = self.run(sh, out, "aggregate", "summary", "event riemann")
        assert text.count("no trial open") == 3

    def test_thread_view(self, shell):
        sh, out = shell
        text = self.run(sh, out, "open evh1 scaling P=2", "thread 1")
        assert "node 1" in text

    def test_thread_bad_node(self, shell):
        sh, out = shell
        text = self.run(sh, out, "open evh1 scaling P=2", "thread 99")
        assert "error" in text

    def test_event_view(self, shell):
        sh, out = shell
        text = self.run(sh, out, "open evh1 scaling P=2", "event riemann")
        assert text.count("n,c,t") == 2

    def test_metrics(self, shell):
        sh, out = shell
        text = self.run(sh, out, "open evh1 scaling P=2", "metrics")
        assert "TIME" in text

    def test_summary_and_userevents(self, shell):
        sh, out = shell
        text = self.run(
            sh, out, "open evh1 scaling P=2", "summary", "userevents"
        )
        assert "Group breakdown" in text
        assert "zones processed" in text

    def test_unknown_command(self, shell):
        sh, out = shell
        text = self.run(sh, out, "frobnicate")
        assert "unknown command" in text

    def test_quit_returns_true(self, shell):
        sh, _out = shell
        assert sh.onecmd("quit") is True
        assert sh.onecmd("exit") is True

    def test_usage_messages(self, shell):
        sh, out = shell
        text = self.run(sh, out, "open onlytwo args", "open evh1 scaling P=2",
                        "thread", "event")
        assert "usage: open" in text
        assert "usage: thread" in text
        assert "usage: event" in text

    def test_callgraph_without_callpaths(self, shell):
        sh, out = shell
        text = self.run(sh, out, "open evh1 scaling P=2", "callgraph")
        assert "no callpath data" in text
