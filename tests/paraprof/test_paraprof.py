"""ParaProf tests: displays, archive manager, browser (Figure 2 flow)."""

import pytest

from repro.core.session import PerfDMFSession
from repro.paraprof import (
    ArchiveManager, ProfileBrowser, aggregate_view, bar_table,
    comparative_event_view, format_value, horizontal_bar, summary_text_view,
    thread_profile_view, userevent_view,
)
from repro.tau.apps import EVH1, SPPM
from repro.tau.writers import (
    write_hpm_output, write_mpip_report, write_tau_profiles,
)


@pytest.fixture(scope="module")
def trial():
    return EVH1(problem_size=0.05, timesteps=1).run(4)


class TestBarChart:
    def test_horizontal_bar_full(self):
        assert horizontal_bar(1.0, width=10) == "█" * 10

    def test_horizontal_bar_clamps(self):
        assert horizontal_bar(2.0, width=4) == "████"
        assert horizontal_bar(-1.0, width=4) == "    "

    def test_format_value_units(self):
        assert format_value(500.0) == "500.0 us"
        assert format_value(5000.0) == "5.00 ms"
        assert format_value(5.0e6) == "5.000 s"
        assert format_value(1.2e8) == "2.00 min"

    def test_format_plain_numbers(self):
        assert format_value(1.5e9, unit="count") == "1.50G"
        assert format_value(2500.0, unit="count") == "2.50K"

    def test_bar_table_alignment(self):
        text = bar_table([("a", 10.0), ("bb", 5.0)], width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].index("|") == lines[1].index("|")

    def test_bar_table_empty(self):
        assert bar_table([]) == "(no data)"


class TestDisplays:
    def test_thread_profile_view(self, trial):
        text = thread_profile_view(trial, 0)
        assert "node 0" in text
        assert "riemann" in text

    def test_thread_profile_missing_thread(self, trial):
        with pytest.raises(KeyError):
            thread_profile_view(trial, 99)

    def test_aggregate_view(self, trial):
        text = aggregate_view(trial, top=5)
        assert "mean exclusive TIME over 4 threads" in text
        assert len(text.splitlines()) == 6

    def test_comparative_event_view_has_all_threads(self, trial):
        text = comparative_event_view(trial, "riemann")
        assert text.count("n,c,t") == 4

    def test_summary_view_groups_and_highlighting(self, trial):
        text = summary_text_view(trial)
        assert "Group breakdown" in text
        assert "MPI" in text
        assert "COMPUTE" in text

    def test_summary_highlights_imbalanced_events(self):
        from repro.core.model import DataSource

        ds = DataSource()
        ds.add_metric("TIME")
        event = ds.add_interval_event("skewed")
        for t, v in enumerate([1.0, 1.0, 1.0, 100.0]):
            fp = ds.add_thread(t, 0, 0).get_or_create_function_profile(event)
            fp.set_exclusive(0, v)
            fp.set_inclusive(0, v)
        ds.generate_statistics()
        text = summary_text_view(ds)
        line = next(l for l in text.splitlines() if l.startswith("skewed"))
        assert line.rstrip().endswith("*")

    def test_userevent_view(self, trial):
        text = userevent_view(trial)
        assert "zones processed" in text


class TestArchiveManagerAndBrowser:
    """The Figure 2 scenario: one DB, trials from three different tools."""

    @pytest.fixture
    def archive(self, db_url, tmp_path):
        source = EVH1(problem_size=0.05, timesteps=1).run(4)
        counter_source = SPPM(problem_size=0.01, timesteps=1).run(4)
        write_tau_profiles(source, tmp_path / "tau")
        write_mpip_report(source, tmp_path / "run.mpiP")
        write_hpm_output(counter_source, tmp_path / "hpm")

        manager = ArchiveManager(db_url)
        manager.import_profile(tmp_path / "tau", "evh1", "multi-tool", "tau-trial")
        manager.import_profile(
            tmp_path / "run.mpiP", "evh1", "multi-tool", "mpip-trial"
        )
        manager.import_profile(tmp_path / "hpm", "evh1", "multi-tool", "hpm-trial")
        return manager

    def test_three_formats_in_one_archive(self, archive):
        tree = archive.tree()
        assert tree == {
            "evh1": {"multi-tool": ["tau-trial", "mpip-trial", "hpm-trial"]}
        }

    def test_find_trial(self, archive):
        t = archive.find_trial("evh1", "multi-tool", "mpip-trial")
        assert t is not None and t.name == "mpip-trial"
        assert archive.find_trial("evh1", "multi-tool", "nope") is None
        assert archive.find_trial("nope", "x", "y") is None

    def test_browser_tree_rendering(self, archive):
        browser = ProfileBrowser(archive)
        text = browser.render_tree()
        assert "evh1" in text
        assert "tau-trial" in text and "hpm-trial" in text

    def test_browser_opens_and_displays_each_format(self, archive):
        browser = ProfileBrowser(archive)
        for trial_name, expected_event in [
            ("tau-trial", "riemann"),
            ("mpip-trial", "Application"),
            ("hpm-trial", "hydro_kernel"),
        ]:
            browser.open_trial("evh1", "multi-tool", trial_name)
            text = browser.show_aggregate()
            assert expected_event in text, trial_name

    def test_browser_comparative_view(self, archive):
        browser = ProfileBrowser(archive)
        browser.open_trial("evh1", "multi-tool", "tau-trial")
        text = browser.show_event("riemann")
        assert text.count("n,c,t") == 4

    def test_browser_requires_open_trial(self, archive):
        browser = ProfileBrowser(archive)
        with pytest.raises(RuntimeError):
            browser.show_aggregate()

    def test_open_missing_trial_raises(self, archive):
        browser = ProfileBrowser(archive)
        with pytest.raises(LookupError):
            browser.open_trial("evh1", "multi-tool", "ghost")

    def test_import_same_experiment_reuses_rows(self, archive):
        session = archive.session
        assert len(session.get_application_list()) == 1
        session.set_application(session.get_application_list()[0])
        assert len(session.get_experiment_list()) == 1
