"""Display behaviour on multi-metric trials (metric selection rules)."""

import pytest

from repro.core.io_ import parse_tau_profiles
from repro.paraprof import (
    aggregate_view, comparative_event_view, summary_text_view,
    thread_profile_view,
)
from repro.tau.apps import SPPM
from repro.tau.writers import write_tau_profiles


@pytest.fixture(scope="module")
def reloaded_trial(tmp_path_factory):
    """A trial whose metric 0 is NOT time (alphabetical MULTI__ order)."""
    source = SPPM(problem_size=0.01, timesteps=1).run(4)
    base = tmp_path_factory.mktemp("mm")
    write_tau_profiles(source, base)
    back = parse_tau_profiles(base)
    assert back.metrics[0].name != "TIME"  # precondition for these tests
    return back


class TestTimeMetricDefault:
    def test_aggregate_view_uses_time(self, reloaded_trial):
        text = aggregate_view(reloaded_trial)
        assert "mean exclusive TIME" in text

    def test_thread_view_uses_time(self, reloaded_trial):
        text = thread_profile_view(reloaded_trial, 0)
        assert "exclusive TIME" in text

    def test_summary_uses_time(self, reloaded_trial):
        text = summary_text_view(reloaded_trial)
        assert "metric TIME" in text

    def test_explicit_metric_override(self, reloaded_trial):
        index = [m.name for m in reloaded_trial.metrics].index("PAPI_FP_OPS")
        text = aggregate_view(reloaded_trial, metric=index)
        assert "PAPI_FP_OPS" in text

    def test_comparative_view_values_are_time(self, reloaded_trial):
        from repro.core.toolkit import event_values

        time_index = [m.name for m in reloaded_trial.metrics].index("TIME")
        values = event_values(reloaded_trial, "hydro_kernel", time_index)
        text = comparative_event_view(reloaded_trial, "hydro_kernel")
        # the largest rendered bar belongs to the max-time thread
        assert "hydro_kernel" in text
        assert values.max() > 0
