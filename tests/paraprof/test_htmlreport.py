"""Tests for the static HTML report and snapshot XML persistence."""

import pytest

from repro.core.io_ import export_snapshots, parse_snapshots
from repro.core.io_.base import ProfileParseError
from repro.core.model import DataSource
from repro.paraprof import html_report, write_html_report
from repro.tau.apps import EVH1, SPPM
from repro.tau.snapshots import capture_series


@pytest.fixture(scope="module")
def trial():
    ds = EVH1(problem_size=0.05, timesteps=1).run(4)
    ds.metadata["platform"] = "simulated <cluster> & co"
    return ds


class TestHtmlReport:
    def test_self_contained_document(self, trial):
        text = html_report(trial)
        assert text.startswith("<!DOCTYPE html>")
        assert text.endswith("</html>")
        assert "<script" not in text
        assert "http" not in text.split("xmlns")[0]  # no external links

    def test_sections_present(self, trial):
        text = html_report(trial, title="EVH1 report")
        for expected in (
            "EVH1 report", "Group breakdown", "Per-event statistics",
            "User events", "Trial metadata", "<svg",
        ):
            assert expected in text

    def test_escaping(self, trial):
        text = html_report(trial)
        assert "&lt;cluster&gt; &amp; co" in text
        assert "<cluster>" not in text

    def test_event_rows_and_bars(self, trial):
        text = html_report(trial)
        assert "riemann" in text
        assert text.count("<rect") >= 5

    def test_imbalance_highlighting(self):
        ds = DataSource()
        ds.add_metric("TIME")
        event = ds.add_interval_event("skewed")
        for t, v in enumerate([1.0, 1.0, 1.0, 100.0]):
            fp = ds.add_thread(t, 0, 0).get_or_create_function_profile(event)
            fp.set_exclusive(0, v)
            fp.set_inclusive(0, v)
        text = html_report(ds)
        assert "class='hot'" in text

    def test_metric_defaults_to_time(self):
        source = SPPM(problem_size=0.01, timesteps=1).run(2)
        text = html_report(source)
        assert "displayed metric: TIME" in text

    def test_write_to_disk(self, trial, tmp_path):
        path = write_html_report(trial, tmp_path / "r.html")
        assert path.read_text().startswith("<!DOCTYPE html>")


class TestSnapshotXml:
    @pytest.fixture(scope="class")
    def series(self):
        return capture_series(
            lambda n: EVH1(problem_size=0.05, timesteps=n, seed=3),
            ranks=2, steps=[1, 2, 3],
        )

    def test_roundtrip_preserves_structure(self, series, tmp_path):
        path = export_snapshots(series, tmp_path / "s.xml")
        back = parse_snapshots(path)
        assert len(back) == 3
        assert [s.timestamp for s in back] == [1.0, 2.0, 3.0]
        assert [s.label for s in back] == [
            "after step 1", "after step 2", "after step 3",
        ]

    def test_roundtrip_preserves_values(self, series, tmp_path):
        path = export_snapshots(series, tmp_path / "s.xml")
        back = parse_snapshots(path)
        for original, restored in zip(series, back):
            event = original.source.get_interval_event("riemann")
            r_event = restored.source.get_interval_event("riemann")
            a = original.source.get_thread(0, 0, 0).function_profiles[event.index]
            b = restored.source.get_thread(0, 0, 0).function_profiles[r_event.index]
            assert b.get_inclusive(0) == a.get_inclusive(0)

    def test_roundtrip_still_monotonic(self, series, tmp_path):
        path = export_snapshots(series, tmp_path / "s.xml")
        back = parse_snapshots(path)
        assert back.validate() == []

    def test_intervals_after_reload(self, series, tmp_path):
        path = export_snapshots(series, tmp_path / "s.xml")
        back = parse_snapshots(path)
        assert len(back.intervals()) == 2

    def test_wrong_root_rejected(self, tmp_path):
        bad = tmp_path / "x.xml"
        bad.write_text("<other/>")
        with pytest.raises(ProfileParseError, match="perfdmf_snapshots"):
            parse_snapshots(bad)

    def test_empty_document_rejected(self, tmp_path):
        bad = tmp_path / "x.xml"
        bad.write_text('<perfdmf_snapshots version="1.0"/>')
        with pytest.raises(ProfileParseError, match="empty"):
            parse_snapshots(bad)
