"""Unit tests for the MiniSQL lexer."""

import pytest

from repro.db.minisql.errors import SQLSyntaxError
from repro.db.minisql.lexer import tokenize
from repro.db.minisql.tokens import TokenType


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        assert kinds("select From WHERE") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.KEYWORD, "WHERE"),
        ]

    def test_identifiers_preserve_case(self):
        assert kinds("myTable") == [(TokenType.IDENTIFIER, "myTable")]

    def test_identifier_with_underscore_and_digits(self):
        assert kinds("interval_event2") == [(TokenType.IDENTIFIER, "interval_event2")]

    def test_eof_token_present(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_punctuation(self):
        values = [v for _, v in kinds("( ) , . ;")]
        assert values == ["(", ")", ",", ".", ";"]

    def test_placeholder(self):
        assert kinds("?") == [(TokenType.PLACEHOLDER, "?")]

    def test_position_tracking(self):
        tokens = tokenize("SELECT  x")
        assert tokens[0].position == 0
        assert tokens[1].position == 8


class TestNumbers:
    @pytest.mark.parametrize(
        "text", ["0", "42", "12345678901234567890"]
    )
    def test_integers(self, text):
        assert kinds(text) == [(TokenType.NUMBER, text)]

    @pytest.mark.parametrize("text", ["1.5", ".5", "2.", "1e10", "1.5e-3", "2E+4"])
    def test_floats(self, text):
        assert kinds(text) == [(TokenType.NUMBER, text)]

    def test_number_followed_by_identifier(self):
        assert kinds("1x") == [
            (TokenType.NUMBER, "1"),
            (TokenType.IDENTIFIER, "x"),
        ]


class TestStrings:
    def test_simple_string(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_empty_string(self):
        assert kinds("''") == [(TokenType.STRING, "")]

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_string_with_sql_keywords_inside(self):
        assert kinds("'SELECT * FROM'") == [(TokenType.STRING, "SELECT * FROM")]


class TestQuotedIdentifiers:
    def test_double_quoted_identifier(self):
        assert kinds('"order"') == [(TokenType.IDENTIFIER, "order")]

    def test_doubled_quotes_escape(self):
        assert kinds('"we""ird"') == [(TokenType.IDENTIFIER, 'we"ird')]

    def test_unterminated_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize('"oops')


class TestOperators:
    @pytest.mark.parametrize(
        "op", ["=", "<", ">", "<=", ">=", "<>", "!=", "+", "-", "*", "/", "%", "||"]
    )
    def test_operator(self, op):
        assert kinds(f"a {op} b")[1] == (TokenType.OPERATOR, op)

    def test_greedy_two_char_operators(self):
        assert kinds("<=") == [(TokenType.OPERATOR, "<=")]
        assert kinds("<>") == [(TokenType.OPERATOR, "<>")]


class TestComments:
    def test_line_comment(self):
        assert kinds("SELECT -- everything\n1") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.NUMBER, "1"),
        ]

    def test_line_comment_at_eof(self):
        assert kinds("1 -- done") == [(TokenType.NUMBER, "1")]

    def test_block_comment(self):
        assert kinds("SELECT /* all\nthe things */ 1") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.NUMBER, "1"),
        ]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("/* oops")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            tokenize("SELECT @")
        assert "unexpected character" in str(excinfo.value)

    def test_error_carries_line_and_column(self):
        with pytest.raises(SQLSyntaxError) as excinfo:
            tokenize("SELECT 1\nFROM @")
        assert "line 2" in str(excinfo.value)
