"""Tests for EXPLAIN ANALYZE and the slow-query log.

The acceptance criterion: per-step actual-row counts must match the
cardinalities observable through the ordinary query interface — for an
index range scan, an ORDER BY ... LIMIT pushdown, and a full scan.
"""

import pytest

from repro.db import minisql
from repro.db.minisql.errors import ProgrammingError

N = 1000


@pytest.fixture
def conn():
    c = minisql.connect()
    c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v REAL)")
    c.execute("CREATE INDEX idx_v ON t (v) USING BTREE")
    c.executemany(
        "INSERT INTO t (k, v) VALUES (?, ?)",
        [(i % 10, float(i)) for i in range(N)],
    )
    c.commit()
    yield c
    c.close()


def analyze(conn, sql, params=()):
    cursor = conn.execute(f"EXPLAIN ANALYZE {sql}", params)
    assert [d[0] for d in cursor.description] == [
        "id", "detail", "rows", "time_ms", "compiled", "vectorized",
    ]
    return cursor.fetchall()


def step(rows, prefix):
    matches = [r for r in rows if r[1].startswith(prefix)]
    assert matches, f"no step starting with {prefix!r} in {rows}"
    return matches[0]


class TestSelectAnalyze:
    def test_index_range_rows_match_cardinality(self, conn):
        observed = len(
            conn.execute("SELECT * FROM t WHERE v >= 100 AND v < 300").fetchall()
        )
        assert observed == 200
        rows = analyze(conn, "SELECT * FROM t WHERE v >= 100 AND v < 300")
        scan = step(rows, "SEARCH t USING ORDERED INDEX idx_v")
        assert scan[2] == observed  # index produced exactly the result rows
        result = step(rows, "RESULT")
        assert result[2] == observed
        assert result[3] >= 0.0

    def test_order_by_limit_early_stop(self, conn):
        rows = analyze(conn, "SELECT * FROM t ORDER BY v LIMIT 7")
        scan = step(rows, "SEARCH t USING ORDERED INDEX idx_v")
        assert scan[2] == 7  # pushdown stopped after the limit
        assert step(rows, "ORDER BY (index order)")
        assert step(rows, "RESULT")[2] == 7

    def test_full_scan_with_where_filter(self, conn):
        observed = len(conn.execute("SELECT * FROM t WHERE k = 3").fetchall())
        assert observed == N // 10
        rows = analyze(conn, "SELECT * FROM t WHERE k = 3")
        assert step(rows, "SCAN t")[2] == N  # every row visited
        assert step(rows, "WHERE filter")[2] == observed
        assert step(rows, "RESULT")[2] == observed

    def test_where_step_absent_from_plain_explain(self, conn):
        details = [
            r[1] for r in conn.execute(
                "EXPLAIN SELECT * FROM t WHERE k = 3"
            ).fetchall()
        ]
        assert details == ["SCAN t"]

    def test_join_step_counts(self, conn):
        conn.execute("CREATE TABLE u (id INTEGER PRIMARY KEY, t_id INTEGER)")
        conn.executemany(
            "INSERT INTO u (t_id) VALUES (?)", [(i,) for i in range(1, 30)]
        )
        rows = analyze(conn, "SELECT * FROM t JOIN u ON u.t_id = t.id")
        assert step(rows, "SCAN t")[2] == N
        assert step(rows, "HASH JOIN u")[2] == 29
        assert step(rows, "RESULT")[2] == 29

    def test_aggregation_result_cardinality(self, conn):
        rows = analyze(conn, "SELECT k, count(*) FROM t GROUP BY k")
        assert step(rows, "SCAN t")[2] == N
        assert step(rows, "RESULT")[2] == 10

    def test_probe_does_not_leak_between_statements(self, conn):
        analyze(conn, "SELECT * FROM t WHERE k = 3")
        # A later plain query runs unprobed and correct.
        assert len(conn.execute("SELECT * FROM t").fetchall()) == N


class TestDMLAnalyze:
    def test_delete_reports_rowcount_and_rolls_back(self, conn):
        rows = analyze(conn, "DELETE FROM t WHERE k = 4")
        assert step(rows, "DELETE")[2] is None  # no per-step probe for DML
        assert step(rows, "RESULT")[2] == N // 10
        conn.rollback()
        assert conn.execute("SELECT count(*) FROM t").fetchone()[0] == N

    def test_update_commit_persists(self, conn):
        rows = analyze(conn, "UPDATE t SET v = 0 WHERE k = 5")
        assert step(rows, "RESULT")[2] == N // 10
        conn.commit()
        zeroed = conn.execute(
            "SELECT count(*) FROM t WHERE v = 0 AND k = 5"
        ).fetchone()[0]
        assert zeroed == N // 10


class TestVectorizedColumn:
    def test_vectorized_flag_tracks_storage_mode(self, conn):
        sql = "SELECT count(*), sum(v) FROM t WHERE k = 3"
        rows = analyze(conn, sql)
        assert step(rows, "SCAN t")[5] == "no"
        conn.execute("PRAGMA columnar(t on)")
        rows = analyze(conn, sql)
        assert step(rows, "SCAN t")[5] == "yes"
        assert step(rows, "WHERE filter")[5] == "yes"
        assert step(rows, "RESULT")[5] is None
        # Per-step row counts still come from the probed row pipeline
        # (probes bypass vector execution), so they stay exact.
        assert step(rows, "SCAN t")[2] == N
        assert step(rows, "WHERE filter")[2] == N // 10


class TestSlowQueryLog:
    def test_pragma_round_trip(self, conn):
        assert conn.execute("PRAGMA slow_query_ms").fetchone()[0] is None
        conn.execute("PRAGMA slow_query_ms = 12.5")
        assert conn.execute("PRAGMA slow_query_ms").fetchone()[0] == 12.5
        conn.execute("PRAGMA slow_query_ms = off")
        assert conn.execute("PRAGMA slow_query_ms").fetchone()[0] is None

    def test_bad_threshold_rejected(self, conn):
        with pytest.raises(ProgrammingError):
            conn.execute("PRAGMA slow_query_ms = banana")

    def test_slow_queries_logged_with_plan(self, conn):
        conn.execute("PRAGMA slow_query_ms = 0")  # everything is slow
        conn.execute("SELECT * FROM t WHERE v >= 100 AND v < 300").fetchall()
        log = conn.execute("PRAGMA slow_query_log").fetchall()
        assert [d[0] for d in
                conn.execute("PRAGMA slow_query_log").description] == [
            "sql", "plan", "duration_ms"
        ]
        assert len(log) == 1
        sql, plan, duration = log[0]
        assert "WHERE v >= 100" in sql
        assert "SEARCH t USING ORDERED INDEX idx_v" in plan
        assert duration >= 0.0

    def test_log_clear(self, conn):
        conn.execute("PRAGMA slow_query_ms = 0")
        conn.execute("SELECT 1").fetchall()
        assert conn.execute("PRAGMA slow_query_log").fetchall()
        conn.execute("PRAGMA slow_query_log = clear")
        assert conn.execute("PRAGMA slow_query_log").fetchall() == []

    def test_threshold_filters_fast_queries(self, conn):
        conn.execute("PRAGMA slow_query_ms = 1e9")  # nothing is that slow
        conn.execute("SELECT * FROM t").fetchall()
        assert conn.execute("PRAGMA slow_query_log").fetchall() == []
