"""Batched-scan boundary pins for both storage engines.

``scan_batches`` feeds the compiled and vectorized pipelines; a
miscounted tail chunk silently drops rows from every aggregate.  The
edge cases pinned here: empty table, single row, row counts exactly at
/ one below / one above the batch size, and — columnar only — a
deleted-row (tombstone) run straddling a batch boundary, where chunking
before tombstone compression would short-change a chunk.
"""

from __future__ import annotations

import pytest

from repro.db import minisql

BATCH = 1024


@pytest.fixture(params=["row", "columnar"])
def make_table(request):
    """Returns (conn, load) where load(n) builds table t with n rows and
    returns the storage-level table object."""
    conn = minisql.connect()
    if request.param == "columnar":
        conn.execute("PRAGMA columnar(on)")

    def load(n):
        conn.execute("CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
        if n:
            conn.executemany(
                "INSERT INTO t VALUES (?, ?, ?)",
                [(i, f"s{i}", float(i)) for i in range(n)],
            )
        conn.commit()
        return conn._database.tables["t"]

    yield conn, load
    conn.close()


def _collect(table, **kwargs):
    chunks = list(table.scan_batches(**kwargs))
    assert all(chunks), "scan_batches must never yield an empty chunk"
    return chunks


@pytest.mark.parametrize(
    "count", [0, 1, BATCH - 1, BATCH, BATCH + 1, 2 * BATCH, 2 * BATCH + 1]
)
def test_row_counts_at_batch_boundaries(make_table, count):
    conn, load = make_table
    table = load(count)
    chunks = _collect(table)
    assert sum(len(c) for c in chunks) == count
    assert all(len(c) <= BATCH for c in chunks)
    flat = [row[0] for chunk in chunks for row in chunk]
    assert flat == list(range(count))


@pytest.mark.parametrize("count", [0, 1, 7, 8, 9, 17])
def test_small_batch_size_boundaries(make_table, count):
    conn, load = make_table
    table = load(count)
    chunks = _collect(table, batch_size=8)
    assert [len(c) for c in chunks] == (
        [8] * (count // 8) + ([count % 8] if count % 8 else [])
    )


def test_projection_positions(make_table):
    conn, load = make_table
    table = load(BATCH + 5)
    single = [
        v for chunk in _collect(table, positions=(1,)) for (v,) in chunk
    ]
    assert single == [f"s{i}" for i in range(BATCH + 5)]
    swapped = [
        t for chunk in _collect(table, positions=(2, 0)) for t in chunk
    ]
    assert swapped == [(float(i), i) for i in range(BATCH + 5)]


def test_deleted_run_straddling_batch_boundary(make_table):
    """Delete a contiguous run around slot 1024; every survivor must
    still come out exactly once, in order, with full-size chunks."""
    conn, load = make_table
    table = load(2 * BATCH + 100)
    conn.execute("DELETE FROM t WHERE a >= 1000 AND a < 1100")
    conn.commit()
    expected = [i for i in range(2 * BATCH + 100) if not 1000 <= i < 1100]
    chunks = _collect(table)
    flat = [row[0] for chunk in chunks for row in chunk]
    assert flat == expected
    assert all(len(c) == BATCH for c in chunks[:-1])
    projected = [
        v for chunk in _collect(table, positions=(0,)) for (v,) in chunk
    ]
    assert projected == expected


def test_deletions_leaving_count_at_exact_multiple(make_table):
    """Deletions that land the live count exactly on 0/1 (mod 1024)."""
    conn, load = make_table
    table = load(2 * BATCH + 50)
    conn.execute("DELETE FROM t WHERE a >= ?", (2 * BATCH,))
    conn.commit()
    assert sum(len(c) for c in _collect(table)) == 2 * BATCH
    conn.execute("DELETE FROM t WHERE a >= ?", (BATCH + 1,))
    conn.commit()
    chunks = _collect(table)
    assert [len(c) for c in chunks] == [BATCH, 1]


def test_interleaved_deletes_then_aggregate_agrees(make_table):
    """End to end: the batched pipeline's aggregate over a tombstoned
    table equals the unbatched oracle."""
    conn, load = make_table
    load(BATCH + 13)
    conn.execute("DELETE FROM t WHERE a % 3 = 0")
    conn.commit()
    survivors = [i for i in range(BATCH + 13) if i % 3]
    count, total = conn.execute("SELECT count(*), sum(a) FROM t").fetchone()
    assert (count, total) == (len(survivors), sum(survivors))
