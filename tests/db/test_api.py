"""Tests for the backend-neutral connection API (the JDBC analog)."""

import pytest

from repro.db import ColumnMetadata, connect, parse_url
from repro.db.dialects import DIALECTS, get_dialect


class TestParseUrl:
    def test_sqlite_memory(self):
        assert parse_url("sqlite://:memory:") == ("sqlite", ":memory:")

    def test_sqlite_file(self):
        assert parse_url("sqlite:///tmp/x.db") == ("sqlite", "/tmp/x.db")

    def test_minisql_named(self):
        assert parse_url("minisql://archive") == ("minisql", "archive")

    def test_empty_target_defaults_to_memory(self):
        assert parse_url("minisql://") == ("minisql", ":memory:")

    def test_missing_scheme_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_url("/tmp/x.db")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unsupported backend"):
            parse_url("oracle://somewhere")


class TestDBConnection:
    def test_execute_and_query(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.execute("INSERT INTO t VALUES (1)")
        assert conn.query("SELECT x FROM t") == [(1,)]

    def test_scalar(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(5)])
        assert conn.scalar("SELECT sum(x) FROM t") == 10

    def test_scalar_empty_returns_none(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        assert conn.scalar("SELECT x FROM t") is None

    def test_insert_returns_lastrowid(self, conn):
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)")
        rowid = conn.insert("INSERT INTO t (x) VALUES (?)", (7,))
        assert rowid == 1
        rowid = conn.insert("INSERT INTO t (x) VALUES (?)", (8,))
        assert rowid == 2

    def test_stddev_available_on_both_backends(self, conn):
        conn.execute("CREATE TABLE t (x REAL)")
        conn.executemany("INSERT INTO t VALUES (?)", [(1.0,), (2.0,), (3.0,)])
        assert conn.scalar("SELECT stddev(x) FROM t") == pytest.approx(1.0)

    def test_variance_available_on_both_backends(self, conn):
        conn.execute("CREATE TABLE t (x REAL)")
        conn.executemany("INSERT INTO t VALUES (?)", [(1.0,), (2.0,), (3.0,)])
        assert conn.scalar("SELECT variance(x) FROM t") == pytest.approx(1.0)

    def test_table_names(self, conn):
        conn.execute("CREATE TABLE beta (x INTEGER)")
        conn.execute("CREATE TABLE alpha (x INTEGER)")
        names = [t.lower() for t in conn.table_names()]
        assert names == ["alpha", "beta"]

    def test_has_table_case_insensitive(self, conn):
        conn.execute("CREATE TABLE MyTable (x INTEGER)")
        assert conn.has_table("mytable")
        assert not conn.has_table("other")

    def test_rollback(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.commit()
        conn.execute("INSERT INTO t VALUES (1)")
        conn.rollback()
        assert conn.scalar("SELECT count(*) FROM t") == 0


class TestGetMetadata:
    """The getMetaData() analog that enables the flexible schema."""

    def test_columns_reported(self, conn):
        conn.execute(
            "CREATE TABLE trial (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
            "node_count INTEGER)"
        )
        meta = conn.get_metadata("trial")
        assert [c.name for c in meta] == ["id", "name", "node_count"]
        assert meta[0].primary_key
        assert meta[1].not_null
        assert not meta[2].not_null

    def test_added_column_is_discovered(self, conn):
        conn.execute("CREATE TABLE app (id INTEGER PRIMARY KEY, name TEXT)")
        conn.execute("ALTER TABLE app ADD COLUMN compiler TEXT")
        assert "compiler" in conn.column_names("app")

    def test_missing_table_raises(self, conn):
        with pytest.raises(LookupError):
            conn.get_metadata("nope")

    def test_injection_safe(self, conn):
        with pytest.raises(ValueError):
            conn.get_metadata("x; DROP TABLE y")

    def test_metadata_is_frozen_dataclass(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        meta = conn.get_metadata("t")[0]
        assert isinstance(meta, ColumnMetadata)
        with pytest.raises(AttributeError):
            meta.name = "other"


class TestDialects:
    def test_six_dialects_registered(self):
        assert set(DIALECTS) == {
            "sqlite", "minisql", "postgresql", "mysql", "oracle", "db2"
        }

    def test_serial_column_differs_by_vendor(self):
        assert "AUTOINCREMENT" in get_dialect("sqlite").serial_column
        assert "SERIAL" in get_dialect("postgresql").serial_column
        assert "AUTO_INCREMENT" in get_dialect("mysql").serial_column
        assert "IDENTITY" in get_dialect("oracle").serial_column
        assert "IDENTITY" in get_dialect("db2").serial_column

    def test_type_mapping(self):
        assert get_dialect("sqlite").type_for("DOUBLE") == "REAL"
        assert get_dialect("postgresql").type_for("DOUBLE") == "DOUBLE PRECISION"
        assert get_dialect("oracle").type_for("STRING") == "VARCHAR2(4000)"

    def test_unknown_dialect(self):
        with pytest.raises(ValueError):
            get_dialect("sybase")

    def test_quote(self):
        assert get_dialect("mysql").quote("order") == "`order`"
        assert get_dialect("postgresql").quote("order") == '"order"'
