"""Tests for MiniSQL's EXPLAIN (planner-decision visibility)."""

import pytest

from repro.db import minisql


@pytest.fixture
def conn():
    c = minisql.connect()
    c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v REAL)")
    c.execute("CREATE TABLE u (id INTEGER PRIMARY KEY, t_id INTEGER)")
    c.execute("CREATE INDEX idx_k ON t (k)")
    c.executemany("INSERT INTO t (k, v) VALUES (?, ?)", [(i % 5, i) for i in range(20)])
    yield c
    c.close()


def plan(conn, sql, params=()):
    return [row[1] for row in conn.execute(f"EXPLAIN {sql}", params).fetchall()]


class TestExplain:
    def test_full_scan(self, conn):
        steps = plan(conn, "SELECT * FROM t")
        assert steps == ["SCAN t"]

    def test_index_probe(self, conn):
        steps = plan(conn, "SELECT * FROM t WHERE k = 3")
        assert steps[0].startswith("SEARCH t USING INDEX idx_k")

    def test_pk_probe(self, conn):
        steps = plan(conn, "SELECT * FROM t WHERE id = 7")
        assert "USING INDEX __pk_t" in steps[0]

    def test_parameterised_probe(self, conn):
        steps = plan(conn, "SELECT * FROM t WHERE k = ?", (1,))
        assert steps[0].startswith("SEARCH")

    def test_non_equality_is_scan(self, conn):
        steps = plan(conn, "SELECT * FROM t WHERE k > 3")
        assert steps == ["SCAN t"]

    def test_hash_join(self, conn):
        steps = plan(conn, "SELECT * FROM t JOIN u ON u.t_id = t.id")
        assert any("HASH JOIN u" in s for s in steps)

    def test_cross_join(self, conn):
        steps = plan(conn, "SELECT * FROM t CROSS JOIN u")
        assert any("CROSS JOIN u" in s for s in steps)

    def test_nested_loop_for_inequality_join(self, conn):
        steps = plan(conn, "SELECT * FROM t JOIN u ON u.t_id > t.id")
        assert any("NESTED LOOP JOIN u" in s for s in steps)

    def test_group_and_order_steps(self, conn):
        steps = plan(conn, "SELECT k, count(*) FROM t GROUP BY k ORDER BY k")
        assert "GROUP BY (hash aggregation)" in steps
        assert "ORDER BY (sort)" in steps

    def test_compound(self, conn):
        steps = plan(conn, "SELECT k FROM t UNION SELECT id FROM u")
        assert "COMPOUND UNION" in steps

    def test_constant_select(self, conn):
        steps = plan(conn, "SELECT 1 + 1")
        assert steps == ["CONSTANT ROW (no FROM)"]

    def test_explain_dml(self, conn):
        steps = plan(conn, "DELETE FROM t WHERE k = 1")
        assert steps == ["DELETE"]

    def test_explain_does_not_execute(self, conn):
        before = conn.execute("SELECT count(*) FROM t").fetchone()
        conn.execute("EXPLAIN DELETE FROM t")
        after = conn.execute("SELECT count(*) FROM t").fetchone()
        assert before == after
