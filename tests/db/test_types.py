"""Unit tests for the MiniSQL type system (affinity, CAST, ordering)."""

import pytest

from repro.db.minisql.errors import DataError
from repro.db.minisql.types import canonical_type, cast_value, coerce, sort_key


class TestCanonicalType:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INTEGER", "INTEGER"), ("int", "INTEGER"), ("BIGINT", "INTEGER"),
            ("REAL", "REAL"), ("DOUBLE", "REAL"), ("double precision", "REAL"),
            ("FLOAT", "REAL"),
            ("TEXT", "TEXT"), ("VARCHAR", "TEXT"), ("VARCHAR(255)", "TEXT"),
            ("CHAR(10)", "TEXT"),
            ("BOOLEAN", "BOOLEAN"),
            ("NUMERIC", "NUMERIC"), ("DECIMAL(10,2)", "NUMERIC"),
        ],
    )
    def test_mapping(self, name, expected):
        assert canonical_type(name) == expected

    def test_unknown_type(self):
        with pytest.raises(DataError):
            canonical_type("GEOMETRY")


class TestCoerce:
    def test_integer_affinity(self):
        assert coerce(5, "INTEGER") == 5
        assert coerce(True, "INTEGER") == 1
        assert coerce(5.0, "INTEGER") == 5
        assert coerce(5.5, "INTEGER") == 5.5  # kept as float, like sqlite
        assert coerce("42", "INTEGER") == 42
        assert coerce("4.5", "INTEGER") == 4.5
        assert coerce("abc", "INTEGER") == "abc"  # non-numeric text kept

    def test_real_affinity(self):
        assert coerce(5, "REAL") == 5.0
        assert isinstance(coerce(5, "REAL"), float)
        assert coerce("2.5", "REAL") == 2.5
        assert coerce("abc", "REAL") == "abc"

    def test_text_affinity_converts_numbers(self):
        assert coerce(42, "TEXT") == "42"
        assert coerce(1.5, "TEXT") == "1.5"
        assert coerce(3.0, "TEXT") == "3.0"  # sqlite keeps one decimal
        assert coerce(-0.0, "TEXT") == "0.0"
        assert coerce(1e15, "TEXT") == "1.0e+15"

    def test_boolean_affinity(self):
        assert coerce(True, "BOOLEAN") == 1
        assert coerce(0, "BOOLEAN") == 0
        assert coerce("true", "BOOLEAN") == 1
        assert coerce("no", "BOOLEAN") == 0
        with pytest.raises(DataError):
            coerce("maybe", "BOOLEAN")

    def test_numeric_affinity(self):
        assert coerce("7", "NUMERIC") == 7
        assert coerce(7.0, "NUMERIC") == 7
        assert coerce(7.5, "NUMERIC") == 7.5

    def test_none_passes_through(self):
        for affinity in ("INTEGER", "REAL", "TEXT", "BOOLEAN", "NUMERIC"):
            assert coerce(None, affinity) is None

    def test_incompatible_object_raises(self):
        with pytest.raises(DataError):
            coerce(object(), "INTEGER")


class TestCastValue:
    def test_cast_to_integer(self):
        assert cast_value("42", "INTEGER") == 42
        assert cast_value("4.9", "INTEGER") == 4
        assert cast_value("abc", "INTEGER") == 0  # sqlite semantics
        assert cast_value(7.9, "INTEGER") == 7

    def test_cast_to_real(self):
        assert cast_value("2.5", "REAL") == 2.5
        assert cast_value("junk", "REAL") == 0.0

    def test_cast_to_text(self):
        assert cast_value(42, "TEXT") == "42"
        assert cast_value(2.5, "TEXT") == "2.5"

    def test_cast_to_boolean(self):
        assert cast_value(5, "BOOLEAN") == 1
        assert cast_value(0, "BOOLEAN") == 0

    def test_cast_null(self):
        assert cast_value(None, "INTEGER") is None


class TestSortKey:
    def test_null_sorts_first(self):
        values = ["b", None, 2, 1.5, "a"]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None

    def test_numbers_before_text(self):
        ordered = sorted(["x", 5, "a", 2], key=sort_key)
        assert ordered == [2, 5, "a", "x"]

    def test_int_float_interleave(self):
        ordered = sorted([2, 1.5, 3, 2.5], key=sort_key)
        assert ordered == [1.5, 2, 2.5, 3]
