"""Unit tests for the MiniSQL parser (AST shapes)."""

import pytest

from repro.db.minisql import ast_nodes as n
from repro.db.minisql.errors import SQLSyntaxError
from repro.db.minisql.parser import parse, parse_one


class TestCreateTable:
    def test_simple(self):
        stmt = parse_one("CREATE TABLE t (id INTEGER, name TEXT)")
        assert isinstance(stmt, n.CreateTable)
        assert stmt.table == "t"
        assert [c.name for c in stmt.columns] == ["id", "name"]
        assert [c.type_name for c in stmt.columns] == ["INTEGER", "TEXT"]

    def test_if_not_exists(self):
        stmt = parse_one("CREATE TABLE IF NOT EXISTS t (x INT)")
        assert stmt.if_not_exists

    def test_primary_key_column(self):
        stmt = parse_one("CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT)")
        col = stmt.columns[0]
        assert col.primary_key and col.autoincrement and col.not_null

    def test_not_null_and_default(self):
        stmt = parse_one("CREATE TABLE t (x TEXT NOT NULL DEFAULT 'none')")
        col = stmt.columns[0]
        assert col.not_null
        assert isinstance(col.default, n.Literal)
        assert col.default.value == "none"

    def test_references(self):
        stmt = parse_one("CREATE TABLE t (app INTEGER REFERENCES application(id))")
        assert stmt.columns[0].references == ("application", "id")

    def test_references_defaults_to_id(self):
        stmt = parse_one("CREATE TABLE t (app INTEGER REFERENCES application)")
        assert stmt.columns[0].references == ("application", "id")

    def test_table_level_primary_key(self):
        stmt = parse_one("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert stmt.primary_key == ["a", "b"]

    def test_table_level_foreign_key(self):
        stmt = parse_one(
            "CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES other (id))"
        )
        assert stmt.foreign_keys[0].columns == ["a"]
        assert stmt.foreign_keys[0].ref_table == "other"

    def test_varchar_length_is_accepted(self):
        stmt = parse_one("CREATE TABLE t (name VARCHAR(255))")
        assert stmt.columns[0].type_name == "TEXT"

    def test_unknown_type_gets_numeric_affinity(self):
        stmt = parse_one("CREATE TABLE t (x CUSTOMTYPE)")
        assert stmt.columns[0].type_name == "NUMERIC"

    def test_unique_column(self):
        stmt = parse_one("CREATE TABLE t (x TEXT UNIQUE)")
        assert stmt.columns[0].unique


class TestOtherDDL:
    def test_drop_table(self):
        stmt = parse_one("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, n.DropTable) and stmt.if_exists

    def test_create_index(self):
        stmt = parse_one("CREATE UNIQUE INDEX idx ON t (a, b)")
        assert isinstance(stmt, n.CreateIndex)
        assert stmt.unique and stmt.columns == ["a", "b"]

    def test_drop_index(self):
        stmt = parse_one("DROP INDEX idx")
        assert isinstance(stmt, n.DropIndex)

    def test_alter_add_column(self):
        stmt = parse_one("ALTER TABLE t ADD COLUMN notes TEXT")
        assert isinstance(stmt, n.AlterTableAddColumn)
        assert stmt.column.name == "notes"

    def test_alter_rename(self):
        stmt = parse_one("ALTER TABLE t RENAME TO u")
        assert isinstance(stmt, n.AlterTableRename) and stmt.new_name == "u"

    def test_pragma(self):
        stmt = parse_one("PRAGMA table_info(application)")
        assert isinstance(stmt, n.Pragma)
        assert stmt.name == "table_info" and stmt.argument == "application"


class TestInsert:
    def test_values(self):
        stmt = parse_one("INSERT INTO t (a, b) VALUES (1, 'x')")
        assert isinstance(stmt, n.Insert)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 1

    def test_multi_row(self):
        stmt = parse_one("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert len(stmt.rows) == 3

    def test_placeholders_numbered_in_order(self):
        stmt = parse_one("INSERT INTO t (a, b, c) VALUES (?, ?, ?)")
        indexes = [e.index for e in stmt.rows[0]]
        assert indexes == [0, 1, 2]

    def test_insert_select(self):
        stmt = parse_one("INSERT INTO t (a) SELECT x FROM u")
        assert stmt.select is not None

    def test_no_column_list(self):
        stmt = parse_one("INSERT INTO t VALUES (1, 2)")
        assert stmt.columns == []


class TestUpdateDelete:
    def test_update(self):
        stmt = parse_one("UPDATE t SET a = 1, b = b + 1 WHERE id = ?")
        assert isinstance(stmt, n.Update)
        assert [name for name, _ in stmt.assignments] == ["a", "b"]
        assert stmt.where is not None

    def test_delete_without_where(self):
        stmt = parse_one("DELETE FROM t")
        assert isinstance(stmt, n.Delete) and stmt.where is None


class TestSelect:
    def test_star(self):
        stmt = parse_one("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, n.Star)

    def test_table_star(self):
        stmt = parse_one("SELECT t.* FROM t")
        assert stmt.items[0].expr.table == "t"

    def test_aliases(self):
        stmt = parse_one("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_distinct(self):
        assert parse_one("SELECT DISTINCT a FROM t").distinct

    def test_joins(self):
        stmt = parse_one(
            "SELECT * FROM a JOIN b ON a.id = b.a_id "
            "LEFT JOIN c ON b.id = c.b_id CROSS JOIN d"
        )
        assert [j.kind for j in stmt.joins] == ["INNER", "LEFT", "CROSS"]

    def test_implicit_cross_join_via_comma(self):
        stmt = parse_one("SELECT * FROM a, b")
        assert stmt.joins[0].kind == "CROSS"

    def test_right_join_rejected_with_hint(self):
        with pytest.raises(SQLSyntaxError, match="LEFT JOIN"):
            parse_one("SELECT * FROM a RIGHT JOIN b ON a.id = b.id")

    def test_group_by_having(self):
        stmt = parse_one(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_limit_offset(self):
        stmt = parse_one("SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert isinstance(stmt.limit, n.Literal)
        assert isinstance(stmt.offset, n.Literal)

    def test_union_order_by_moves_to_head(self):
        stmt = parse_one("SELECT a FROM t UNION SELECT a FROM u ORDER BY a")
        assert stmt.order_by, "ORDER BY must attach to the compound head"
        assert stmt.compound[0] == "UNION"
        assert not stmt.compound[1].order_by

    def test_union_all(self):
        stmt = parse_one("SELECT a FROM t UNION ALL SELECT a FROM u")
        assert stmt.compound[0] == "UNION ALL"

    def test_select_without_from(self):
        stmt = parse_one("SELECT 1 + 1")
        assert stmt.table is None


class TestExpressions:
    def test_precedence_multiplication_before_addition(self):
        stmt = parse_one("SELECT 1 + 2 * 3")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        stmt = parse_one("SELECT (1 + 2) * 3")
        expr = stmt.items[0].expr
        assert expr.op == "*"

    def test_and_or_precedence(self):
        stmt = parse_one("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_not(self):
        stmt = parse_one("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, n.UnaryOp) and stmt.where.op == "NOT"

    def test_is_null_and_is_not_null(self):
        stmt = parse_one("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
        left, right = stmt.where.left, stmt.where.right
        assert isinstance(left, n.IsNull) and not left.negated
        assert isinstance(right, n.IsNull) and right.negated

    def test_in_list(self):
        stmt = parse_one("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, n.InList)
        assert len(stmt.where.items) == 3

    def test_not_in(self):
        stmt = parse_one("SELECT * FROM t WHERE a NOT IN (1)")
        assert stmt.where.negated

    def test_between(self):
        stmt = parse_one("SELECT * FROM t WHERE a BETWEEN 1 AND 10")
        assert isinstance(stmt.where, n.Between)

    def test_like(self):
        stmt = parse_one("SELECT * FROM t WHERE name LIKE 'MPI%'")
        assert isinstance(stmt.where, n.Like)

    def test_case_searched(self):
        stmt = parse_one("SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, n.CaseExpr) and expr.operand is None

    def test_case_simple(self):
        stmt = parse_one("SELECT CASE a WHEN 1 THEN 'x' END FROM t")
        assert stmt.items[0].expr.operand is not None

    def test_cast(self):
        stmt = parse_one("SELECT CAST(a AS INTEGER) FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, n.CastExpr) and expr.target_type == "INTEGER"

    def test_count_star(self):
        stmt = parse_one("SELECT count(*) FROM t")
        call = stmt.items[0].expr
        assert isinstance(call, n.FunctionCall)
        assert isinstance(call.args[0], n.Star)

    def test_count_distinct(self):
        stmt = parse_one("SELECT count(DISTINCT a) FROM t")
        assert stmt.items[0].expr.distinct

    def test_qualified_column(self):
        stmt = parse_one("SELECT t.a FROM t")
        ref = stmt.items[0].expr
        assert ref.table == "t" and ref.name == "a"

    def test_string_concat(self):
        stmt = parse_one("SELECT 'a' || 'b'")
        assert stmt.items[0].expr.op == "||"

    def test_unary_minus(self):
        stmt = parse_one("SELECT -5")
        assert isinstance(stmt.items[0].expr, n.UnaryOp)


class TestScriptsAndErrors:
    def test_multiple_statements(self):
        statements = parse("SELECT 1; SELECT 2;")
        assert len(statements) == 2

    def test_trailing_semicolon_optional(self):
        assert len(parse("SELECT 1")) == 1

    def test_parse_one_rejects_multiple(self):
        with pytest.raises(SQLSyntaxError):
            parse_one("SELECT 1; SELECT 2")

    def test_missing_from_table_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_one("SELECT * FROM")

    def test_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_one("FLY ME TO THE MOON")

    def test_unbalanced_parens(self):
        with pytest.raises(SQLSyntaxError):
            parse_one("SELECT (1 + 2")
