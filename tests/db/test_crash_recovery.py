"""Subprocess crash matrix: kill -9 MiniSQL at every WAL crash point.

Each case spawns a real child process that bulk-loads committed batches
into a file-backed archive with a fault armed via ``REPRO_FAULTS``.
The fault fires ``os._exit(137)`` mid-write — the same observable state
a SIGKILL or power cut leaves behind.  The parent then reopens the
archive and asserts the recovered state is a *committed prefix*: the
batches present are exactly 0..k for some k, every present batch is
complete, and ``PRAGMA integrity_check`` is clean.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.db import minisql
from repro.testing import faults

ROWS_PER_BATCH = 25
BATCHES = 4

# The child workload: DDL, then BATCHES committed bulk batches with a
# checkpoint after batch 1 (so checkpoint.* crash points fire mid-run,
# with both prior state and later WAL records in play).
_CHILD = """
import sys
from repro.db import minisql

path, batches, rows = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
conn = minisql.connect(path)
try:
    conn.execute(
        "CREATE TABLE points (id INTEGER PRIMARY KEY, batch INTEGER, val REAL)"
    )
    conn.execute("CREATE INDEX idx_batch ON points (batch) USING BTREE")
except minisql.MiniSQLError:
    pass  # rerun against a surviving archive (crash-loop tests)
for b in range(batches):
    with conn.bulk_load():
        conn.executemany(
            "INSERT INTO points (batch, val) VALUES (?, ?)",
            [(b, float(i)) for i in range(rows)],
        )
    conn.commit()
    if b == 1:
        conn.execute("PRAGMA checkpoint")
print("COMPLETED", flush=True)
"""

CRASH_POINTS = [
    # Bulk loads log one "bmany" record per batch, so the whole workload
    # is ~14 appends (2 DDL + 3 per batch); hit 10 lands mid-run.
    "wal.append.before@10",
    "wal.append.after@10",
    "torn:wal.append:1",
    "torn:wal.append:17",
    "wal.commit.before_record@2",
    "wal.commit.after_record@2",
    "wal.commit.after_barrier@2",
    "checkpoint.before_dump",
    "checkpoint.after_dump",
    "checkpoint.after_rename",
    "checkpoint.after_truncate",
]


def _run_child(archive: Path, spec: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["REPRO_FAULTS"] = spec
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", _CHILD, str(archive),
         str(BATCHES), str(ROWS_PER_BATCH)],
        env=env, capture_output=True, text=True, timeout=120,
    )


def _assert_committed_prefix(archive: Path) -> None:
    conn = minisql.connect(str(archive))
    try:
        assert conn.execute(
            "PRAGMA integrity_check"
        ).fetchall() == [("ok",)]
        tables = {r[0] for r in conn.execute("PRAGMA table_list").fetchall()}
        if "points" not in tables:
            return  # crashed before the DDL record was durable
        per_batch = conn.execute(
            "SELECT batch, count(*) FROM points GROUP BY batch ORDER BY batch"
        ).fetchall()
        batches = [b for b, _ in per_batch]
        assert batches == list(range(len(batches))), (
            f"recovered batches are not a prefix: {batches}"
        )
        for b, count in per_batch:
            assert count == ROWS_PER_BATCH, (
                f"batch {b} recovered partially: {count}/{ROWS_PER_BATCH}"
            )
        # The archive must stay writable after recovery (and the probe
        # row is removed again so reruns still see a clean prefix).
        conn.execute("INSERT INTO points (batch, val) VALUES (999, 0.0)")
        conn.commit()
        assert conn.execute(
            "SELECT count(*) FROM points WHERE batch = 999"
        ).fetchone() == (1,)
        conn.execute("DELETE FROM points WHERE batch = 999")
        conn.commit()
    finally:
        minisql.reset_shared_databases()


@pytest.mark.parametrize("spec", CRASH_POINTS)
def test_crash_point_recovers_to_committed_prefix(tmp_path, spec):
    archive = tmp_path / "archive.mdb"
    proc = _run_child(archive, spec)
    assert proc.returncode == faults.CRASH_EXIT_STATUS, (
        f"fault {spec!r} never fired "
        f"(exit={proc.returncode}, stderr={proc.stderr[-800:]})"
    )
    assert "COMPLETED" not in proc.stdout
    _assert_committed_prefix(archive)


def test_no_fault_child_completes_cleanly(tmp_path):
    """Control case: with nothing armed the workload runs to completion
    and every batch is durable."""
    archive = tmp_path / "archive.mdb"
    proc = _run_child(archive, "")
    assert proc.returncode == 0, proc.stderr[-800:]
    assert "COMPLETED" in proc.stdout
    conn = minisql.connect(str(archive))
    try:
        assert conn.execute(
            "SELECT count(*) FROM points"
        ).fetchone() == (BATCHES * ROWS_PER_BATCH,)
    finally:
        minisql.reset_shared_databases()


def test_repeated_crashes_then_recovery(tmp_path):
    """Crash the same archive several times in a row.  Every recovery
    must keep a whole number of committed batches (batch commits are
    atomic), never lose previously durable rows, and leave an empty WAL
    (the clean-slate invariant: crash loops don't accumulate log)."""
    from repro.db.minisql import wal as ms_wal

    archive = tmp_path / "archive.mdb"
    low_water = 0
    for spec in ["wal.commit.after_record@2", "wal.append.before@10",
                 "torn:wal.append:3"]:
        proc = _run_child(archive, spec)
        assert proc.returncode == faults.CRASH_EXIT_STATUS, (
            f"{spec!r}: exit={proc.returncode}, stderr={proc.stderr[-800:]}"
        )
        conn = minisql.connect(str(archive))
        try:
            assert conn.execute(
                "PRAGMA integrity_check"
            ).fetchall() == [("ok",)]
            (count,) = conn.execute(
                "SELECT count(*) FROM points"
            ).fetchone()
            assert count % ROWS_PER_BATCH == 0, (
                f"{spec!r} recovered a partial batch: {count}"
            )
            assert count >= low_water, (
                f"{spec!r} lost durable rows: {count} < {low_water}"
            )
            low_water = count
        finally:
            minisql.reset_shared_databases()
        records, clean = ms_wal.read_records(archive.resolve())
        assert records == [] and clean
