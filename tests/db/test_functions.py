"""Unit tests for MiniSQL scalar and aggregate function implementations."""

import math

import pytest

from repro.db.minisql.errors import DataError, ProgrammingError
from repro.db.minisql.functions import (
    AGGREGATE_FUNCTIONS, call_scalar, is_aggregate, make_aggregate,
)


class TestScalarFunctions:
    @pytest.mark.parametrize(
        "name,args,expected",
        [
            ("ABS", [-5], 5),
            ("ABS", [None], None),
            ("ROUND", [3.14159, 2], 3.14),
            ("ROUND", [2.5], 2.0),  # banker's rounding, like Python
            ("LENGTH", ["hello"], 5),
            ("UPPER", ["MiXeD"], "MIXED"),
            ("LOWER", ["MiXeD"], "mixed"),
            ("TRIM", ["  x  "], "x"),
            ("LTRIM", ["  x  "], "x  "),
            ("RTRIM", ["  x  "], "  x"),
            ("SUBSTR", ["abcdef", 2, 3], "bcd"),
            ("SUBSTR", ["abcdef", -2], "ef"),
            ("SUBSTR", ["abcdef", 0], "abcdef"),
            ("REPLACE", ["aXbX", "X", "-"], "a-b-"),
            ("INSTR", ["hello", "ll"], 3),
            ("INSTR", ["hello", "z"], 0),
            ("COALESCE", [None, None, 3], 3),
            ("COALESCE", [None, None], None),
            ("IFNULL", [None, 7], 7),
            ("IFNULL", [1, 7], 1),
            ("NULLIF", [1, 1], None),
            ("NULLIF", [1, 2], 1),
            ("SQRT", [9.0], 3.0),
            ("POWER", [2, 10], 1024.0),
            ("EXP", [0], 1.0),
            ("FLOOR", [2.7], 2),
            ("CEIL", [2.1], 3),
            ("MOD", [7, 3], 1),
            ("MOD", [7, 0], None),
            ("SIGN", [-4], -1),
            ("SIGN", [0], 0),
            ("MIN", [3, 1, 2], 1),
            ("MAX", [3, 1, 2], 3),
        ],
    )
    def test_values(self, name, args, expected):
        assert call_scalar(name, args) == expected

    def test_log(self):
        assert call_scalar("LOG", [math.e]) == pytest.approx(1.0)

    def test_log_of_nonpositive_raises(self):
        with pytest.raises(DataError):
            call_scalar("LOG", [0])

    def test_sqrt_negative_raises(self):
        with pytest.raises(DataError):
            call_scalar("SQRT", [-1])

    def test_unknown_function(self):
        with pytest.raises(ProgrammingError, match="no such function"):
            call_scalar("FROBNICATE", [1])

    def test_wrong_arity(self):
        with pytest.raises(ProgrammingError, match="argument count"):
            call_scalar("ABS", [1, 2, 3])


class TestAggregates:
    def run(self, name, values):
        agg = make_aggregate(name)
        for v in values:
            agg.step(v)
        return agg.finalize()

    def test_count_skips_nulls(self):
        assert self.run("COUNT", [1, None, 2]) == 2

    def test_sum(self):
        assert self.run("SUM", [1, 2, 3]) == 6

    def test_sum_all_null_is_null(self):
        assert self.run("SUM", [None, None]) is None

    def test_total_all_null_is_zero(self):
        assert self.run("TOTAL", [None]) == 0.0

    def test_avg(self):
        assert self.run("AVG", [2, 4, None]) == 3.0

    def test_avg_empty_is_null(self):
        assert self.run("AVG", []) is None

    def test_min_max(self):
        assert self.run("MIN", [3, 1, None, 2]) == 1
        assert self.run("MAX", [3, 1, None, 2]) == 3

    def test_stddev_matches_statistics(self):
        import statistics

        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert self.run("STDDEV", values) == pytest.approx(
            statistics.stdev(values)
        )

    def test_stddev_single_value_null(self):
        assert self.run("STDDEV", [5.0]) is None

    def test_variance(self):
        assert self.run("VARIANCE", [1.0, 3.0]) == pytest.approx(2.0)

    def test_group_concat(self):
        assert self.run("GROUP_CONCAT", ["a", None, "b"]) == "a,b"

    def test_is_aggregate(self):
        assert is_aggregate("COUNT")
        assert is_aggregate("STDDEV")
        assert not is_aggregate("ABS")

    def test_unknown_aggregate(self):
        with pytest.raises(ProgrammingError):
            make_aggregate("MEDIAN")

    def test_registry_complete(self):
        for name in AGGREGATE_FUNCTIONS:
            agg = make_aggregate(name)
            agg.step(1.0)
            agg.finalize()  # must not raise
