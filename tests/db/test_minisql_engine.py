"""Behavioural tests for the MiniSQL engine through its DB-API surface."""

import pytest

from repro.db import minisql


@pytest.fixture
def conn():
    c = minisql.connect()
    yield c
    c.close()


@pytest.fixture
def people(conn):
    conn.execute(
        "CREATE TABLE people (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
        "age INTEGER, city TEXT)"
    )
    conn.executemany(
        "INSERT INTO people (name, age, city) VALUES (?, ?, ?)",
        [
            ("alice", 30, "eugene"),
            ("bob", 25, "portland"),
            ("carol", 35, "eugene"),
            ("dave", None, "salem"),
            ("erin", 25, None),
        ],
    )
    conn.commit()
    return conn


class TestInsertAndSelect:
    def test_autoincrement_ids(self, people):
        rows = people.execute("SELECT id FROM people ORDER BY id").fetchall()
        assert [r[0] for r in rows] == [1, 2, 3, 4, 5]

    def test_lastrowid(self, people):
        cur = people.execute("INSERT INTO people (name) VALUES ('frank')")
        assert cur.lastrowid == 6

    def test_select_star_column_names(self, people):
        cur = people.execute("SELECT * FROM people")
        names = [d[0] for d in cur.description]
        assert names == ["id", "name", "age", "city"]

    def test_where_equality(self, people):
        rows = people.execute(
            "SELECT name FROM people WHERE city = 'eugene' ORDER BY name"
        ).fetchall()
        assert rows == [("alice",), ("carol",)]

    def test_where_with_params(self, people):
        rows = people.execute(
            "SELECT name FROM people WHERE age = ? ORDER BY name", (25,)
        ).fetchall()
        assert rows == [("bob",), ("erin",)]

    def test_null_never_equals(self, people):
        rows = people.execute("SELECT name FROM people WHERE age = NULL").fetchall()
        assert rows == []

    def test_is_null(self, people):
        rows = people.execute("SELECT name FROM people WHERE age IS NULL").fetchall()
        assert rows == [("dave",)]

    def test_order_by_desc_nulls_first_when_asc(self, people):
        rows = people.execute("SELECT age FROM people ORDER BY age").fetchall()
        assert rows[0][0] is None  # NULL sorts first ascending

    def test_limit_offset(self, people):
        rows = people.execute(
            "SELECT name FROM people ORDER BY name LIMIT 2 OFFSET 1"
        ).fetchall()
        assert rows == [("bob",), ("carol",)]

    def test_in_and_between(self, people):
        rows = people.execute(
            "SELECT name FROM people WHERE age BETWEEN 25 AND 30 "
            "AND city IN ('eugene', 'portland') ORDER BY name"
        ).fetchall()
        assert rows == [("alice",), ("bob",)]

    def test_like_case_insensitive(self, people):
        rows = people.execute(
            "SELECT name FROM people WHERE name LIKE 'A%'"
        ).fetchall()
        assert rows == [("alice",)]

    def test_multi_row_values(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert conn.execute("SELECT sum(x) FROM t").fetchone() == (6,)

    def test_insert_select(self, people):
        people.execute("CREATE TABLE old_people (name TEXT, age INTEGER)")
        people.execute(
            "INSERT INTO old_people SELECT name, age FROM people WHERE age >= 30"
        )
        assert people.execute("SELECT count(*) FROM old_people").fetchone() == (2,)


class TestAggregates:
    def test_count_star_vs_count_column(self, people):
        star, col = people.execute(
            "SELECT count(*), count(age) FROM people"
        ).fetchone()
        assert (star, col) == (5, 4)

    def test_avg_ignores_nulls(self, people):
        (avg,) = people.execute("SELECT avg(age) FROM people").fetchone()
        assert avg == pytest.approx((30 + 25 + 35 + 25) / 4)

    def test_min_max_sum(self, people):
        row = people.execute("SELECT min(age), max(age), sum(age) FROM people").fetchone()
        assert row == (25, 35, 115)

    def test_stddev(self, people):
        (sd,) = people.execute("SELECT stddev(age) FROM people").fetchone()
        import statistics
        assert sd == pytest.approx(statistics.stdev([30, 25, 35, 25]))

    def test_group_by(self, people):
        rows = people.execute(
            "SELECT city, count(*) FROM people WHERE city IS NOT NULL "
            "GROUP BY city ORDER BY city"
        ).fetchall()
        assert rows == [("eugene", 2), ("portland", 1), ("salem", 1)]

    def test_having(self, people):
        rows = people.execute(
            "SELECT city, count(*) c FROM people GROUP BY city HAVING c > 1"
        ).fetchall()
        assert rows == [("eugene", 2)]

    def test_aggregate_on_empty_table_returns_one_row(self, conn):
        conn.execute("CREATE TABLE empty (x INTEGER)")
        assert conn.execute("SELECT count(*), sum(x) FROM empty").fetchone() == (0, None)

    def test_group_by_alias(self, people):
        rows = people.execute(
            "SELECT CASE WHEN age >= 30 THEN 'old' ELSE 'young' END bracket, "
            "count(*) FROM people WHERE age IS NOT NULL GROUP BY bracket "
            "ORDER BY bracket"
        ).fetchall()
        assert rows == [("old", 2), ("young", 2)]

    def test_count_distinct(self, people):
        (c,) = people.execute("SELECT count(DISTINCT age) FROM people").fetchone()
        assert c == 3

    def test_order_by_aggregate(self, people):
        rows = people.execute(
            "SELECT city, count(*) FROM people WHERE city IS NOT NULL "
            "GROUP BY city ORDER BY count(*) DESC, city"
        ).fetchall()
        assert rows[0] == ("eugene", 2)


class TestJoins:
    @pytest.fixture
    def orders(self, people):
        people.execute(
            "CREATE TABLE orders (id INTEGER PRIMARY KEY, person_id INTEGER, "
            "total REAL)"
        )
        people.executemany(
            "INSERT INTO orders (person_id, total) VALUES (?, ?)",
            [(1, 10.0), (1, 20.0), (2, 5.0), (99, 1.0)],
        )
        people.commit()
        return people

    def test_inner_join(self, orders):
        rows = orders.execute(
            "SELECT p.name, o.total FROM people p "
            "JOIN orders o ON o.person_id = p.id ORDER BY o.total"
        ).fetchall()
        assert rows == [("bob", 5.0), ("alice", 10.0), ("alice", 20.0)]

    def test_left_join_pads_with_null(self, orders):
        rows = orders.execute(
            "SELECT p.name, o.id FROM people p "
            "LEFT JOIN orders o ON o.person_id = p.id "
            "WHERE o.id IS NULL ORDER BY p.name"
        ).fetchall()
        assert rows == [("carol", None), ("dave", None), ("erin", None)]

    def test_join_with_aggregation(self, orders):
        rows = orders.execute(
            "SELECT p.name, sum(o.total) FROM people p "
            "JOIN orders o ON o.person_id = p.id GROUP BY p.name ORDER BY p.name"
        ).fetchall()
        assert rows == [("alice", 30.0), ("bob", 5.0)]

    def test_cross_join_cardinality(self, orders):
        (c,) = orders.execute(
            "SELECT count(*) FROM people CROSS JOIN orders"
        ).fetchone()
        assert c == 5 * 4

    def test_three_way_join(self, orders):
        orders.execute("CREATE TABLE cities (name TEXT, state TEXT)")
        orders.execute(
            "INSERT INTO cities VALUES ('eugene', 'OR'), ('portland', 'OR')"
        )
        rows = orders.execute(
            "SELECT p.name, c.state, o.total FROM people p "
            "JOIN cities c ON p.city = c.name "
            "JOIN orders o ON o.person_id = p.id "
            "ORDER BY o.total"
        ).fetchall()
        assert rows == [("bob", "OR", 5.0), ("alice", "OR", 10.0), ("alice", "OR", 20.0)]

    def test_ambiguous_column_raises(self, orders):
        with pytest.raises(minisql.ProgrammingError, match="ambiguous"):
            orders.execute(
                "SELECT id FROM people JOIN orders ON orders.person_id = people.id"
            )

    def test_self_join_with_aliases(self, people):
        rows = people.execute(
            "SELECT a.name, b.name FROM people a JOIN people b "
            "ON a.age = b.age AND a.id < b.id"
        ).fetchall()
        assert rows == [("bob", "erin")]


class TestUpdateDelete:
    def test_update_with_where(self, people):
        cur = people.execute("UPDATE people SET age = 26 WHERE name = 'bob'")
        assert cur.rowcount == 1
        assert people.execute(
            "SELECT age FROM people WHERE name = 'bob'"
        ).fetchone() == (26,)

    def test_update_expression_referencing_row(self, people):
        people.execute("UPDATE people SET age = age + 1 WHERE age IS NOT NULL")
        (total,) = people.execute("SELECT sum(age) FROM people").fetchone()
        assert total == 115 + 4

    def test_update_all_rows(self, people):
        cur = people.execute("UPDATE people SET city = 'nowhere'")
        assert cur.rowcount == 5

    def test_delete_with_where(self, people):
        cur = people.execute("DELETE FROM people WHERE age IS NULL")
        assert cur.rowcount == 1
        assert people.execute("SELECT count(*) FROM people").fetchone() == (4,)

    def test_delete_all(self, people):
        people.execute("DELETE FROM people")
        assert people.execute("SELECT count(*) FROM people").fetchone() == (0,)


class TestConstraints:
    def test_not_null_violation(self, people):
        with pytest.raises(minisql.IntegrityError, match="NOT NULL"):
            people.execute("INSERT INTO people (name) VALUES (NULL)")

    def test_unique_index_violation(self, people):
        people.execute("CREATE UNIQUE INDEX uq_name ON people (name)")
        with pytest.raises(minisql.IntegrityError, match="UNIQUE"):
            people.execute("INSERT INTO people (name) VALUES ('alice')")

    def test_unique_allows_multiple_nulls(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER UNIQUE)")
        conn.execute("INSERT INTO t VALUES (NULL)")
        conn.execute("INSERT INTO t VALUES (NULL)")
        assert conn.execute("SELECT count(*) FROM t").fetchone() == (2,)

    def test_unique_check_on_update(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER UNIQUE)")
        conn.execute("INSERT INTO t VALUES (1), (2)")
        with pytest.raises(minisql.IntegrityError):
            conn.execute("UPDATE t SET x = 1 WHERE x = 2")
        # failed update must not corrupt the index
        conn.execute("UPDATE t SET x = 3 WHERE x = 2")
        rows = conn.execute("SELECT x FROM t ORDER BY x").fetchall()
        assert rows == [(1,), (3,)]

    def test_primary_key_duplicate(self, people):
        with pytest.raises(minisql.IntegrityError):
            people.execute("INSERT INTO people (id, name) VALUES (1, 'dup')")


class TestTransactions:
    def test_rollback_restores_inserts(self, people):
        people.execute("BEGIN")
        people.execute("INSERT INTO people (name) VALUES ('temp')")
        people.rollback()
        assert people.execute("SELECT count(*) FROM people").fetchone() == (5,)

    def test_rollback_restores_deletes(self, people):
        people.execute("BEGIN")
        people.execute("DELETE FROM people")
        people.rollback()
        assert people.execute("SELECT count(*) FROM people").fetchone() == (5,)

    def test_rollback_restores_updates(self, people):
        people.execute("BEGIN")
        people.execute("UPDATE people SET age = 0")
        people.rollback()
        (total,) = people.execute("SELECT sum(age) FROM people").fetchone()
        assert total == 115

    def test_commit_makes_changes_durable(self, people):
        people.execute("BEGIN")
        people.execute("INSERT INTO people (name) VALUES ('perm')")
        people.commit()
        people.execute("BEGIN")
        people.rollback()
        assert people.execute("SELECT count(*) FROM people").fetchone() == (6,)

    def test_implicit_transaction_on_dml(self, people):
        people.execute("INSERT INTO people (name) VALUES ('implicit')")
        people.rollback()
        assert people.execute("SELECT count(*) FROM people").fetchone() == (5,)

    def test_context_manager_commits(self):
        conn = minisql.connect()
        with conn:
            conn.execute("CREATE TABLE t (x INTEGER)")
            conn.execute("INSERT INTO t VALUES (1)")
        assert conn.execute("SELECT count(*) FROM t").fetchone() == (1,)

    def test_rollback_of_created_table(self, conn):
        conn.execute("BEGIN")
        conn.execute("CREATE TABLE temp_t (x INTEGER)")
        conn.rollback()
        with pytest.raises(minisql.OperationalError):
            conn.execute("SELECT * FROM temp_t")


class TestShared:
    def test_named_database_is_shared(self):
        a = minisql.connect("shared-test")
        b = minisql.connect("shared-test")
        a.execute("CREATE TABLE t (x INTEGER)")
        a.execute("INSERT INTO t VALUES (42)")
        a.commit()
        assert b.execute("SELECT x FROM t").fetchone() == (42,)
        minisql.reset_shared_databases()

    def test_private_memory_databases_are_isolated(self):
        a = minisql.connect()
        b = minisql.connect()
        a.execute("CREATE TABLE t (x INTEGER)")
        with pytest.raises(minisql.OperationalError):
            b.execute("SELECT * FROM t")


class TestFileTargetGating:
    """File-backed mode is opt-in via '.mdb' or 'file:'; any other
    target — path separators included — stays a named shared
    in-memory database."""

    def test_name_with_separator_stays_in_memory(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        a = minisql.connect("scoped/name")
        b = minisql.connect("scoped/name")
        a.execute("CREATE TABLE t (x INTEGER)")
        a.execute("INSERT INTO t VALUES (7)")
        a.commit()
        assert b.execute("SELECT x FROM t").fetchone() == (7,)
        assert list(tmp_path.iterdir()) == []  # nothing written to disk
        minisql.reset_shared_databases()

    def test_file_prefix_opens_durable_archive(self, tmp_path):
        target = tmp_path / "archive.sqlarch"  # deliberately not .mdb
        conn = minisql.connect(f"file:{target}")
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.execute("INSERT INTO t VALUES (1)")
        conn.commit()
        conn.close()
        minisql.reset_shared_databases()
        assert target.exists()

        conn = minisql.connect(f"file:{target}")
        assert conn.execute("SELECT count(*) FROM t").fetchone() == (1,)
        conn.close()
        minisql.reset_shared_databases()

    def test_mdb_suffix_opens_durable_archive(self, tmp_path):
        target = tmp_path / "archive.mdb"
        conn = minisql.connect(str(target))
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.commit()
        conn.close()
        minisql.reset_shared_databases()
        assert target.exists()


class TestCursorProtocol:
    def test_fetchone_exhaustion(self, people):
        cur = people.execute("SELECT name FROM people WHERE name = 'alice'")
        assert cur.fetchone() == ("alice",)
        assert cur.fetchone() is None

    def test_fetchmany(self, people):
        cur = people.execute("SELECT id FROM people ORDER BY id")
        assert cur.fetchmany(2) == [(1,), (2,)]
        assert cur.fetchmany(10) == [(3,), (4,), (5,)]

    def test_iteration(self, people):
        cur = people.execute("SELECT id FROM people ORDER BY id")
        assert [r[0] for r in cur] == [1, 2, 3, 4, 5]

    def test_rowcount_on_dml(self, people):
        cur = people.execute("UPDATE people SET city = 'x' WHERE age = 25")
        assert cur.rowcount == 2

    def test_executemany_rowcount(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        cur = conn.executemany("INSERT INTO t (x) VALUES (?)", [(i,) for i in range(7)])
        assert cur.rowcount == 7

    def test_closed_cursor_raises(self, people):
        cur = people.execute("SELECT 1")
        cur.close()
        with pytest.raises(minisql.ProgrammingError):
            cur.fetchone()

    def test_closed_connection_raises(self):
        conn = minisql.connect()
        conn.close()
        with pytest.raises(minisql.ProgrammingError):
            conn.execute("SELECT 1")

    def test_string_params_rejected(self, people):
        with pytest.raises(minisql.InterfaceError):
            people.execute("SELECT ?", "oops")

    def test_too_few_params(self, people):
        with pytest.raises(minisql.ProgrammingError):
            people.execute("SELECT ? + ?", (1,)).fetchall()


class TestMiscSQL:
    def test_scalar_functions(self, conn):
        row = conn.execute(
            "SELECT upper('abc'), length('hello'), substr('abcdef', 2, 3), "
            "round(3.14159, 2), abs(-3), coalesce(NULL, NULL, 9)"
        ).fetchone()
        assert row == ("ABC", 5, "bcd", 3.14, 3, 9)

    def test_case_expression(self, conn):
        row = conn.execute(
            "SELECT CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END"
        ).fetchone()
        assert row == ("two",)

    def test_cast(self, conn):
        row = conn.execute(
            "SELECT CAST('42' AS INTEGER), CAST(3 AS REAL), CAST(2.7 AS INTEGER)"
        ).fetchone()
        assert row == (42, 3.0, 2)

    def test_division_by_zero_yields_null(self, conn):
        assert conn.execute("SELECT 1 / 0").fetchone() == (None,)

    def test_union_distinct_and_all(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.execute("INSERT INTO t VALUES (1), (1), (2)")
        assert conn.execute(
            "SELECT x FROM t UNION SELECT x FROM t ORDER BY x"
        ).fetchall() == [(1,), (2,)]
        assert len(conn.execute(
            "SELECT x FROM t UNION ALL SELECT x FROM t"
        ).fetchall()) == 6

    def test_except_intersect(self, conn):
        conn.execute("CREATE TABLE a (x INTEGER)")
        conn.execute("CREATE TABLE b (x INTEGER)")
        conn.execute("INSERT INTO a VALUES (1), (2), (3)")
        conn.execute("INSERT INTO b VALUES (2), (3), (4)")
        assert conn.execute("SELECT x FROM a EXCEPT SELECT x FROM b").fetchall() == [(1,)]
        assert sorted(conn.execute(
            "SELECT x FROM a INTERSECT SELECT x FROM b"
        ).fetchall()) == [(2,), (3,)]

    def test_alter_table_add_column(self, people):
        people.execute("ALTER TABLE people ADD COLUMN country TEXT DEFAULT 'usa'")
        rows = people.execute("SELECT DISTINCT country FROM people").fetchall()
        assert rows == [(None,)] or rows == [("usa",)]
        # new inserts get the default
        people.execute("INSERT INTO people (name) VALUES ('zed')")
        assert people.execute(
            "SELECT country FROM people WHERE name = 'zed'"
        ).fetchone() == ("usa",)

    def test_alter_table_rename(self, people):
        people.execute("ALTER TABLE people RENAME TO folks")
        assert people.execute("SELECT count(*) FROM folks").fetchone() == (5,)

    def test_pragma_table_info(self, people):
        rows = people.execute("PRAGMA table_info(people)").fetchall()
        names = [r[1] for r in rows]
        assert names == ["id", "name", "age", "city"]
        pk_flags = [r[5] for r in rows]
        assert pk_flags == [1, 0, 0, 0]

    def test_index_probe_equals_full_scan(self, people):
        before = people.execute(
            "SELECT name FROM people WHERE city = 'eugene' ORDER BY name"
        ).fetchall()
        people.execute("CREATE INDEX idx_city ON people (city)")
        after = people.execute(
            "SELECT name FROM people WHERE city = 'eugene' ORDER BY name"
        ).fetchall()
        assert before == after

    def test_select_expression_only(self, conn):
        assert conn.execute("SELECT 2 + 2 * 2").fetchone() == (6,)

    def test_order_by_ordinal(self, people):
        rows = people.execute("SELECT name, age FROM people ORDER BY 2, 1").fetchall()
        assert rows[0][0] == "dave"  # NULL age first
