"""PRAGMA columnar surface: toggles, guards, and EXPLAIN visibility.

The pragma is the only way storage mode changes at runtime, so its
interactions are load-bearing: conversions must be rejected inside
transactions and bulk loads, must preserve data and indexes, and the
``vectorized`` EXPLAIN column must faithfully report whether the
vector pipeline can engage (never under ``PRAGMA compile(off)``).
"""

from __future__ import annotations

import pytest

from repro.core.schema import SchemaManager
from repro.db import minisql
from repro.db.api import connect as api_connect


@pytest.fixture
def conn():
    c = minisql.connect()
    yield c
    c.close()


@pytest.fixture
def populated(conn):
    conn.execute("CREATE TABLE t (k INTEGER, v REAL, x TEXT)")
    conn.execute("CREATE INDEX idx_k ON t (k)")
    conn.executemany(
        "INSERT INTO t VALUES (?, ?, ?)",
        [(i % 5, float(i), f"s{i}") for i in range(100)],
    )
    conn.commit()
    return conn


class TestToggle:
    def test_status_listing(self, populated):
        cursor = populated.execute("PRAGMA columnar")
        assert [d[0] for d in cursor.description] == ["table", "columnar"]
        assert cursor.fetchall() == [("t", 0)]
        populated.execute("PRAGMA columnar(t on)")
        assert populated.execute("PRAGMA columnar").fetchall() == [("t", 1)]
        assert populated.execute(
            "PRAGMA columnar(t status)"
        ).fetchall() == [("t", 1)]

    def test_default_applies_to_new_tables_only(self, populated):
        populated.execute("PRAGMA columnar(on)")
        populated.execute("CREATE TABLE fresh (a INTEGER)")
        rows = dict(populated.execute("PRAGMA columnar").fetchall())
        assert rows == {"t": 0, "fresh": 1}
        populated.execute("PRAGMA columnar(off)")
        populated.execute("CREATE TABLE later (a INTEGER)")
        assert dict(populated.execute("PRAGMA columnar").fetchall())[
            "later"
        ] == 0

    def test_conversion_preserves_data_and_indexes(self, populated):
        oracle = populated.execute(
            "SELECT k, v, x FROM t ORDER BY v"
        ).fetchall()
        populated.execute("PRAGMA columnar(t on)")
        assert populated.execute(
            "SELECT k, v, x FROM t ORDER BY v"
        ).fetchall() == oracle
        probes = populated.stats()["index_eq_probes"]
        assert populated.execute(
            "SELECT count(*) FROM t WHERE k = 3"
        ).fetchone() == (20,)
        assert populated.stats()["index_eq_probes"] > probes
        populated.execute("PRAGMA columnar(t off)")
        assert populated.execute(
            "SELECT k, v, x FROM t ORDER BY v"
        ).fetchall() == oracle

    def test_repeated_toggle_is_noop(self, populated):
        populated.execute("PRAGMA columnar(t on)")
        converted = populated.stats()["columnar_conversions"]
        populated.execute("PRAGMA columnar(t on)")
        assert populated.stats()["columnar_conversions"] == converted

    def test_unknown_table_rejected(self, conn):
        with pytest.raises(minisql.MiniSQLError):
            conn.execute("PRAGMA columnar(nosuch on)")

    def test_bad_argument_rejected(self, populated):
        with pytest.raises(minisql.ProgrammingError):
            populated.execute("PRAGMA columnar(t sideways)")


class TestTransactionGuards:
    def test_implicit_transaction_rejects_toggle(self, populated):
        populated.execute("INSERT INTO t VALUES (9, 9.0, 'nine')")
        with pytest.raises(minisql.OperationalError):
            populated.execute("PRAGMA columnar(t on)")
        populated.rollback()
        populated.execute("PRAGMA columnar(t on)")  # fine once closed

    def test_explicit_transaction_rejects_toggle(self, populated):
        populated.execute("BEGIN")
        with pytest.raises(minisql.OperationalError):
            populated.execute("PRAGMA columnar(t on)")
        populated.rollback()

    def test_bulk_load_rejects_toggle(self, populated):
        with populated.bulk_load():
            populated.execute("INSERT INTO t VALUES (7, 7.0, 'seven')")
            with pytest.raises(minisql.OperationalError):
                populated.execute("PRAGMA columnar(t on)")
        populated.commit()

    def test_bulk_load_into_columnar_table(self, populated):
        populated.execute("PRAGMA columnar(t on)")
        with populated.bulk_load():
            populated.executemany(
                "INSERT INTO t VALUES (?, ?, ?)",
                [(i % 5, float(i), f"b{i}") for i in range(100, 300)],
            )
        populated.commit()
        assert populated.execute(
            "SELECT count(*) FROM t"
        ).fetchone() == (300,)
        # Rebuilt indexes still serve point lookups on the column store.
        assert populated.execute(
            "SELECT count(*) FROM t WHERE k = 2"
        ).fetchone() == (60,)
        assert populated.execute(
            "PRAGMA integrity_check"
        ).fetchall() == [("ok",)]


class TestVectorGating:
    def test_compile_off_never_vectorizes(self, populated):
        populated.execute("PRAGMA columnar(t on)")
        populated.execute("PRAGMA compile(off)")
        oracle = [(100, sum(float(i) for i in range(100)))]
        assert populated.execute(
            "SELECT count(*), sum(v) FROM t"
        ).fetchall() == [(100, pytest.approx(oracle[0][1]))]
        stats = populated.stats()
        assert stats["vector_selects"] == 0
        assert stats["vector_fallbacks"] == 0
        cursor = populated.execute("EXPLAIN SELECT sum(v) FROM t")
        assert all(row[3] == "no" for row in cursor.fetchall())

    def test_vectorized_select_counts(self, populated):
        populated.execute("PRAGMA columnar(t on)")
        before = populated.stats()["vector_selects"]
        populated.execute("SELECT sum(v), max(k) FROM t WHERE k < 4").fetchall()
        assert populated.stats()["vector_selects"] == before + 1


class TestExplainVectorizedColumn:
    def test_plain_explain_row_vs_columnar(self, populated):
        flags = {
            row[1]: row[3]
            for row in populated.execute(
                "EXPLAIN SELECT sum(v) FROM t WHERE k < 4"
            ).fetchall()
        }
        assert flags["SCAN t"] == "no"
        populated.execute("PRAGMA columnar(t on)")
        flags = {
            row[1]: row[3]
            for row in populated.execute(
                "EXPLAIN SELECT sum(v) FROM t WHERE k < 4"
            ).fetchall()
        }
        assert flags["SCAN t"] == "yes"

    def test_analyze_reports_per_step_vectorized(self, populated):
        populated.execute("PRAGMA columnar(t on)")
        rows = populated.execute(
            "EXPLAIN ANALYZE SELECT sum(v) FROM t WHERE k < 4"
        ).fetchall()
        flags = {row[1]: row[5] for row in rows}
        assert flags["SCAN t"] == "yes"
        assert flags["WHERE filter"] == "yes"
        assert flags["GROUP BY (hash aggregation)"] == "yes"
        assert flags["RESULT"] is None

    def test_analyze_grouped_query_not_vector_flagged(self, populated):
        populated.execute("PRAGMA columnar(t on)")
        rows = populated.execute(
            "EXPLAIN ANALYZE SELECT k, sum(v) FROM t GROUP BY k"
        ).fetchall()
        flags = {row[1]: row[5] for row in rows}
        # Grouped aggregation stays on the compiled row pipeline.
        assert flags["GROUP BY (hash aggregation)"] == "no"


class TestSchemaInstallDefaults:
    def test_hot_tables_install_columnar_on_minisql(self):
        conn = api_connect("minisql://:memory:")
        try:
            SchemaManager(conn).install()
            status = dict(conn.execute("PRAGMA columnar").fetchall())
            for table in SchemaManager.COLUMNAR_TABLES:
                assert status[table] == 1, table
            assert status["application"] == 0  # cold tables stay row
        finally:
            conn.close()

    def test_sqlite_backend_unaffected(self):
        conn = api_connect("sqlite://:memory:")
        try:
            SchemaManager(conn).install()  # must not emit the pragma
            assert conn.table_names()
        finally:
            conn.close()
