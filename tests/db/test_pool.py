"""Tests for the connection pool used by the PerfExplorer server."""

import threading

import pytest

from repro.db.pool import ConnectionPool


class TestPoolBasics:
    def test_acquire_release_roundtrip(self, db_url):
        pool = ConnectionPool(db_url, size=2)
        conn = pool.acquire()
        conn.execute("CREATE TABLE t (x INTEGER)")
        pool.release(conn)
        again = pool.acquire()
        assert again is conn  # LIFO reuse
        pool.close()

    def test_context_manager(self, db_url):
        with ConnectionPool(db_url, size=1) as pool:
            with pool.connection() as conn:
                conn.execute("CREATE TABLE t (x INTEGER)")
                conn.execute("INSERT INTO t VALUES (1)")
                conn.commit()
            with pool.connection() as conn:
                assert conn.scalar("SELECT count(*) FROM t") == 1

    def test_size_limit_enforced(self, db_url):
        pool = ConnectionPool(db_url, size=1)
        conn = pool.acquire()
        with pytest.raises(Exception):
            pool.acquire(timeout=0.05)
        pool.release(conn)
        pool.close()

    def test_invalid_size(self, db_url):
        with pytest.raises(ValueError):
            ConnectionPool(db_url, size=0)

    def test_closed_pool_rejects_acquire(self, db_url):
        pool = ConnectionPool(db_url, size=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.acquire()


class TestPoolConcurrency:
    def test_concurrent_borrowers_share_named_minisql(self):
        # Named MiniSQL databases share a catalog across connections —
        # this is what PerfExplorer's threaded server relies on.
        from repro.db.minisql import reset_shared_databases

        pool = ConnectionPool("minisql://pool-test", size=4)
        setup = pool.acquire()
        setup.execute("CREATE TABLE hits (worker INTEGER)")
        setup.commit()
        pool.release(setup)

        errors = []

        def worker(i: int) -> None:
            try:
                for _ in range(20):
                    with pool.connection(timeout=5) as conn:
                        conn.execute("INSERT INTO hits VALUES (?)", (i,))
                        conn.commit()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        with pool.connection() as conn:
            assert conn.scalar("SELECT count(*) FROM hits") == 80
        pool.close()
        reset_shared_databases()
