"""Tests for the connection pool used by the PerfExplorer server."""

import gc
import threading
import time

import pytest

from repro.db.pool import ConnectionPool, PoolTimeout


class TestPoolBasics:
    def test_acquire_release_roundtrip(self, db_url):
        pool = ConnectionPool(db_url, size=2)
        conn = pool.acquire()
        conn.execute("CREATE TABLE t (x INTEGER)")
        pool.release(conn)
        again = pool.acquire()
        assert again is conn  # LIFO reuse
        pool.close()

    def test_context_manager(self, db_url):
        with ConnectionPool(db_url, size=1) as pool:
            with pool.connection() as conn:
                conn.execute("CREATE TABLE t (x INTEGER)")
                conn.execute("INSERT INTO t VALUES (1)")
                conn.commit()
            with pool.connection() as conn:
                assert conn.scalar("SELECT count(*) FROM t") == 1

    def test_size_limit_enforced(self, db_url):
        pool = ConnectionPool(db_url, size=1)
        conn = pool.acquire()
        with pytest.raises(Exception):
            pool.acquire(timeout=0.05)
        pool.release(conn)
        pool.close()

    def test_invalid_size(self, db_url):
        with pytest.raises(ValueError):
            ConnectionPool(db_url, size=0)

    def test_closed_pool_rejects_acquire(self, db_url):
        pool = ConnectionPool(db_url, size=1)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.acquire()


class TestPoolConcurrency:
    def test_concurrent_borrowers_share_named_minisql(self):
        # Named MiniSQL databases share a catalog across connections —
        # this is what PerfExplorer's threaded server relies on.
        from repro.db.minisql import reset_shared_databases

        pool = ConnectionPool("minisql://pool-test", size=4)
        setup = pool.acquire()
        setup.execute("CREATE TABLE hits (worker INTEGER)")
        setup.commit()
        pool.release(setup)

        errors = []

        def worker(i: int) -> None:
            try:
                for _ in range(20):
                    with pool.connection(timeout=5) as conn:
                        conn.execute("INSERT INTO hits VALUES (?)", (i,))
                        conn.commit()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        with pool.connection() as conn:
            assert conn.scalar("SELECT count(*) FROM hits") == 80
        pool.close()
        reset_shared_databases()

    def test_acquire_release_races_never_overshoot(self, db_url):
        """Many threads hammering a small pool must never see more than
        ``size`` connections live at once, and no acquire may fail."""
        pool = ConnectionPool(db_url, size=3)
        live = 0
        peak = 0
        gate = threading.Lock()
        errors = []
        start = threading.Barrier(8)

        def worker() -> None:
            nonlocal live, peak
            try:
                start.wait(timeout=5)
                for _ in range(25):
                    conn = pool.acquire(timeout=5)
                    with gate:
                        live += 1
                        peak = max(peak, live)
                    with gate:
                        live -= 1
                    pool.release(conn)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert peak <= 3
        pool.close()

    def test_exhaustion_times_out_with_pool_timeout(self, db_url):
        pool = ConnectionPool(db_url, size=2)
        a = pool.acquire()
        b = pool.acquire()
        t0 = time.perf_counter()
        with pytest.raises(PoolTimeout) as exc_info:
            pool.acquire(timeout=0.1)
        assert time.perf_counter() - t0 >= 0.05
        assert "pool size 2" in str(exc_info.value)
        # PoolTimeout is a TimeoutError, so generic handlers catch it too
        assert isinstance(exc_info.value, TimeoutError)
        pool.release(a)
        pool.release(b)
        pool.close()

    def test_blocked_acquire_wakes_on_release(self, db_url):
        pool = ConnectionPool(db_url, size=1)
        held = pool.acquire()
        got = []

        def blocked() -> None:
            got.append(pool.acquire(timeout=5))

        t = threading.Thread(target=blocked)
        t.start()
        time.sleep(0.05)
        assert not got  # still parked waiting for the release
        pool.release(held)
        t.join(timeout=5)
        assert got == [held]
        pool.release(got[0])
        pool.close()

    def test_context_manager_returns_connection_for_reuse(self, db_url):
        pool = ConnectionPool(db_url, size=1)
        with pool.connection() as first:
            first.execute("CREATE TABLE r (x INTEGER)")
            first.commit()
        for i in range(5):
            with pool.connection(timeout=1) as conn:
                assert conn is first  # single slot, always recycled
                conn.execute("INSERT INTO r VALUES (?)", (i,))
                conn.commit()
        with pool.connection() as conn:
            assert conn.scalar("SELECT count(*) FROM r") == 5
        pool.close()

    def test_context_manager_releases_on_error(self, db_url):
        pool = ConnectionPool(db_url, size=1)
        with pytest.raises(RuntimeError):
            with pool.connection() as conn:
                raise RuntimeError("boom")
        # the slot must be back: a fresh acquire cannot time out
        again = pool.acquire(timeout=1)
        assert again is conn
        pool.release(again)
        pool.close()


class TestPoolRecovery:
    """A borrower that crashes without releasing must not leak its slot
    forever — the weakref finalizer reclaims capacity at GC time."""

    def test_leaked_connection_reclaims_slot(self, db_url):
        pool = ConnectionPool(db_url, size=1)

        def crashing_holder() -> None:
            conn = pool.acquire(timeout=1)
            conn.execute("CREATE TABLE t (x INTEGER)")
            raise RuntimeError("holder died without releasing")

        with pytest.raises(RuntimeError):
            crashing_holder()
        gc.collect()  # the only reference died with the frame
        conn = pool.acquire(timeout=2)  # must not PoolTimeout
        conn.execute("SELECT 1")
        pool.release(conn)
        pool.close()

    def test_blocked_acquire_recovers_after_leak(self, db_url):
        """The harder variant: acquire() is already parked waiting when
        the leaked connection gets collected — the post-timeout capacity
        re-check must hand it a replacement instead of PoolTimeout."""
        pool = ConnectionPool(db_url, size=1)
        holder = [pool.acquire(timeout=1)]
        got = []
        errors = []

        def blocked() -> None:
            try:
                # The reclaim happens while this call is parked in the
                # queue wait; the replacement is created at the timeout
                # re-check, so the call succeeds despite the timeout.
                got.append(pool.acquire(timeout=1))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        t = threading.Thread(target=blocked)
        t.start()
        time.sleep(0.05)
        holder.clear()  # drop the only reference, never released
        gc.collect()
        t.join(timeout=10)
        assert not errors and len(got) == 1
        pool.release(got[0])
        pool.close()

    def test_untimed_acquire_wakes_on_reclaim(self, db_url):
        """acquire(timeout=None) parked on an exhausted pool must wake
        when a leaked connection is reclaimed — the finalizer posts a
        sentinel, so the waiter does not block forever."""
        pool = ConnectionPool(db_url, size=1)
        holder = [pool.acquire(timeout=1)]
        got = []

        def blocked() -> None:
            got.append(pool.acquire())  # no timeout: only a wake-up helps

        t = threading.Thread(target=blocked, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not got  # parked with no deadline
        holder.clear()  # leak: never released
        gc.collect()
        t.join(timeout=10)
        assert not t.is_alive(), "untimed acquire never woke after reclaim"
        assert len(got) == 1
        pool.release(got[0])
        pool.close()

    def test_leak_does_not_grow_pool_beyond_size(self, db_url):
        pool = ConnectionPool(db_url, size=2)
        leaked = pool.acquire()
        kept = pool.acquire()
        del leaked
        gc.collect()
        replacement = pool.acquire(timeout=2)
        # Capacity is still 2: both live connections borrowed, a third
        # acquire must time out as usual.
        with pytest.raises(PoolTimeout):
            pool.acquire(timeout=0.1)
        pool.release(kept)
        pool.release(replacement)
        pool.close()
