"""Bulk-load mode: PRAGMA forms, deferred index rebuild, rollback.

The MiniSQL bulk-load mode (``PRAGMA bulk_load``) suspends secondary
index maintenance during mass inserts and rebuilds once at the end;
unique indexes stay live so constraint violations are still caught at
the offending row.  ``DBConnection.bulk_load()`` exposes the same
surface on both backends (sqlite silently ignores the pragma).
"""

from __future__ import annotations

import pytest

from repro.db import IntegrityError, connect
from repro.db.minisql import connect as minisql_connect

SCHEMA = (
    "CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, "
    "a INTEGER, b INTEGER, label TEXT)"
)


@pytest.fixture
def mini():
    conn = minisql_connect()
    conn.execute(SCHEMA)
    conn.execute("CREATE INDEX ix_a ON t (a)")
    conn.execute("CREATE INDEX ix_b ON t (b) USING BTREE")
    conn.commit()
    yield conn
    conn.close()


def _fill(conn, n, start=0):
    conn.executemany(
        "INSERT INTO t (a, b, label) VALUES (?, ?, ?)",
        [(i % 10, i, f"row{i}") for i in range(start, start + n)],
    )


class TestPragmaForms:
    def test_paren_and_assignment_forms(self, mini):
        mini.execute("PRAGMA bulk_load(on)")
        assert mini.execute("PRAGMA bulk_load(status)").fetchall() == [(1,)]
        mini.execute("PRAGMA bulk_load = off")
        assert mini.execute("PRAGMA bulk_load(status)").fetchall() == [(0,)]
        mini.execute("PRAGMA bulk_load = 1")
        assert mini.execute("PRAGMA bulk_load(status)").fetchall() == [(1,)]
        mini.execute("PRAGMA bulk_load(0)")
        assert mini.execute("PRAGMA bulk_load(status)").fetchall() == [(0,)]

    def test_bad_argument_rejected(self, mini):
        from repro.db.minisql import ProgrammingError

        with pytest.raises(ProgrammingError):
            mini.execute("PRAGMA bulk_load(sideways)")

    def test_idempotent_on_off(self, mini):
        mini.execute("PRAGMA bulk_load(on)")
        mini.execute("PRAGMA bulk_load(on)")
        mini.execute("PRAGMA bulk_load(off)")
        mini.execute("PRAGMA bulk_load(off)")
        assert mini.stats()["bulk_loads"] == 1


class TestDeferredRebuild:
    def test_rows_visible_during_bulk(self, mini):
        with mini.bulk_load():
            _fill(mini, 500)
            got = mini.execute(
                "SELECT count(*) FROM t WHERE a = 3"
            ).fetchone()
            assert got == (50,)
        mini.commit()

    def test_index_used_after_rebuild(self, mini):
        with mini.bulk_load():
            _fill(mini, 500)
        mini.commit()
        plan = " ".join(
            " ".join(str(c) for c in row)
            for row in mini.execute("EXPLAIN SELECT * FROM t WHERE a = 3")
        )
        assert "ix_a" in plan
        assert mini.execute(
            "SELECT count(*) FROM t WHERE b BETWEEN 10 AND 19"
        ).fetchone() == (10,)

    def test_stats_counters(self, mini):
        with mini.bulk_load():
            _fill(mini, 200)
        mini.commit()
        stats = mini.stats()
        assert stats["bulk_loads"] == 1
        assert stats["bulk_rows"] == 200
        # ix_a (hash) + ix_b (btree) rebuilt; live unique pk is not.
        assert stats["bulk_index_rebuilds"] == 2

    def test_commit_keeps_mode_until_pragma_off(self, mini):
        mini.execute("PRAGMA bulk_load(on)")
        _fill(mini, 100)
        mini.commit()
        assert mini.execute("PRAGMA bulk_load(status)").fetchall() == [(1,)]
        _fill(mini, 100)
        mini.commit()
        mini.execute("PRAGMA bulk_load(off)")
        assert mini.stats()["bulk_loads"] == 1
        assert mini.stats()["bulk_rows"] == 200


class TestRollbackCorrectness:
    """Satellite 6: a violation at row k must leave table AND indexes
    exactly as they were before the failed batch."""

    def _snapshot(self, conn):
        return (
            conn.execute("SELECT * FROM t ORDER BY id").fetchall(),
            conn.execute(
                "SELECT count(*) FROM t WHERE a = 3"
            ).fetchone(),
            conn.execute(
                "SELECT count(*) FROM t WHERE b BETWEEN 0 AND 100"
            ).fetchone(),
        )

    def test_unique_violation_mid_batch_rolls_back_cleanly(self, mini):
        mini.execute("CREATE UNIQUE INDEX ux_label ON t (label)")
        with mini.bulk_load():
            _fill(mini, 300)
        mini.commit()
        before = self._snapshot(mini)

        rows = [(1, 1000 + i, f"new{i}") for i in range(50)]
        rows[37] = (1, 9999, "row7")  # duplicate label → violation at row 37
        with pytest.raises(IntegrityError):
            with mini.bulk_load():
                mini.executemany(
                    "INSERT INTO t (a, b, label) VALUES (?, ?, ?)", rows
                )
        mini.rollback()

        assert self._snapshot(mini) == before
        # indexes answer queries for the failed batch's keys correctly
        assert mini.execute(
            "SELECT count(*) FROM t WHERE b >= 1000"
        ).fetchone() == (0,)
        assert mini.execute(
            "SELECT count(*) FROM t WHERE label = 'new0'"
        ).fetchone() == (0,)
        assert mini.execute(
            "SELECT count(*) FROM t WHERE label = 'row7'"
        ).fetchone() == (1,)

    def test_rollback_spares_rows_committed_during_bulk(self, mini):
        mini.execute("PRAGMA bulk_load(on)")
        _fill(mini, 100)
        mini.commit()
        _fill(mini, 100, start=100)
        mini.rollback()
        mini.execute("PRAGMA bulk_load(off)")
        assert mini.execute("SELECT count(*) FROM t").fetchone() == (100,)
        assert mini.execute(
            "SELECT count(*) FROM t WHERE a = 3"
        ).fetchone() == (10,)

    def test_update_delete_during_bulk_rollback(self, mini):
        with mini.bulk_load():
            _fill(mini, 100)
        mini.commit()
        before = self._snapshot(mini)
        with mini.bulk_load():
            mini.execute("UPDATE t SET a = 99 WHERE b = 5")
            mini.execute("DELETE FROM t WHERE b = 6")
            _fill(mini, 10, start=100)
        mini.rollback()
        assert self._snapshot(mini) == before


class TestDBConnectionBulkLoad:
    """The backend-neutral surface behaves identically on both engines."""

    def test_bulk_load_commits_on_success(self, conn):
        conn.execute(SCHEMA)
        conn.execute("CREATE INDEX ix_a ON t (a)")
        conn.commit()
        with conn.bulk_load():
            conn.executemany(
                "INSERT INTO t (a, b, label) VALUES (?, ?, ?)",
                [(i % 5, i, f"r{i}") for i in range(100)],
            )
        assert conn.scalar("SELECT count(*) FROM t") == 100
        assert conn.scalar("SELECT count(*) FROM t WHERE a = 2") == 20

    def test_bulk_load_rolls_back_on_error(self, conn):
        conn.execute(SCHEMA)
        conn.execute("CREATE UNIQUE INDEX ux_b ON t (b)")
        conn.commit()
        with conn.bulk_load():
            conn.executemany(
                "INSERT INTO t (a, b, label) VALUES (?, ?, ?)",
                [(i, i, f"r{i}") for i in range(10)],
            )
        rows = [(0, 100 + i, "x") for i in range(20)]
        rows[13] = (0, 5, "dup")  # duplicate b
        with pytest.raises(IntegrityError):
            with conn.bulk_load():
                conn.executemany(
                    "INSERT INTO t (a, b, label) VALUES (?, ?, ?)", rows
                )
        assert conn.scalar("SELECT count(*) FROM t") == 10
        assert conn.scalar("SELECT count(*) FROM t WHERE b >= 100") == 0

    def test_begin_end_bulk_are_noops_for_reads(self, conn):
        conn.execute(SCHEMA)
        conn.commit()
        conn.begin_bulk()
        conn.execute("INSERT INTO t (a, b, label) VALUES (1, 2, 'x')")
        assert conn.scalar("SELECT count(*) FROM t") == 1
        conn.end_bulk()
        conn.commit()
        assert conn.scalar("SELECT label FROM t WHERE a = 1") == "x"


def test_bulk_stats_exposed_via_dbconnection():
    conn = connect("minisql://:memory:")
    conn.execute(SCHEMA)
    conn.execute("CREATE INDEX ix_a ON t (a)")
    conn.commit()
    with conn.bulk_load():
        conn.executemany(
            "INSERT INTO t (a, b, label) VALUES (?, ?, ?)",
            [(i % 5, i, f"r{i}") for i in range(64)],
        )
    stats = conn.stats()
    assert stats["bulk_loads"] == 1
    assert stats["bulk_rows"] == 64
    assert stats["bulk_index_rebuilds"] == 1
    conn.close()
