"""Tests for MiniSQL's ordered (BTREE) indexes and the access planner.

Covers the ``CREATE INDEX ... USING {HASH|BTREE}`` syntax, range-scan
correctness against brute force, ORDER BY ... LIMIT pushdown, planner
statistics (rows scanned must be proportional to the result, not the
table), and index maintenance under UPDATE/DELETE.
"""

import random

import pytest

from repro.db import minisql
from repro.db.minisql.storage import Index, SortedIndex


@pytest.fixture
def conn():
    c = minisql.connect()
    yield c
    c.close()


@pytest.fixture
def loaded(conn):
    """1000 rows, btree on v, composite btree on (k, v)."""
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v REAL)")
    conn.execute("CREATE INDEX idx_v ON t (v) USING BTREE")
    conn.execute("CREATE INDEX idx_kv ON t (k, v) USING BTREE")
    rng = random.Random(42)
    rows = [(i % 7, rng.uniform(0, 1000)) for i in range(990)]
    rows += [(i % 7, None) for i in range(10)]  # NULLs in the indexed column
    conn.executemany("INSERT INTO t (k, v) VALUES (?, ?)", rows)
    conn.reset_stats()
    return conn


def plan(conn, sql, params=()):
    return [row[1] for row in conn.execute(f"EXPLAIN {sql}", params).fetchall()]


def brute(conn, predicate):
    rows = conn.execute("SELECT id, k, v FROM t").fetchall()
    return sorted(r[0] for r in rows if r[2] is not None and predicate(r[2]))


class TestUsingSyntax:
    def test_using_btree_builds_sorted_index(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("CREATE INDEX i ON t (a) USING BTREE")
        index = conn._database.tables["t"].indexes["i"]
        assert isinstance(index, SortedIndex)
        assert index.method == "btree"

    def test_using_hash_and_default_are_hash(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        conn.execute("CREATE INDEX i1 ON t (a) USING HASH")
        conn.execute("CREATE INDEX i2 ON t (b)")
        table = conn._database.tables["t"]
        for name in ("i1", "i2"):
            index = table.indexes[name]
            assert type(index) is Index
            assert index.method == "hash"

    def test_unknown_method_rejected(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(minisql.ProgrammingError, match="HASH or BTREE"):
            conn.execute("CREATE INDEX i ON t (a) USING RTREE")

    def test_unique_btree_enforced(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("CREATE UNIQUE INDEX i ON t (a) USING BTREE")
        conn.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(minisql.IntegrityError):
            conn.execute("INSERT INTO t VALUES (1)")


class TestRangeCorrectness:
    @pytest.mark.parametrize(
        "op, pred",
        [
            ("<", lambda v: v < 500.0),
            ("<=", lambda v: v <= 500.0),
            (">", lambda v: v > 500.0),
            (">=", lambda v: v >= 500.0),
        ],
    )
    def test_single_bound_matches_brute_force(self, loaded, op, pred):
        got = loaded.execute(
            f"SELECT id FROM t WHERE v {op} 500.0"
        ).fetchall()
        assert sorted(r[0] for r in got) == brute(loaded, pred)

    def test_between_matches_brute_force(self, loaded):
        got = loaded.execute(
            "SELECT id FROM t WHERE v BETWEEN ? AND ?", (200.0, 300.0)
        ).fetchall()
        assert sorted(r[0] for r in got) == brute(
            loaded, lambda v: 200.0 <= v <= 300.0
        )

    def test_range_excludes_nulls(self, loaded):
        # SQL three-valued logic: NULL > anything is not true.
        got = loaded.execute("SELECT v FROM t WHERE v > -1e18").fetchall()
        assert len(got) == 990
        assert all(r[0] is not None for r in got)

    def test_prefix_plus_range_on_composite(self, loaded):
        got = loaded.execute(
            "SELECT id FROM t WHERE k = 3 AND v > 400.0"
        ).fetchall()
        rows = loaded.execute("SELECT id, k, v FROM t").fetchall()
        want = sorted(
            r[0] for r in rows
            if r[1] == 3 and r[2] is not None and r[2] > 400.0
        )
        assert sorted(r[0] for r in got) == want

    def test_prefix_only_block_keeps_null_rows(self, loaded):
        # k = 3 pins the prefix; rows where v IS NULL must still appear.
        got = loaded.execute("SELECT id, v FROM t WHERE k = 3").fetchall()
        rows = loaded.execute("SELECT id, k, v FROM t").fetchall()
        assert sorted(r[0] for r in got) == sorted(
            r[0] for r in rows if r[1] == 3
        )
        assert any(r[1] is None for r in got)

    def test_residual_predicate_still_applied(self, loaded):
        # Only v's bounds go to the index; the k filter must be re-applied.
        got = loaded.execute(
            "SELECT id FROM t WHERE v > 500.0 AND k <> 0"
        ).fetchall()
        rows = loaded.execute("SELECT id, k, v FROM t").fetchall()
        want = sorted(
            r[0] for r in rows
            if r[2] is not None and r[2] > 500.0 and r[1] != 0
        )
        assert sorted(r[0] for r in got) == want


class TestExplainAndStats:
    def test_explain_reports_range_scan(self, loaded):
        steps = plan(loaded, "SELECT * FROM t WHERE v > ?", (990.0,))
        assert steps[0] == "SEARCH t USING ORDERED INDEX idx_v (v>?)"

    def test_explain_reports_between(self, loaded):
        steps = plan(loaded, "SELECT * FROM t WHERE v BETWEEN 1 AND 2")
        assert "v BETWEEN ? AND ?" in steps[0]

    def test_explain_composite_prefix_and_bound(self, loaded):
        steps = plan(loaded, "SELECT * FROM t WHERE k = 3 AND v > 1.0")
        assert steps[0] == (
            "SEARCH t USING ORDERED INDEX idx_kv (k=?, v>?)"
        )

    def test_hash_index_still_used_for_equality(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("CREATE INDEX i ON t (a)")
        conn.execute("INSERT INTO t VALUES (1)")
        steps = plan(conn, "SELECT * FROM t WHERE a = 1")
        assert steps[0].startswith("SEARCH t USING INDEX i")

    def test_rows_scanned_proportional_to_result(self, loaded):
        rows = loaded.execute(
            "SELECT id FROM t WHERE v BETWEEN 100.0 AND 120.0"
        ).fetchall()
        stats = loaded.stats()
        assert stats["full_scans"] == 0
        assert stats["index_range_scans"] >= 1
        assert 0 < stats["rows_scanned"] < 200
        assert stats["rows_scanned"] >= len(rows)

    def test_full_scan_counts_whole_table(self, loaded):
        loaded.execute("SELECT count(*) FROM t WHERE k + 0 = 1").fetchall()
        stats = loaded.stats()
        assert stats["full_scans"] == 1
        assert stats["rows_scanned"] == 1000

    def test_reset_stats(self, loaded):
        loaded.execute("SELECT * FROM t WHERE v > 999.0").fetchall()
        assert loaded.stats()["index_range_scans"] == 1
        loaded.reset_stats()
        assert all(v == 0 for v in loaded.stats().values())


class TestOrderPushdown:
    def test_top_n_matches_sort(self, loaded):
        pushed = loaded.execute(
            "SELECT id, v FROM t ORDER BY v LIMIT 10"
        ).fetchall()
        rows = loaded.execute("SELECT id, v FROM t").fetchall()
        want = sorted(
            (r for r in rows if r[1] is not None), key=lambda r: r[1]
        )
        # NULLs sort first ascending, so brute force must include them
        nulls = [r for r in rows if r[1] is None]
        assert pushed == (nulls + want)[:10]

    def test_top_n_descending(self, loaded):
        pushed = loaded.execute(
            "SELECT v FROM t ORDER BY v DESC LIMIT 5"
        ).fetchall()
        rows = [r[0] for r in loaded.execute("SELECT v FROM t").fetchall()]
        want = sorted((v for v in rows if v is not None), reverse=True)[:5]
        assert [r[0] for r in pushed] == want

    def test_explain_shows_index_order(self, loaded):
        steps = plan(loaded, "SELECT * FROM t ORDER BY v LIMIT 3")
        assert steps[0] == (
            "SEARCH t USING ORDERED INDEX idx_v (ORDER BY pushdown)"
        )
        assert "ORDER BY (index order)" in steps

    def test_pushdown_stops_early(self, loaded):
        loaded.execute("SELECT v FROM t ORDER BY v DESC LIMIT 5").fetchall()
        stats = loaded.stats()
        assert stats["order_pushdowns"] == 1
        assert stats["rows_scanned"] <= 20  # NULL tail + 5, not 1000

    def test_range_plus_matching_order(self, loaded):
        got = loaded.execute(
            "SELECT v FROM t WHERE v > 900.0 ORDER BY v LIMIT 4"
        ).fetchall()
        rows = [r[0] for r in loaded.execute("SELECT v FROM t").fetchall()]
        want = sorted(v for v in rows if v is not None and v > 900.0)[:4]
        assert [r[0] for r in got] == want

    def test_alias_shadowing_disables_pushdown(self, loaded):
        # `-v AS v` reverses the meaning of the ORDER BY column: the
        # planner must not claim index order.
        steps = plan(loaded, "SELECT -v AS v FROM t ORDER BY v LIMIT 3")
        assert "ORDER BY (sort)" in steps
        got = loaded.execute(
            "SELECT -v AS v FROM t WHERE v IS NOT NULL ORDER BY v LIMIT 3"
        ).fetchall()
        rows = [r[0] for r in loaded.execute("SELECT v FROM t").fetchall()]
        want = sorted(-v for v in rows if v is not None)[:3]
        assert [r[0] for r in got] == want


class TestMaintenance:
    def test_update_moves_row_between_ranges(self, loaded):
        loaded.execute("UPDATE t SET v = 2000.0 WHERE id = 1")
        got = loaded.execute("SELECT id FROM t WHERE v > 1500.0").fetchall()
        assert [r[0] for r in got] == [1]
        assert (1,) not in loaded.execute(
            "SELECT id FROM t WHERE v <= 1500.0"
        ).fetchall()

    def test_delete_removes_from_range(self, loaded):
        ids = [
            r[0]
            for r in loaded.execute(
                "SELECT id FROM t WHERE v > 500.0"
            ).fetchall()
        ]
        loaded.execute("DELETE FROM t WHERE v > 500.0")
        assert loaded.execute("SELECT id FROM t WHERE v > 500.0").fetchall() == []
        remaining = {r[0] for r in loaded.execute("SELECT id FROM t").fetchall()}
        assert remaining.isdisjoint(ids)

    def test_out_of_order_inserts_stay_sorted(self, conn):
        conn.execute("CREATE TABLE t (v INTEGER)")
        conn.execute("CREATE INDEX i ON t (v) USING BTREE")
        values = [5, 1, 9, 3, 7, 2, 8, 0, 6, 4]
        conn.executemany("INSERT INTO t VALUES (?)", [(v,) for v in values])
        got = conn.execute("SELECT v FROM t WHERE v >= 3 ORDER BY v").fetchall()
        assert [r[0] for r in got] == [3, 4, 5, 6, 7, 8, 9]

    def test_rollback_restores_index(self, loaded):
        before = loaded.execute("SELECT id FROM t WHERE v > 900.0").fetchall()
        loaded.commit()
        loaded.execute("UPDATE t SET v = NULL WHERE v > 900.0")
        loaded.rollback()
        after = loaded.execute("SELECT id FROM t WHERE v > 900.0").fetchall()
        assert sorted(after) == sorted(before)


class TestStatementCacheLRU:
    def test_recently_used_survives_eviction(self, conn):
        from repro.db.minisql.engine import _STATEMENT_CACHE_SIZE

        conn.execute("CREATE TABLE t (a INTEGER)")
        hot = "SELECT a FROM t WHERE a = 0"
        conn.execute(hot)
        # Fill the cache; touch the hot statement midway to refresh it.
        for i in range(_STATEMENT_CACHE_SIZE - 2):
            conn.execute(f"SELECT a FROM t WHERE a = {i + 1000}")
            if i == _STATEMENT_CACHE_SIZE // 2:
                conn.execute(hot)
        conn.execute("SELECT a FROM t WHERE a = -1")  # evicts one entry
        assert hot in conn._statement_cache
        assert len(conn._statement_cache) <= _STATEMENT_CACHE_SIZE

    def test_cache_never_exceeds_limit(self, conn):
        from repro.db.minisql.engine import _STATEMENT_CACHE_SIZE

        conn.execute("CREATE TABLE t (a INTEGER)")
        for i in range(_STATEMENT_CACHE_SIZE + 50):
            conn.execute(f"SELECT a FROM t WHERE a = {i}")
        assert len(conn._statement_cache) <= _STATEMENT_CACHE_SIZE
