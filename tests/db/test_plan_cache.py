"""Regression tests: DDL must invalidate cached compiled plans.

Compiled plans bake column offsets into closures, and the statement
cache keeps Statement objects (plans ride on them) alive across
executions of the same SQL text.  Any DDL that changes the catalog —
``CREATE INDEX``, ``ALTER TABLE ADD COLUMN``, ``DROP TABLE`` — must
therefore force a recompile, keyed on ``Database.schema_version``.
The failure mode being guarded: ADD COLUMN on the outer table of a
join shifts every inner-table offset, so a stale plan reads the wrong
cells (or walks off the row) while returning plausible-looking data.
"""

import pytest

from repro.db import minisql


@pytest.fixture
def conn():
    c = minisql.connect()
    yield c
    c.close()


class TestAddColumnInvalidation:
    def test_join_offsets_shift(self, conn):
        """ADD COLUMN on the left table shifts the right table's slots."""
        conn.execute("CREATE TABLE a (id INTEGER, x TEXT)")
        conn.execute("CREATE TABLE b (id INTEGER, y TEXT)")
        conn.execute("INSERT INTO a VALUES (1, 'ax')")
        conn.execute("INSERT INTO b VALUES (1, 'by')")
        sql = "SELECT a.x, b.y FROM a JOIN b ON a.id = b.id"
        assert conn.execute(sql).fetchall() == [("ax", "by")]
        conn.execute("ALTER TABLE a ADD COLUMN z TEXT DEFAULT 'az'")
        # Same SQL text -> same cached Statement; a stale plan would
        # read b.y from the old offset (now holding a.z or b.id).
        assert conn.execute(sql).fetchall() == [("ax", "by")]

    def test_single_table_where_and_projection(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        conn.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        sql = "SELECT b FROM t WHERE a = 2"
        assert conn.execute(sql).fetchall() == [(20,)]
        conn.execute("ALTER TABLE t ADD COLUMN c INTEGER DEFAULT 7")
        assert conn.execute(sql).fetchall() == [(20,)]
        # Star expansion must pick up the new column too.
        assert conn.execute("SELECT * FROM t WHERE a = 1").fetchall() == [(1, 10, 7)]

    def test_update_assignments_recompiled(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        conn.execute("INSERT INTO t VALUES (1, 0)")
        sql = "UPDATE t SET b = a + 1 WHERE a = 1"
        conn.execute(sql)
        assert conn.execute("SELECT b FROM t").fetchone() == (2,)
        conn.execute("DROP TABLE t")
        # Recreate with the column order swapped: a stale DML plan
        # would write the computed value into the wrong position.
        conn.execute("CREATE TABLE t (b INTEGER, a INTEGER)")
        conn.execute("INSERT INTO t (a, b) VALUES (1, 0)")
        conn.execute(sql)
        assert conn.execute("SELECT b FROM t").fetchone() == (2,)


class TestCreateIndexInvalidation:
    def test_new_index_is_used_after_recompile(self, conn):
        conn.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
        conn.executemany(
            "INSERT INTO t VALUES (?, ?)", [(i, i * 10) for i in range(50)]
        )
        sql = "SELECT v FROM t WHERE k = 7"
        assert conn.execute(sql).fetchall() == [(70,)]
        probes_before = conn.stats()["index_eq_probes"]
        conn.execute("CREATE INDEX idx_k ON t (k)")
        assert conn.execute(sql).fetchall() == [(70,)]
        assert conn.stats()["index_eq_probes"] > probes_before

    def test_drop_index_falls_back_to_scan(self, conn):
        conn.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
        conn.execute("CREATE INDEX idx_k ON t (k)")
        conn.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        sql = "SELECT v FROM t WHERE k = 2"
        assert conn.execute(sql).fetchall() == [(20,)]
        conn.execute("DROP INDEX idx_k")
        assert conn.execute(sql).fetchall() == [(20,)]


class TestDropTableInvalidation:
    def test_recreated_table_with_reordered_columns(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        conn.execute("INSERT INTO t VALUES (1, 'one')")
        sql = "SELECT b FROM t WHERE a = 1"
        assert conn.execute(sql).fetchall() == [("one",)]
        conn.execute("DROP TABLE t")
        conn.execute("CREATE TABLE t (b TEXT, a INTEGER)")
        conn.execute("INSERT INTO t (a, b) VALUES (1, 'two')")
        # Stale offsets would return the integer column as b.
        assert conn.execute(sql).fetchall() == [("two",)]

    def test_rolled_back_ddl_still_invalidates(self, conn):
        """Undoing DDL changes the catalog too — version must move."""
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t VALUES (1)")
        conn.commit()
        sql = "SELECT a FROM t WHERE a = 1"
        assert conn.execute(sql).fetchall() == [(1,)]
        conn.execute("BEGIN")
        conn.execute("CREATE INDEX idx_a ON t (a)")
        assert conn.execute(sql).fetchall() == [(1,)]
        conn.rollback()  # undoes the CREATE INDEX
        assert conn.execute(sql).fetchall() == [(1,)]
        misses = conn.stats()["plan_cache_misses"]
        assert misses >= 3  # initial + after-create + after-rollback


class TestColumnarConversionInvalidation:
    """Storage-mode swaps change what a valid plan looks like (vector
    sections only make sense against a column store), so they must bump
    ``schema_version`` like any other catalog change."""

    @pytest.fixture
    def data(self, conn):
        conn.execute("CREATE TABLE t (k INTEGER, v REAL)")
        conn.executemany(
            "INSERT INTO t VALUES (?, ?)",
            [(i % 5, float(i)) for i in range(40)],
        )
        conn.commit()
        return conn

    def test_conversion_bumps_schema_version(self, data):
        db = data._database
        v0 = db.schema_version
        data.execute("PRAGMA columnar(t on)")
        v1 = db.schema_version
        data.execute("PRAGMA columnar(t off)")
        assert v0 < v1 < db.schema_version

    def test_cached_plan_gains_and_loses_vector_section(self, data):
        sql = "SELECT sum(v), count(*) FROM t WHERE k < 3"
        oracle = data.execute(sql).fetchall()
        assert data.stats()["vector_selects"] == 0
        data.execute("PRAGMA columnar(t on)")
        # Same SQL text -> same cached Statement; a stale (row) plan
        # would scan the replaced table without vectorizing.
        assert data.execute(sql).fetchall() == oracle
        assert data.stats()["vector_selects"] == 1
        data.execute("PRAGMA columnar(t off)")
        assert data.execute(sql).fetchall() == oracle
        assert data.stats()["vector_selects"] == 1  # row path again

    def test_stale_offsets_never_served_after_conversion(self, data):
        sql = "SELECT v FROM t WHERE k = 2 ORDER BY v"
        oracle = data.execute(sql).fetchall()
        data.execute("PRAGMA columnar(t on)")
        data.execute("ALTER TABLE t ADD COLUMN w TEXT DEFAULT 'pad'")
        assert data.execute(sql).fetchall() == oracle
        assert data.execute(
            "SELECT w FROM t WHERE k = 2"
        ).fetchall() == [("pad",)] * len(oracle)


class TestSchemaVersionCounter:
    def test_every_ddl_kind_bumps(self, conn):
        db = conn._database
        v0 = db.schema_version
        conn.execute("CREATE TABLE t (a INTEGER)")
        v1 = db.schema_version
        conn.execute("CREATE INDEX i ON t (a)")
        v2 = db.schema_version
        conn.execute("ALTER TABLE t ADD COLUMN b INTEGER")
        v3 = db.schema_version
        conn.execute("ALTER TABLE t RENAME TO u")
        v4 = db.schema_version
        conn.execute("DROP INDEX i")
        v5 = db.schema_version
        conn.execute("DROP TABLE u")
        v6 = db.schema_version
        assert v0 < v1 < v2 < v3 < v4 < v5 < v6

    def test_dml_does_not_bump(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        db = conn._database
        v = db.schema_version
        conn.execute("INSERT INTO t VALUES (1)")
        conn.execute("UPDATE t SET a = 2")
        conn.execute("DELETE FROM t")
        conn.execute("SELECT * FROM t").fetchall()
        assert db.schema_version == v
