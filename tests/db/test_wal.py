"""MiniSQL durability: WAL round-trips, checkpoints, torn-tail recovery.

Process-internal tests of the write-ahead log (the subprocess crash
matrix lives in test_crash_recovery.py).  "Crash" here means dropping a
file-backed database without its close-time checkpoint, so reopening
must reconstruct state from checkpoint + WAL alone.
"""

from __future__ import annotations

import shutil

import pytest

from repro.db import minisql
from repro.db.minisql import engine as ms_engine
from repro.db.minisql import wal as ms_wal


def _open(path):
    return minisql.connect(str(path))


def _simulate_crash(path):
    """Drop the in-process database for ``path`` WITHOUT checkpointing,
    exactly as a killed process would leave the files."""
    key = str(path.resolve())
    with ms_engine._SHARED_LOCK:
        db = ms_engine._FILE_DATABASES.pop(key, None)
    assert db is not None, f"{path} was not open"
    db.wal.close()
    db.wal = None


@pytest.fixture
def archive(tmp_path):
    return tmp_path / "archive.mdb"


class TestDurability:
    def test_clean_close_then_reopen(self, archive):
        conn = _open(archive)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL)")
        conn.executemany(
            "INSERT INTO t (x) VALUES (?)", [(float(i),) for i in range(20)]
        )
        conn.commit()
        conn.close()
        minisql.reset_shared_databases()

        conn = _open(archive)
        assert conn.execute("SELECT count(*) FROM t").fetchone() == (20,)
        assert conn.execute("PRAGMA integrity_check").fetchall() == [("ok",)]

    def test_committed_state_survives_crash(self, archive):
        conn = _open(archive)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
        conn.executemany(
            "INSERT INTO t (name) VALUES (?)", [(f"n{i}",) for i in range(10)]
        )
        conn.commit()
        conn.execute("UPDATE t SET name = 'changed' WHERE id = 3")
        conn.execute("DELETE FROM t WHERE id = 4")
        conn.commit()
        _simulate_crash(archive)

        conn = _open(archive)
        assert conn.execute("SELECT count(*) FROM t").fetchone() == (9,)
        assert conn.execute(
            "SELECT name FROM t WHERE id = 3"
        ).fetchone() == ("changed",)
        assert conn.execute("SELECT * FROM t WHERE id = 4").fetchall() == []
        assert conn.execute("PRAGMA integrity_check").fetchall() == [("ok",)]

    def test_uncommitted_transaction_is_discarded(self, archive):
        conn = _open(archive)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL)")
        conn.execute("INSERT INTO t (x) VALUES (1.0)")
        conn.commit()
        conn.execute("INSERT INTO t (x) VALUES (2.0)")  # never committed
        _simulate_crash(archive)

        conn = _open(archive)
        assert conn.execute("SELECT count(*) FROM t").fetchone() == (1,)

    def test_rolled_back_transaction_is_discarded(self, archive):
        conn = _open(archive)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL)")
        conn.execute("INSERT INTO t (x) VALUES (1.0)")
        conn.commit()
        conn.execute("INSERT INTO t (x) VALUES (2.0)")
        conn.rollback()
        conn.execute("INSERT INTO t (x) VALUES (3.0)")
        conn.commit()
        _simulate_crash(archive)

        conn = _open(archive)
        rows = conn.execute("SELECT x FROM t ORDER BY x").fetchall()
        assert rows == [(1.0,), (3.0,)]

    def test_ddl_and_indexes_survive_crash(self, archive):
        conn = _open(archive)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL, s TEXT)")
        conn.execute("CREATE INDEX idx_x ON t (x) USING BTREE")
        conn.execute("CREATE UNIQUE INDEX idx_s ON t (s)")
        conn.executemany(
            "INSERT INTO t (x, s) VALUES (?, ?)",
            [(float(i), f"s{i}") for i in range(50)],
        )
        conn.commit()
        conn.execute("ALTER TABLE t ADD COLUMN extra INTEGER DEFAULT 7")
        conn.execute("DROP INDEX idx_s")
        _simulate_crash(archive)

        conn = _open(archive)
        indexes = {r[0] for r in conn.execute("PRAGMA index_list(t)").fetchall()}
        assert "idx_x" in indexes and "idx_s" not in indexes
        assert conn.execute(
            "SELECT extra FROM t WHERE id = 1"
        ).fetchone() == (7,)
        # The ordered index must actually serve range queries post-replay.
        assert conn.execute(
            "SELECT count(*) FROM t WHERE x >= 25.0"
        ).fetchone() == (25,)
        assert conn.execute("PRAGMA integrity_check").fetchall() == [("ok",)]

    def test_rowids_survive_checkpoint_with_gaps(self, archive):
        """Dump restore renumbers rows; the checkpoint trailer must map
        the original (gappy) rowids back so later WAL records and
        autoincrement keep working."""
        conn = _open(archive)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL)")
        conn.executemany(
            "INSERT INTO t (x) VALUES (?)", [(float(i),) for i in range(10)]
        )
        conn.execute("DELETE FROM t WHERE id IN (2, 5, 9)")  # leave gaps
        conn.commit()
        conn.execute("PRAGMA checkpoint")
        # Post-checkpoint mutations reference the original rowids.
        conn.execute("UPDATE t SET x = -1.0 WHERE id = 10")
        conn.execute("INSERT INTO t (x) VALUES (123.0)")
        conn.commit()
        _simulate_crash(archive)

        conn = _open(archive)
        assert conn.execute("SELECT x FROM t WHERE id = 10").fetchone() == (-1.0,)
        # Autoincrement continues past the pre-crash high-water mark.
        assert conn.execute("SELECT max(id) FROM t").fetchone() == (11,)
        conn.execute("INSERT INTO t (x) VALUES (124.0)")
        conn.commit()
        assert conn.execute("SELECT max(id) FROM t").fetchone() == (12,)

    def test_segment_rotation_replays_in_order(self, archive):
        db = ms_wal.open_file_database(archive, segment_bytes=512)
        conn = minisql.Connection(db)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT)")
        conn.executemany(
            "INSERT INTO t (s) VALUES (?)", [("x" * 40,) for _ in range(50)]
        )
        conn.commit()
        segments = ms_wal.list_segments(archive.resolve())
        assert len(segments) > 1, "workload did not rotate segments"
        db.wal.close()
        db.wal = None

        db2 = ms_wal.open_file_database(archive)
        assert len(db2.tables["t"].rows) == 50
        db2.wal.close()

    def test_connections_share_one_file_database(self, archive):
        a = _open(archive)
        a.execute("CREATE TABLE t (x INTEGER)")
        a.execute("INSERT INTO t VALUES (1)")
        a.commit()
        b = _open(archive)
        assert b.execute("SELECT count(*) FROM t").fetchone() == (1,)

    def test_wal_replay_after_crash_leaves_clean_slate(self, archive):
        """Every successful open ends with a fresh checkpoint and an
        empty WAL — crash loops never accumulate log."""
        conn = _open(archive)
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.execute("INSERT INTO t VALUES (1)")
        conn.commit()
        _simulate_crash(archive)
        db = ms_wal.open_file_database(archive)
        records, clean = ms_wal.read_records(archive.resolve())
        assert records == [] and clean
        assert archive.exists()
        db.wal.close()


class TestHostileTextDurability:
    """TEXT values with newlines, CRs, or lines that mimic dump syntax
    must survive the checkpoint (SQL dump) → crash → replay cycle."""

    HOSTILE = [
        "line1\nline2",
        "cr\rmiddle",
        "crlf\r\nend",
        "blank\n\n\nlines",
        "looks like\n-- a comment",
        "BEGIN;",
        "framed\nBEGIN;\nCOMMIT;\ntail",
        "text\n-- minisql-meta: {\"fake\": true}",
        "quote'and\nnewline",
    ]

    def _populate(self, conn):
        conn.execute("CREATE TABLE h (id INTEGER PRIMARY KEY, s TEXT)")
        conn.executemany(
            "INSERT INTO h (s) VALUES (?)", [(s,) for s in self.HOSTILE]
        )
        conn.commit()

    def _fetch(self, conn):
        return [
            r[0] for r in conn.execute("SELECT s FROM h ORDER BY id").fetchall()
        ]

    def test_survive_checkpoint_and_crash(self, archive):
        conn = _open(archive)
        self._populate(conn)
        conn.execute("PRAGMA checkpoint")  # values now live in the dump
        _simulate_crash(archive)

        conn = _open(archive)
        assert self._fetch(conn) == self.HOSTILE
        assert conn.execute("PRAGMA integrity_check").fetchall() == [("ok",)]

    def test_survive_clean_close_twice(self, archive):
        """Two full close/reopen cycles: restore must not mangle values
        it then re-dumps (no cumulative corruption)."""
        conn = _open(archive)
        self._populate(conn)
        conn.close()
        minisql.reset_shared_databases()

        conn = _open(archive)
        assert self._fetch(conn) == self.HOSTILE
        conn.close()
        minisql.reset_shared_databases()

        conn = _open(archive)
        assert self._fetch(conn) == self.HOSTILE

    def test_survive_wal_replay_without_checkpoint(self, archive):
        conn = _open(archive)
        self._populate(conn)
        _simulate_crash(archive)  # values only in the WAL, not the dump

        conn = _open(archive)
        assert self._fetch(conn) == self.HOSTILE


class TestConcurrentAutocommit:
    def test_parallel_writers_and_checkpoints(self, archive):
        """Autocommit mutations from many threads race WAL appends,
        segment rotation and explicit checkpoints; the log must stay
        coherent and recovery must see every committed row."""
        import threading

        db = ms_wal.open_file_database(archive, segment_bytes=4096)
        setup = minisql.Connection(db)
        setup.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, w INTEGER)")
        n_threads, per_thread = 6, 30
        errors = []

        def writer(i: int) -> None:
            try:
                conn = minisql.Connection(db)
                conn.isolation_level = None  # true autocommit: no BEGIN
                for _ in range(per_thread):
                    conn.execute("INSERT INTO t (w) VALUES (?)", (i,))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def checkpointer() -> None:
            try:
                conn = minisql.Connection(db)
                for _ in range(5):
                    conn.execute("PRAGMA checkpoint")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(n_threads)
        ] + [threading.Thread(target=checkpointer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(db.tables["t"].rows) == n_threads * per_thread

        db.wal.close()
        db.wal = None
        recovered = ms_wal.open_file_database(archive)
        try:
            assert len(recovered.tables["t"].rows) == n_threads * per_thread
            problems = minisql.Connection(recovered).execute(
                "PRAGMA integrity_check"
            ).fetchall()
            assert problems == [("ok",)]
        finally:
            recovered.wal.close()


class TestPragmas:
    def test_synchronous_get_set(self, archive):
        conn = _open(archive)
        assert conn.execute("PRAGMA synchronous").fetchone() == ("normal",)
        conn.execute("PRAGMA synchronous(full)")
        assert conn.execute("PRAGMA synchronous").fetchone() == ("full",)
        conn.execute("PRAGMA synchronous = off")
        assert conn.execute("PRAGMA synchronous").fetchone() == ("off",)
        with pytest.raises(minisql.ProgrammingError):
            conn.execute("PRAGMA synchronous(bogus)")

    def test_synchronous_full_fsyncs_at_commit(self, archive):
        conn = _open(archive)
        conn.execute("PRAGMA synchronous(full)")
        conn.execute("CREATE TABLE t (x INTEGER)")
        before = conn.stats()["wal_fsyncs"]
        conn.execute("INSERT INTO t VALUES (1)")
        conn.commit()
        assert conn.stats()["wal_fsyncs"] > before

    def test_checkpoint_pragma_truncates_wal(self, archive):
        conn = _open(archive)
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.execute("INSERT INTO t VALUES (1)")
        conn.commit()
        status = dict(conn.execute("PRAGMA wal_status").fetchall())
        assert status["bytes_since_checkpoint"] > 0
        assert conn.execute("PRAGMA checkpoint").fetchone() == (1,)
        status = dict(conn.execute("PRAGMA wal_status").fetchall())
        assert status["bytes_since_checkpoint"] == 0
        assert status["checkpoints"] >= 1

    def test_checkpoint_refused_inside_transaction(self, archive):
        conn = _open(archive)
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(minisql.OperationalError):
            conn.execute("PRAGMA checkpoint")
        conn.rollback()

    def test_autocheckpoint_threshold_triggers_at_commit(self, archive):
        conn = _open(archive)
        conn.execute("PRAGMA wal_autocheckpoint(1)")  # every commit
        conn.execute("CREATE TABLE t (x INTEGER)")
        before = dict(conn.execute("PRAGMA wal_status").fetchall())["checkpoints"]
        conn.execute("INSERT INTO t VALUES (1)")
        conn.commit()
        after = dict(conn.execute("PRAGMA wal_status").fetchall())["checkpoints"]
        assert after > before
        conn.execute("PRAGMA wal_autocheckpoint(off)")
        assert conn.execute(
            "PRAGMA wal_autocheckpoint"
        ).fetchone() == (None,)

    def test_wal_pragmas_on_memory_database(self):
        conn = minisql.connect(":memory:")
        assert conn.execute("PRAGMA wal_status").fetchall() == [("enabled", 0)]
        assert conn.execute("PRAGMA checkpoint").fetchone() == (0,)
        conn.execute("PRAGMA synchronous(full)")  # accepted, no-op

    def test_integrity_check_detects_corruption(self):
        conn = minisql.connect(":memory:")
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL)")
        conn.execute("INSERT INTO t (x) VALUES (1.5)")
        assert conn.execute("PRAGMA integrity_check").fetchall() == [("ok",)]
        table = conn._database.tables["t"]
        next(iter(table.indexes.values())).map[(999,)] = {999}  # sabotage
        problems = conn.execute("PRAGMA integrity_check").fetchall()
        assert problems != [("ok",)]


class TestTornTail:
    def test_recovery_at_every_truncation_offset(self, tmp_path):
        """Chop the WAL at every byte offset; recovery must always land
        on a committed prefix (never crash, never partial transactions)."""
        work = tmp_path / "work"
        work.mkdir()
        archive = work / "archive.mdb"
        db = ms_wal.open_file_database(archive)
        conn = minisql.Connection(db)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL)")
        for batch in range(2):
            conn.execute("BEGIN")
            conn.execute("INSERT INTO t (x) VALUES (?)", (batch + 0.5,))
            conn.execute("INSERT INTO t (x) VALUES (?)", (batch + 0.75,))
            conn.commit()
        # A trailing uncommitted transaction: must never be recovered.
        conn.execute("INSERT INTO t (x) VALUES (99.0)")
        segments = ms_wal.list_segments(archive.resolve())
        assert len(segments) == 1
        db.wal.close()
        db.wal = None
        wal_bytes = segments[0].read_bytes()
        checkpoint_bytes = archive.read_bytes()

        scratch = tmp_path / "scratch"
        scratch.mkdir()
        target = scratch / "archive.mdb"
        seen_counts = set()
        for offset in range(len(wal_bytes) + 1):
            shutil.rmtree(scratch)
            scratch.mkdir()
            target.write_bytes(checkpoint_bytes)
            (scratch / segments[0].name).write_bytes(wal_bytes[:offset])
            recovered = ms_wal.open_file_database(target)
            try:
                table = recovered.tables.get("t")
                if table is None:
                    count = -1  # DDL record itself torn away
                else:
                    count = len(table.rows)
                    problems = minisql.Connection(recovered).execute(
                        "PRAGMA integrity_check"
                    ).fetchall()
                    assert problems == [("ok",)], (offset, problems)
                # Committed prefixes only: no table yet, an empty table,
                # one committed batch, or both.  Never the uncommitted row.
                assert count in (-1, 0, 2, 4), (offset, count)
                seen_counts.add(count)
            finally:
                recovered.wal.close()
        # The sweep must actually exercise every prefix state.
        assert seen_counts == {-1, 0, 2, 4}

    def test_corrupt_middle_segment_stops_replay(self, tmp_path):
        archive = tmp_path / "archive.mdb"
        db = ms_wal.open_file_database(archive, segment_bytes=256)
        conn = minisql.Connection(db)
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT)")
        conn.executemany(
            "INSERT INTO t (s) VALUES (?)", [("y" * 40,) for _ in range(30)]
        )
        conn.commit()
        segments = ms_wal.list_segments(archive.resolve())
        assert len(segments) >= 2
        db.wal.close()
        db.wal = None
        # Flip a byte in the FIRST segment: everything after it is
        # untrustworthy, so replay must stop there (prefix consistency),
        # even though later segments decode fine.
        first = bytearray(segments[0].read_bytes())
        first[len(first) // 2] ^= 0xFF
        segments[0].write_bytes(bytes(first))
        records, clean = ms_wal.read_records(archive.resolve())
        assert not clean
        recovered = ms_wal.open_file_database(archive)
        table = recovered.tables.get("t")
        count = 0 if table is None else len(table.rows)
        assert count < 30
        recovered.wal.close()
