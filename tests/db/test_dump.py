"""Tests for MiniSQL dump/restore, including cross-engine restores."""

import sqlite3

import pytest

from repro.db import minisql
from repro.db.minisql import dump_sql, load_database, save_database


@pytest.fixture
def populated():
    conn = minisql.connect()
    conn.execute(
        "CREATE TABLE app (id INTEGER PRIMARY KEY AUTOINCREMENT, "
        "name TEXT NOT NULL, version TEXT DEFAULT 'none')"
    )
    conn.execute("CREATE TABLE vals (app_id INTEGER REFERENCES app(id), v REAL)")
    conn.execute("CREATE INDEX idx_vals_app ON vals (app_id)")
    conn.executemany(
        "INSERT INTO app (name, version) VALUES (?, ?)",
        [("sppm", "1.0"), ("o'brien", None), ("evh1", "2")],
    )
    conn.executemany(
        "INSERT INTO vals VALUES (?, ?)",
        [(1, 1.5), (1, -2.25), (2, 0.0), (3, 1e-9)],
    )
    conn.commit()
    return conn


class TestDump:
    def test_dump_contains_schema_and_rows(self, populated):
        statements = list(dump_sql(populated))
        text = "\n".join(statements)
        assert "CREATE TABLE app" in text
        assert "PRIMARY KEY AUTOINCREMENT" in text
        assert "REFERENCES app(id)" in text
        assert text.count("INSERT INTO app") == 3
        assert text.count("INSERT INTO vals") == 4
        assert "CREATE INDEX idx_vals_app" in text

    def test_quotes_escaped(self, populated):
        text = "\n".join(dump_sql(populated))
        assert "'o''brien'" in text

    def test_implicit_indexes_not_dumped(self, populated):
        text = "\n".join(dump_sql(populated))
        assert "__pk_" not in text


class TestRestore:
    def test_roundtrip_into_minisql(self, populated, tmp_path):
        path = save_database(populated, tmp_path / "dump.sql")
        fresh = minisql.connect()
        load_database(fresh, path)
        assert fresh.execute("SELECT count(*) FROM vals").fetchone() == (4,)
        rows = fresh.execute("SELECT name, version FROM app ORDER BY id").fetchall()
        assert rows == [("sppm", "1.0"), ("o'brien", None), ("evh1", "2")]

    def test_autoincrement_continues_after_restore(self, populated, tmp_path):
        path = save_database(populated, tmp_path / "dump.sql")
        fresh = minisql.connect()
        load_database(fresh, path)
        cur = fresh.execute("INSERT INTO app (name) VALUES ('new')")
        assert cur.lastrowid == 4

    def test_index_restored_and_probed(self, populated, tmp_path):
        path = save_database(populated, tmp_path / "dump.sql")
        fresh = minisql.connect()
        load_database(fresh, path)
        rows = fresh.execute("SELECT v FROM vals WHERE app_id = 1").fetchall()
        assert sorted(rows) == [(-2.25,), (1.5,)]

    def test_restore_into_sqlite(self, populated, tmp_path):
        """The dump is portable SQL: sqlite must accept it unchanged."""
        path = save_database(populated, tmp_path / "dump.sql")
        raw = sqlite3.connect(":memory:")
        raw.executescript(path.read_text())
        rows = raw.execute("SELECT name FROM app ORDER BY id").fetchall()
        assert [r[0] for r in rows] == ["sppm", "o'brien", "evh1"]
        (count,) = raw.execute("SELECT count(*) FROM vals").fetchone()
        assert count == 4

    def test_float_fidelity(self, populated, tmp_path):
        path = save_database(populated, tmp_path / "dump.sql")
        fresh = minisql.connect()
        load_database(fresh, path)
        values = {
            v for (v,) in fresh.execute("SELECT v FROM vals").fetchall()
        }
        assert values == {1.5, -2.25, 0.0, 1e-9}


#: Values engineered to break naive line-based restore: raw newlines,
#: carriage returns, continuation lines masquerading as comments or
#: transaction framing.  Every one must round-trip byte-for-byte.
HOSTILE_STRINGS = [
    "line1\nline2",
    "cr\rmiddle",
    "crlf\r\nend",
    "blank\n\n\nlines",
    "looks like\n-- a comment",
    "-- leading comment",
    "BEGIN;",
    "framed\nBEGIN;\nCOMMIT;\ntail",
    "quote'and\nnewline",
    "trailing newline\n",
]


class TestHostileStringRoundTrip:
    @pytest.fixture
    def hostile_conn(self):
        conn = minisql.connect()
        conn.execute("CREATE TABLE h (id INTEGER PRIMARY KEY, s TEXT)")
        conn.executemany(
            "INSERT INTO h (s) VALUES (?)", [(s,) for s in HOSTILE_STRINGS]
        )
        conn.commit()
        return conn

    def test_roundtrip_into_minisql(self, hostile_conn, tmp_path):
        path = save_database(hostile_conn, tmp_path / "dump.sql")
        fresh = minisql.connect()
        load_database(fresh, path)
        rows = fresh.execute("SELECT s FROM h ORDER BY id").fetchall()
        assert [r[0] for r in rows] == HOSTILE_STRINGS

    def test_roundtrip_into_sqlite(self, hostile_conn, tmp_path):
        path = save_database(hostile_conn, tmp_path / "dump.sql")
        raw = sqlite3.connect(":memory:")
        with open(path, encoding="utf-8", newline="") as fh:
            raw.executescript(fh.read())
        rows = raw.execute("SELECT s FROM h ORDER BY id").fetchall()
        assert [r[0] for r in rows] == HOSTILE_STRINGS

    def test_double_roundtrip_is_stable(self, hostile_conn, tmp_path):
        """Dump → restore → dump again must reproduce the same script
        (no cumulative mangling of control characters)."""
        first = save_database(hostile_conn, tmp_path / "one.sql")
        fresh = minisql.connect()
        load_database(fresh, first)
        second = save_database(fresh, tmp_path / "two.sql")
        assert first.read_bytes() == second.read_bytes()


class TestPerfDMFArchiveDump:
    def test_whole_archive_roundtrip(self, tmp_path):
        """Dump/restore a real PerfDMF archive on the MiniSQL backend."""
        from repro.core.session import PerfDMFSession
        from repro.tau.apps import EVH1

        session = PerfDMFSession("minisql://:memory:")
        app = session.create_application("evh1")
        exp = session.create_experiment(app, "e")
        source = EVH1(problem_size=0.05, timesteps=1).run(2)
        trial = session.save_trial(source, exp, "t")
        expected = session.count_data_points(trial)

        path = save_database(session.connection._raw, tmp_path / "archive.sql")

        restored_conn = minisql.connect()
        load_database(restored_conn, path)
        from repro.db.api import DBConnection
        from repro.db.dialects import get_dialect

        wrapped = DBConnection(
            restored_conn, "minisql", get_dialect("minisql"), "minisql://restored"
        )
        restored = PerfDMFSession(wrapped, create=False)
        restored.set_trial(trial.id)
        assert restored.count_data_points() == expected
        back = restored.load_datasource()
        assert back.num_threads == source.num_threads

    def test_archive_dump_restores_into_sqlite(self, tmp_path):
        """Composite-PK tables (interval_location_profile) must dump as a
        table-level PRIMARY KEY constraint — sqlite rejects repeated
        inline markers with "more than one primary key"."""
        from repro.core.session import PerfDMFSession
        from repro.tau.apps import EVH1

        session = PerfDMFSession("minisql://:memory:")
        app = session.create_application("evh1")
        exp = session.create_experiment(app, "e")
        source = EVH1(problem_size=0.05, timesteps=1).run(2)
        trial = session.save_trial(source, exp, "t")
        expected = session.count_data_points(trial)

        path = save_database(session.connection._raw, tmp_path / "archive.sql")

        raw = sqlite3.connect(":memory:")
        raw.executescript(path.read_text())
        (count,) = raw.execute(
            "SELECT count(*) FROM interval_location_profile"
        ).fetchone()
        assert count == expected
        schema = raw.execute(
            "SELECT sql FROM sqlite_master WHERE name = 'interval_location_profile'"
        ).fetchone()[0]
        assert "PRIMARY KEY (interval_event, node, context, thread, metric)" in schema
