"""Round-trip properties for columnar storage.

Columnar tables must be observably identical to row tables under every
persistence path: after an arbitrary DML workload (`PRAGMA
integrity_check` clean, dumps byte-identical to the row-mode dump),
across a dump/restore cycle, across a WAL checkpoint + reopen, and
across a mid-write crash recovered from checkpoint + log.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import minisql
from repro.db.minisql.dump import dump_sql
from repro.testing import faults

# Hostile values: dump-breaking text (quotes, newlines, SQL fragments),
# affinity escape hatches (ints beyond 64 bits, non-integral floats in
# an INTEGER column), and NULLs everywhere.
_text = st.one_of(
    st.text(max_size=16),
    st.sampled_from([
        "", "'", "''", "a'b", "line1\nline2", "tab\there",
        "-- not a comment", "COMMIT;", "NULL", "0", "1e308", "🦉",
    ]),
)
_ints = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.sampled_from([0, 1, -1, 2**62, -(2**62), 2**63 + 7, -(2**70)]),
)
_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)

_insert = st.tuples(
    st.just("insert"), _ints, st.one_of(st.none(), _floats),
    st.one_of(st.none(), _text),
)
_update_v = st.tuples(
    st.just("update_v"), st.integers(0, 9),
    st.one_of(st.none(), _floats, _ints, _text),
)
_update_x = st.tuples(
    st.just("update_x"), st.integers(0, 9), st.one_of(st.none(), _text),
)
_delete = st.tuples(st.just("delete"), st.integers(0, 9))

_script = st.lists(
    st.one_of(_insert, _update_v, _update_x, _delete),
    min_size=0, max_size=30,
)

_DDL = "CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v, x TEXT)"


def _apply(conn, seed_rows, script, alter):
    conn.execute(_DDL)
    conn.executemany(
        "INSERT INTO t (k, v, x) VALUES (?, ?, ?)", seed_rows
    )
    half = len(script) // 2
    for position, op in enumerate(script):
        if alter and position == half:
            conn.commit()  # ALTER is DDL; close the implicit txn first
            conn.execute("ALTER TABLE t ADD COLUMN extra TEXT DEFAULT 'd'")
        if op[0] == "insert":
            conn.execute(
                "INSERT INTO t (k, v, x) VALUES (?, ?, ?)", op[1:]
            )
        elif op[0] == "update_v":
            conn.execute("UPDATE t SET v = ? WHERE k = ?", (op[2], op[1]))
        elif op[0] == "update_x":
            conn.execute("UPDATE t SET x = ? WHERE k = ?", (op[2], op[1]))
        elif op[0] == "delete":
            conn.execute("DELETE FROM t WHERE k = ?", (op[1],))
    conn.commit()


@settings(max_examples=60, deadline=None)
@given(
    seed_rows=st.lists(
        st.tuples(st.integers(0, 9), st.one_of(st.none(), _floats), _text),
        max_size=15,
    ),
    script=_script,
    alter=st.booleans(),
)
def test_workload_state_dump_and_integrity_match_row_mode(
    seed_rows, script, alter
):
    row = minisql.connect()
    col = minisql.connect()
    col.execute("PRAGMA columnar(on)")
    try:
        _apply(row, seed_rows, script, alter)
        _apply(col, seed_rows, script, alter)
        assert col.execute("PRAGMA columnar(t status)").fetchall() == [("t", 1)]
        assert col.execute("PRAGMA integrity_check").fetchall() == [("ok",)]
        q = "SELECT * FROM t ORDER BY id"
        assert col.execute(q).fetchall() == row.execute(q).fetchall()
        # The SQL dump is storage-agnostic: byte-identical either way.
        assert "\n".join(dump_sql(col)) == "\n".join(dump_sql(row))
    finally:
        row.close()
        col.close()


@settings(max_examples=30, deadline=None)
@given(
    seed_rows=st.lists(
        st.tuples(st.integers(0, 9), st.one_of(st.none(), _floats), _text),
        max_size=15,
    ),
    script=_script,
)
def test_dump_restores_into_fresh_engine(tmp_path_factory, seed_rows, script):
    base = tmp_path_factory.mktemp("dumps")
    col = minisql.connect()
    col.execute("PRAGMA columnar(on)")
    fresh = minisql.connect()
    try:
        _apply(col, seed_rows, script, alter=False)
        path = base / "archive.sql"
        minisql.save_database(col, path)
        minisql.load_database(fresh, path)
        q = "SELECT k, v, x FROM t ORDER BY id"
        assert fresh.execute(q).fetchall() == col.execute(q).fetchall()
    finally:
        col.close()
        fresh.close()
        path.unlink(missing_ok=True)


class TestWalReopen:
    def test_columnar_flag_and_data_survive_checkpoint_reopen(self, tmp_path):
        path = str(tmp_path / "archive.mdb")
        conn = minisql.connect(path)
        try:
            conn.execute("CREATE TABLE t (a INTEGER, b TEXT)")
            conn.commit()
            conn.execute("PRAGMA columnar(t on)")  # checkpoints the flag
            conn.executemany(
                "INSERT INTO t VALUES (?, ?)",
                [(i, f"r{i}") for i in range(50)],
            )
            conn.commit()  # rides in the WAL, replayed into the column store
            conn.execute("DELETE FROM t WHERE a % 10 = 3")
            conn.execute("UPDATE t SET b = 'patched' WHERE a = 7")
            conn.commit()
            expected = conn.execute("SELECT * FROM t ORDER BY a").fetchall()
        finally:
            conn.close()
            minisql.reset_shared_databases()
        conn = minisql.connect(path)
        try:
            assert conn.execute(
                "PRAGMA columnar(t status)"
            ).fetchall() == [("t", 1)]
            assert conn.execute(
                "SELECT * FROM t ORDER BY a"
            ).fetchall() == expected
            assert conn.execute(
                "PRAGMA integrity_check"
            ).fetchall() == [("ok",)]
        finally:
            conn.close()
            minisql.reset_shared_databases()


# -- crash recovery -----------------------------------------------------------

ROWS_PER_BATCH = 20
BATCHES = 4

#: Same shape as tests/db/test_crash_recovery.py's child, but the table
#: is converted to columnar right after the DDL, so every WAL replay and
#: checkpoint restore in the recovery path runs against the column store.
_CHILD = """
import sys
from repro.db import minisql

path, batches, rows = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
conn = minisql.connect(path)
try:
    conn.execute(
        "CREATE TABLE points (id INTEGER PRIMARY KEY, batch INTEGER, val REAL)"
    )
    conn.commit()
    conn.execute("PRAGMA columnar(points on)")
except minisql.MiniSQLError:
    pass  # rerun against a surviving archive
for b in range(batches):
    conn.executemany(
        "INSERT INTO points (batch, val) VALUES (?, ?)",
        [(b, float(i)) for i in range(rows)],
    )
    conn.commit()
    if b == 1:
        conn.execute("PRAGMA checkpoint")
print("COMPLETED", flush=True)
"""

CRASH_POINTS = [
    "wal.append.before@4",
    "wal.append.after@4",
    "torn:wal.append:3",
    "wal.commit.before_record@2",
    "wal.commit.after_record@2",
    "checkpoint.before_dump",
    "checkpoint.after_dump",
    "checkpoint.after_rename",
]


def _run_child(archive: Path, spec: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["REPRO_FAULTS"] = spec
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", _CHILD, str(archive),
         str(BATCHES), str(ROWS_PER_BATCH)],
        env=env, capture_output=True, text=True, timeout=120,
    )


@pytest.mark.parametrize("spec", CRASH_POINTS)
def test_crash_recovered_columnar_state_equals_row_mode(tmp_path, spec):
    """Crash a columnar archive mid-write; the recovered state must be a
    committed batch prefix identical to a row-mode database holding the
    same batches."""
    archive = tmp_path / "archive.mdb"
    proc = _run_child(archive, spec)
    assert proc.returncode == faults.CRASH_EXIT_STATUS, (
        f"fault {spec!r} never fired "
        f"(exit={proc.returncode}, stderr={proc.stderr[-800:]})"
    )
    conn = minisql.connect(str(archive))
    try:
        assert conn.execute(
            "PRAGMA integrity_check"
        ).fetchall() == [("ok",)]
        tables = {r[0] for r in conn.execute("PRAGMA table_list").fetchall()}
        if "points" not in tables:
            return  # crashed before the DDL was durable
        recovered = conn.execute(
            "SELECT batch, val FROM points ORDER BY id"
        ).fetchall()
        per_batch = conn.execute(
            "SELECT batch, count(*) FROM points GROUP BY batch ORDER BY batch"
        ).fetchall()
        batches = [b for b, _ in per_batch]
        assert batches == list(range(len(batches)))
        assert all(c == ROWS_PER_BATCH for _, c in per_batch)
        # Row-mode oracle: the same committed prefix, built fresh.
        oracle = minisql.connect()
        oracle.execute(
            "CREATE TABLE points "
            "(id INTEGER PRIMARY KEY, batch INTEGER, val REAL)"
        )
        for b in batches:
            oracle.executemany(
                "INSERT INTO points (batch, val) VALUES (?, ?)",
                [(b, float(i)) for i in range(ROWS_PER_BATCH)],
            )
        assert recovered == oracle.execute(
            "SELECT batch, val FROM points ORDER BY id"
        ).fetchall()
        oracle.close()
    finally:
        minisql.reset_shared_databases()


def test_no_fault_columnar_child_completes(tmp_path):
    archive = tmp_path / "archive.mdb"
    proc = _run_child(archive, "")
    assert proc.returncode == 0, proc.stderr[-800:]
    assert "COMPLETED" in proc.stdout
    conn = minisql.connect(str(archive))
    try:
        assert conn.execute(
            "PRAGMA columnar(points status)"
        ).fetchall() == [("points", 1)]
        assert conn.execute(
            "SELECT count(*) FROM points"
        ).fetchone() == (BATCHES * ROWS_PER_BATCH,)
    finally:
        minisql.reset_shared_databases()
