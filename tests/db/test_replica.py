"""WAL-shipped replication: bootstrap, tailing, idempotence, crashes.

File-based transport (:class:`FileWalSource`) keeps these tests
in-process and deterministic; the wire transport rides the same
``snapshot()``/``fetch()`` surface and is exercised end-to-end in
``tests/explorer/test_replication.py``.  The crash matrix spawns real
child processes killed with ``os._exit(137)`` at the replica's named
crash points and asserts a restarted replica converges to the primary.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.db import minisql
from repro.db.minisql.replica import (
    FileWalSource, Replica, ReplicationError, WalShipper,
)
from repro.db.minisql.wal import list_segments


@pytest.fixture
def archive(tmp_path):
    return tmp_path / "primary.mdb"


@pytest.fixture
def primary(archive):
    conn = minisql.connect(str(archive))
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    conn.executemany(
        "INSERT INTO t (v) VALUES (?)", [(i,) for i in range(50)]
    )
    conn.commit()
    yield conn
    conn.close()


def _replica(archive, **kw) -> Replica:
    return Replica(FileWalSource(archive), name=kw.pop("name", "r1"), **kw)


def _count(replica: Replica) -> int:
    from repro.db.minisql.executor import Executor
    from repro.db.minisql.parser import parse

    (stmt,) = parse("SELECT count(*) FROM t")
    return Executor(replica.database).execute(stmt).rows[0][0]


class TestBootstrapAndTail:
    def test_bootstrap_from_checkpoint(self, archive, primary):
        primary.execute("PRAGMA checkpoint")
        rep = _replica(archive)
        rep.catch_up(timeout=15)
        assert _count(rep) == 50
        assert rep.state == "streaming"

    def test_tail_new_commits(self, archive, primary):
        rep = _replica(archive)
        rep.catch_up(timeout=15)
        primary.execute("INSERT INTO t (v) VALUES (100)")
        primary.execute("UPDATE t SET v = -1 WHERE id = 1")
        primary.execute("DELETE FROM t WHERE id = 2")
        primary.commit()
        rep.catch_up(timeout=15)
        assert _count(rep) == 50  # +1 insert, -1 delete
        assert rep.applied_lsn == rep.primary_lsn

    def test_uncommitted_transaction_invisible(self, archive, primary):
        rep = _replica(archive)
        rep.catch_up(timeout=15)
        primary.execute("BEGIN")
        primary.execute("INSERT INTO t (v) VALUES (7)")
        rep.poll_once()
        assert _count(rep) == 50
        primary.commit()
        rep.catch_up(timeout=15)
        assert _count(rep) == 51

    def test_ddl_replicates(self, archive, primary):
        rep = _replica(archive)
        rep.catch_up(timeout=15)
        primary.execute("CREATE TABLE extra (a INTEGER)")
        primary.execute("INSERT INTO extra (a) VALUES (5)")
        primary.commit()
        rep.catch_up(timeout=15)
        assert "extra" in rep.database.tables

    def test_idempotent_re_replay(self, archive, primary):
        """Re-fetching from an older LSN must not double-apply: the
        LSN watermark skips every already-applied record."""
        rep = _replica(archive)
        rep.catch_up(timeout=15)
        before = _count(rep)
        source = FileWalSource(archive)
        reply = source.fetch(0)  # everything, from the beginning
        rep._apply(reply["records"])
        assert _count(rep) == before

    def test_lag_reporting(self, archive, primary):
        rep = _replica(archive)
        rep.catch_up(timeout=15)
        records, seconds = rep.replication_lag()
        assert records == 0 and seconds == 0.0
        status = rep.status()
        assert status["role"] == "replica"
        assert status["replication_lag_records"] == 0
        assert status["applied_lsn"] == rep.applied_lsn > 0


class TestResync:
    def test_checkpoint_truncation_forces_resync(self, archive, primary):
        rep = _replica(archive)
        rep.catch_up(timeout=15)
        # More commits, then a checkpoint: segments are truncated, so a
        # replica parked before the checkpoint LSN must re-bootstrap.
        primary.executemany(
            "INSERT INTO t (v) VALUES (?)", [(i,) for i in range(25)]
        )
        primary.commit()
        old_lsn = rep.applied_lsn
        primary.execute("PRAGMA checkpoint")
        reply = FileWalSource(archive).fetch(old_lsn)
        assert reply["resync"] is True
        rep.poll_once()  # observes resync
        assert rep.resyncs == 1
        rep.catch_up(timeout=15)
        assert _count(rep) == 75
        assert rep.applied_lsn >= old_lsn

    def test_caught_up_replica_survives_checkpoint(self, archive, primary):
        rep = _replica(archive)
        rep.catch_up(timeout=15)
        primary.execute("PRAGMA checkpoint")
        rep.catch_up(timeout=15)
        assert rep.resyncs == 0  # at the checkpoint LSN: no resync needed
        assert _count(rep) == 50


class TestTornSegment:
    def test_replica_holds_at_committed_prefix(self, archive, primary):
        """A torn tail in the primary's segment (as a crash leaves it)
        truncates the ship at the tear: the replica applies the intact
        prefix and keeps serving — no error, no corruption."""
        primary.execute("INSERT INTO t (v) VALUES (1000)")
        primary.commit()
        segments = list_segments(Path(archive))
        assert segments
        tail = segments[-1]
        data = tail.read_bytes()
        tail.write_bytes(data[: len(data) - 3])  # tear the last frame
        rep = _replica(archive)
        rep.poll_once()
        assert rep.state == "streaming"
        # The torn record (and anything after it) is not applied; all
        # intact committed records before it are.
        assert _count(rep) in (50, 51)
        assert rep.errors == 0


class TestWalShipper:
    def test_shipper_requires_wal(self):
        conn = minisql.connect(":memory:")
        with pytest.raises(ReplicationError):
            WalShipper(conn._database)
        conn.close()

    def test_fetch_frames_and_observe(self, archive, primary):
        shipper = WalShipper(primary._database)
        reply = shipper.fetch(0, replica_id="obs1")
        assert reply["resync"] is False
        assert reply["count"] > 0 and reply["clean"] is True
        status = shipper.status()
        assert status["role"] == "primary"
        assert "obs1" in status["replicas"]

    def test_fetch_limit_paginates(self, archive, primary):
        shipper = WalShipper(primary._database)
        reply = shipper.fetch(0, limit=2)
        assert reply["count"] == 2 and reply["more"] is True


# ---------------------------------------------------------------------------
# crash matrix: kill -9 the replica process at its named crash points
# ---------------------------------------------------------------------------

# Child: replay the archive as a replica, print progress markers.  The
# armed fault kills it mid-bootstrap or mid-apply with os._exit(137).
_CHILD = """
import sys
from repro.db.minisql.replica import FileWalSource, Replica

rep = Replica(FileWalSource(sys.argv[1]), name="crash-child")
rep.catch_up(timeout=30)
print("APPLIED", rep.applied_lsn, flush=True)
"""

REPLICA_CRASH_POINTS = [
    "replica.bootstrap.after",
    "replica.apply.before",
    "replica.apply.after",
]


def _run_child(archive: Path, spec: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["REPRO_FAULTS"] = spec
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", _CHILD, str(archive)],
        env=env, capture_output=True, text=True, timeout=120,
    )


@pytest.mark.parametrize("spec", REPLICA_CRASH_POINTS)
def test_replica_killed_then_restarted_converges(archive, primary, spec):
    proc = _run_child(archive, spec)
    assert proc.returncode == 137, (
        f"fault {spec} did not fire: rc={proc.returncode}\n"
        f"stdout={proc.stdout}\nstderr={proc.stderr}"
    )
    # The primary is untouched by a replica death; a fresh replica
    # bootstraps and converges to the exact primary state.
    rep = _replica(archive, name="after-crash")
    rep.catch_up(timeout=15)
    assert _count(rep) == 50
    assert rep.applied_lsn == rep.primary_lsn


def test_primary_killed_mid_ship(archive, primary):
    """Crash the *shipping* side mid-fetch: the armed crash point sits
    inside WalShipper.fetch, so a child process asked to self-ship dies
    exactly where a primary would.  The archive must recover to the
    committed state and ship cleanly afterwards."""
    child = """
import sys
from repro.db import minisql
from repro.db.minisql.replica import WalShipper

conn = minisql.connect(sys.argv[1])
WalShipper(conn._database).fetch(0)
print("SHIPPED", flush=True)
"""
    env = dict(os.environ)
    env["REPRO_FAULTS"] = "replica.ship.fetch"
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    primary.execute("PRAGMA checkpoint")  # give the child a clean open
    proc = subprocess.run(
        [sys.executable, "-c", child, str(archive)],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 137, proc.stderr
    rep = _replica(archive, name="after-primary-crash")
    rep.catch_up(timeout=15)
    assert _count(rep) == 50
