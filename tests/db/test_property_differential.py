"""Differential property tests: MiniSQL must agree with sqlite3.

The strongest possible statement of PerfDMF's engine-independence claim:
for randomly generated data and a family of portable queries, the pure
Python engine and sqlite return identical result sets.
"""

from __future__ import annotations

import math
import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import minisql

# Values that survive a round trip through both engines.
_values = st.one_of(
    st.none(),
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F),
        max_size=12,
    ),
)

_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        _values,
    ),
    min_size=0,
    max_size=40,
)


#: MiniSQL execution modes every property must hold under: the pure
#: interpreter, compiled row closures, and columnar vectorized batches.
MODES = ["interpreter", "compiled", "columnar"]


def _both(rows, mode="compiled"):
    """Load identical data into a fresh pair of engines."""
    ms = minisql.connect()
    sq = sqlite3.connect(":memory:")
    if mode == "interpreter":
        ms.execute("PRAGMA compile(off)")
    elif mode == "columnar":
        ms.execute("PRAGMA columnar(on)")  # new tables default to columnar
    ddl = "CREATE TABLE t (k INTEGER, v REAL, x TEXT)"
    ms.execute(ddl)
    sq.execute(ddl)
    ms.executemany("INSERT INTO t (k, v, x) VALUES (?, ?, ?)", rows)
    sq.executemany("INSERT INTO t (k, v, x) VALUES (?, ?, ?)", rows)
    return ms, sq


def _normalise(rows):
    out = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                if math.isclose(cell, round(cell)) and abs(cell) < 1e15:
                    cell = round(cell, 9)
                else:
                    cell = round(cell, 9)
            cells.append(cell)
        out.append(tuple(cells))
    return out


def _compare(ms, sq, sql, params=()):
    got = _normalise(ms.execute(sql, params).fetchall())
    want = _normalise(sq.execute(sql, params).fetchall())
    assert got == want, f"engines disagree on {sql!r}: {got} != {want}"


QUERIES = [
    "SELECT k, v, x FROM t ORDER BY k, v, x",
    "SELECT count(*) FROM t",
    "SELECT count(v), count(x) FROM t",
    "SELECT k, count(*) FROM t GROUP BY k ORDER BY k",
    "SELECT k, sum(v) FROM t GROUP BY k ORDER BY k",
    "SELECT min(v), max(v) FROM t",
    "SELECT k FROM t WHERE v > 0 ORDER BY k, v",
    "SELECT DISTINCT k FROM t ORDER BY k",
    "SELECT k, v FROM t WHERE k BETWEEN 2 AND 7 ORDER BY k, v",
    "SELECT k FROM t WHERE x IS NULL ORDER BY k",
    "SELECT k FROM t WHERE x IS NOT NULL ORDER BY k",
    "SELECT k + 1, v * 2 FROM t ORDER BY k, v",
    "SELECT k FROM t WHERE k IN (1, 3, 5) ORDER BY k",
    "SELECT CASE WHEN v > 0 THEN 'pos' ELSE 'neg' END, count(*) FROM t "
    "GROUP BY 1 ORDER BY 1",
    "SELECT k FROM t ORDER BY k LIMIT 5",
    "SELECT k FROM t ORDER BY k LIMIT 3 OFFSET 2",
    "SELECT k, count(*) c FROM t GROUP BY k HAVING c > 1 ORDER BY k",
    "SELECT k FROM t UNION SELECT k + 100 FROM t ORDER BY 1",
    "SELECT abs(k), round(v, 2) FROM t ORDER BY k, v",
]


@settings(max_examples=40, deadline=None)
@given(rows=_rows)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("sql", QUERIES)
def test_engines_agree(sql, mode, rows):
    ms, sq = _both(rows, mode)
    try:
        _compare(ms, sq, sql)
    finally:
        ms.close()
        sq.close()


@settings(max_examples=30, deadline=None)
@given(rows=_rows, threshold=st.floats(min_value=-10, max_value=10))
@pytest.mark.parametrize("mode", MODES)
def test_parameterised_filter_agrees(mode, rows, threshold):
    ms, sq = _both(rows, mode)
    try:
        _compare(
            ms, sq,
            "SELECT k, v FROM t WHERE v >= ? ORDER BY k, v",
            (threshold,),
        )
    finally:
        ms.close()
        sq.close()


@settings(max_examples=30, deadline=None)
@given(rows=_rows)
@pytest.mark.parametrize("mode", MODES)
def test_avg_agrees_within_float_noise(mode, rows):
    ms, sq = _both(rows, mode)
    try:
        got = ms.execute("SELECT avg(v) FROM t").fetchone()[0]
        want = sq.execute("SELECT avg(v) FROM t").fetchone()[0]
        if want is None:
            assert got is None
        else:
            assert got == pytest.approx(want, rel=1e-9, abs=1e-9)
    finally:
        ms.close()
        sq.close()


@settings(max_examples=25, deadline=None)
@given(rows=_rows)
@pytest.mark.parametrize("mode", MODES)
def test_update_then_state_agrees(mode, rows):
    ms, sq = _both(rows, mode)
    try:
        for conn in (ms, sq):
            conn.execute("UPDATE t SET v = v + 1 WHERE k < 5")
            conn.execute("DELETE FROM t WHERE k = 9")
        _compare(ms, sq, "SELECT k, v, x FROM t ORDER BY k, v, x")
    finally:
        ms.close()
        sq.close()


@settings(max_examples=25, deadline=None)
@given(rows=_rows)
@pytest.mark.parametrize("mode", MODES)
def test_join_agrees(mode, rows):
    ms, sq = _both(rows, mode)
    try:
        for conn in (ms, sq):
            conn.execute("CREATE TABLE names (k INTEGER, label TEXT)")
            conn.executemany(
                "INSERT INTO names VALUES (?, ?)",
                [(i, f"k{i}") for i in range(5)],
            )
        _compare(
            ms, sq,
            "SELECT n.label, count(*) FROM t JOIN names n ON n.k = t.k "
            "GROUP BY n.label ORDER BY n.label",
        )
        _compare(
            ms, sq,
            "SELECT n.label, t.v FROM names n LEFT JOIN t ON t.k = n.k "
            "ORDER BY n.label, t.v",
        )
    finally:
        ms.close()
        sq.close()


QUERIES_EXTENDED = [
    "SELECT k, v FROM t ORDER BY v DESC, k LIMIT 7",
    "SELECT x FROM t WHERE x LIKE 'a%' ORDER BY x",
    "SELECT k FROM t WHERE v NOT BETWEEN -10 AND 10 ORDER BY k, v",
    "SELECT k, max(v) - min(v) FROM t GROUP BY k ORDER BY k",
    "SELECT count(*) FROM t WHERE x IS NULL OR k < 3",
    "SELECT k * 2 + 1 FROM t WHERE NOT k = 4 ORDER BY 1",
    "SELECT DISTINCT k FROM t WHERE v <> 0 ORDER BY k DESC",
    "SELECT upper(x), length(x) FROM t WHERE x IS NOT NULL ORDER BY x",
]


@settings(max_examples=25, deadline=None)
@given(rows=_rows)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("sql", QUERIES_EXTENDED)
def test_engines_agree_extended(sql, mode, rows):
    ms, sq = _both(rows, mode)
    try:
        _compare(ms, sq, sql)
    finally:
        ms.close()
        sq.close()


@settings(max_examples=20, deadline=None)
@given(rows=_rows, low=st.integers(0, 5), high=st.integers(4, 9))
@pytest.mark.parametrize("mode", MODES)
def test_between_with_params_agrees(mode, rows, low, high):
    ms, sq = _both(rows, mode)
    try:
        _compare(
            ms, sq,
            "SELECT k, v FROM t WHERE k BETWEEN ? AND ? ORDER BY k, v",
            (low, high),
        )
    finally:
        ms.close()
        sq.close()
