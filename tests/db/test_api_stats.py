"""DBConnection.stats()/reset_stats() semantics across both backends,
through the pool, and into the process-global metrics registry."""

import pytest

from repro.db.api import connect
from repro.db.pool import ConnectionPool, PoolTimeout
from repro.obs.metrics import registry


@pytest.fixture(params=["sqlite", "minisql"])
def conn(request):
    c = connect(f"{request.param}://:memory:")
    c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)")
    c.executemany("INSERT INTO t (v) VALUES (?)", [(float(i),) for i in range(50)])
    yield c
    c.close()


class TestStatsMerge:
    def test_stats_returns_dict_on_both_backends(self, conn):
        conn.query("SELECT * FROM t")
        stats = conn.stats()
        assert isinstance(stats, dict)
        if conn.backend == "minisql":
            # The planner counters are merged in for minisql.
            assert stats.get("rows_scanned", 0) >= 50
        else:
            # sqlite has no planner counters; only ingest timings appear.
            assert stats == {}

    def test_ingest_stats_merged_and_override_free(self, conn):
        conn.ingest_stats = {"ingest_rows": 123, "ingest_parse_seconds": 0.5}
        stats = conn.stats()
        assert stats["ingest_rows"] == 123
        assert stats["ingest_parse_seconds"] == 0.5
        if conn.backend == "minisql":
            # Engine counters survive alongside the ingest timings.
            assert "rows_scanned" in stats

    def test_reset_clears_both_sources(self, conn):
        conn.query("SELECT * FROM t")
        conn.ingest_stats = {"ingest_rows": 9}
        conn.reset_stats()
        stats = conn.stats()
        assert "ingest_rows" not in stats
        if conn.backend == "minisql":
            assert stats.get("rows_scanned", 0) == 0

    def test_stats_publishes_db_gauges(self, conn):
        conn.ingest_stats = {"ingest_rows": 77}
        conn.stats()
        assert registry.gauge("db.ingest_rows").value == 77


class TestStatsThroughPool:
    def test_named_minisql_counters_survive_checkin(self):
        pool = ConnectionPool("minisql://pool-stats-test", size=2)
        with pool:
            with pool.connection() as c:
                c.execute("CREATE TABLE p (id INTEGER PRIMARY KEY, v REAL)")
                c.executemany(
                    "INSERT INTO p (v) VALUES (?)", [(float(i),) for i in range(20)]
                )
                c.query("SELECT * FROM p")
            # A named MiniSQL database is shared: a different pooled
            # connection sees the same engine counters.
            with pool.connection() as c:
                assert c.stats().get("rows_scanned", 0) >= 20
                c.execute("DROP TABLE p")

    def test_file_sqlite_round_trip(self, tmp_path):
        url = f"sqlite://{tmp_path}/pooled.db"
        with ConnectionPool(url, size=2) as pool:
            with pool.connection() as c:
                c.execute("CREATE TABLE p (id INTEGER PRIMARY KEY)")
                c.commit()
                c.ingest_stats = {"ingest_rows": 5}
                borrowed = c
            # LIFO pool: the next acquire returns the same object, so the
            # per-connection ingest_stats ride along.
            with pool.connection() as c:
                assert c is borrowed
                assert c.stats()["ingest_rows"] == 5
                c.reset_stats()
                assert c.stats() == {}

    def test_pool_metrics_accumulate(self):
        acquires = registry.counter("db.pool.acquires").value
        waits = registry.histogram("db.pool.acquire_wait_seconds").count
        with ConnectionPool("sqlite://:memory:", size=1) as pool:
            with pool.connection():
                pass
            with pool.connection():
                pass
        assert registry.counter("db.pool.acquires").value == acquires + 2
        assert registry.histogram("db.pool.acquire_wait_seconds").count == waits + 2

    def test_pool_timeout_counted(self):
        timeouts = registry.counter("db.pool.timeouts").value
        with ConnectionPool("sqlite://:memory:", size=1) as pool:
            held = pool.acquire()
            with pytest.raises(PoolTimeout):
                pool.acquire(timeout=0.01)
            pool.release(held)
        assert registry.counter("db.pool.timeouts").value == timeouts + 1
