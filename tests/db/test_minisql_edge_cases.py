"""MiniSQL edge cases collected during development."""

import pytest

from repro.db import minisql


@pytest.fixture(
    params=["on", "off", "columnar"],
    ids=["compile-on", "compile-off", "columnar"],
)
def conn(request):
    """Every edge case runs under the query compiler, the interpreter,
    and columnar storage with vectorized execution — the three paths
    must be indistinguishable."""
    c = minisql.connect()
    if request.param == "columnar":
        c.execute("PRAGMA compile(on)")
        c.execute("PRAGMA columnar(on)")  # new tables default to columnar
    else:
        c.execute(f"PRAGMA compile({request.param})")
    yield c
    c.close()


class TestNullSemantics:
    @pytest.fixture
    def t(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.execute("INSERT INTO t VALUES (1), (NULL), (3)")
        return conn

    def test_where_null_comparison_excludes(self, t):
        assert t.execute("SELECT x FROM t WHERE x > 0").fetchall() == [(1,), (3,)]

    def test_not_on_null_stays_null(self, t):
        rows = t.execute("SELECT x FROM t WHERE NOT (x > 0)").fetchall()
        assert rows == []  # NULL row filtered either way

    def test_null_in_in_list(self, t):
        rows = t.execute("SELECT x FROM t WHERE x IN (1, NULL)").fetchall()
        assert rows == [(1,)]

    def test_not_in_with_null_matches_nothing(self, t):
        rows = t.execute("SELECT x FROM t WHERE x NOT IN (1, NULL)").fetchall()
        assert rows == []

    def test_explicit_null_vs_default(self, conn):
        conn.execute("CREATE TABLE d (x INTEGER, y TEXT DEFAULT 'dft')")
        conn.execute("INSERT INTO d (x) VALUES (1)")          # omitted -> default
        conn.execute("INSERT INTO d (x, y) VALUES (2, NULL)")  # explicit NULL
        rows = conn.execute("SELECT x, y FROM d ORDER BY x").fetchall()
        assert rows == [(1, "dft"), (2, None)]

    def test_explicit_null_on_integer_pk_autoassigns(self, conn):
        conn.execute("CREATE TABLE p (id INTEGER PRIMARY KEY, v TEXT)")
        conn.execute("INSERT INTO p (id, v) VALUES (NULL, 'a')")
        assert conn.execute("SELECT id FROM p").fetchone() == (1,)

    def test_explicit_null_on_not_null_rejected(self, conn):
        conn.execute("CREATE TABLE n (x TEXT NOT NULL DEFAULT 'd')")
        with pytest.raises(minisql.IntegrityError):
            conn.execute("INSERT INTO n (x) VALUES (NULL)")


class TestIdentifierQuirks:
    def test_keyword_like_column_names(self, conn):
        conn.execute('CREATE TABLE k ("index" INTEGER, key INTEGER)')
        conn.execute('INSERT INTO k VALUES (1, 2)')
        assert conn.execute('SELECT "index", key FROM k').fetchone() == (1, 2)

    def test_case_insensitive_table_lookup(self, conn):
        conn.execute("CREATE TABLE MiXeD (x INTEGER)")
        conn.execute("INSERT INTO mixed VALUES (1)")
        assert conn.execute("SELECT X FROM MIXED").fetchone() == (1,)

    def test_quoted_identifier_with_space(self, conn):
        conn.execute('CREATE TABLE s ("my column" INTEGER)')
        conn.execute("INSERT INTO s VALUES (9)")
        assert conn.execute('SELECT "my column" FROM s').fetchone() == (9,)


class TestSubqueries:
    @pytest.fixture
    def rel(self, conn):
        conn.execute("CREATE TABLE a (id INTEGER PRIMARY KEY, tag TEXT)")
        conn.execute("CREATE TABLE b (a_id INTEGER, v REAL)")
        conn.execute("INSERT INTO a (tag) VALUES ('x'), ('y'), ('z')")
        conn.execute("INSERT INTO b VALUES (1, 1.0), (1, 2.0), (3, 9.0)")
        return conn

    def test_in_subquery(self, rel):
        rows = rel.execute(
            "SELECT tag FROM a WHERE id IN (SELECT a_id FROM b) ORDER BY tag"
        ).fetchall()
        assert rows == [("x",), ("z",)]

    def test_not_in_subquery(self, rel):
        rows = rel.execute(
            "SELECT tag FROM a WHERE id NOT IN (SELECT a_id FROM b)"
        ).fetchall()
        assert rows == [("y",)]

    def test_subquery_with_where(self, rel):
        rows = rel.execute(
            "SELECT tag FROM a WHERE id IN (SELECT a_id FROM b WHERE v > 5)"
        ).fetchall()
        assert rows == [("z",)]

    def test_subquery_in_delete(self, rel):
        rel.execute("DELETE FROM a WHERE id IN (SELECT a_id FROM b)")
        assert rel.execute("SELECT count(*) FROM a").fetchone() == (1,)

    def test_subquery_in_update(self, rel):
        rel.execute(
            "UPDATE a SET tag = 'hit' WHERE id IN (SELECT a_id FROM b)"
        )
        rows = rel.execute("SELECT tag FROM a ORDER BY id").fetchall()
        assert rows == [("hit",), ("y",), ("hit",)]

    def test_multi_column_subquery_rejected(self, rel):
        with pytest.raises(minisql.ProgrammingError, match="one column"):
            rel.execute("SELECT * FROM a WHERE id IN (SELECT a_id, v FROM b)")

    def test_statement_cache_not_corrupted_by_rewrite(self, rel):
        """Subquery materialisation must not mutate the cached AST."""
        sql = "SELECT count(*) FROM a WHERE id IN (SELECT a_id FROM b)"
        first = rel.execute(sql).fetchone()
        rel.execute("INSERT INTO b VALUES (2, 5.0)")
        second = rel.execute(sql).fetchone()
        assert first == (2,)
        assert second == (3,)  # re-evaluated, not frozen at first run


class TestAggregateEdgeCases:
    def test_group_by_null_groups_together(self, conn):
        conn.execute("CREATE TABLE g (k TEXT, v INTEGER)")
        conn.execute(
            "INSERT INTO g VALUES (NULL, 1), (NULL, 2), ('a', 3)"
        )
        rows = conn.execute(
            "SELECT k, sum(v) FROM g GROUP BY k ORDER BY k"
        ).fetchall()
        assert rows == [(None, 3), ("a", 3)]

    def test_having_without_group_by(self, conn):
        conn.execute("CREATE TABLE h (v INTEGER)")
        conn.execute("INSERT INTO h VALUES (1), (2)")
        assert conn.execute(
            "SELECT sum(v) FROM h HAVING sum(v) > 2"
        ).fetchall() == [(3,)]
        assert conn.execute(
            "SELECT sum(v) FROM h HAVING sum(v) > 10"
        ).fetchall() == []

    def test_aggregate_of_expression(self, conn):
        conn.execute("CREATE TABLE e (a INTEGER, b INTEGER)")
        conn.execute("INSERT INTO e VALUES (1, 2), (3, 4)")
        assert conn.execute("SELECT sum(a * b) FROM e").fetchone() == (14,)

    def test_expression_of_aggregates(self, conn):
        conn.execute("CREATE TABLE e (a INTEGER)")
        conn.execute("INSERT INTO e VALUES (2), (4)")
        assert conn.execute(
            "SELECT max(a) - min(a), sum(a) / count(a) FROM e"
        ).fetchone() == (2, 3)

    def test_group_concat(self, conn):
        conn.execute("CREATE TABLE c (k TEXT, v TEXT)")
        conn.execute("INSERT INTO c VALUES ('a','x'), ('a','y'), ('b','z')")
        rows = conn.execute(
            "SELECT k, group_concat(v) FROM c GROUP BY k ORDER BY k"
        ).fetchall()
        assert rows == [("a", "x,y"), ("b", "z")]


class TestLimitsAndOrdering:
    def test_limit_zero(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.execute("INSERT INTO t VALUES (1), (2)")
        assert conn.execute("SELECT x FROM t LIMIT 0").fetchall() == []

    def test_negative_limit_means_all(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.execute("INSERT INTO t VALUES (1), (2)")
        assert len(conn.execute("SELECT x FROM t LIMIT -1").fetchall()) == 2

    def test_limit_placeholder(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(10)])
        rows = conn.execute(
            "SELECT x FROM t ORDER BY x LIMIT ? OFFSET ?", (3, 4)
        ).fetchall()
        assert rows == [(4,), (5,), (6,)]

    def test_order_by_expression(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.execute("INSERT INTO t VALUES (1), (-5), (3)")
        rows = conn.execute("SELECT x FROM t ORDER BY abs(x)").fetchall()
        assert rows == [(1,), (3,), (-5,)]

    def test_mixed_type_ordering(self, conn):
        conn.execute("CREATE TABLE t (x NUMERIC)")
        conn.execute("INSERT INTO t VALUES (2), ('b'), (NULL), (1.5), ('a')")
        rows = [r[0] for r in conn.execute("SELECT x FROM t ORDER BY x")]
        assert rows == [None, 1.5, 2, "a", "b"]


class TestDDLTransactions:
    def test_create_table_rollback_releases_pk_index(self, conn):
        conn.execute("BEGIN")
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)")
        conn.rollback()
        # the implicit PK index must be gone too
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER)")
        conn.execute("INSERT INTO t (x) VALUES (1)")
        assert conn.execute("SELECT count(*) FROM t").fetchone() == (1,)

    def test_create_index_rollback(self, conn):
        conn.execute("CREATE TABLE t (x INTEGER)")
        conn.commit()
        conn.execute("BEGIN")
        conn.execute("CREATE INDEX idx_x ON t (x)")
        conn.rollback()
        conn.execute("CREATE INDEX idx_x ON t (x)")  # must not collide
        conn.commit()

    def test_drop_table_rollback_restores_indexes(self, conn):
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        conn.execute("CREATE INDEX idx_t ON t (id)")
        conn.execute("INSERT INTO t (id) VALUES (1)")
        conn.commit()
        conn.execute("BEGIN")
        conn.execute("DROP TABLE t")
        conn.rollback()
        # table and its registered indexes survive
        assert conn.execute("SELECT count(*) FROM t").fetchone() == (1,)
        with pytest.raises(minisql.OperationalError, match="already exists"):
            conn.execute("CREATE INDEX idx_t ON t (id)")

    def test_unique_rollback_releases_constraint_state(self, conn):
        conn.execute("BEGIN")
        conn.execute("CREATE TABLE u (x INTEGER UNIQUE)")
        conn.execute("INSERT INTO u VALUES (1)")
        conn.rollback()
        conn.execute("CREATE TABLE u (x INTEGER UNIQUE)")
        conn.execute("INSERT INTO u VALUES (1)")  # fresh constraint state
        assert conn.execute("SELECT count(*) FROM u").fetchone() == (1,)
