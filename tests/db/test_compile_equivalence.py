"""Compiled-vs-interpreted equivalence for the MiniSQL query compiler.

PR 5's contract is that ``PRAGMA compile on`` (closure compilation,
batched scans, projection pushdown) is an invisible optimisation: every
statement must return row-for-row identical results to the interpreter.
This module proves it three ways — replaying the full differential SQL
corpus both ways on MiniSQL alone, hammering hostile strings / NULL /
three-valued-logic expressions under both modes, and checking the
observability surface (PRAGMA compile status, EXPLAIN's compiled
column, the plan-cache stats counters).
"""

import math

import pytest

from repro.db import minisql
from tests.test_differential_sql import CORPUS, Err


def _normalise(rows):
    out = []
    for row in rows:
        out.append(tuple(
            round(cell, 9) if isinstance(cell, float) and math.isfinite(cell)
            else cell
            for cell in row
        ))
    return out


def _is_query(sql):
    head = sql.lstrip().upper()
    return head.startswith("SELECT") or head.startswith("EXPLAIN")


class TestCorpusBothWays:
    """Fuzz-ish sweep: every differential-corpus statement, both modes."""

    def test_corpus_rows_identical(self):
        compiled = minisql.connect()
        interpreted = minisql.connect()
        compiled.execute("PRAGMA compile(on)")
        interpreted.execute("PRAGMA compile(off)")
        pair = (compiled, interpreted)
        for position, entry in enumerate(CORPUS):
            if isinstance(entry, Err):
                for conn in pair:
                    with pytest.raises(minisql.IntegrityError):
                        conn.execute(entry.sql, entry.params)
                    conn.rollback()
                continue
            sql, params = entry
            results = []
            for conn in pair:
                cursor = conn.execute(sql, params)
                if _is_query(sql):
                    results.append(_normalise(cursor.fetchall()))
                else:
                    conn.commit()
                    results.append(None)
            assert results[0] == results[1], (
                f"statement #{position} diverged under compilation: {sql!r}\n"
                f"  compiled   : {results[0]!r}\n"
                f"  interpreted: {results[1]!r}"
            )
        compiled.close()
        interpreted.close()

    def test_repeated_execution_hits_plan_cache(self):
        """Round two over the statement cache must serve cached plans."""
        conn = minisql.connect()
        conn.execute("CREATE TABLE warm (x INTEGER)")
        conn.execute("INSERT INTO warm VALUES (1), (2)")
        conn.execute("SELECT x FROM warm WHERE x > 0")
        before = conn.stats()["plan_cache_hits"]
        conn.execute("SELECT x FROM warm WHERE x > 0")
        assert conn.stats()["plan_cache_hits"] == before + 1
        conn.close()


class TestHostileExpressions:
    """Hostile strings, NULLs and three-valued logic, both modes.

    One connection, pragma toggled between the two runs of each query:
    identical statement text, identical statement object, only the
    execution path differs.
    """

    QUERIES = [
        "SELECT x, x = 'O''Malley' FROM h ORDER BY id",
        "SELECT x FROM h WHERE x LIKE '%\\%' ORDER BY id",
        "SELECT x FROM h WHERE x LIKE '%_%' ORDER BY id",
        "SELECT x FROM h WHERE x LIKE 'line%' ORDER BY id",
        "SELECT id, x IS NULL, x IS NOT NULL FROM h ORDER BY id",
        "SELECT id, n + 1, n - 1, n * 2, n / 0, n % 0 FROM h ORDER BY id",
        "SELECT id, NOT (n > 1), n > 1 OR x IS NULL, n > 1 AND x IS NULL "
        "FROM h ORDER BY id",
        "SELECT id FROM h WHERE n IN (1, NULL) ORDER BY id",
        "SELECT id FROM h WHERE n NOT IN (1, NULL) ORDER BY id",
        "SELECT id FROM h WHERE n BETWEEN 0 AND 2 ORDER BY id",
        "SELECT id FROM h WHERE n NOT BETWEEN 0 AND 2 ORDER BY id",
        "SELECT id, CASE n WHEN 1 THEN 'one' WHEN NULL THEN 'null' "
        "ELSE 'other' END FROM h ORDER BY id",
        "SELECT id, CASE WHEN n IS NULL THEN 'null' WHEN n > 1 THEN 'big' "
        "END FROM h ORDER BY id",
        "SELECT id, CAST(n AS TEXT), CAST(x AS INTEGER) FROM h ORDER BY id",
        "SELECT id, upper(x), length(x), coalesce(x, 'dflt') FROM h ORDER BY id",
        "SELECT id, x || '/' || x FROM h ORDER BY id",
        "SELECT count(x), count(*), count(DISTINCT n) FROM h",
        "SELECT n, count(*) c FROM h GROUP BY n HAVING c >= 1 ORDER BY c, n",
        "SELECT -n FROM h WHERE n IS NOT NULL ORDER BY id",
        "SELECT id FROM h WHERE x = 'Ω≠ascii'",
    ]

    @pytest.fixture
    def conn(self):
        c = minisql.connect()
        c.execute("CREATE TABLE h (id INTEGER PRIMARY KEY, x TEXT, n INTEGER)")
        c.executemany(
            "INSERT INTO h (id, x, n) VALUES (?, ?, ?)",
            [
                (1, "O'Malley", 1),
                (2, "100%", 2),
                (3, "under_score", None),
                (4, None, 3),
                (5, "line\nbreak", 0),
                (6, "Ω≠ascii", -1),
                (7, "123", 123),   # numeric string: affinity coercion
                (8, "", 1),
            ],
        )
        yield c
        c.close()

    @pytest.mark.parametrize("sql", QUERIES)
    def test_same_rows_both_modes(self, conn, sql):
        conn.execute("PRAGMA compile(on)")
        compiled = conn.execute(sql).fetchall()
        conn.execute("PRAGMA compile(off)")
        interpreted = conn.execute(sql).fetchall()
        assert _normalise(compiled) == _normalise(interpreted)

    def test_error_parity_bad_column_in_order_by(self, conn):
        """Unknown ORDER BY column raises in both modes (rows exist)."""
        for mode in ("on", "off"):
            conn.execute(f"PRAGMA compile({mode})")
            with pytest.raises(minisql.ProgrammingError):
                conn.execute("SELECT x FROM h ORDER BY nope").fetchall()

    def test_error_parity_empty_table_bad_where_column(self, conn):
        """The interpreter only raises when a row binds; compiled
        execution must not turn that into an eager error."""
        conn.execute("CREATE TABLE empty_t (a INTEGER)")
        for mode in ("on", "off"):
            conn.execute(f"PRAGMA compile({mode})")
            rows = conn.execute("SELECT a FROM empty_t WHERE nope = 1").fetchall()
            assert rows == []


class TestPragmaSurface:
    @pytest.fixture
    def conn(self):
        c = minisql.connect()
        c.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        c.execute("INSERT INTO t VALUES (1, 2), (3, 4)")
        yield c
        c.close()

    def test_status_reports_counters(self, conn):
        conn.execute("SELECT a FROM t WHERE b > 0")
        rows = dict(conn.execute("PRAGMA compile(status)").fetchall())
        assert rows["enabled"] == 1
        assert rows["plan_cache_misses"] >= 1
        conn.execute("PRAGMA compile(off)")
        rows = dict(conn.execute("PRAGMA compile(status)").fetchall())
        assert rows["enabled"] == 0

    def test_off_stops_compiling(self, conn):
        conn.execute("PRAGMA compile(off)")
        before = conn.stats()["plan_cache_misses"]
        conn.execute("SELECT a FROM t WHERE b > 0").fetchall()
        assert conn.stats()["plan_cache_misses"] == before

    def test_bad_argument_raises(self, conn):
        with pytest.raises(minisql.ProgrammingError):
            conn.execute("PRAGMA compile(sideways)")

    def test_fallback_counter_charges_interpreted_sections(self, conn):
        # Unknown functions raise per row in the interpreter, so the
        # compiler refuses the projection; over an empty table that
        # means zero rows, no error, and one recorded fallback.
        conn.execute("CREATE TABLE s (a INTEGER)")
        before = conn.stats()["compile_fallbacks"]
        rows = conn.execute("SELECT nosuchfn(a) FROM s").fetchall()
        assert rows == []
        assert conn.stats()["compile_fallbacks"] > before


class TestExplainCompiledColumn:
    @pytest.fixture
    def conn(self):
        c = minisql.connect()
        c.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        c.execute("CREATE TABLE u (a INTEGER, c INTEGER)")
        c.execute("INSERT INTO t VALUES (1, 2), (3, 4)")
        c.execute("INSERT INTO u VALUES (1, 10), (3, 30)")
        yield c
        c.close()

    def test_plain_explain_has_compiled_column(self, conn):
        cursor = conn.execute("EXPLAIN SELECT a FROM t WHERE b > 1 ORDER BY a")
        assert [d[0] for d in cursor.description] == [
            "id", "detail", "compiled", "vectorized",
        ]
        flags = {row[1]: row[2] for row in cursor.fetchall()}
        assert flags["SCAN t"] == "yes"
        assert flags["ORDER BY (sort)"] == "yes"

    def test_explain_analyze_reports_per_step_compiled(self, conn):
        cursor = conn.execute(
            "EXPLAIN ANALYZE SELECT t.a, u.c FROM t JOIN u ON t.a = u.a "
            "WHERE t.b > 1 GROUP BY t.a ORDER BY t.a"
        )
        rows = cursor.fetchall()
        flags = {row[1]: row[4] for row in rows}
        assert flags["SCAN t"] == "yes"
        assert flags["HASH JOIN u (INNER)"] == "yes"
        assert flags["WHERE filter"] == "yes"
        assert flags["GROUP BY (hash aggregation)"] == "yes"
        assert flags["RESULT"] is None

    def test_compile_off_reports_no(self, conn):
        conn.execute("PRAGMA compile(off)")
        cursor = conn.execute("EXPLAIN SELECT a FROM t WHERE b > 1")
        assert all(row[2] == "no" for row in cursor.fetchall())

    def test_uncompilable_where_reports_no(self, conn):
        cursor = conn.execute(
            "EXPLAIN ANALYZE SELECT a FROM t WHERE a IN (SELECT a FROM u)"
        )
        flags = {row[1]: row[4] for row in cursor.fetchall()}
        assert flags["WHERE filter"] == "no"
