"""Differential harness: sharded scatter-gather vs single-process oracle.

The shard splitter's core promise is that routing a SELECT through N
shard fragments plus a gather merge is *observationally identical* to
running it single-process — same rows in the same order, same errors at
the same lifecycle point — or it refuses and falls back.  This suite
replays the full conformance corpus at shards=1/2/4 against an
unsharded oracle connection, then pins down the individual merge rules
(AVG, stddev, group_concat, DISTINCT, top-N) with hand-built cases.

Floats are normalised to 9 decimal places (same as the cross-backend
differential suite): per-shard partial sums and Chan-merged Welford
moments may differ from the sequential fold in the last ulp, which is
inherent to reordering float additions, not a correctness bug.
"""

from __future__ import annotations

import pytest

from repro.db import minisql
from repro.obs.metrics import registry as _metrics
from tests.test_differential_sql import CORPUS, Err, _normalise

SHARD_COUNTS = (1, 2, 4)


def _connect(nshards=None):
    conn = minisql.connect()
    if nshards is not None:
        conn.execute(f"PRAGMA shards({nshards})")
    return conn


def _outcome(conn, sql, params):
    """One statement's observable behaviour, as a comparable value."""
    try:
        cursor = conn.execute(sql, params)
    except Exception as exc:
        conn.rollback()
        return ("error@execute", type(exc).__name__, str(exc))
    if sql.lstrip().upper().startswith("SELECT"):
        try:
            rows = cursor.fetchall()
        except Exception as exc:
            conn.rollback()
            return ("error@fetch", type(exc).__name__, str(exc))
        return ("rows", _normalise(rows))
    conn.commit()
    return ("ok", cursor.rowcount)


@pytest.fixture
def fleet():
    conns = {"oracle": _connect()}
    for n in SHARD_COUNTS:
        conns[f"shards{n}"] = _connect(n)
    yield conns
    for conn in conns.values():
        conn.close()


class TestCorpusDifferential:
    def test_corpus_no_divergence(self, fleet):
        """Replay the conformance corpus at every shard count."""
        for position, entry in enumerate(CORPUS):
            if isinstance(entry, Err):
                sql, params = entry.sql, entry.params
            else:
                sql, params = entry
            outcomes = {
                mode: _outcome(conn, sql, params)
                for mode, conn in fleet.items()
            }
            distinct = set(map(repr, outcomes.values()))
            assert len(distinct) == 1, (
                f"statement #{position} diverged: {sql!r}\n"
                + "\n".join(f"  {m}: {o!r}" for m, o in outcomes.items())
            )

    def test_fallback_accounting(self, fleet):
        """Routed and refused statements are both counted.

        The corpus contains joins and subqueries the splitter must fall
        back on, and plenty of single-table statements it must route —
        zero in either counter would mean the shard layer silently
        disengaged (vacuous agreement).
        """
        before = _metrics.counter("minisql.shard.fallbacks").value
        for entry in CORPUS:
            if isinstance(entry, Err):
                sql, params = entry.sql, entry.params
            else:
                sql, params = entry
            for conn in fleet.values():
                _outcome(conn, sql, params)
        stats = fleet["shards4"].stats()
        assert stats["shard_queries"] > 0
        assert stats["shard_fallbacks"] > 0
        assert _metrics.counter("minisql.shard.fallbacks").value > before
        # shards(1) must not scatter anything: single-shard execution
        # routes straight through the primary.
        assert fleet["shards1"].stats()["shard_queries"] == 0


@pytest.fixture
def pair():
    oracle = _connect()
    sharded = _connect(3)
    for conn in (oracle, sharded):
        conn.execute("CREATE TABLE t (g TEXT, x REAL, y INTEGER)")
        conn.executemany(
            "INSERT INTO t (g, x, y) VALUES (?, ?, ?)",
            [(chr(65 + i % 4), float(i % 23) * 1.25, i) for i in range(200)],
        )
        conn.execute("INSERT INTO t (g, x, y) VALUES ('A', NULL, NULL)")
        conn.commit()
    yield oracle, sharded
    oracle.close()
    sharded.close()


def _both(pair, sql, params=()):
    oracle, sharded = pair
    expected = _normalise(oracle.execute(sql, params).fetchall())
    actual = _normalise(sharded.execute(sql, params).fetchall())
    assert actual == expected, sql
    return actual


class TestMergeCorrectness:
    """Hand-picked cases for each partial-aggregation merge rule."""

    def test_avg_sum_count_merge(self, pair):
        _both(pair, "SELECT g, avg(x), sum(x), count(x), count(*) "
                    "FROM t GROUP BY g ORDER BY g")

    def test_avg_all_null_group(self, pair):
        for conn in pair:
            conn.execute("INSERT INTO t (g, x, y) VALUES ('Z', NULL, 1)")
            conn.commit()
        rows = _both(pair, "SELECT g, avg(x) FROM t GROUP BY g ORDER BY g")
        assert rows[-1] == ("Z", None)

    def test_count_empty_relation_is_zero(self, pair):
        rows = _both(pair, "SELECT count(*), count(x), sum(x), avg(x) "
                           "FROM t WHERE y < -1")
        assert rows == [(0, 0, None, None)]

    def test_welford_stddev_variance(self, pair):
        _both(pair, "SELECT g, stddev(x), variance(x) "
                    "FROM t GROUP BY g ORDER BY g")
        _both(pair, "SELECT stddev(y), variance(y) FROM t")

    def test_stddev_single_row_group_is_null(self, pair):
        for conn in pair:
            conn.execute("INSERT INTO t (g, x, y) VALUES ('Q', 5.0, 2)")
            conn.commit()
        rows = _both(pair, "SELECT g, stddev(x) FROM t GROUP BY g ORDER BY g")
        assert ("Q", None) in rows

    def test_group_concat_slab_order(self, pair):
        # Exactness depends on contiguous slab partitioning: the merge
        # concatenates shard partials in shard order = scan order.
        _both(pair, "SELECT g, group_concat(y) FROM t GROUP BY g ORDER BY g")
        _both(pair, "SELECT group_concat(g) FROM t WHERE y < 10")

    def test_distinct_aggregates(self, pair):
        _both(pair, "SELECT g, count(DISTINCT y % 7) FROM t "
                    "GROUP BY g ORDER BY g")
        _both(pair, "SELECT count(DISTINCT g), count(*), min(y), max(y) "
                    "FROM t")
        _both(pair, "SELECT count(DISTINCT g) FROM t WHERE y < -1")

    def test_distinct_mix_falls_back(self, pair):
        _oracle, sharded = pair
        before = sharded.stats()["shard_fallbacks"]
        # group_concat alongside DISTINCT would be re-folded by the
        # super-grouping — must run single-process.
        _both(pair, "SELECT g, group_concat(y), count(DISTINCT y % 3) "
                    "FROM t GROUP BY g ORDER BY g")
        assert sharded.stats()["shard_fallbacks"] == before + 1

    def test_top_n_merge(self, pair):
        _both(pair, "SELECT y, x FROM t WHERE x IS NOT NULL "
                    "ORDER BY x DESC, y LIMIT 7")
        _both(pair, "SELECT y FROM t ORDER BY y LIMIT 5 OFFSET 190")
        # Ties must resolve by stable scan order, exactly as the oracle.
        _both(pair, "SELECT g, y FROM t ORDER BY g LIMIT 9")

    def test_distinct_with_order_by(self, pair):
        # Per-shard dedup is disabled under ORDER BY (first-in-sorted
        # vs first-in-scan duplicate divergence); gather dedups.
        _both(pair, "SELECT DISTINCT g FROM t ORDER BY g DESC")
        _both(pair, "SELECT DISTINCT x FROM t WHERE x IS NOT NULL "
                    "ORDER BY x LIMIT 4")

    def test_having_and_alias_order(self, pair):
        _both(pair, "SELECT g, avg(x) a FROM t GROUP BY g "
                    "HAVING count(*) > 10 ORDER BY a DESC")
        _both(pair, "SELECT g, sum(y) s FROM t GROUP BY g ORDER BY 2 DESC")

    def test_total_merge(self, pair):
        rows = _both(pair, "SELECT total(x) FROM t WHERE y < -1")
        assert rows == [(0.0,)]

    def test_errors_identical(self, pair):
        oracle, sharded = pair
        for sql in (
            "SELECT nosuch FROM t",
            "SELECT g FROM t ORDER BY 99",
            "SELECT g, count(*) FROM t GROUP BY 99",
        ):
            outcomes = []
            for conn in pair:
                try:
                    conn.execute(sql).fetchall()
                    outcomes.append(("ok",))
                except Exception as exc:
                    outcomes.append((type(exc).__name__, str(exc)))
            assert outcomes[0] == outcomes[1], sql


class TestPoolPath:
    def test_forced_pool_matches_serial(self, pair):
        _oracle, sharded = pair
        sharded.execute("PRAGMA shard_parallel(on)")
        _both(pair, "SELECT g, count(*), sum(x) FROM t GROUP BY g ORDER BY g")
        _both(pair, "SELECT y FROM t ORDER BY y DESC LIMIT 3")
        stats = sharded.stats()
        if stats["shard_pool_queries"] == 0:
            pytest.skip("fork start method unavailable: pool disabled")
        assert stats["shard_pool_queries"] >= 2

    def test_pool_query_error_propagates(self, pair):
        _oracle, sharded = pair
        sharded.execute("PRAGMA shard_parallel(on)")
        with pytest.raises(minisql.MiniSQLError):
            sharded.execute("SELECT nosuch FROM t").fetchall()
        # The pool retries serially after a worker error; results after
        # the failure must still be correct.
        _both(pair, "SELECT count(*) FROM t")


class TestPoolTelemetry:
    """The observability contract of the forked scatter path: EXPLAIN
    ANALYZE shard rows carry each worker's *actual* wall time, and the
    workers' fragment spans come home to the coordinator's tracer."""

    def _force_pool(self, sharded):
        sharded.execute("PRAGMA shard_parallel(on)")
        sharded.execute("SELECT g, count(*) FROM t GROUP BY g").fetchall()
        if sharded.stats()["shard_pool_queries"] == 0:
            pytest.skip("fork start method unavailable: pool disabled")

    def test_explain_analyze_reports_worker_wall_times(self, pair):
        _oracle, sharded = pair
        self._force_pool(sharded)
        rows = sharded.execute(
            "EXPLAIN ANALYZE SELECT g, sum(x) FROM t GROUP BY g"
        ).fetchall()
        shard_rows = [r for r in rows if r[1].startswith("SHARD ")]
        assert len(shard_rows) == 3
        for row in shard_rows:
            # rows produced and a per-worker timing, measured inside the
            # worker process rather than around the whole scatter.
            assert row[2] >= 1
            assert row[3] is not None and row[3] >= 0

    def test_fragment_spans_adopted_from_workers(self, pair):
        import os

        from repro.obs.trace import tracer

        _oracle, sharded = pair
        self._force_pool(sharded)
        tracer.enable()
        tracer.clear()
        try:
            sharded.execute(
                "SELECT g, count(*) FROM t GROUP BY g"
            ).fetchall()
            spans = tracer.finished()
        finally:
            tracer.disable()
            tracer.clear()
        scatters = [s for s in spans if s["name"] == "minisql.shard.scatter"]
        fragments = [s for s in spans
                     if s["name"] == "minisql.shard.fragment"]
        assert len(scatters) == 1
        assert len(fragments) == 3
        assert sorted(f["attributes"]["shard"] for f in fragments) == [0, 1, 2]
        scatter = scatters[0]
        for fragment in fragments:
            # Recorded in the worker process, parented under the
            # coordinator's scatter span in one cross-process timeline.
            assert fragment["pid"] != os.getpid()
            assert fragment["trace_id"] == scatter["trace_id"]
            assert fragment["parent_id"] == scatter["span_id"]
            assert fragment["duration"] >= 0


class TestExplainIntegration:
    def test_explain_shows_shard_plan(self, pair):
        _oracle, sharded = pair
        rows = sharded.execute(
            "EXPLAIN SELECT g, count(*) FROM t GROUP BY g"
        ).fetchall()
        details = [r[1] for r in rows]
        assert any(d.startswith("SCATTER t INTO 3") for d in details)
        assert sum(1 for d in details if d.startswith("SHARD ")) == 3
        assert any(d.startswith("GATHER (partial-aggregate merge)")
                   for d in details)

    def test_explain_analyze_per_shard_rows(self, pair):
        _oracle, sharded = pair
        rows = sharded.execute(
            "EXPLAIN ANALYZE SELECT g, count(*) FROM t GROUP BY g"
        ).fetchall()
        shard_rows = [r for r in rows if r[1].startswith("SHARD ")]
        assert len(shard_rows) == 3
        # Every shard produced at least one partial group and a timing.
        for row in shard_rows:
            assert row[2] >= 1 and row[3] is not None
        gather = [r for r in rows if r[1].startswith("GATHER")][0]
        assert gather[2] == 4  # four groups A-D

    def test_explain_fallback_shows_primary_plan(self, pair):
        _oracle, sharded = pair
        rows = sharded.execute(
            "EXPLAIN SELECT a.g FROM t a, t b WHERE a.y = b.y"
        ).fetchall()
        details = [r[1] for r in rows]
        assert not any("SCATTER" in d for d in details)


class TestShardLifecycle:
    def test_shards_off_and_reshard(self, pair):
        _oracle, sharded = pair
        _both(pair, "SELECT count(*) FROM t")
        sharded.execute("PRAGMA shards(off)")
        assert sharded.execute("PRAGMA shards").fetchall() == [("enabled", 0)]
        sharded.execute("PRAGMA shards(2)")
        _both(pair, "SELECT g, sum(y) FROM t GROUP BY g ORDER BY g")

    def test_dml_invalidates_derived_shards(self, pair):
        oracle, sharded = pair
        _both(pair, "SELECT sum(y) FROM t")
        for conn in pair:
            conn.execute("UPDATE t SET y = y + 1000 WHERE g = 'A'")
            conn.execute("DELETE FROM t WHERE g = 'B' AND y % 2 = 0")
            conn.execute("INSERT INTO t (g, x, y) VALUES ('E', 1.5, -5)")
            conn.commit()
        _both(pair, "SELECT g, count(*), sum(y) FROM t GROUP BY g ORDER BY g")

    def test_index_bypass(self, pair):
        _oracle, sharded = pair
        for conn in pair:
            conn.execute("CREATE INDEX idx_y ON t (y) USING BTREE")
            conn.commit()
        before = sharded.stats()["shard_bypasses"]
        # Equality probe on an indexed column: the primary's index beats
        # four shard scans, so the router steps aside.
        _both(pair, "SELECT g FROM t WHERE y = 42")
        assert sharded.stats()["shard_bypasses"] == before + 1

    def test_reconfigure_rejected_in_transaction(self):
        conn = _connect()
        conn.execute("CREATE TABLE r (a INTEGER)")
        conn.execute("INSERT INTO r (a) VALUES (1)")
        with pytest.raises(minisql.MiniSQLError):
            conn.execute("PRAGMA shards(2)")
        conn.commit()
        conn.execute("PRAGMA shards(2)")
        conn.close()


_ROWS = [(i, float(i) * 0.5) for i in range(400)]


class TestShardCrashSafety:
    """Kill one shard writer mid-bulk-load; every shard must roll back.

    The fault dictionary is inherited by forked ingest workers, so
    arming ``shard.ingest.append.<k>`` here kills exactly worker *k*
    with ``os._exit(137)`` while its siblings may already have
    committed their slabs — the interesting torn state.
    """

    @pytest.fixture(autouse=True)
    def _fresh(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        from repro.testing import faults

        faults.disarm_all()
        yield
        faults.disarm_all()
        minisql.reset_shared_databases()

    def _open(self, tmp_path, nshards=4):
        conn = minisql.connect(str(tmp_path / "arch.mdb"))
        conn.execute(f"PRAGMA shards({nshards})")
        conn.execute("CREATE TABLE m (a INTEGER, b REAL)")
        conn.commit()
        mgr = conn._database.shard_mgr
        assert mgr is not None
        return conn, mgr

    def test_worker_crash_rolls_back_every_shard(self, tmp_path):
        from repro.testing import faults

        conn, mgr = self._open(tmp_path)
        assert mgr.parallel_ingest("m", ("a", "b"), _ROWS)
        baseline = sorted(conn.execute("SELECT a, b FROM m").fetchall())
        assert len(baseline) == len(_ROWS)
        watermarks = list(mgr.resident["m"])

        faults.arm("shard.ingest.append.2")
        more = [(i + 1000, -1.0) for i in range(400)]
        assert mgr.parallel_ingest("m", ("a", "b"), more) is False

        # Coordinator rollback: all four shards trimmed back to their
        # pre-ingest watermarks, including the ones that committed.
        assert mgr.resident["m"] == watermarks
        rows = sorted(conn.execute("SELECT a, b FROM m").fetchall())
        assert rows == baseline
        assert conn.execute("SELECT count(*) FROM m WHERE b = -1.0"
                            ).fetchall() == [(0,)]
        conn.close()

    def test_handle_falls_back_to_single_writer_after_crash(self, tmp_path):
        from repro.testing import faults

        conn, mgr = self._open(tmp_path)
        assert mgr.parallel_ingest("m", ("a", "b"), _ROWS)

        faults.arm("shard.ingest.commit.1")
        handle = mgr.ingest_handle("m", ("a", "b"))
        assert handle is not None
        more = [(i + 1000, 2.0) for i in range(100)]
        handle.add_rows(more)
        assert handle.flush(conn) is False  # parallel leg crashed

        expected = sorted(_ROWS + more)
        assert sorted(conn.execute("SELECT a, b FROM m").fetchall()) \
            == expected
        conn.close()

    def test_pending_marker_recovery_on_reattach(self, tmp_path):
        """Coordinator death between worker commits and the meta update:
        simulated by re-arming the pending marker and planting extra
        committed rows in one shard, then reattaching the archive."""
        import json

        conn, mgr = self._open(tmp_path)
        assert mgr.parallel_ingest("m", ("a", "b"), _ROWS)
        baseline = sorted(conn.execute("SELECT a, b FROM m").fetchall())
        watermarks = list(mgr.resident["m"])
        shard_dir = mgr.directory
        conn.close()
        minisql.reset_shared_databases()

        junk = minisql.connect(str(shard_dir / "shard-1.mdb"))
        junk.executemany(
            "INSERT INTO m (a, b) VALUES (?, ?)",
            [(9000 + i, -7.0) for i in range(37)],
        )
        junk.commit()
        junk.close()
        minisql.reset_shared_databases()

        meta_path = shard_dir / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["pending"] = {"op": "ingest", "table": "m",
                           "counts": watermarks}
        meta_path.write_text(json.dumps(meta))

        conn = minisql.connect(str(tmp_path / "arch.mdb"))
        assert sorted(conn.execute("SELECT a, b FROM m").fetchall()) \
            == baseline
        assert conn.execute("SELECT count(*) FROM m WHERE b = -7.0"
                            ).fetchall() == [(0,)]
        # The marker is consumed: recovery must not re-trim forever.
        assert json.loads(meta_path.read_text())["pending"] is None
        conn.close()
