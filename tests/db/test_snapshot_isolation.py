"""MVCC snapshot reads: consistency, non-blocking, COW behaviour.

The acceptance bar for ISSUE 9's snapshot tentpole: a reader pinned to
a snapshot never observes a torn state (half of a concurrent
transaction), never blocks on an active writer, and never stalls one.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.db import minisql

NAME = "snapshot_test_db"


@pytest.fixture
def conn():
    connection = minisql.connect(NAME)
    yield connection
    connection.close()


@pytest.fixture
def reader():
    connection = minisql.connect(NAME)
    yield connection
    connection.close()


def _seed(conn, rows=10, columnar=False):
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    if columnar:
        conn.execute("PRAGMA columnar(t on)")
    conn.executemany(
        "INSERT INTO t (v) VALUES (?)", [(i,) for i in range(rows)]
    )
    conn.commit()


class TestPragma:
    def test_off_by_default(self, conn):
        rows = conn.execute("PRAGMA snapshot_isolation(status)").fetchall()
        assert ("enabled", 0) in rows

    def test_on_off_roundtrip(self, conn):
        conn.execute("PRAGMA snapshot_isolation(on)")
        rows = dict(conn.execute("PRAGMA snapshot_isolation(status)").fetchall())
        assert rows["enabled"] == 1
        assert rows["pinned"] in (0, 1, True, False)
        conn.execute("PRAGMA snapshot_isolation(off)")
        rows = dict(conn.execute("PRAGMA snapshot_isolation(status)").fetchall())
        assert rows["enabled"] == 0

    def test_bad_argument_rejected(self, conn):
        with pytest.raises(minisql.ProgrammingError):
            conn.execute("PRAGMA snapshot_isolation(sideways)")


class TestSnapshotVisibility:
    def test_committed_rows_visible(self, conn, reader):
        _seed(conn)
        conn.execute("PRAGMA snapshot_isolation(on)")
        assert reader.execute("SELECT count(*) FROM t").fetchone() == (10,)

    def test_uncommitted_writes_invisible_and_non_blocking(self, conn, reader):
        """The headline MVCC property: while a writer transaction is
        open, a snapshot read returns the previous committed state —
        promptly, without waiting for the writer."""
        _seed(conn)
        conn.execute("PRAGMA snapshot_isolation(on)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t (v) VALUES (999)")
        started = time.monotonic()
        count = reader.execute("SELECT count(*) FROM t").fetchone()[0]
        elapsed = time.monotonic() - started
        conn.rollback()
        assert count == 10  # the uncommitted insert is invisible
        assert elapsed < 2.0  # and the read never waited on the writer

    def test_commit_becomes_visible(self, conn, reader):
        _seed(conn)
        conn.execute("PRAGMA snapshot_isolation(on)")
        conn.execute("INSERT INTO t (v) VALUES (42)")
        conn.commit()
        assert reader.execute("SELECT count(*) FROM t").fetchone() == (11,)

    def test_transaction_reads_its_own_writes(self, conn):
        """Explicit transactions bypass the snapshot: a writer must see
        its own uncommitted rows."""
        _seed(conn)
        conn.execute("PRAGMA snapshot_isolation(on)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t (v) VALUES (999)")
        assert conn.execute("SELECT count(*) FROM t").fetchone() == (11,)
        conn.rollback()

    def test_ddl_visible_after_commit(self, conn, reader):
        _seed(conn)
        conn.execute("PRAGMA snapshot_isolation(on)")
        reader.execute("SELECT * FROM t").fetchall()  # pin pre-DDL snapshot
        conn.execute("ALTER TABLE t ADD COLUMN extra INTEGER")
        conn.commit()
        row = reader.execute("SELECT extra FROM t WHERE id = 1").fetchone()
        assert row == (None,)

    def test_columnar_table_snapshot(self, conn, reader):
        _seed(conn, columnar=True)
        conn.execute("PRAGMA snapshot_isolation(on)")
        assert reader.execute(
            "SELECT sum(v) FROM t"
        ).fetchone() == (sum(range(10)),)
        conn.execute("UPDATE t SET v = v + 100")
        conn.commit()
        assert reader.execute(
            "SELECT sum(v) FROM t"
        ).fetchone() == (sum(range(10)) + 1000,)


class TestNoTornReads:
    def test_concurrent_writer_never_tears_a_read(self, conn, reader):
        """Writer moves value between two rows inside transactions so
        the sum is invariant; every snapshot read must see the
        invariant hold — a torn read (one row updated, the other not)
        would break it."""
        conn.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)")
        conn.execute("INSERT INTO acct (bal) VALUES (500)")
        conn.execute("INSERT INTO acct (bal) VALUES (500)")
        conn.commit()
        conn.execute("PRAGMA snapshot_isolation(on)")

        stop = threading.Event()
        torn: list[int] = []

        def writer():
            while not stop.is_set():
                conn.execute("BEGIN")
                conn.execute("UPDATE acct SET bal = bal - 10 WHERE id = 1")
                conn.execute("UPDATE acct SET bal = bal + 10 WHERE id = 2")
                conn.commit()

        def read_loop():
            while not stop.is_set():
                total = reader.execute(
                    "SELECT sum(bal) FROM acct"
                ).fetchone()[0]
                if total != 1000:
                    torn.append(total)
                    return

        wt = threading.Thread(target=writer)
        rt = threading.Thread(target=read_loop)
        wt.start(); rt.start()
        time.sleep(1.0)
        stop.set()
        wt.join(timeout=10); rt.join(timeout=10)
        assert torn == [], f"torn reads observed: {torn[:5]}"

    def test_writer_not_stalled_by_reader_storm(self, conn, reader):
        """Snapshot reads must not hold the writer lock: a storm of
        concurrent readers cannot starve commit latency."""
        _seed(conn, rows=200)
        conn.execute("PRAGMA snapshot_isolation(on)")
        stop = threading.Event()

        def read_loop():
            local = minisql.connect(NAME)
            try:
                while not stop.is_set():
                    local.execute("SELECT sum(v) FROM t").fetchone()
            finally:
                local.close()

        threads = [threading.Thread(target=read_loop) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            started = time.monotonic()
            for i in range(20):
                conn.execute("INSERT INTO t (v) VALUES (?)", (i,))
                conn.commit()
            elapsed = time.monotonic() - started
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert elapsed < 10.0, f"writer starved: 20 commits took {elapsed:.1f}s"


class TestCowMechanics:
    def test_unchanged_tables_not_recloned(self, conn):
        conn.execute("CREATE TABLE a (x INTEGER)")
        conn.execute("CREATE TABLE b (y INTEGER)")
        conn.execute("INSERT INTO a (x) VALUES (1)")
        conn.execute("INSERT INTO b (y) VALUES (1)")
        conn.commit()
        conn.execute("PRAGMA snapshot_isolation(on)")
        conn.execute("SELECT * FROM a").fetchall()
        clones_before = conn.stats()["snapshot_table_clones"]
        # Mutate only `a`: the refresh may re-clone `a` but must reuse
        # the cached clone of `b`.
        conn.execute("INSERT INTO a (x) VALUES (2)")
        conn.commit()
        conn.execute("SELECT * FROM a").fetchall()
        delta = conn.stats()["snapshot_table_clones"] - clones_before
        assert delta == 1, f"expected exactly 1 re-clone, saw {delta}"

    def test_stale_serve_during_open_transaction(self, conn, reader):
        _seed(conn)
        conn.execute("PRAGMA snapshot_isolation(on)")
        reader.execute("SELECT count(*) FROM t").fetchone()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t (v) VALUES (7)")
        before = conn.stats()["snapshot_stale_serves"]
        # The live state changed (uncommitted) but the writer holds the
        # lock: the previous snapshot is served, counted as stale.
        assert reader.execute("SELECT count(*) FROM t").fetchone() == (10,)
        conn.rollback()
        assert conn.stats()["snapshot_stale_serves"] >= before

    def test_snapshot_select_counter(self, conn, reader):
        _seed(conn)
        conn.execute("PRAGMA snapshot_isolation(on)")
        before = conn.stats()["snapshot_selects"]
        reader.execute("SELECT count(*) FROM t").fetchone()
        reader.execute("SELECT count(*) FROM t").fetchone()
        assert conn.stats()["snapshot_selects"] >= before + 2

    def test_disable_restores_direct_reads(self, conn, reader):
        _seed(conn)
        conn.execute("PRAGMA snapshot_isolation(on)")
        reader.execute("SELECT count(*) FROM t").fetchone()
        conn.execute("PRAGMA snapshot_isolation(off)")
        before = conn.stats()["snapshot_selects"]
        assert reader.execute("SELECT count(*) FROM t").fetchone() == (10,)
        assert conn.stats()["snapshot_selects"] == before
