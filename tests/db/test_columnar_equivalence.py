"""Three-way differential harness: interpreter vs compiled vs columnar.

The vectorized executor ships results only when a whole SELECT completes
cleanly over the column vectors; anything else falls back to the row
pipeline.  That "atomic or fallback" contract is what this suite pins
down: for the full conformance corpus and for statements that *error*
mid-execution, all three MiniSQL execution modes must produce identical
results, identical error classes and messages, and raise at the same
point in the statement lifecycle (execute vs fetch).
"""

from __future__ import annotations

import pytest

from repro.db import minisql
from tests.test_differential_sql import CORPUS, Err, _normalise

#: Pragmas establishing each execution mode on a fresh connection.
MODES = {
    "interpreter": ("PRAGMA compile(off)",),
    "compiled": ("PRAGMA compile(on)",),
    "columnar": ("PRAGMA compile(on)", "PRAGMA columnar(on)"),
}


def _connect(mode: str):
    conn = minisql.connect()
    for pragma in MODES[mode]:
        conn.execute(pragma)
    return conn


def _outcome(conn, sql, params):
    """One statement's observable behaviour, as a comparable value.

    Captures *when* an error surfaces (execute vs fetch), its class, and
    its message — not just the result rows — so a vectorized path that
    produced the right rows but raised early (or swallowed an error)
    still counts as a divergence.
    """
    try:
        cursor = conn.execute(sql, params)
    except Exception as exc:
        conn.rollback()
        return ("error@execute", type(exc).__name__, str(exc))
    if sql.lstrip().upper().startswith("SELECT"):
        try:
            rows = cursor.fetchall()
        except Exception as exc:
            conn.rollback()
            return ("error@fetch", type(exc).__name__, str(exc))
        return ("rows", _normalise(rows))
    conn.commit()
    return ("ok", cursor.rowcount)


@pytest.fixture
def trio():
    conns = {mode: _connect(mode) for mode in MODES}
    yield conns
    for conn in conns.values():
        conn.close()


class TestCorpusThreeWay:
    def test_corpus_no_divergence(self, trio):
        """Replay the full conformance corpus through all three modes."""
        for position, entry in enumerate(CORPUS):
            if isinstance(entry, Err):
                sql, params = entry.sql, entry.params
            else:
                sql, params = entry
            outcomes = {
                mode: _outcome(conn, sql, params)
                for mode, conn in trio.items()
            }
            distinct = set(map(repr, outcomes.values()))
            assert len(distinct) == 1, (
                f"statement #{position} diverged: {sql!r}\n"
                + "\n".join(f"  {m}: {o!r}" for m, o in outcomes.items())
            )
        # The corpus's expected-error entries must have raised (not been
        # silently skipped) — otherwise agreement is vacuous.
        errs = [e for e in CORPUS if isinstance(e, Err)]
        assert errs

    def test_final_state_identical(self, trio):
        for entry in CORPUS:
            if isinstance(entry, Err):
                sql, params = entry.sql, entry.params
            else:
                sql, params = entry
            for conn in trio.values():
                _outcome(conn, sql, params)
        states = {}
        for mode, conn in trio.items():
            tables = sorted(
                r[0] for r in conn.execute("PRAGMA table_list").fetchall()
            )
            states[mode] = {
                t: _normalise(
                    conn.execute(f"SELECT * FROM {t}").fetchall()
                )
                for t in tables
            }
            # Order-insensitive comparison: sort by repr so NULLs and
            # mixed types don't break tuple ordering.
            for t in states[mode]:
                states[mode][t] = sorted(states[mode][t], key=repr)
        assert states["interpreter"] == states["compiled"] == states["columnar"]

    def test_columnar_mode_actually_vectorizes(self, trio):
        """Guard against a vacuous pass: the columnar connection must
        have run real vectorized selects over the corpus."""
        for entry in CORPUS:
            if isinstance(entry, Err):
                continue
            sql, params = entry
            for conn in trio.values():
                _outcome(conn, sql, params)
        stats = trio["columnar"].stats()
        assert stats["vector_selects"] > 0
        assert trio["interpreter"].stats()["vector_selects"] == 0
        assert trio["compiled"].stats()["vector_selects"] == 0


#: SELECTs guaranteed to fail on the `mix` fixture table (a text value
#: in a numeric expression, an unknown function, ...).  Every mode must
#: raise the same class, same message, at the same phase.
ERROR_CASES = [
    "SELECT -x FROM mix",
    "SELECT x * 2 FROM mix",
    "SELECT x + 1 FROM mix WHERE id > 1",
    "SELECT abs(x) FROM mix",
    "SELECT sum(x) FROM mix",
    "SELECT nosuch(x) FROM mix",
    "SELECT id FROM mix WHERE x - 1 > 0",
    "SELECT id FROM mix WHERE x BETWEEN 1 AND 'oops' + 1",
    "SELECT max(id) FROM mix ORDER BY x / 'zero'",
]


class TestErrorTiming:
    @pytest.fixture
    def trio(self):
        conns = {}
        for mode in MODES:
            conn = _connect(mode)
            conn.execute("CREATE TABLE mix (id INTEGER, x)")
            conn.executemany(
                "INSERT INTO mix VALUES (?, ?)",
                [(1, 5), (2, 7), (3, "abc"), (4, 9)],
            )
            conn.commit()
            conns[mode] = conn
        yield conns
        for conn in conns.values():
            conn.close()

    @pytest.mark.parametrize("sql", ERROR_CASES)
    def test_error_class_message_and_phase_agree(self, trio, sql):
        outcomes = {
            mode: _outcome(conn, sql, ()) for mode, conn in trio.items()
        }
        reference = outcomes["interpreter"]
        assert reference[0].startswith("error@"), (
            f"expected an error case, got {reference!r}"
        )
        assert outcomes["compiled"] == reference
        assert outcomes["columnar"] == reference

    def test_failed_vector_attempt_counts_as_fallback(self, trio):
        conn = trio["columnar"]
        before = conn.stats()["vector_fallbacks"]
        with pytest.raises(minisql.MiniSQLError):
            conn.execute("SELECT -x FROM mix").fetchall()
        conn.rollback()
        assert conn.stats()["vector_fallbacks"] > before
