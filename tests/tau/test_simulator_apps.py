"""Tests for the SPMD simulator and the five synthetic applications."""

import numpy as np
import pytest

from repro.core.model import group as groups
from repro.tau import SimulationConfig, run_simulation
from repro.tau.apps import EVH1, SMG2000, SPPM, Miranda, SPhot
from repro.tau.apps.miranda import NUM_EVENTS
from repro.tau.apps.sppm import boundary_fraction


class TestSimulator:
    def test_kernel_runs_per_rank(self):
        seen = []

        def kernel(rank):
            seen.append(rank.rank)
            with rank.call("work"):
                rank.compute(flops=1000.0)

        ds = run_simulation(kernel, SimulationConfig(ranks=4))
        assert seen == [0, 1, 2, 3]
        assert ds.num_threads == 4

    def test_main_wraps_everything(self):
        def kernel(rank):
            with rank.call("inner"):
                rank.compute(flops=100.0)

        ds = run_simulation(kernel, SimulationConfig(ranks=2))
        main = ds.get_interval_event("main")
        inner = ds.get_interval_event("inner")
        for thread in ds.all_threads():
            m = thread.function_profiles[main.index]
            i = thread.function_profiles[inner.index]
            assert m.get_inclusive(0) >= i.get_inclusive(0)

    def test_determinism(self):
        app = EVH1(problem_size=0.05, timesteps=1, seed=9)
        a = app.run(4)
        b = EVH1(problem_size=0.05, timesteps=1, seed=9).run(4)
        for name in a.interval_events:
            ea, eb = a.get_interval_event(name), b.get_interval_event(name)
            for ta, tb in zip(a.all_threads(), b.all_threads()):
                pa = ta.function_profiles.get(ea.index)
                pb = tb.function_profiles.get(eb.index)
                if pa is None:
                    assert pb is None
                    continue
                assert pa.get_inclusive(0) == pb.get_inclusive(0)

    def test_collective_wait_reflects_imbalance(self):
        def kernel(rank):
            rank.mpi(
                "MPI_Barrier()",
                collective=True,
                imbalance=lambda r: 0.1 if r == 0 else 0.0,
            )

        ds = run_simulation(kernel, SimulationConfig(ranks=4))
        barrier = ds.get_interval_event("MPI_Barrier()")
        slow = ds.get_thread(0, 0, 0).function_profiles[barrier.index]
        fast = ds.get_thread(1, 0, 0).function_profiles[barrier.index]
        # rank 0 arrives late, so everyone else waits ~0.1s longer
        assert fast.get_inclusive(0) > slow.get_inclusive(0) + 5e4

    def test_user_events_recorded(self):
        def kernel(rank):
            rank.user_event("bytes", 100.0 * (rank.rank + 1))

        ds = run_simulation(kernel, SimulationConfig(ranks=3))
        assert "bytes" in ds.atomic_events

    def test_metadata_stamped(self):
        ds = EVH1(problem_size=0.05, timesteps=1).run(2)
        assert ds.metadata["application"] == "evh1"
        assert ds.metadata["simulator.ranks"] == "2"


class TestEVH1:
    @pytest.fixture(scope="class")
    def trials(self):
        app = EVH1(problem_size=0.5, timesteps=2)
        return {p: app.run(p) for p in (1, 4, 16)}

    def test_profile_invariants(self, trials):
        for ds in trials.values():
            assert ds.validate() == []

    def test_compute_routines_scale(self, trials):
        from repro.core.toolkit import SpeedupAnalyzer

        an = SpeedupAnalyzer()
        for p, ds in trials.items():
            an.add_trial(p, ds)
        (riemann,) = an.analyze(["riemann"])
        assert riemann.points[-1].mean > 10  # near-linear at P=16

    def test_serial_init_does_not_scale(self, trials):
        from repro.core.toolkit import SpeedupAnalyzer

        an = SpeedupAnalyzer()
        for p, ds in trials.items():
            an.add_trial(p, ds)
        (init,) = an.analyze(["init"])
        assert init.points[-1].mean < 2.0

    def test_edge_ranks_do_more_work(self, trials):
        ds = trials[16]
        riemann = ds.get_interval_event("riemann")
        edge = ds.get_thread(0, 0, 0).function_profiles[riemann.index]
        interior = ds.get_thread(7, 0, 0).function_profiles[riemann.index]
        assert edge.get_exclusive(0) > interior.get_exclusive(0) * 1.05


class TestSPPM:
    def test_two_populations_in_fp_ops(self):
        ds = SPPM(problem_size=0.02, timesteps=1).run(27)
        fp = ds.get_metric("PAPI_FP_OPS")
        sharpen = ds.get_interval_event("interface_sharpen")
        boundary_vals, interior_vals = [], []
        for rank, thread in enumerate(ds.all_threads()):
            profile = thread.function_profiles[sharpen.index]
            value = profile.get_exclusive(fp.index)
            (boundary_vals if boundary_fraction(rank, 27) else interior_vals).append(value)
        assert boundary_vals and interior_vals
        assert np.mean(boundary_vals) > np.mean(interior_vals) * 1.5

    def test_boundary_fraction_nontrivial(self):
        flags = [boundary_fraction(r, 64) for r in range(64)]
        assert 0 < sum(flags) < 64

    def test_seven_papi_counters_plus_time(self):
        ds = SPPM(problem_size=0.01, timesteps=1).run(8)
        assert ds.num_metrics == 8
        assert ds.metrics[0].name == "TIME"


class TestSMG2000:
    def test_communication_fraction_grows(self):
        from repro.core.toolkit import scaling_profile

        app = SMG2000(problem_size=1.0)
        points = scaling_profile([(p, app.run(p)) for p in (2, 32)])
        assert points[1].communication_fraction > points[0].communication_fraction


class TestSPhot:
    def test_load_imbalance_present(self):
        from repro.core.toolkit import load_imbalance

        ds = SPhot(problem_size=0.5).run(16)
        assert load_imbalance(ds) > 1.02

    def test_reduce_wait_mirrors_tracking_time(self):
        ds = SPhot(problem_size=0.5).run(8)
        track = ds.get_interval_event("track_photons")
        reduce_ev = ds.get_interval_event("MPI_Reduce()")
        values = []
        for thread in ds.all_threads():
            t = thread.function_profiles[track.index].get_exclusive(0)
            r = thread.function_profiles[reduce_ev.index].get_inclusive(0)
            values.append((t, r))
        ts, rs = zip(*values)
        # negative correlation: fast trackers wait longest at the reduce
        assert np.corrcoef(ts, rs)[0, 1] < -0.5


class TestMiranda:
    def test_exactly_101_events(self):
        trial = Miranda().generate(128)
        assert trial.num_events == NUM_EVENTS == 101

    def test_16k_exceeds_paper_datapoint_count(self):
        trial = Miranda().generate(16384)
        assert trial.num_data_points > 1_600_000

    def test_deterministic(self):
        a = Miranda(seed=5).generate(64)
        b = Miranda(seed=5).generate(64)
        np.testing.assert_array_equal(a.exclusive[0], b.exclusive[0])

    def test_single_metric_wall_clock(self):
        trial = Miranda().generate(64)
        assert trial.metric_names == ["TIME"]

    def test_main_is_root(self):
        trial = Miranda().generate(32)
        # main's inclusive dominates every other event on each thread
        assert (trial.inclusive[0][:, 0] >= trial.inclusive[0].max(axis=1) - 1e-9).all()

    def test_io_aggregator_pattern(self):
        trial = Miranda().generate(256)
        io_cols = [i for i, g in enumerate(trial.event_groups) if g == groups.IO]
        agg = trial.exclusive[0][0, io_cols].sum()      # rank 0 is an aggregator
        non = trial.exclusive[0][1, io_cols].sum()
        assert agg > non * 2

    def test_instrumented_variant_consistent(self):
        ds = Miranda(problem_size=0.5).run(4)
        assert ds.validate() == []
        assert "MPI_Alltoall()" in ds.interval_events
