"""Tests for the TAU-like instrumentation layer, incl. invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import DataSource
from repro.tau import CounterBank, InstrumentationError, ThreadProfiler, WorkItem


def make_profiler(callpaths=False):
    ds = DataSource()
    profiler = ThreadProfiler(
        ds, 0, counters=CounterBank(seed=1, jitter=0.0), callpaths=callpaths
    )
    return ds, profiler


class TestTimers:
    def test_single_timer(self):
        ds, p = make_profiler()
        p.start("main")
        p.charge(WorkItem(wait_seconds=1.0))
        p.stop("main")
        event = ds.get_interval_event("main")
        fp = p.thread.function_profiles[event.index]
        assert fp.get_inclusive(0) == pytest.approx(1.0e6)
        assert fp.get_exclusive(0) == pytest.approx(1.0e6)
        assert fp.calls == 1

    def test_nested_exclusive_attribution(self):
        ds, p = make_profiler()
        p.start("main")
        p.charge(WorkItem(wait_seconds=1.0))
        p.start("child")
        p.charge(WorkItem(wait_seconds=2.0))
        p.stop("child")
        p.charge(WorkItem(wait_seconds=0.5))
        p.stop("main")
        main = p.thread.function_profiles[ds.get_interval_event("main").index]
        child = p.thread.function_profiles[ds.get_interval_event("child").index]
        assert main.get_inclusive(0) == pytest.approx(3.5e6)
        assert main.get_exclusive(0) == pytest.approx(1.5e6)
        assert child.get_inclusive(0) == pytest.approx(2.0e6)
        assert main.subroutines == 1

    def test_repeated_calls_accumulate(self):
        ds, p = make_profiler()
        p.start("main")
        for _ in range(3):
            p.start("f")
            p.charge(WorkItem(wait_seconds=1.0))
            p.stop()
        p.stop()
        f = p.thread.function_profiles[ds.get_interval_event("f").index]
        assert f.calls == 3
        assert f.get_inclusive(0) == pytest.approx(3.0e6)
        main = p.thread.function_profiles[ds.get_interval_event("main").index]
        assert main.subroutines == 3

    def test_timer_context_manager(self):
        ds, p = make_profiler()
        with p.timer("main"):
            with p.timer("inner"):
                p.charge(WorkItem(wait_seconds=1.0))
        assert p.depth == 0
        assert ds.get_interval_event("inner") is not None

    def test_mismatched_stop_raises(self):
        _, p = make_profiler()
        p.start("a")
        with pytest.raises(InstrumentationError, match="innermost"):
            p.stop("b")

    def test_stop_without_start_raises(self):
        _, p = make_profiler()
        with pytest.raises(InstrumentationError):
            p.stop()

    def test_charge_outside_timer_raises(self):
        _, p = make_profiler()
        with pytest.raises(InstrumentationError):
            p.charge(WorkItem(flops=1.0))

    def test_finish_detects_running_timers(self):
        _, p = make_profiler()
        p.start("oops")
        with pytest.raises(InstrumentationError, match="still running"):
            p.finish()

    def test_recursion_counts_each_invocation(self):
        ds, p = make_profiler()
        p.start("fib")
        p.start("fib")
        p.charge(WorkItem(wait_seconds=1.0))
        p.stop()
        p.stop()
        fib = p.thread.function_profiles[ds.get_interval_event("fib").index]
        assert fib.calls == 2


class TestCallpaths:
    def test_callpath_events_created(self):
        ds, p = make_profiler(callpaths=True)
        with p.timer("main"):
            with p.timer("solve"):
                p.charge(WorkItem(wait_seconds=1.0))
        assert ds.get_interval_event("main => solve") is not None

    def test_callpath_values_match_flat(self):
        ds, p = make_profiler(callpaths=True)
        with p.timer("main"):
            with p.timer("solve"):
                p.charge(WorkItem(wait_seconds=1.0))
        flat = p.thread.function_profiles[ds.get_interval_event("solve").index]
        cp = p.thread.function_profiles[
            ds.get_interval_event("main => solve").index
        ]
        assert cp.get_inclusive(0) == pytest.approx(flat.get_inclusive(0))


class TestUserEvents:
    def test_trigger_accumulates(self):
        ds, p = make_profiler()
        for v in (5.0, 10.0, 15.0):
            p.trigger("heap", v)
        event = ds.get_atomic_event("heap")
        up = p.thread.user_event_profiles[event.index]
        assert up.count == 3
        assert up.mean_value == pytest.approx(10.0)
        assert up.max_value == 15.0


class TestInvariants:
    """Structural invariants the measurement layer must never violate."""

    @settings(max_examples=50, deadline=None)
    @given(
        script=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.floats(min_value=0.001, max_value=2.0),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_exclusive_sums_to_root_inclusive(self, script):
        """Σ exclusive over all events == inclusive of the root timer,
        and exclusive <= inclusive per event, for arbitrary nestings."""
        ds = DataSource()
        p = ThreadProfiler(ds, 0, counters=CounterBank(seed=0, jitter=0.0))
        p.start("root")
        depth = 1
        for name, seconds, action in script:
            if action == 0 and depth < 6:
                p.start(name)
                depth += 1
            p.charge(WorkItem(wait_seconds=seconds))
            if action == 2 and depth > 1:
                p.stop()
                depth -= 1
        while depth > 0:
            p.stop()
            depth -= 1
        p.finish()

        root = p.thread.function_profiles[ds.get_interval_event("root").index]
        total_exclusive = sum(
            fp.get_exclusive(0) for fp in p.thread.function_profiles.values()
        )
        assert total_exclusive == pytest.approx(root.get_inclusive(0), rel=1e-9)
        for fp in p.thread.function_profiles.values():
            assert fp.get_exclusive(0) <= fp.get_inclusive(0) + 1e-9
        assert ds.validate() == []
