"""Tests for the simulated counter bank, machine model and topology."""

import numpy as np
import pytest

from repro.tau import CounterBank, MachineModel, Topology, WorkItem
from repro.tau.counters import DEFAULT_COUNTERS, PAPI_FP_OPS, TIME


class TestWorkItem:
    def test_scaled(self):
        w = WorkItem(flops=100.0, loads=50.0, message_bytes=10.0)
        s = w.scaled(2.0)
        assert s.flops == 200.0
        assert s.loads == 100.0
        assert s.message_bytes == 20.0
        assert w.flops == 100.0  # original untouched


class TestMachineModel:
    def test_compute_cost(self):
        m = MachineModel(flops_per_second=1e9)
        w = WorkItem(flops=1e9)
        assert m.seconds_for(w) >= 1.0

    def test_message_cost_includes_latency(self):
        m = MachineModel(latency_seconds=1e-3, bytes_per_second=1e9)
        small = m.seconds_for(WorkItem(message_bytes=1.0))
        assert small >= 1e-3

    def test_zero_message_no_latency(self):
        m = MachineModel(latency_seconds=1e-3)
        assert m.seconds_for(WorkItem(flops=0.0)) == 0.0

    def test_wait_passes_through(self):
        m = MachineModel()
        assert m.seconds_for(WorkItem(wait_seconds=2.5)) == 2.5


class TestCounterBank:
    def test_time_is_always_metric_zero(self):
        bank = CounterBank(metrics=(PAPI_FP_OPS,))
        assert bank.metrics[0] == TIME

    def test_deterministic_given_seed(self):
        w = WorkItem(flops=1e6, loads=1e5)
        a = CounterBank(metrics=(TIME,) + DEFAULT_COUNTERS, seed=7).advance(w)
        b = CounterBank(metrics=(TIME,) + DEFAULT_COUNTERS, seed=7).advance(w)
        assert a == b

    def test_different_seed_differs(self):
        w = WorkItem(flops=1e6)
        a = CounterBank(seed=1).advance(w)
        b = CounterBank(seed=2).advance(w)
        assert a[TIME] != b[TIME]

    def test_fp_ops_tracks_flops(self):
        bank = CounterBank(metrics=(TIME, PAPI_FP_OPS), jitter=0.0)
        deltas = bank.advance(WorkItem(flops=12345.0))
        assert deltas[PAPI_FP_OPS] == pytest.approx(12345.0)

    def test_speed_factor_slows_time_only(self):
        w = WorkItem(flops=1e6)
        fast = CounterBank(metrics=(TIME, PAPI_FP_OPS), jitter=0.0).advance(w, 2.0)
        slow = CounterBank(metrics=(TIME, PAPI_FP_OPS), jitter=0.0).advance(w, 1.0)
        assert fast[TIME] == pytest.approx(slow[TIME] / 2.0)
        assert fast[PAPI_FP_OPS] == pytest.approx(slow[PAPI_FP_OPS])

    def test_miss_counters_scale_with_loads(self):
        bank = CounterBank(
            metrics=(TIME, "PAPI_L1_DCM", "PAPI_L2_DCM"), jitter=0.0
        )
        deltas = bank.advance(WorkItem(loads=1e6))
        assert deltas["PAPI_L1_DCM"] > deltas["PAPI_L2_DCM"] > 0

    def test_unknown_counter_still_advances(self):
        bank = CounterBank(metrics=(TIME, "PAPI_CUSTOM"), jitter=0.0)
        deltas = bank.advance(WorkItem(flops=100.0))
        assert deltas["PAPI_CUSTOM"] > 0

    def test_time_in_microseconds(self):
        bank = CounterBank(jitter=0.0)
        deltas = bank.advance(WorkItem(wait_seconds=1.0))
        assert deltas[TIME] == pytest.approx(1.0e6)


class TestTopology:
    def test_flat(self):
        topo = Topology.flat(4)
        assert topo.total_threads == 4
        assert topo.triple_for(3) == (3, 0, 0)

    def test_hybrid_packing(self):
        topo = Topology.hybrid(nodes=2, threads_per_node=4)
        assert topo.total_threads == 8
        assert topo.triple_for(0) == (0, 0, 0)
        assert topo.triple_for(3) == (0, 0, 3)
        assert topo.triple_for(4) == (1, 0, 0)

    def test_roundtrip(self):
        topo = Topology(nodes=3, contexts_per_node=2, threads_per_context=4)
        for rank in range(topo.total_threads):
            triple = topo.triple_for(rank)
            assert topo.rank_for(*triple) == rank

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Topology.flat(4).triple_for(4)
