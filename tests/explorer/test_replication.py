"""End-to-end replication over the wire protocol.

A real primary :class:`SocketServer` ships its WAL over
``repl_snapshot``/``wal_ship`` RPCs to a :class:`Replica`, which mounts
its replayed database behind a second, read-only server.  The failover
test SIGKILLs a primary running in a child process and asserts reads
keep succeeding against the replica — zero failed reads.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.db.minisql.replica import Replica, RemoteWalSource
from repro.explorer.client import AnalysisError, PerfExplorerClient
from repro.explorer.protocol import ConnectTimeout
from repro.explorer.server import AnalysisServer, SocketServer


@pytest.fixture
def primary(tmp_path):
    server = AnalysisServer(f"minisql://{tmp_path}/primary.mdb")
    sock = SocketServer(server, port=0)
    host, port = sock.start()
    session = server.session
    app = session.create_application("replicated-app")
    session.create_experiment(app, "exp-1")
    session.connection.commit()
    yield server, sock, (host, port)
    sock.stop(drain=False)


@pytest.fixture
def replica(primary):
    _server, _sock, (host, port) = primary
    rep = Replica(
        RemoteWalSource(host, port, replica_id="it-replica"), name="it-replica"
    )
    rep.start()
    rep.catch_up(timeout=30)
    yield rep
    rep.stop()


@pytest.fixture
def replica_server(replica):
    server = AnalysisServer(
        replica.shared_url(), read_only=True, replica=replica
    )
    sock = SocketServer(server, port=0, telemetry_port=0)
    host, port = sock.start()
    yield server, sock, (host, port)
    sock.stop(drain=False)


class TestWireReplication:
    def test_replica_serves_primary_data(self, replica_server):
        _server, _sock, (host, port) = replica_server
        with PerfExplorerClient(host, port, timeout=10) as client:
            apps = client.list_applications()
        assert [a["name"] for a in apps] == ["replicated-app"]

    def test_replica_rejects_writes(self, replica_server):
        _server, _sock, (host, port) = replica_server
        with PerfExplorerClient(host, port, timeout=10) as client:
            with pytest.raises(AnalysisError, match="read-only replica"):
                client.call("cluster_trial", trial=1)
            with pytest.raises(AnalysisError, match="read-only replica"):
                client.run_workflow([])

    def test_new_commits_flow_through(self, primary, replica, replica_server):
        server, _sock, _addr = primary
        _rserver, _rsock, (host, port) = replica_server
        app = server.session.get_application("replicated-app")
        server.session.create_experiment(app, "exp-2")
        server.session.connection.commit()
        replica.catch_up(timeout=30)
        with PerfExplorerClient(host, port, timeout=10) as client:
            exps = client.list_experiments(application=app.id)
        assert {e["name"] for e in exps} == {"exp-1", "exp-2"}

    def test_primary_status_lists_replicas(self, primary, replica):
        _server, _sock, (host, port) = primary
        replica.poll_once()
        with PerfExplorerClient(host, port, timeout=10) as client:
            status = client.replication_status()
        assert status["role"] == "primary"
        assert "it-replica" in status["replicas"]
        assert status["last_lsn"] > 0

    def test_replica_status_reports_lag(self, replica_server):
        _server, _sock, (host, port) = replica_server
        with PerfExplorerClient(host, port, timeout=10) as client:
            status = client.replication_status()
        assert status["role"] == "replica"
        assert status["state"] == "streaming"
        assert status["replication_lag_records"] == 0
        assert status["replication_lag_seconds"] == 0.0

    def test_healthz_carries_replication_lag(self, replica_server):
        _server, sock, _addr = replica_server
        thost, tport = sock.telemetry_address
        with urllib.request.urlopen(
            f"http://{thost}:{tport}/healthz", timeout=10
        ) as response:
            health = json.loads(response.read())
        assert health["replication"]["role"] == "replica"
        assert health["replication"]["state"] == "streaming"
        assert health["replication"]["lag_records"] == 0

    def test_standalone_status(self):
        server = AnalysisServer("minisql://:memory:")
        sock = SocketServer(server, port=0)
        host, port = sock.start()
        try:
            with PerfExplorerClient(host, port, timeout=10) as client:
                assert client.replication_status() == {"role": "standalone"}
        finally:
            sock.stop(drain=False)


# ---------------------------------------------------------------------------
# failover under SIGKILL
# ---------------------------------------------------------------------------

# A primary in its own process: serves RPC, appends a row batch every
# 50ms so the replica is actively tailing when the kill lands.
_PRIMARY_CHILD = """
import sys, time
from repro.explorer.server import AnalysisServer, SocketServer

server = AnalysisServer(f"minisql://{sys.argv[1]}")
sock = SocketServer(server, port=0)
host, port = sock.start()
session = server.session
app = session.create_application("failover-app")
session.connection.commit()
print(f"ADDR {host} {port}", flush=True)
conn = session.connection
i = 0
while True:
    session.create_experiment(app, f"exp-{i}")
    conn.commit()
    i += 1
    time.sleep(0.05)
"""


def _spawn_primary(tmp_path):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", _PRIMARY_CHILD, str(tmp_path / "failover.mdb")],
        env=env, stdout=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("ADDR "), f"unexpected child output: {line!r}"
    _tag, host, port = line.split()
    return proc, (host, int(port))


def test_failover_under_primary_sigkill(tmp_path):
    """Kill -9 the primary mid-stream: every read issued before,
    during, and after the kill must succeed (primary first, replica
    after failover) — the zero-failed-read guarantee."""
    proc, (phost, pport) = _spawn_primary(tmp_path)
    rep = None
    try:
        rep = Replica(
            RemoteWalSource(phost, pport, replica_id="fo"), name="fo",
            poll_interval=0.05,
        )
        rep.start()
        rep.catch_up(timeout=30)
        rserver = AnalysisServer(
            rep.shared_url(), read_only=True, replica=rep
        )
        rsock = SocketServer(rserver, port=0)
        rhost, rport = rsock.start()
        client = PerfExplorerClient(
            endpoints=[(phost, pport), (rhost, rport)],
            timeout=10, connect_retries=2, backoff=0.05,
        )
        failures = []
        for i in range(30):
            if i == 10:
                proc.kill()  # SIGKILL, mid-replication
                proc.wait(timeout=30)
            try:
                apps = client.list_applications()
                assert [a["name"] for a in apps] == ["failover-app"]
            except Exception as exc:  # pragma: no cover - the assertion
                failures.append((i, f"{type(exc).__name__}: {exc}"))
        assert failures == [], f"reads failed across failover: {failures}"
        # Writes never fail over: with the primary dead they surface a
        # connect failure instead of silently landing on a replica.
        with pytest.raises(ConnectTimeout):
            client.run_workflow([])
        # And the replica itself still rejects writes outright.
        with PerfExplorerClient(rhost, rport, timeout=10) as rc:
            with pytest.raises(AnalysisError, match="read-only replica"):
                rc.run_workflow([])
        client.close()
        rsock.stop(drain=False)
    finally:
        if rep is not None:
            rep.stop()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


def test_replica_crash_during_wire_replay(tmp_path):
    """Kill -9 a replica child mid-apply while tailing a live wire
    primary; a restarted replica converges to a consistent LSN."""
    child = """
import sys
from repro.db.minisql.replica import Replica, RemoteWalSource

rep = Replica(RemoteWalSource(sys.argv[1], int(sys.argv[2])), name="wire-crash")
rep.catch_up(timeout=30)
print("APPLIED", rep.applied_lsn, flush=True)
"""
    server = AnalysisServer(f"minisql://{tmp_path}/wirecrash.mdb")
    sock = SocketServer(server, port=0)
    host, port = sock.start()
    try:
        session = server.session
        app = session.create_application("wc-app")
        for i in range(5):
            session.create_experiment(app, f"exp-{i}")
        session.connection.commit()
        env = dict(os.environ)
        env["REPRO_FAULTS"] = "replica.apply.before"
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", child, host, str(port)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 137, proc.stderr
        # Restarted replica (fresh process state) converges.
        rep = Replica(
            RemoteWalSource(host, port, replica_id="wc2"), name="wc2"
        )
        rep.catch_up(timeout=30)
        assert rep.applied_lsn == rep.primary_lsn > 0
        rep.stop()
    finally:
        sock.stop(drain=False)
