"""Tests for scriptable analysis workflows (local + server-side)."""

import pytest

from repro.core.session import PerfDMFSession
from repro.db.minisql import reset_shared_databases
from repro.explorer import (
    AnalysisServer, PerfExplorerClient, SocketServer, WorkflowError,
    available_operations, run_workflow,
)
from repro.tau.apps import SPPM


@pytest.fixture(scope="module")
def session():
    s = PerfDMFSession("sqlite://:memory:")
    app = s.create_application("sppm")
    exp = s.create_experiment(app, "e")
    source_a = SPPM(problem_size=0.01, timesteps=1).run(27)
    source_b = SPPM(problem_size=0.01, timesteps=1, seed=43).run(27)
    trial_a = s.save_trial(source_a, exp, "a")
    trial_b = s.save_trial(source_b, exp, "b")
    yield s, trial_a.id, trial_b.id
    s.close()


class TestWorkflowEngine:
    def test_operations_registered(self):
        ops = available_operations()
        for expected in ("load_trial", "cluster", "describe", "correlate",
                         "top_events", "diff", "derive_metric",
                         "save_analysis", "filter_events"):
            assert expected in ops

    def test_load_and_describe(self, session):
        s, trial_id, _b = session
        slots = run_workflow(s, [
            {"op": "load_trial", "trial": trial_id, "as": "t"},
            {"op": "describe", "input": "t", "event": "hydro_kernel",
             "as": "stats"},
        ])
        assert slots["stats"]["n"] == 27

    def test_cluster_step(self, session):
        s, trial_id, _b = session
        slots = run_workflow(s, [
            {"op": "load_trial", "trial": trial_id, "as": "t"},
            {"op": "cluster", "input": "t", "k": 2,
             "metric": "PAPI_FP_OPS", "as": "c"},
        ])
        assert slots["c"]["k"] == 2
        assert sum(slots["c"]["sizes"]) == 27

    def test_pipeline_composition(self, session):
        """diff two trials, rank the delta, save the result."""
        s, a, b = session
        slots = run_workflow(s, [
            {"op": "load_trial", "trial": a, "as": "ta"},
            {"op": "load_trial", "trial": b, "as": "tb"},
            {"op": "diff", "left": "ta", "right": "tb", "as": "delta"},
            {"op": "top_events", "input": "delta", "n": 3, "as": "worst"},
            {"op": "save_analysis", "name": "ab-diff", "trial": a,
             "results": ["worst"], "as": "saved_id"},
        ])
        assert len(slots["worst"]) == 3
        assert isinstance(slots["saved_id"], int)
        # persisted and reloadable
        from repro.explorer import ResultStore

        record = ResultStore(s).load_analysis(slots["saved_id"])
        assert record["results"]["worst"] == slots["worst"]

    def test_derive_metric_step(self, session):
        s, trial_id, _b = session
        slots = run_workflow(s, [
            {"op": "load_trial", "trial": trial_id, "as": "t"},
            {"op": "derive_metric", "input": "t", "name": "RATE",
             "expr": "PAPI_FP_OPS / TIME", "as": "metric"},
            {"op": "describe", "input": "t", "event": "hydro_kernel",
             "metric": "RATE", "as": "stats"},
        ])
        assert slots["metric"] == "RATE"
        assert slots["stats"]["mean"] > 0

    def test_filter_events(self, session):
        s, trial_id, _b = session
        slots = run_workflow(s, [
            {"op": "load_trial", "trial": trial_id, "as": "t"},
            {"op": "filter_events", "input": "t", "group": "MPI", "as": "mpi"},
        ])
        assert all(name.startswith("MPI_") for name in slots["mpi"])
        assert slots["mpi"]

    def test_correlate_step(self, session):
        s, trial_id, _b = session
        slots = run_workflow(s, [
            {"op": "load_trial", "trial": trial_id, "as": "t"},
            {"op": "correlate", "input": "t", "x": "hydro_kernel",
             "y": "interface_sharpen", "as": "r"},
        ])
        assert -1.0 <= slots["r"]["pearson_r"] <= 1.0


class TestWorkflowErrors:
    def test_unknown_operation(self, session):
        s, *_ = session
        with pytest.raises(WorkflowError, match="unknown operation"):
            run_workflow(s, [{"op": "frobnicate"}])

    def test_missing_slot(self, session):
        s, *_ = session
        with pytest.raises(WorkflowError, match="no slot"):
            run_workflow(s, [{"op": "describe", "input": "nope", "event": "x"}])

    def test_step_failure_reports_index(self, session):
        s, trial_id, _b = session
        with pytest.raises(WorkflowError, match="step 1"):
            run_workflow(s, [
                {"op": "load_trial", "trial": trial_id, "as": "t"},
                {"op": "describe", "input": "t", "event": "ghost"},
            ])

    def test_not_a_list(self, session):
        s, *_ = session
        with pytest.raises(WorkflowError, match="list"):
            run_workflow(s, {"op": "x"})

    def test_step_not_a_dict(self, session):
        s, *_ = session
        with pytest.raises(WorkflowError, match="operation dict"):
            run_workflow(s, ["load_trial"])

    def test_cannot_save_trial_slot(self, session):
        s, trial_id, _b = session
        with pytest.raises(WorkflowError, match="holds a trial"):
            run_workflow(s, [
                {"op": "load_trial", "trial": trial_id, "as": "t"},
                {"op": "save_analysis", "name": "x", "results": ["t"]},
            ])

    def test_cluster_bad_metric(self, session):
        s, trial_id, _b = session
        with pytest.raises(WorkflowError, match="no metric"):
            run_workflow(s, [
                {"op": "load_trial", "trial": trial_id, "as": "t"},
                {"op": "cluster", "input": "t", "metric": "NOPE"},
            ])


class TestWorkflowOverTheWire:
    @pytest.fixture(scope="class")
    def service(self):
        url = "minisql://workflow-test"
        setup = PerfDMFSession(url)
        app = setup.create_application("sppm")
        exp = setup.create_experiment(app, "e")
        trial = setup.save_trial(
            SPPM(problem_size=0.01, timesteps=1).run(27), exp, "t"
        )
        server = SocketServer(AnalysisServer(url))
        host, port = server.start()
        yield host, port, trial.id
        server.stop()
        reset_shared_databases()

    def test_remote_workflow(self, service):
        host, port, trial_id = service
        with PerfExplorerClient(host, port) as client:
            slots = client.run_workflow([
                {"op": "load_trial", "trial": trial_id, "as": "t"},
                {"op": "cluster", "input": "t", "k": 2,
                 "metric": "PAPI_FP_OPS", "as": "clusters"},
                {"op": "top_events", "input": "t", "n": 2, "as": "top"},
            ])
            # the trial slot stays server-side; results come back
            assert "t" not in slots
            assert slots["clusters"]["k"] == 2
            assert len(slots["top"]) == 2

    def test_remote_workflow_error(self, service):
        host, port, _trial = service
        from repro.explorer import AnalysisError

        with PerfExplorerClient(host, port) as client:
            with pytest.raises(AnalysisError, match="unknown operation"):
                client.run_workflow([{"op": "nope"}])
