"""PerfExplorer clustering tests (the §5.3 statistical pipeline)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.explorer import (
    build_feature_matrix, cluster_trial, kmeans, pca_reduce,
    silhouette_score, summarize_clusters,
)
from repro.tau.apps import SPPM
from repro.tau.apps.sppm import boundary_fraction


def blobs(centers, per_cluster=20, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    for center in centers:
        points.append(rng.normal(center, spread, size=(per_cluster, len(center))))
    return np.vstack(points)


class TestKMeans:
    def test_separates_clean_blobs(self):
        data = blobs([(0, 0), (10, 10)])
        labels, centroids, inertia = kmeans(data, 2, seed=1)
        first, second = labels[:20], labels[20:]
        assert len(set(first.tolist())) == 1
        assert len(set(second.tolist())) == 1
        assert first[0] != second[0]

    def test_deterministic_per_seed(self):
        data = blobs([(0, 0), (5, 5), (0, 5)])
        a = kmeans(data, 3, seed=4)
        b = kmeans(data, 3, seed=4)
        np.testing.assert_array_equal(a[0], b[0])

    def test_inertia_decreases_with_k(self):
        data = blobs([(0, 0), (5, 5), (0, 5)])
        inertias = [kmeans(data, k, seed=0)[2] for k in (1, 2, 3)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_k_equals_n(self):
        data = blobs([(0, 0)], per_cluster=5)
        labels, _c, inertia = kmeans(data, 5, seed=0)
        assert inertia == pytest.approx(0.0, abs=1e-12)

    def test_invalid_k(self):
        data = blobs([(0, 0)], per_cluster=3)
        with pytest.raises(ValueError):
            kmeans(data, 0)
        with pytest.raises(ValueError):
            kmeans(data, 4)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_property_every_point_assigned_to_nearest_centroid(self, seed):
        data = blobs([(0, 0), (8, 8)], per_cluster=10, seed=seed)
        labels, centroids, _ = kmeans(data, 2, seed=seed)
        distances = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(labels, distances.argmin(axis=1))


class TestPCA:
    def test_variance_ordering(self):
        rng = np.random.default_rng(0)
        data = np.column_stack([rng.normal(0, 10, 100), rng.normal(0, 0.1, 100)])
        _proj, _components, explained = pca_reduce(data, 2)
        assert explained[0] > 0.99
        assert explained[0] >= explained[1]

    def test_projection_shape(self):
        data = np.random.default_rng(0).normal(size=(30, 7))
        proj, components, _ = pca_reduce(data, 3)
        assert proj.shape == (30, 3)
        assert components.shape == (3, 7)

    def test_components_capped_at_rank(self):
        data = np.ones((10, 2))
        proj, _c, _e = pca_reduce(data, 5)
        assert proj.shape[1] <= 2


class TestSilhouette:
    def test_good_split_scores_high(self):
        data = blobs([(0, 0), (20, 20)])
        labels = np.array([0] * 20 + [1] * 20)
        assert silhouette_score(data, labels) > 0.9

    def test_random_labels_score_low(self):
        data = blobs([(0, 0), (20, 20)])
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=40)
        assert silhouette_score(data, labels) < 0.5

    def test_single_cluster_zero(self):
        data = blobs([(0, 0)])
        assert silhouette_score(data, np.zeros(20, dtype=int)) == 0.0


class TestFeatureMatrix:
    @pytest.fixture(scope="class")
    def trial(self):
        return SPPM(problem_size=0.01, timesteps=1).run(27)

    def test_fraction_rows_sum_to_one(self, trial):
        matrix, _names = build_feature_matrix(trial, normalise="fraction")
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_zscore_columns_standardised(self, trial):
        matrix, _names = build_feature_matrix(trial, normalise="zscore")
        live = matrix.std(axis=0) > 0
        np.testing.assert_allclose(matrix.mean(axis=0)[live], 0.0, atol=1e-9)

    def test_unknown_normalisation(self, trial):
        with pytest.raises(ValueError):
            build_feature_matrix(trial, normalise="rank")


class TestClusterTrial:
    """The headline E5 behaviour: recover boundary/interior populations."""

    @pytest.fixture(scope="class")
    def trial(self):
        return SPPM(problem_size=0.01, timesteps=1).run(64)

    def test_fixed_k_discovers_populations(self, trial):
        result = cluster_trial(trial, k=2, metric=1)  # PAPI_FP_OPS
        truth = np.array([boundary_fraction(r, 64) for r in range(64)])
        labels = result.labels.astype(bool)
        agreement = max((labels == truth).mean(), (labels != truth).mean())
        assert agreement > 0.95

    def test_auto_k_selects_two(self, trial):
        result = cluster_trial(trial, metric=1, max_k=5)
        assert result.k == 2
        assert result.silhouette is not None and result.silhouette > 0.5

    def test_sizes_sum_to_threads(self, trial):
        result = cluster_trial(trial, k=3)
        assert sum(result.sizes) == 64

    def test_summaries_identify_discriminating_events(self, trial):
        result = cluster_trial(trial, k=2, metric=1)
        summaries = summarize_clusters(result)
        assert len(summaries) == 2
        top_features = {f["name"] for s in summaries for f in s["features"]}
        # interface sharpening is what separates the two populations
        assert "interface_sharpen" in top_features

    def test_pca_reduction_path(self, trial):
        result = cluster_trial(trial, k=2, pca_components=2)
        assert result.feature_names == ["PC1", "PC2"]
        assert len(result.labels) == 64

    def test_members(self, trial):
        result = cluster_trial(trial, k=2)
        members = result.members(0)
        assert (result.labels[members] == 0).all()


class TestHierarchicalClustering:
    """PerfExplorer's second clustering method (scipy linkage)."""

    @pytest.fixture(scope="class")
    def trial(self):
        return SPPM(problem_size=0.01, timesteps=1).run(64)

    def test_discovers_populations(self, trial):
        from repro.explorer import hierarchical_cluster

        result = hierarchical_cluster(trial, k=2, metric=1)
        truth = np.array([boundary_fraction(r, 64) for r in range(64)])
        labels = result.labels.astype(bool)
        agreement = max((labels == truth).mean(), (labels != truth).mean())
        assert agreement > 0.95

    def test_agrees_with_kmeans_on_clean_split(self, trial):
        from repro.explorer import hierarchical_cluster

        hier = hierarchical_cluster(trial, k=2, metric=1)
        km = cluster_trial(trial, k=2, metric=1)
        same = (hier.labels == km.labels).mean()
        assert max(same, 1 - same) > 0.95

    def test_result_interface_compatible(self, trial):
        from repro.explorer import hierarchical_cluster

        result = hierarchical_cluster(trial, k=3)
        assert sum(result.sizes) == 64
        assert result.centroids.shape[0] == result.k
        summaries = summarize_clusters(result)
        assert len(summaries) == result.k

    def test_raw_matrix_input(self):
        from repro.explorer import hierarchical_cluster

        data = blobs([(0, 0), (10, 10)])
        result = hierarchical_cluster(data, k=2)
        assert result.k == 2
        assert result.silhouette > 0.8

    def test_invalid_k(self, trial):
        from repro.explorer import hierarchical_cluster

        with pytest.raises(ValueError):
            hierarchical_cluster(trial, k=0)

    @pytest.mark.parametrize("method", ["ward", "average", "complete"])
    def test_linkage_methods(self, method):
        from repro.explorer import hierarchical_cluster

        data = blobs([(0, 0), (10, 10)], per_cluster=10)
        result = hierarchical_cluster(data, k=2, method=method)
        assert result.k == 2
