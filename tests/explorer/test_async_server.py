"""The event-loop serving core: pipelining, admission at the dispatch
queue, drain accounting, slowloris reaping, connection caps, the chaos
shim at every ``net.server.*`` point, and a many-idle-connection soak
asserting the whole point of the rebuild — connections no longer cost
threads.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.explorer.client import PerfExplorerClient, RetryLater
from repro.explorer.protocol import MessageStream, ProtocolError
from repro.explorer.server import (
    AnalysisServer, SocketServer, ThreadedSocketServer,
)
from repro.obs.metrics import registry
from repro.testing import faults


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm_all()
    yield
    faults.disarm_all()


def _start(analysis=None, **kwargs):
    analysis = analysis or AnalysisServer("minisql://:memory:")
    sock = SocketServer(analysis, port=0, **kwargs)
    host, port = sock.start()
    return sock, analysis, host, port


def _raw_stream(host: str, port: int) -> MessageStream:
    return MessageStream(socket.create_connection((host, port), timeout=10))


class TestPipelining:
    def test_replies_come_back_in_request_order(self):
        """Requests finishing out of order on the executor must still be
        answered in request order: the first request sleeps while the
        later ones complete, yet its reply arrives first."""
        sock, analysis, host, port = _start(executor_threads=4)
        analysis._handlers["slow"] = lambda: time.sleep(0.3) or "slow"
        analysis._handlers["fast"] = lambda: "fast"
        try:
            stream = _raw_stream(host, port)
            for rid, method in [(1, "slow"), (2, "fast"), (3, "fast")]:
                stream.send({"id": rid, "method": method, "params": {}})
            replies = [stream.receive(timeout=10) for _ in range(3)]
            assert [r["id"] for r in replies] == [1, 2, 3]
            assert [r["result"] for r in replies] == ["slow", "fast", "fast"]
            stream.close()
        finally:
            sock.stop(drain=False)

    def test_deep_pipeline_single_connection(self):
        sock, _analysis, host, port = _start(executor_threads=2)
        try:
            stream = _raw_stream(host, port)
            n = 100
            for rid in range(n):
                stream.send({"id": rid, "method": "ping", "params": {}})
            replies = [stream.receive(timeout=30) for _ in range(n)]
            assert [r["id"] for r in replies] == list(range(n))
            assert all(r["result"] == "pong" for r in replies)
            stream.close()
        finally:
            sock.stop(drain=False)

    def test_client_call_pipelined(self):
        sock, _analysis, host, port = _start()
        try:
            with PerfExplorerClient(host, port, timeout=10) as client:
                results = client.call_pipelined(
                    [("ping", {}), ("server_load", {}), ("ping", {})]
                )
            assert results[0] == "pong" and results[2] == "pong"
            assert set(results[1]) == {"in_flight", "queued", "connections"}
        finally:
            sock.stop(drain=False)

    def test_client_call_pipelined_surfaces_errors(self):
        sock, _analysis, host, port = _start()
        try:
            with PerfExplorerClient(host, port, timeout=10) as client:
                results = client.call_pipelined(
                    [("ping", {}), ("no_such_method", {}), ("ping", {})],
                    return_exceptions=True,
                )
                assert results[0] == "pong" and results[2] == "pong"
                assert isinstance(results[1], Exception)
                with pytest.raises(Exception, match="no_such_method"):
                    client.call_pipelined(
                        [("ping", {}), ("no_such_method", {})]
                    )
        finally:
            sock.stop(drain=False)

    def test_shed_reply_preserves_pipeline_order(self):
        """Even a RETRY_LATER shed answers in pipeline position: a shed
        second request must not leapfrog the executing first one."""
        analysis = AnalysisServer("minisql://:memory:")
        release = threading.Event()
        analysis._handlers["block"] = lambda: release.wait(10) and "done"
        sock, _, host, port = _start(analysis, max_in_flight=1)
        try:
            stream = _raw_stream(host, port)
            stream.send({"id": 1, "method": "block", "params": {}})
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                with sock._idle:
                    if sock._in_flight == 1:
                        break
                time.sleep(0.01)
            stream.send({"id": 2, "method": "ping", "params": {}})
            threading.Timer(0.2, release.set).start()
            first = stream.receive(timeout=10)
            second = stream.receive(timeout=10)
            assert first["id"] == 1 and first["result"] == "done"
            assert second["id"] == 2 and second.get("retry_later")
            stream.close()
        finally:
            release.set()
            sock.stop(drain=False)


class TestDrainAccounting:
    def test_executing_finish_and_queued_get_retry_later(self):
        """stop(drain=True) regression (satellite 2): the dispatched
        request completes with its real result; queued-not-dispatched
        pipelined requests are answered RETRY_LATER, and every reply is
        flushed before the socket closes."""
        analysis = AnalysisServer("minisql://:memory:")
        release = threading.Event()
        analysis._handlers["block"] = lambda: release.wait(10) and "done"
        sock, _, host, port = _start(analysis, executor_threads=1)
        drain_shed_before = registry.counter("server.drain_shed_total").value
        try:
            stream = _raw_stream(host, port)
            stream.send({"id": 1, "method": "block", "params": {}})
            # Wait until request 1 is executing (queue empty, 1 in flight),
            # then pipeline two more that can only sit in the queue.
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                with sock._idle:
                    if sock._in_flight == 1 and not sock._queue:
                        break
                time.sleep(0.01)
            stream.send({"id": 2, "method": "ping", "params": {}})
            stream.send({"id": 3, "method": "ping", "params": {}})
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                with sock._idle:
                    if len(sock._queue) == 2:
                        break
                time.sleep(0.01)
            stopper = threading.Thread(
                target=lambda: sock.stop(drain=True, timeout=10), daemon=True
            )
            stopper.start()
            time.sleep(0.1)
            release.set()
            replies = [stream.receive(timeout=10) for _ in range(3)]
            assert [r["id"] for r in replies] == [1, 2, 3]
            assert replies[0]["result"] == "done"
            assert replies[1].get("retry_later") and replies[2].get("retry_later")
            stopper.join(timeout=10)
            assert not stopper.is_alive()
            assert registry.counter(
                "server.drain_shed_total"
            ).value == drain_shed_before + 2
            stream.close()
        finally:
            release.set()
            sock.stop(drain=False)

    def test_stop_is_idempotent(self):
        sock, _analysis, _host, _port = _start()
        sock.stop()
        sock.stop()  # second stop must be a no-op, not an error


class TestSlowlorisGuard:
    def test_partial_frame_stall_is_reaped(self):
        sock, _analysis, host, port = _start(partial_frame_timeout=0.2)
        reaped_before = registry.counter("server.idle_reaped_total").value
        try:
            raw = socket.create_connection((host, port), timeout=10)
            raw.sendall(b'{"id": 1, "method"')  # half a frame, then stall
            raw.settimeout(5)
            assert raw.recv(64) == b""  # server closed on us
            assert registry.counter(
                "server.idle_reaped_total"
            ).value == reaped_before + 1
            raw.close()
        finally:
            sock.stop(drain=False)

    def test_idle_connection_is_reaped(self):
        sock, _analysis, host, port = _start(idle_timeout=0.2)
        reaped_before = registry.counter("server.idle_reaped_total").value
        try:
            stream = _raw_stream(host, port)
            stream.send({"id": 1, "method": "ping", "params": {}})
            assert stream.receive(timeout=10)["result"] == "pong"
            stream.sock.settimeout(5)
            assert stream.sock.recv(64) == b""  # reaped after going idle
            assert registry.counter(
                "server.idle_reaped_total"
            ).value == reaped_before + 1
            stream.sock.close()
        finally:
            sock.stop(drain=False)

    def test_active_connection_survives_idle_timeout(self):
        """A connection with a request in flight is busy, not idle: the
        reaper must leave it alone even past the timeout."""
        analysis = AnalysisServer("minisql://:memory:")
        analysis._handlers["slow"] = lambda: time.sleep(0.5) or "ok"
        sock, _, host, port = _start(analysis, idle_timeout=0.2)
        try:
            stream = _raw_stream(host, port)
            stream.send({"id": 1, "method": "slow", "params": {}})
            assert stream.receive(timeout=10)["result"] == "ok"
            stream.close()
        finally:
            sock.stop(drain=False)


class TestConnectionCap:
    def test_connections_past_cap_are_refused(self):
        sock, _analysis, host, port = _start(max_connections=2)
        refused_before = registry.counter(
            "server.connections_refused_total"
        ).value
        try:
            keep = [_raw_stream(host, port) for _ in range(2)]
            for stream in keep:
                stream.send({"id": 1, "method": "ping", "params": {}})
                assert stream.receive(timeout=10)["result"] == "pong"
            extra = socket.create_connection((host, port), timeout=10)
            extra.settimeout(5)
            assert extra.recv(64) == b""  # refused: closed without service
            assert registry.counter(
                "server.connections_refused_total"
            ).value == refused_before + 1
            extra.close()
            # Capacity frees when a connection leaves.
            keep[0].close()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                try:
                    replacement = _raw_stream(host, port)
                    replacement.send(
                        {"id": 2, "method": "ping", "params": {}}
                    )
                    if replacement.receive(timeout=5)["result"] == "pong":
                        replacement.close()
                        break
                except (ProtocolError, OSError):
                    time.sleep(0.05)
            else:
                pytest.fail("slot never freed after a connection closed")
            keep[1].close()
        finally:
            sock.stop(drain=False)


class TestHealthAndLoad:
    def test_health_carries_connection_gauges(self):
        sock, _analysis, host, port = _start(
            max_in_flight=64, max_connections=100
        )
        try:
            stream = _raw_stream(host, port)
            stream.send({"id": 1, "method": "ping", "params": {}})
            stream.receive(timeout=10)
            health = sock._health()
            assert health["serving"] is True
            assert health["connections"] == 1
            assert health["in_flight_requests"] == 0
            assert health["queued_requests"] == 0
            assert health["executor_threads"] == sock.executor_threads
            assert health["max_in_flight"] == 64
            assert health["max_connections"] == 100
            stream.close()
        finally:
            sock.stop(drain=False)

    def test_server_load_rpc_on_both_cores(self):
        for core in (SocketServer, ThreadedSocketServer):
            analysis = AnalysisServer("minisql://:memory:")
            sock = core(analysis, port=0)
            host, port = sock.start()
            try:
                with PerfExplorerClient(host, port, timeout=10) as client:
                    load = client.call("server_load")
                assert load["connections"] >= 1
                assert load["in_flight"] >= 0 and load["queued"] >= 0
            finally:
                sock.stop(drain=False)


class TestChaosShim:
    """The ``net:MODE:POINT`` matrix against the async core: every mode
    at every ``net.server.*`` point, recovered by the client's retry."""

    @pytest.mark.parametrize("mode,arg", [
        ("drop", 0.0), ("trunc", 5.0), ("delay", 0.3), ("reset", 0.0),
    ])
    def test_send_fault_recovered(self, mode, arg):
        sock, _analysis, host, port = _start()
        try:
            client = PerfExplorerClient(host, port, timeout=2.0, backoff=0.01)
            assert client.ping() == "pong"
            faults.arm_net("net.server.send", mode, arg=arg)
            assert client.ping() == "pong"
            client.close()
        finally:
            sock.stop(drain=False)

    @pytest.mark.parametrize("mode,arg", [
        ("delay", 0.3), ("reset", 0.0),
    ])
    def test_recv_fault_recovered(self, mode, arg):
        sock, _analysis, host, port = _start()
        disconnects_before = registry.counter(
            "server.client_disconnects"
        ).value
        try:
            client = PerfExplorerClient(host, port, timeout=2.0, backoff=0.01)
            assert client.ping() == "pong"
            faults.arm_net("net.server.recv", mode, arg=arg)
            assert client.ping() == "pong"
            if mode == "reset":
                assert registry.counter(
                    "server.client_disconnects"
                ).value > disconnects_before
            client.close()
        finally:
            sock.stop(drain=False)

    def test_env_spec_arms_server_point(self):
        faults.parse_spec("net:drop:net.server.send@1")
        sock, _analysis, host, port = _start()
        try:
            client = PerfExplorerClient(host, port, timeout=1.0, backoff=0.01)
            retries_before = registry.counter("explorer.client.retries").value
            assert client.ping() == "pong"  # dropped once, retried
            assert registry.counter(
                "explorer.client.retries"
            ).value == retries_before + 1
            client.close()
        finally:
            sock.stop(drain=False)

    def test_malformed_frame_counts_disconnect_not_error(self):
        sock, _analysis, host, port = _start()
        disconnects_before = registry.counter(
            "server.client_disconnects"
        ).value
        errors_before = registry.counter("server.client_errors").value
        try:
            raw = socket.create_connection((host, port), timeout=10)
            raw.sendall(b"this is not json\n")
            raw.settimeout(5)
            assert raw.recv(64) == b""
            raw.close()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if registry.counter(
                    "server.client_disconnects"
                ).value > disconnects_before:
                    break
                time.sleep(0.01)
            assert registry.counter(
                "server.client_disconnects"
            ).value == disconnects_before + 1
            assert registry.counter(
                "server.client_errors"
            ).value == errors_before
        finally:
            sock.stop(drain=False)


class TestIdleConnectionSoak:
    def test_500_idle_connections_bounded_threads(self):
        """The tentpole's reason to exist: 500 held connections must not
        cost 500 threads.  Every connection proves itself live with one
        ping; the server-side thread count stays at loop + executor,
        and a final burst of traffic still gets served."""
        sock, _analysis, host, port = _start(executor_threads=4)
        try:
            threads_before = threading.active_count()
            streams = []
            for i in range(500):
                stream = _raw_stream(host, port)
                stream.send({"id": i, "method": "ping", "params": {}})
                streams.append(stream)
            for stream in streams:
                assert stream.receive(timeout=30)["result"] == "pong"
            # Thread-per-connection would add ~500 here; the reactor
            # adds zero per connection (all server threads were started
            # before the soak).  Allow slack for interpreter background
            # threads, not for per-connection ones.
            assert threading.active_count() - threads_before < 20
            assert len(sock._connections) == 500
            with sock._idle:
                assert sock._in_flight == 0
            # Still responsive with the herd attached.
            probe = _raw_stream(host, port)
            probe.send({"id": 9999, "method": "ping", "params": {}})
            assert probe.receive(timeout=10)["result"] == "pong"
            probe.close()
            for stream in streams:
                stream.close()
        finally:
            sock.stop(drain=False)
