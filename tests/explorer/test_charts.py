"""Tests for the PerfExplorer chart producers (local + over the wire)."""

import numpy as np
import pytest

from repro.db.minisql import reset_shared_databases
from repro.core.session import PerfDMFSession
from repro.explorer import (
    AnalysisServer, PerfExplorerClient, SocketServer, correlation_matrix,
    group_fraction_chart, imbalance_chart, speedup_chart,
)
from repro.tau.apps import EVH1, SPhot


@pytest.fixture(scope="module")
def sweep():
    app = EVH1(problem_size=0.3, timesteps=1)
    return [(p, app.run(p)) for p in (1, 2, 4, 8)]


class TestSpeedupChart:
    def test_series_structure(self, sweep):
        chart = speedup_chart(sweep, events=["riemann", "init"])
        assert chart["processors"] == [1, 2, 4, 8]
        assert set(chart["series"]) == {"riemann", "init"}
        assert len(chart["application"]) == 4
        assert chart["ideal"] == [1.0, 2.0, 4.0, 8.0]

    def test_riemann_tracks_ideal(self, sweep):
        chart = speedup_chart(sweep, events=["riemann"])
        series = chart["series"]["riemann"]
        assert series[0] == pytest.approx(1.0)
        assert series[-1] > 6.0

    def test_all_events_by_default(self, sweep):
        chart = speedup_chart(sweep)
        assert "riemann" in chart["series"]
        assert "MPI_Alltoall()" in chart["series"]


class TestCorrelationMatrix:
    def test_symmetric_with_unit_diagonal(self, sweep):
        _, source = sweep[-1]
        result = correlation_matrix(source)
        matrix = np.asarray(result["matrix"])
        assert matrix.shape[0] == matrix.shape[1] == len(result["events"])
        np.testing.assert_allclose(np.diag(matrix), 1.0)
        np.testing.assert_allclose(matrix, matrix.T)

    def test_values_in_range(self, sweep):
        _, source = sweep[-1]
        matrix = np.asarray(correlation_matrix(source)["matrix"])
        assert (matrix >= -1.0 - 1e-9).all() and (matrix <= 1.0 + 1e-9).all()

    def test_selected_events(self, sweep):
        _, source = sweep[-1]
        result = correlation_matrix(source, events=["riemann", "parabola"])
        assert result["events"] == ["riemann", "parabola"]

    def test_anticorrelation_in_sphot(self):
        source = SPhot(problem_size=0.5).run(8)
        result = correlation_matrix(
            source, events=["track_photons", "MPI_Reduce()"]
        )
        matrix = np.asarray(result["matrix"])
        assert matrix[0, 1] < -0.5  # fast trackers wait longest


class TestGroupFractionChart:
    def test_fractions_sum_to_one(self, sweep):
        chart = group_fraction_chart(sweep)
        fractions = np.array(list(chart["fractions"].values()))
        np.testing.assert_allclose(fractions.sum(axis=0), 1.0)

    def test_communication_grows_with_p(self, sweep):
        chart = group_fraction_chart(sweep)
        mpi = chart["fractions"]["MPI"]
        assert mpi[-1] > mpi[0]


class TestImbalanceChart:
    def test_sorted_descending(self, sweep):
        _, source = sweep[-1]
        chart = imbalance_chart(source)
        values = [row["imbalance"] for row in chart["events"]]
        assert values == sorted(values, reverse=True)

    def test_top_limits(self, sweep):
        _, source = sweep[-1]
        assert len(imbalance_chart(source, top=3)["events"]) == 3

    def test_sphot_imbalance_visible(self):
        source = SPhot(problem_size=0.5).run(16)
        chart = imbalance_chart(source)
        by_event = {r["event"]: r for r in chart["events"]}
        assert by_event["track_photons"]["imbalance"] > 1.05


class TestChartsOverTheWire:
    @pytest.fixture(scope="class")
    def service(self, sweep):
        url = "minisql://charts-test"
        session = PerfDMFSession(url)
        app = session.create_application("evh1")
        experiment = session.create_experiment(app, "scaling")
        for p, source in sweep:
            session.save_trial(source, experiment, f"P={p}")
        server = SocketServer(AnalysisServer(url))
        host, port = server.start()
        yield host, port, experiment.id
        server.stop()
        reset_shared_databases()

    def test_speedup_chart_rpc(self, service):
        host, port, exp_id = service
        with PerfExplorerClient(host, port) as client:
            chart = client.speedup_chart(exp_id, events=["riemann"])
            assert chart["processors"] == [1, 2, 4, 8]
            assert chart["series"]["riemann"][-1] > 6.0

    def test_group_fraction_rpc(self, service):
        host, port, exp_id = service
        with PerfExplorerClient(host, port) as client:
            chart = client.group_fraction_chart(exp_id)
            assert "MPI" in chart["fractions"]

    def test_correlation_and_imbalance_rpc(self, service):
        host, port, exp_id = service
        with PerfExplorerClient(host, port) as client:
            trials = client.list_trials(exp_id)
            trial_id = trials[-1]["id"]
            corr = client.correlation_matrix(trial_id, ["riemann", "parabola"])
            assert len(corr["matrix"]) == 2
            imb = client.imbalance_chart(trial_id, top=5)
            assert len(imb["events"]) == 5

    def test_speedup_needs_two_trials(self, service):
        host, port, _exp = service
        with PerfExplorerClient(host, port) as client:
            from repro.explorer import AnalysisError

            with pytest.raises(AnalysisError, match=">= 2"):
                client.speedup_chart(99999)
