"""Client failover machinery: circuit breakers, jittered backoff,
bounded-staleness read routing, server admission control, and the
socket-level network chaos shim.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest

from repro.explorer.client import (
    BREAKER_STATE_CODES, CircuitBreaker, PerfExplorerClient, RetryLater,
)
from repro.explorer.protocol import ConnectTimeout
from repro.explorer.server import AnalysisServer, SocketServer
from repro.obs.metrics import registry
from repro.testing import faults


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.disarm_all()
    yield
    faults.disarm_all()


def _dead_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


@pytest.fixture
def server_fixture():
    analysis = AnalysisServer("minisql://:memory:")
    sock = SocketServer(analysis, port=0)
    host, port = sock.start()
    yield sock, analysis, host, port
    sock.stop(drain=False)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        clock.now = 5.1
        assert breaker.allow()  # cooldown elapsed: one probe admitted
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed" and breaker.failures == 0

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown=5.0, clock=clock)
        breaker.record_failure(); breaker.record_failure()
        clock.now = 6.0
        assert breaker.allow() and breaker.state == "half_open"
        breaker.record_failure()  # probe failed: back open, cooldown re-armed
        assert breaker.state == "open"
        clock.now = 10.0
        assert not breaker.allow()  # 6.0 + 5.0 > 10.0
        clock.now = 11.1
        assert breaker.allow()

    def test_state_gauge_and_open_counter(self):
        opens_before = registry.counter(
            "explorer.client.circuit_breaker_opens"
        ).value
        breaker = CircuitBreaker(threshold=1, cooldown=0.01)
        breaker.record_failure()
        assert registry.counter(
            "explorer.client.circuit_breaker_opens"
        ).value == opens_before + 1
        assert registry.gauge(
            "explorer.client.circuit_breaker_state"
        ).value == BREAKER_STATE_CODES["open"]
        time.sleep(0.02)
        assert breaker.allow()
        breaker.record_success()
        assert registry.gauge(
            "explorer.client.circuit_breaker_state"
        ).value == BREAKER_STATE_CODES["closed"]


class TestBackoff:
    def test_jittered_exponential_with_cap(self, server_fixture):
        _sock, _analysis, host, port = server_fixture
        client = PerfExplorerClient(
            host, port, backoff=0.1, backoff_cap=0.5,
            rng=random.Random(42),
        )
        try:
            for attempt, base in [(0, 0.1), (1, 0.2), (2, 0.4), (3, 0.5), (9, 0.5)]:
                for _ in range(20):
                    delay = client._delay(attempt)
                    # Jitter inflates by up to 50% — never shortens, so
                    # backoff floors (and the tests that time them) hold.
                    assert base <= delay <= base * 1.5 + 1e-9
        finally:
            client.close()

    def test_seeded_rng_is_deterministic(self, server_fixture):
        _sock, _analysis, host, port = server_fixture
        a = PerfExplorerClient(host, port, rng=random.Random(7))
        b = PerfExplorerClient(host, port, rng=random.Random(7))
        try:
            assert [a._delay(i) for i in range(5)] == [
                b._delay(i) for i in range(5)
            ]
        finally:
            a.close(); b.close()


class TestConnectTimeoutAddresses:
    def test_all_attempted_addresses_reported(self):
        dead1, dead2 = _dead_port(), _dead_port()
        with pytest.raises(ConnectTimeout) as exc_info:
            PerfExplorerClient(
                endpoints=[("127.0.0.1", dead1), ("127.0.0.1", dead2)],
                connect_retries=1, backoff=0.01,
            )
        assert exc_info.value.addresses == [
            f"127.0.0.1:{dead1}", f"127.0.0.1:{dead2}"
        ]


class TestReadFailover:
    def test_read_fails_over_to_second_endpoint(self, server_fixture):
        """Primary dies; a read lands on the replica endpoint without
        surfacing an error."""
        _sock, _analysis, host, port = server_fixture
        analysis2 = AnalysisServer("minisql://:memory:")
        sock2 = SocketServer(analysis2, port=0)
        host2, port2 = sock2.start()
        try:
            client = PerfExplorerClient(
                endpoints=[(host, port), (host2, port2)],
                connect_retries=1, backoff=0.01,
            )
            assert client.ping() == "pong"
            _sock.stop(drain=False)  # primary gone
            failovers_before = registry.counter(
                "explorer.client.failovers"
            ).value
            assert client.ping() == "pong"  # served by endpoint 2
            assert registry.counter(
                "explorer.client.failovers"
            ).value > failovers_before
            client.close()
        finally:
            sock2.stop(drain=False)

    def test_open_breaker_skips_endpoint(self, server_fixture):
        _sock, _analysis, host, port = server_fixture
        client = PerfExplorerClient(
            endpoints=[(host, port), ("127.0.0.1", _dead_port())],
            connect_retries=1, backoff=0.01,
        )
        try:
            replica_ep = client.endpoints[1]
            client.breaker(replica_ep).record_failure()
            client.breaker(replica_ep).record_failure()
            client.breaker(replica_ep).record_failure()
            assert client.breaker(replica_ep).state == "open"
            assert replica_ep not in client._read_candidates()
            assert client.ping() == "pong"
        finally:
            client.close()


class TestBoundedStaleness:
    @pytest.fixture
    def pair(self, server_fixture):
        """Two standalone servers dressed as primary + lagging replica
        with distinguishable list_applications payloads."""
        _sock, analysis, host, port = server_fixture
        analysis._handlers["list_applications"] = lambda: [{"name": "primary"}]
        replica_analysis = AnalysisServer("minisql://:memory:")
        replica_analysis._handlers["list_applications"] = (
            lambda: [{"name": "replica"}]
        )
        replica_analysis._handlers["replication_status"] = lambda: {
            "role": "replica", "state": "streaming",
            "replication_lag_records": 500,
            "replication_lag_seconds": 9.5,
        }
        rsock = SocketServer(replica_analysis, port=0)
        rhost, rport = rsock.start()
        yield (host, port), (rhost, rport)
        rsock.stop(drain=False)

    def test_reads_prefer_active_replica_without_bound(self, pair):
        primary_ep, replica_ep = pair
        client = PerfExplorerClient(endpoints=[primary_ep, replica_ep])
        try:
            client._activate(client.endpoints[1])
            assert client.call("list_applications") == [{"name": "replica"}]
        finally:
            client.close()

    def test_stale_replica_falls_back_to_primary(self, pair):
        primary_ep, replica_ep = pair
        client = PerfExplorerClient(
            endpoints=[primary_ep, replica_ep], max_lag_ms=1000.0
        )
        try:
            client._activate(client.endpoints[1])  # reads would hit replica
            skips_before = registry.counter(
                "explorer.client.stale_replica_skips"
            ).value
            # 9.5s lag > 1s bound: the read must route to the primary.
            assert client.call("list_applications") == [{"name": "primary"}]
            assert registry.counter(
                "explorer.client.stale_replica_skips"
            ).value > skips_before
        finally:
            client.close()

    def test_fresh_replica_stays_in_rotation(self, pair):
        primary_ep, replica_ep = pair
        client = PerfExplorerClient(
            endpoints=[primary_ep, replica_ep], max_lag_ms=60_000.0
        )
        try:
            client._activate(client.endpoints[1])
            # 9.5s lag < 60s bound: replica serves the read.
            assert client.call("list_applications") == [{"name": "replica"}]
        finally:
            client.close()


class TestAdmissionControl:
    def test_all_requests_shed_at_zero_capacity(self):
        analysis = AnalysisServer("minisql://:memory:")
        sock = SocketServer(analysis, port=0, max_in_flight=0)
        host, port = sock.start()
        try:
            shed_before = registry.counter("server.admission_shed_total").value
            client = PerfExplorerClient(
                host, port, backoff=0.01, retry_later_attempts=1
            )
            with pytest.raises(RetryLater, match="RETRY_LATER"):
                client.ping()
            # Initial try + 1 shed-retry, each shed server-side.
            assert registry.counter(
                "server.admission_shed_total"
            ).value == shed_before + 2
            client.close()
        finally:
            sock.stop(drain=False)

    def test_shed_request_retries_and_succeeds(self):
        """One slot, held by a slow request: the second call is shed
        with RETRY_LATER, retried with backoff, and succeeds once the
        slot frees — the caller never sees the shed."""
        analysis = AnalysisServer("minisql://:memory:")
        release = threading.Event()
        analysis._handlers["block"] = lambda: release.wait(10) and "done"
        sock = SocketServer(analysis, port=0, max_in_flight=1)
        host, port = sock.start()
        try:
            blocker = PerfExplorerClient(host, port)
            worker = threading.Thread(
                target=lambda: blocker.call("block"), daemon=True
            )
            worker.start()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                with sock._idle:
                    if sock._in_flight == 1:
                        break
                time.sleep(0.01)
            client = PerfExplorerClient(
                host, port, backoff=0.05, retry_later_attempts=10
            )
            retries_before = registry.counter(
                "explorer.client.shed_retries"
            ).value
            threading.Timer(0.2, release.set).start()
            assert client.ping() == "pong"
            assert registry.counter(
                "explorer.client.shed_retries"
            ).value > retries_before
            worker.join(timeout=10)
            client.close(); blocker.close()
        finally:
            release.set()
            sock.stop(drain=False)

    def test_mutating_call_also_retries_after_shed(self):
        """A shed request was never dispatched, so even mutating calls
        retry safely."""
        analysis = AnalysisServer("minisql://:memory:")
        sock = SocketServer(analysis, port=0, max_in_flight=0)
        host, port = sock.start()
        try:
            client = PerfExplorerClient(
                host, port, backoff=0.01, retry_later_attempts=1
            )
            with pytest.raises(RetryLater):
                client.run_workflow([])
            client.close()
        finally:
            sock.stop(drain=False)


class TestNetworkChaosShim:
    def test_drop_swallows_one_send(self):
        a, b = socket.socketpair()
        try:
            faults.arm_net("x.send", "drop")
            faults.net_send(a, b"gone", "x.send")
            faults.net_send(a, b"kept", "x.send")  # one-shot: passes through
            b.settimeout(5)
            assert b.recv(64) == b"kept"
        finally:
            a.close(); b.close()

    def test_trunc_sends_prefix(self):
        a, b = socket.socketpair()
        try:
            faults.arm_net("x.send", "trunc", arg=3)
            faults.net_send(a, b"truncated", "x.send")
            b.settimeout(5)
            assert b.recv(64) == b"tru"
        finally:
            a.close(); b.close()

    def test_reset_raises_and_kills_socket(self):
        a, b = socket.socketpair()
        try:
            faults.arm_net("x.send", "reset")
            with pytest.raises(ConnectionResetError):
                faults.net_send(a, b"boom", "x.send")
        finally:
            b.close()

    def test_hits_and_spec_parsing(self):
        faults.parse_spec("net:drop:net.client.send@2,net:trunc:net.server.send:7")
        assert "net.client.send" in faults.armed_points()
        fault = faults._net_armed["net.client.send"]
        assert fault.mode == "drop" and fault.hits == 2
        trunc = faults._net_armed["net.server.send"]
        assert trunc.mode == "trunc" and trunc.arg == 7.0

    def test_malformed_net_spec(self):
        with pytest.raises(ValueError):
            faults.parse_spec("net:sideways:point")

    def test_dropped_server_response_recovered_by_retry(self, server_fixture):
        """Chaos at the wire: the server's response vanishes; the
        client times out, transparently retries on a fresh connection,
        and the caller never notices."""
        _sock, _analysis, host, port = server_fixture
        client = PerfExplorerClient(host, port, timeout=1.0, backoff=0.01)
        try:
            assert client.ping() == "pong"
            retries_before = registry.counter("explorer.client.retries").value
            faults.arm_net("net.server.send", "drop")
            assert client.ping() == "pong"
            assert registry.counter(
                "explorer.client.retries"
            ).value == retries_before + 1
        finally:
            client.close()

    def test_server_reset_recovered_by_retry(self, server_fixture):
        _sock, _analysis, host, port = server_fixture
        client = PerfExplorerClient(host, port, timeout=2.0, backoff=0.01)
        try:
            assert client.ping() == "pong"
            faults.arm_net("net.server.send", "reset")
            assert client.ping() == "pong"
        finally:
            client.close()

    def test_truncated_frame_recovered_by_retry(self, server_fixture):
        _sock, _analysis, host, port = server_fixture
        client = PerfExplorerClient(host, port, timeout=1.0, backoff=0.01)
        try:
            assert client.ping() == "pong"
            faults.arm_net("net.server.send", "trunc", arg=5)
            assert client.ping() == "pong"
        finally:
            client.close()
