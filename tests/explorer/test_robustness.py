"""Client/server robustness: reconnects, retries, error visibility,
graceful shutdown.

Satellite coverage for the crash-safety PR: the PerfExplorer transport
must distinguish "could not connect at all" (ConnectTimeout, after
backed-off attempts) from "the connection died mid-call" (ProtocolError,
retried once for read-only RPCs only), and the server must never swallow
its own bugs silently nor drop in-flight requests at shutdown.
"""

from __future__ import annotations

import contextlib
import socket
import threading
import time

import pytest

from repro.db.minisql import reset_shared_databases
from repro.explorer import (
    AnalysisServer, PerfExplorerClient, ProtocolError, SocketServer,
)
from repro.explorer.protocol import ConnectTimeout
from repro.obs.metrics import registry


@pytest.fixture(scope="module")
def server_fixture():
    analysis = AnalysisServer("minisql://robustness-tests")
    sock = SocketServer(analysis)
    host, port = sock.start()
    yield sock, analysis, host, port
    sock.stop()
    reset_shared_databases()


def _dead_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestClientReconnect:
    def test_connect_timeout_after_backoff_attempts(self):
        before = registry.counter("explorer.client.reconnects").value
        t0 = time.perf_counter()
        with pytest.raises(ConnectTimeout) as exc_info:
            PerfExplorerClient(
                "127.0.0.1", _dead_port(), connect_retries=3, backoff=0.02
            )
        elapsed = time.perf_counter() - t0
        assert "after 3 attempts" in str(exc_info.value)
        # Two sleeps between three attempts: 0.02 + 0.04.
        assert elapsed >= 0.05
        assert registry.counter("explorer.client.reconnects").value == before + 2
        # ConnectTimeout is a ProtocolError, so broad handlers still work,
        # but it is catchable on its own.
        assert isinstance(exc_info.value, ProtocolError)

    def test_read_only_call_retries_after_dead_connection(self, server_fixture):
        _sock, _analysis, host, port = server_fixture
        client = PerfExplorerClient(host, port, connect_retries=2, backoff=0.01)
        try:
            assert client.ping() == "pong"
            before = registry.counter("explorer.client.retries").value
            client._stream.sock.close()  # the connection dies under us
            assert client.ping() == "pong"  # transparently reconnected
            assert (
                registry.counter("explorer.client.retries").value == before + 1
            )
        finally:
            client.close()

    def test_mutating_call_never_retries(self, server_fixture):
        _sock, _analysis, host, port = server_fixture
        client = PerfExplorerClient(host, port, connect_retries=2, backoff=0.01)
        try:
            before = registry.counter("explorer.client.retries").value
            client._stream.sock.close()
            with pytest.raises((ProtocolError, OSError)):
                client.run_workflow([])  # mutating: must surface the error
            assert registry.counter("explorer.client.retries").value == before
        finally:
            client.close()


class TestServerErrorVisibility:
    def test_client_disconnect_is_counted_not_logged_as_error(
        self, server_fixture
    ):
        _sock, _analysis, host, port = server_fixture
        disconnects = registry.counter("server.client_disconnects")
        errors = registry.counter("server.client_errors")
        d0, e0 = disconnects.value, errors.value
        raw = socket.create_connection((host, port))
        raw.sendall(b"this is not a json frame\n")
        raw.close()
        deadline = time.monotonic() + 5
        while disconnects.value == d0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert disconnects.value == d0 + 1
        assert errors.value == e0  # a bad client is not a server bug

    def test_server_bug_hits_error_counter_with_traceback(self, server_fixture):
        """A handler whose *response* cannot be encoded escapes
        _handle_one — the serve loop must count and log it, never
        swallow it (the old bare ``except Exception: pass``)."""
        sock, analysis, host, port = server_fixture
        analysis._handlers["unencodable"] = lambda: {1, 2, 3}  # sets aren't JSON
        errors = registry.counter("server.client_errors")
        e0 = errors.value
        client = PerfExplorerClient(host, port, connect_retries=2, backoff=0.01)
        try:
            with pytest.raises((ProtocolError, OSError)):
                client.call("unencodable")
            deadline = time.monotonic() + 5
            while errors.value == e0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert errors.value == e0 + 1
        finally:
            analysis._handlers.pop("unencodable", None)
            client.close()


class TestGracefulShutdown:
    def test_stop_drains_in_flight_requests(self):
        analysis = AnalysisServer("minisql://robustness-drain")
        sock = SocketServer(analysis)
        host, port = sock.start()
        release = threading.Event()

        def slow_handler():
            release.wait(timeout=10)
            return "drained"

        analysis._handlers["slow"] = slow_handler
        client = PerfExplorerClient(host, port)
        results = []

        def call_slow():
            results.append(client.call("slow"))

        t = threading.Thread(target=call_slow)
        t.start()
        deadline = time.monotonic() + 5
        while sock._in_flight == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sock._in_flight == 1

        def finish():
            time.sleep(0.2)
            release.set()

        threading.Thread(target=finish).start()
        t0 = time.perf_counter()
        sock.stop(drain=True, timeout=10)
        # stop() blocked until the handler finished...
        assert time.perf_counter() - t0 >= 0.1
        assert sock._in_flight == 0
        t.join(timeout=5)
        # ...and the client still got its response.
        assert results == ["drained"]
        client.close()
        reset_shared_databases()

    def test_stop_times_out_on_stuck_request(self):
        analysis = AnalysisServer("minisql://robustness-stuck")
        sock = SocketServer(analysis)
        host, port = sock.start()
        release = threading.Event()
        analysis._handlers["stuck"] = lambda: release.wait(timeout=30)
        client = PerfExplorerClient(host, port)

        def stuck_call():
            # stop() now force-closes lingering client sockets, so the
            # abandoned call ends in a transport error — expected here.
            with contextlib.suppress(ProtocolError, OSError):
                client.call("stuck")

        t = threading.Thread(target=stuck_call, daemon=True)
        t.start()
        deadline = time.monotonic() + 5
        while sock._in_flight == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        t0 = time.perf_counter()
        sock.stop(drain=True, timeout=0.2)  # gives up, doesn't hang
        assert 0.15 <= time.perf_counter() - t0 < 5.0
        release.set()
        t.join(timeout=5)
        client.close()
        reset_shared_databases()
