"""PerfExplorer client/server tests (the Figure 3 architecture)."""

import io
import json
import socket

import numpy as np
import pytest

from repro.db.minisql import reset_shared_databases
from repro.obs import log as obslog
from repro.obs.metrics import registry
from repro.obs.trace import tracer
from repro.explorer import (
    AnalysisError, AnalysisServer, MessageStream, NumpyAnalysisBackend,
    PerfExplorerClient, ProtocolError, ResultStore, SocketServer,
    cluster_trial,
)
from repro.explorer.protocol import decode_message, encode_message
from repro.core.session import PerfDMFSession
from repro.tau.apps import SPPM


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        payload = {"id": 1, "method": "ping", "params": {"x": [1, 2]}}
        assert decode_message(encode_message(payload).strip()) == payload

    def test_malformed_frame(self):
        with pytest.raises(ProtocolError):
            decode_message(b"{nope")

    def test_non_object_frame(self):
        with pytest.raises(ProtocolError):
            decode_message(b"[1,2]")

    def test_message_stream_over_socketpair(self):
        a, b = socket.socketpair()
        sa, sb = MessageStream(a), MessageStream(b)
        sa.send({"id": 1, "result": "ok"})
        assert sb.receive() == {"id": 1, "result": "ok"}
        sa.close()
        assert sb.receive() is None
        sb.close()


class TestRProxy:
    def test_describe(self):
        backend = NumpyAnalysisBackend()
        d = backend.describe(np.array([1.0, 2.0, 3.0, 4.0]))
        assert d["mean"] == 2.5
        assert d["median"] == 2.5
        assert d["n"] == 4

    def test_describe_empty(self):
        assert NumpyAnalysisBackend().describe(np.array([])) == {"n": 0.0}

    def test_correlate(self):
        backend = NumpyAnalysisBackend()
        x = np.arange(10.0)
        result = backend.correlate(x, 2 * x + 1)
        assert result["pearson_r"] == pytest.approx(1.0)
        assert result["spearman_r"] == pytest.approx(1.0)

    def test_correlate_validates(self):
        backend = NumpyAnalysisBackend()
        with pytest.raises(ValueError):
            backend.correlate(np.array([1.0]), np.array([1.0, 2.0]))


@pytest.fixture(scope="module")
def server_fixture():
    url = "minisql://explorer-server-tests"
    setup = PerfDMFSession(url)
    app = setup.create_application("sppm")
    exp = setup.create_experiment(app, "counters")
    source = SPPM(problem_size=0.01, timesteps=1).run(27)
    trial = setup.save_trial(source, exp, "P=27")
    analysis = AnalysisServer(url)
    sock = SocketServer(analysis)
    host, port = sock.start()
    yield host, port, app.id, exp.id, trial.id
    sock.stop()
    reset_shared_databases()


@pytest.fixture
def client(server_fixture):
    host, port, *_ = server_fixture
    c = PerfExplorerClient(host, port)
    yield c
    c.close()


class TestClientServer:
    def test_ping(self, client):
        assert client.ping() == "pong"

    def test_browse_hierarchy(self, client, server_fixture):
        _h, _p, app_id, exp_id, trial_id = server_fixture
        apps = client.list_applications()
        assert [a["name"] for a in apps] == ["sppm"]
        exps = client.list_experiments(app_id)
        assert [e["name"] for e in exps] == ["counters"]
        trials = client.list_trials(exp_id)
        assert trials[0]["id"] == trial_id
        assert trials[0]["node_count"] == 27

    def test_metrics_and_events(self, client, server_fixture):
        trial_id = server_fixture[4]
        metrics = client.list_metrics(trial_id)
        assert metrics[0] == "TIME" and "PAPI_FP_OPS" in metrics
        events = client.list_events(trial_id)
        assert any(e["name"] == "hydro_kernel" for e in events)

    def test_cluster_request_and_persistence(self, client, server_fixture):
        trial_id = server_fixture[4]
        result = client.cluster_trial(trial_id, k=2, metric_name="PAPI_FP_OPS")
        assert result["k"] == 2
        assert sum(result["sizes"]) == 27
        assert result["settings_id"] is not None
        analyses = client.list_analyses(trial_id)
        assert any(a["id"] == result["settings_id"] for a in analyses)
        stored = client.get_analysis(result["settings_id"])
        assert stored["results"]["labels"] == result["labels"]

    def test_describe_event(self, client, server_fixture):
        trial_id = server_fixture[4]
        d = client.describe_event(trial_id, "hydro_kernel")
        assert d["n"] == 27
        assert d["min"] <= d["mean"] <= d["max"]

    def test_correlate_events(self, client, server_fixture):
        trial_id = server_fixture[4]
        result = client.correlate_events(trial_id, "hydro_kernel", "interface_sharpen")
        assert -1.0 <= result["pearson_r"] <= 1.0

    def test_error_propagation(self, client):
        with pytest.raises(AnalysisError, match="unknown method"):
            client.call("explode")

    def test_server_survives_bad_request(self, client, server_fixture):
        trial_id = server_fixture[4]
        with pytest.raises(AnalysisError):
            client.cluster_trial(999999)
        # connection still usable afterwards
        assert client.ping() == "pong"

    def test_concurrent_clients(self, server_fixture):
        host, port, *_ , trial_id = server_fixture
        clients = [PerfExplorerClient(host, port) for _ in range(4)]
        try:
            for c in clients:
                assert c.ping() == "pong"
            results = [c.describe_event(trial_id, "hydro_kernel") for c in clients]
            assert all(r == results[0] for r in results)
        finally:
            for c in clients:
                c.close()


class TestRequestObservability:
    """Satellite coverage: structured request log + trace propagation."""

    @pytest.fixture
    def log_sink(self):
        stream = io.StringIO()
        obslog.configure(stream=stream, level="info")
        yield stream
        obslog.configure()

    @pytest.fixture
    def tracing(self):
        tracer.enable()
        tracer.clear()
        yield tracer
        tracer.disable()
        tracer.clear()

    def test_request_log_fields(self, client, log_sink):
        assert client.ping() == "pong"
        records = [
            json.loads(line) for line in log_sink.getvalue().splitlines()
        ]
        request_logs = [r for r in records if r["event"] == "request"]
        assert len(request_logs) == 1
        rec = request_logs[0]
        assert rec["logger"] == "repro.explorer.server"
        assert rec["method"] == "ping"
        assert rec["status"] == "ok"
        assert rec["latency_ms"] >= 0.0
        assert rec["result_bytes"] > 0

    def test_error_request_logged_as_error_status(self, client, log_sink):
        with pytest.raises(AnalysisError):
            client.call("explode")
        records = [
            json.loads(line) for line in log_sink.getvalue().splitlines()
        ]
        rec = [r for r in records if r["event"] == "request"][0]
        assert rec["method"] == "explode"
        assert rec["status"] == "error"

    def test_request_metrics_counted(self, client):
        requests = registry.counter("server.requests").value
        errors = registry.counter("server.errors").value
        latencies = registry.histogram("server.request_seconds").count
        assert client.ping() == "pong"
        with pytest.raises(AnalysisError):
            client.call("explode")
        assert registry.counter("server.requests").value == requests + 2
        assert registry.counter("server.errors").value == errors + 1
        assert registry.histogram("server.request_seconds").count == latencies + 2

    def test_trace_id_propagates_client_to_server(self, client, tracing):
        assert client.ping() == "pong"
        spans = {r["name"]: r for r in tracer.finished()}
        call = spans["explorer.call"]
        server = spans["server.ping"]
        # Server and client run in one process here, but the server span
        # was opened on a different thread from a wire-propagated context:
        # same trace, parented under the client's request span.
        assert server["trace_id"] == call["trace_id"]
        assert server["parent_id"] == call["span_id"]
        assert server["tid"] != call["tid"]

    def test_untraced_requests_carry_no_context(self, client):
        assert not tracer.enabled
        assert client.ping() == "pong"
        assert tracer.finished() == []


class TestResultStore:
    def test_analysis_roundtrip(self, db_url):
        session = PerfDMFSession(db_url)
        store = ResultStore(session)
        settings_id = store.save_analysis(
            None, "custom", "manual", {"alpha": 0.5}, {"answer": [1, 2, 3]}
        )
        record = store.load_analysis(settings_id)
        assert record["method"] == "manual"
        assert record["parameters"] == {"alpha": 0.5}
        assert record["results"]["answer"] == [1, 2, 3]
        session.close()

    def test_cluster_result_roundtrip(self, db_url):
        session = PerfDMFSession(db_url)
        source = SPPM(problem_size=0.01, timesteps=1).run(8)
        app = session.create_application("a")
        exp = session.create_experiment(app, "e")
        trial = session.save_trial(source, exp, "t")
        result = cluster_trial(source, k=2)
        store = ResultStore(session)
        sid = store.save_cluster_result(trial.id, result)
        loaded = store.load_cluster_result(sid)
        np.testing.assert_array_equal(loaded.labels, result.labels)
        np.testing.assert_allclose(loaded.centroids, result.centroids)
        assert loaded.k == result.k
        session.close()

    def test_missing_analysis_raises(self, db_url):
        session = PerfDMFSession(db_url)
        store = ResultStore(session)
        with pytest.raises(LookupError):
            store.load_analysis(12345)
        session.close()


class TestHierarchicalOverTheWire:
    def test_hierarchical_method(self, client, server_fixture):
        trial_id = server_fixture[4]
        result = client.cluster_trial(
            trial_id, k=2, metric_name="PAPI_FP_OPS", method="hierarchical"
        )
        assert result["k"] == 2
        assert sum(result["sizes"]) == 27

    def test_unknown_method_rejected(self, client, server_fixture):
        trial_id = server_fixture[4]
        with pytest.raises(AnalysisError, match="unknown clustering method"):
            client.cluster_trial(trial_id, k=2, method="dbscan")

    def test_hierarchical_requires_k(self, client, server_fixture):
        trial_id = server_fixture[4]
        with pytest.raises(AnalysisError, match="requires explicit k"):
            client.cluster_trial(trial_id, method="hierarchical")


class TestGetStats:
    def test_get_stats_rpc(self, client):
        doc = client.get_stats()
        assert "ts" in doc
        metrics = doc["metrics"]
        # The server absorbed its database's counters before snapshotting.
        assert any(name.startswith("db.") for name in metrics)
        assert "server.requests" in metrics

    def test_get_stats_reflects_traffic(self, client):
        before = client.get_stats()["metrics"]["server.requests"]["value"]
        client.ping()
        after = client.get_stats()["metrics"]["server.requests"]["value"]
        assert after >= before + 1


class TestMountedTelemetry:
    def test_serves_http_alongside_rpc(self):
        import json as _json
        import urllib.request

        url = "minisql://explorer-telemetry-tests"
        PerfDMFSession(url).close()
        sock = SocketServer(AnalysisServer(url), telemetry_port=0)
        host, port = sock.start()
        try:
            assert sock.telemetry_address is not None
            thost, tport = sock.telemetry_address
            with urllib.request.urlopen(
                f"http://{thost}:{tport}/healthz", timeout=10.0
            ) as resp:
                doc = _json.loads(resp.read())
            assert doc["status"] == "ok"
            assert doc["serving"] is True
            assert doc["in_flight_requests"] == 0
            with urllib.request.urlopen(
                f"http://{thost}:{tport}/metrics", timeout=10.0
            ) as resp:
                assert b"server_requests" in resp.read()
            # RPC still answers on its own socket.
            with PerfExplorerClient(host, port) as c:
                assert c.ping() == "pong"
        finally:
            sock.stop()
        reset_shared_databases()

    def test_no_telemetry_by_default(self):
        url = "minisql://explorer-telemetry-off-tests"
        PerfDMFSession(url).close()
        sock = SocketServer(AnalysisServer(url))
        sock.start()
        try:
            assert sock.telemetry_address is None
        finally:
            sock.stop()
        reset_shared_databases()
