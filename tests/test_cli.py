"""Tests for the perfdmf command-line tools."""

import pytest

from repro.cli import main
from repro.tau.apps import EVH1, SPPM
from repro.tau.writers import write_tau_profiles


@pytest.fixture
def db(tmp_path):
    return f"sqlite://{tmp_path}/cli.db"


@pytest.fixture
def loaded_db(db, tmp_path, capsys):
    """A database with one EVH1 trial loaded via the CLI."""
    source = EVH1(problem_size=0.05, timesteps=1).run(4)
    write_tau_profiles(source, tmp_path / "profiles")
    assert main(["configure", "--db", db]) == 0
    assert main([
        "load", "--db", db, "--app", "evh1", "--exp", "scaling",
        "--trial", "P=4", str(tmp_path / "profiles"),
    ]) == 0
    capsys.readouterr()
    return db


class TestConfigure:
    def test_creates_schema(self, db, capsys):
        assert main(["configure", "--db", db]) == 0
        assert "schema ready" in capsys.readouterr().out

    def test_idempotent(self, db):
        assert main(["configure", "--db", db]) == 0
        assert main(["configure", "--db", db]) == 0


class TestLoad:
    def test_load_reports_points(self, db, tmp_path, capsys):
        source = EVH1(problem_size=0.05, timesteps=1).run(2)
        write_tau_profiles(source, tmp_path / "p")
        code = main([
            "load", "--db", db, "--app", "a", "--exp", "e",
            "--trial", "t", str(tmp_path / "p"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "data points" in out
        assert "TIME" in out

    def test_load_missing_target(self, db, tmp_path, capsys):
        code = main([
            "load", "--db", db, "--app", "a", "--exp", "e",
            "--trial", "t", str(tmp_path / "nope"),
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_load_explicit_format(self, db, tmp_path, capsys):
        from repro.tau.writers import write_svpablo_output

        source = EVH1(problem_size=0.05, timesteps=1).run(2)
        path = write_svpablo_output(source, tmp_path / "x.dat")
        code = main([
            "load", "--db", db, "--app", "a", "--exp", "e",
            "--trial", "t", str(path), "--format", "svpablo",
        ])
        assert code == 0


class TestListShow:
    def test_list_tree(self, loaded_db, capsys):
        assert main(["list", "--db", loaded_db]) == 0
        out = capsys.readouterr().out
        assert "evh1" in out and "P=4" in out
        assert "trial ids:" in out

    def test_show_aggregate(self, loaded_db, capsys):
        assert main(["show", "--db", loaded_db, "--trial-id", "1"]) == 0
        out = capsys.readouterr().out
        assert "riemann" in out
        assert "|" in out  # bars

    def test_show_summary(self, loaded_db, capsys):
        assert main([
            "show", "--db", loaded_db, "--trial-id", "1", "--view", "summary",
        ]) == 0
        assert "Group breakdown" in capsys.readouterr().out

    def test_show_event_view(self, loaded_db, capsys):
        assert main([
            "show", "--db", loaded_db, "--trial-id", "1",
            "--view", "event", "--event", "riemann",
        ]) == 0
        assert capsys.readouterr().out.count("n,c,t") == 4

    def test_show_event_requires_name(self, loaded_db, capsys):
        assert main([
            "show", "--db", loaded_db, "--trial-id", "1", "--view", "event",
        ]) == 1


class TestExportAggregateDerive:
    def test_export_xml(self, loaded_db, tmp_path, capsys):
        out_path = tmp_path / "out.xml"
        assert main([
            "export", "--db", loaded_db, "--trial-id", "1",
            "-o", str(out_path),
        ]) == 0
        assert out_path.exists()
        from repro.core.io_ import parse_xml

        assert parse_xml(out_path).num_threads == 4

    def test_aggregate(self, loaded_db, capsys):
        assert main([
            "aggregate", "--db", loaded_db, "--trial-id", "1",
            "--op", "mean", "--event", "riemann",
        ]) == 0
        out = capsys.readouterr().out
        assert "mean(exclusive) over riemann:" in out

    def test_derive_then_aggregate(self, loaded_db, capsys):
        assert main([
            "derive", "--db", loaded_db, "--trial-id", "1",
            "--name", "T2", "--expr", "TIME * 2",
        ]) == 0
        assert main([
            "aggregate", "--db", loaded_db, "--trial-id", "1",
            "--op", "max", "--metric", "T2", "--event", "riemann",
        ]) == 0

    def test_derive_duplicate_fails_cleanly(self, loaded_db, capsys):
        main(["derive", "--db", loaded_db, "--trial-id", "1",
              "--name", "D", "--expr", "TIME"])
        code = main(["derive", "--db", loaded_db, "--trial-id", "1",
                     "--name", "D", "--expr", "TIME"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestSpeedupCluster:
    def test_speedup_over_experiment(self, db, capsys):
        from repro.paraprof import ArchiveManager

        manager = ArchiveManager(db)
        app = EVH1(problem_size=0.2, timesteps=1)
        for p in (1, 2, 4):
            manager.import_profile(app.run(p), "evh1", "scaling", f"P={p}")
        capsys.readouterr()
        assert main(["speedup", "--db", db, "--app", "evh1",
                     "--exp", "scaling"]) == 0
        out = capsys.readouterr().out
        assert "riemann" in out and "baseline P=1" in out

    def test_speedup_missing_app(self, db, capsys):
        main(["configure", "--db", db])
        assert main(["speedup", "--db", db, "--app", "nope",
                     "--exp", "x"]) == 1

    def test_cluster(self, db, capsys):
        from repro.paraprof import ArchiveManager

        manager = ArchiveManager(db)
        manager.import_profile(
            SPPM(problem_size=0.01, timesteps=1).run(27),
            "sppm", "c", "t",
        )
        capsys.readouterr()
        assert main(["cluster", "--db", db, "--trial-id", "1",
                     "--metric", "PAPI_FP_OPS", "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "k = 2" in out and "cluster 0" in out

    def test_cluster_bad_metric(self, db, capsys):
        from repro.paraprof import ArchiveManager

        manager = ArchiveManager(db)
        manager.import_profile(
            EVH1(problem_size=0.05, timesteps=1).run(2), "a", "e", "t"
        )
        capsys.readouterr()
        assert main(["cluster", "--db", db, "--trial-id", "1",
                     "--metric", "NOPE"]) == 1
