"""Write → parse round-trips for every supported profile format.

Each supported format has a writer in ``repro.tau.writers`` and a parser
in ``repro.core.io_``.  These tests push a whole simulated trial through
each pair and compare the parsed model against the source model — every
event, every thread, every metric — at the fidelity the format can
actually carry:

==========  ==================================================================
format      fidelity
==========  ==================================================================
tau         lossless (%.16g text): values, calls, subroutines, groups,
            user events, metadata
gprof       exclusive at 0.01 s sampling resolution; inclusive only
            approximately recoverable from the call graph
mpip        lossy: per-task Application time + per-callsite MPI totals
dynaprof    exclusive and inclusive at %.6g; TOTAL row is synthetic
hpm         wall-clock at microsecond resolution, counters at +/- 1
psrun       whole-process totals only: one "Entire application" event
svpablo     lossless values for the first metric; calls preserved
==========  ==================================================================
"""

import pytest

from repro.core.io_ import (
    parse_dynaprof, parse_gprof, parse_hpm, parse_mpip, parse_psrun,
    parse_svpablo, parse_tau_profiles,
)
from repro.core.model import group as groups
from repro.tau.apps import EVH1, SPPM
from repro.tau.writers import (
    write_dynaprof_output, write_gprof_output, write_hpm_output,
    write_mpip_report, write_psrun_output, write_svpablo_output,
    write_tau_profiles,
)


@pytest.fixture(scope="module")
def trial():
    """Single-metric (TIME) trial with MPI events and user events."""
    ds = EVH1(problem_size=0.05, timesteps=1).run(4)
    ds.metadata["node_name"] = "sim-node"
    return ds


@pytest.fixture(scope="module")
def counter_trial():
    """Multi-metric trial (TIME + hardware counters)."""
    return SPPM(problem_size=0.01, timesteps=1).run(8)


def _thread_key(thread):
    return (thread.node_id, thread.context_id, thread.thread_id)


def _pairs(src, dst):
    """Yield (source thread, parsed thread) matched by (n, c, t)."""
    assert dst.num_threads == src.num_threads
    for thread in src.all_threads():
        other = dst.get_thread(*_thread_key(thread))
        assert other is not None, f"thread {_thread_key(thread)} lost"
        yield thread, other


def _profile(ds, thread, event_name):
    event = ds.get_interval_event(event_name)
    assert event is not None, f"event {event_name!r} lost"
    profile = thread.function_profiles.get(event.index)
    assert profile is not None, (
        f"no profile for {event_name!r} on {_thread_key(thread)}"
    )
    return profile


class TestTauRoundtrip:
    """TAU's own format carries the full model."""

    def test_interval_values_all_threads(self, trial, tmp_path):
        write_tau_profiles(trial, tmp_path)
        back = parse_tau_profiles(tmp_path)
        assert set(back.interval_events) == set(trial.interval_events)
        for src_t, dst_t in _pairs(trial, back):
            for src_p in src_t.function_profiles.values():
                dst_p = _profile(back, dst_t, src_p.event.name)
                assert dst_p.calls == src_p.calls
                assert dst_p.subroutines == src_p.subroutines
                assert dst_p.get_exclusive(0) == pytest.approx(
                    src_p.get_exclusive(0)
                )
                assert dst_p.get_inclusive(0) == pytest.approx(
                    src_p.get_inclusive(0)
                )

    def test_groups_preserved(self, trial, tmp_path):
        write_tau_profiles(trial, tmp_path)
        back = parse_tau_profiles(tmp_path)
        for name, event in trial.interval_events.items():
            assert back.get_interval_event(name).group == event.group

    def test_user_events_all_threads(self, trial, tmp_path):
        write_tau_profiles(trial, tmp_path)
        back = parse_tau_profiles(tmp_path)
        assert set(back.atomic_events) == set(trial.atomic_events)
        for src_t, dst_t in _pairs(trial, back):
            for src_u in src_t.user_event_profiles.values():
                event = back.get_atomic_event(src_u.event.name)
                dst_u = dst_t.user_event_profiles[event.index]
                assert dst_u.count == src_u.count
                assert dst_u.max_value == pytest.approx(src_u.max_value)
                assert dst_u.min_value == pytest.approx(src_u.min_value)
                assert dst_u.mean_value == pytest.approx(src_u.mean_value)
                assert dst_u.sumsqr == pytest.approx(src_u.sumsqr)

    def test_multi_metric_values(self, counter_trial, tmp_path):
        write_tau_profiles(counter_trial, tmp_path)
        back = parse_tau_profiles(tmp_path)
        assert {m.name for m in back.metrics} == {
            m.name for m in counter_trial.metrics
        }
        for src_t, dst_t in _pairs(counter_trial, back):
            for src_p in src_t.function_profiles.values():
                dst_p = _profile(back, dst_t, src_p.event.name)
                for metric in counter_trial.metrics:
                    dst_m = back.get_metric(metric.name)
                    assert dst_p.get_inclusive(dst_m.index) == pytest.approx(
                        src_p.get_inclusive(metric.index)
                    ), (src_p.event.name, metric.name)


class TestGprofRoundtrip:
    """gprof samples at 0.01 s: exclusive is quantised, inclusive is
    reconstructed from the call graph."""

    RESOLUTION_USEC = 2e4  # one 0.01 s sample, in microseconds

    def test_exclusive_and_calls_all_threads(self, trial, tmp_path):
        write_gprof_output(trial, tmp_path)
        back = parse_gprof(tmp_path)
        assert set(back.interval_events) == set(trial.interval_events)
        for src_t, dst_t in _pairs(trial, back):
            for src_p in src_t.function_profiles.values():
                dst_p = _profile(back, dst_t, src_p.event.name)
                assert dst_p.calls == int(src_p.calls)
                assert dst_p.get_exclusive(0) == pytest.approx(
                    src_p.get_exclusive(0), abs=self.RESOLUTION_USEC
                ), src_p.event.name

    def test_inclusive_ordering_recovered(self, trial, tmp_path):
        # The call graph cannot restore exact inclusive times, but it
        # must keep inclusive >= exclusive and the root on top.
        write_gprof_output(trial, tmp_path)
        back = parse_gprof(tmp_path)
        for _src_t, dst_t in _pairs(trial, back):
            main = _profile(back, dst_t, "main")
            for dst_p in dst_t.function_profiles.values():
                assert (
                    dst_p.get_inclusive(0)
                    >= dst_p.get_exclusive(0) - self.RESOLUTION_USEC
                )
                assert main.get_inclusive(0) >= dst_p.get_inclusive(0) * 0.99


class TestMpipRoundtrip:
    """mpiP keeps only per-task app time and per-callsite MPI totals."""

    def _mpi_events(self, trial):
        return [
            e for e in trial.interval_events.values()
            if groups.COMMUNICATION in e.groups
        ]

    def test_application_time_per_task(self, trial, tmp_path):
        back = parse_mpip(write_mpip_report(trial, tmp_path / "app.mpiP"))
        tasks = list(enumerate(trial.all_threads()))
        assert back.num_threads == len(tasks)
        for task, src_t in tasks:
            dst_t = back.get_thread(task, 0, 0)
            app = _profile(back, dst_t, "Application")
            assert app.get_inclusive(0) == pytest.approx(
                src_t.max_inclusive(0), rel=1e-2
            )

    def test_every_callsite_total_per_rank(self, trial, tmp_path):
        back = parse_mpip(write_mpip_report(trial, tmp_path / "app.mpiP"))
        mpi_events = self._mpi_events(trial)
        assert mpi_events, "fixture must contain MPI events"
        for site_id, event in enumerate(mpi_events, start=1):
            bare = event.name.split("[", 1)[0].strip()
            bare = bare.replace("MPI_", "").rstrip("()")
            site_name = f"MPI_{bare}() [site {site_id}]"
            for task, src_t in enumerate(trial.all_threads()):
                src_p = src_t.function_profiles.get(event.index)
                if src_p is None or src_p.calls == 0:
                    continue
                dst_p = _profile(back, back.get_thread(task, 0, 0), site_name)
                assert dst_p.calls == int(src_p.calls)
                # total = count x mean, mean printed at 4 significant digits
                assert dst_p.get_inclusive(0) == pytest.approx(
                    src_p.get_inclusive(0), rel=1e-3
                ), site_name

    def test_sites_carry_mpi_group(self, trial, tmp_path):
        back = parse_mpip(write_mpip_report(trial, tmp_path / "app.mpiP"))
        sites = [n for n in back.interval_events if "[site" in n]
        assert len(sites) == len(self._mpi_events(trial))
        for name in sites:
            assert groups.COMMUNICATION in back.get_interval_event(name).groups


class TestDynaprofRoundtrip:
    """dynaprof tables print values at %.6g — both sections round-trip."""

    def test_both_sections_all_threads(self, trial, tmp_path):
        write_dynaprof_output(trial, tmp_path)
        back = parse_dynaprof(tmp_path)
        assert set(back.interval_events) == set(trial.interval_events)
        for src_t, dst_t in _pairs(trial, back):
            for src_p in src_t.function_profiles.values():
                dst_p = _profile(back, dst_t, src_p.event.name)
                assert dst_p.calls == int(src_p.calls)
                assert dst_p.get_exclusive(0) == pytest.approx(
                    src_p.get_exclusive(0), rel=1e-4
                )
                assert dst_p.get_inclusive(0) == pytest.approx(
                    src_p.get_inclusive(0), rel=1e-4
                )

    def test_metric_name_preserved(self, trial, tmp_path):
        write_dynaprof_output(trial, tmp_path)
        back = parse_dynaprof(tmp_path)
        assert back.metrics[0].name == trial.metrics[0].name


class TestHpmRoundtrip:
    """HPMToolkit: microsecond wall clock, integer counter totals."""

    def test_wall_clock_all_sections(self, counter_trial, tmp_path):
        write_hpm_output(counter_trial, tmp_path)
        back = parse_hpm(tmp_path)
        time_index = counter_trial.time_metric().index
        dst_time = back.time_metric()
        assert set(back.interval_events) == set(counter_trial.interval_events)
        for src_t, dst_t in _pairs(counter_trial, back):
            for src_p in src_t.function_profiles.values():
                dst_p = _profile(back, dst_t, src_p.event.name)
                assert dst_p.calls == int(src_p.calls)
                assert dst_p.get_inclusive(dst_time.index) == pytest.approx(
                    src_p.get_inclusive(time_index), abs=1.0
                )
                assert dst_p.get_exclusive(dst_time.index) == pytest.approx(
                    src_p.get_exclusive(time_index), abs=1.0
                )

    def test_counter_totals_all_sections(self, counter_trial, tmp_path):
        write_hpm_output(counter_trial, tmp_path)
        back = parse_hpm(tmp_path)
        time_metric = counter_trial.time_metric()
        counters = [m for m in counter_trial.metrics if m is not time_metric]
        assert counters, "fixture must have hardware counters"
        assert {m.name for m in back.metrics} == {
            m.name for m in counter_trial.metrics
        }
        for src_t, dst_t in _pairs(counter_trial, back):
            for src_p in src_t.function_profiles.values():
                dst_p = _profile(back, dst_t, src_p.event.name)
                for metric in counters:
                    dst_m = back.get_metric(metric.name)
                    assert dst_p.get_inclusive(dst_m.index) == pytest.approx(
                        src_p.get_inclusive(metric.index), abs=1.0
                    ), (src_p.event.name, metric.name)


class TestPsrunRoundtrip:
    """psrun keeps whole-process totals: one event, all counters."""

    def test_single_event_totals_per_rank(self, counter_trial, tmp_path):
        write_psrun_output(counter_trial, tmp_path)
        back = parse_psrun(tmp_path)
        assert back.num_interval_events == 1
        time_index = counter_trial.time_metric().index
        for src_t, dst_t in _pairs(counter_trial, back):
            whole = _profile(back, dst_t, "Entire application")
            assert whole.get_inclusive(0) == pytest.approx(
                src_t.max_inclusive(time_index), abs=1.0
            )

    def test_counter_totals_per_rank(self, counter_trial, tmp_path):
        write_psrun_output(counter_trial, tmp_path)
        back = parse_psrun(tmp_path)
        time_metric = counter_trial.time_metric()
        counters = [m for m in counter_trial.metrics if m is not time_metric]
        for src_t, dst_t in _pairs(counter_trial, back):
            whole = _profile(back, dst_t, "Entire application")
            for metric in counters:
                dst_m = back.get_metric(metric.name)
                assert dst_m is not None, metric.name
                expected = max(
                    p.get_inclusive(metric.index)
                    for p in src_t.function_profiles.values()
                )
                assert whole.get_inclusive(dst_m.index) == pytest.approx(
                    expected, abs=1.0
                ), metric.name


class TestSvPabloRoundtrip:
    """SDDF records carry full-precision values for the first metric."""

    def test_values_and_calls_all_ranks(self, trial, tmp_path):
        back = parse_svpablo(write_svpablo_output(trial, tmp_path / "t.sddf"))
        assert set(back.interval_events) == set(trial.interval_events)
        for src_t, dst_t in _pairs(trial, back):
            for src_p in src_t.function_profiles.values():
                dst_p = _profile(back, dst_t, src_p.event.name)
                assert dst_p.calls == int(src_p.calls)
                assert dst_p.get_exclusive(0) == pytest.approx(
                    src_p.get_exclusive(0)
                )
                assert dst_p.get_inclusive(0) == pytest.approx(
                    src_p.get_inclusive(0)
                )
