"""Differential SQL conformance harness: sqlite vs. MiniSQL.

One corpus of DDL/DML/SELECT statements runs against both runnable
backends through :mod:`repro.db.api` — the same route PerfDMF's session
layer uses — and every SELECT must return row-for-row identical results.
This is the conformance gate for planner work: any index or access-path
change that alters *results* (not just speed) fails here.

The corpus deliberately avoids the two documented engine divergences
(integer division of non-multiples, and comparisons between numeric
strings and numbers); everything else — joins, aggregates, ORDER BY
with NULLs and DESC, LIMIT/OFFSET, compound selects, constraint
violations — is fair game.
"""

import math

import pytest

from repro.db.api import IntegrityError, connect

# Each entry is (sql, params).  SELECTs are compared row-for-row;
# statements wrapped in Err(...) must raise IntegrityError on BOTH
# backends and leave both databases in the same state.


class Err:
    """Marks a statement expected to raise IntegrityError on both engines."""

    def __init__(self, sql, params=()):
        self.sql = sql
        self.params = params


CORPUS = [
    # --- DDL -------------------------------------------------------------
    ("CREATE TABLE dept (id INTEGER PRIMARY KEY AUTOINCREMENT, "
     "name TEXT NOT NULL UNIQUE, budget REAL)", ()),
    ("CREATE TABLE emp (id INTEGER PRIMARY KEY AUTOINCREMENT, "
     "name TEXT NOT NULL, dept_id INTEGER REFERENCES dept(id), "
     "salary REAL, bonus REAL, hired TEXT, "
     "UNIQUE (name, dept_id))", ()),
    ("CREATE INDEX idx_emp_dept ON emp (dept_id)", ()),
    ("CREATE INDEX idx_emp_salary ON emp (salary)", ()),
    # --- DML -------------------------------------------------------------
    ("INSERT INTO dept (name, budget) VALUES (?, ?)", ("eng", 1000.0)),
    ("INSERT INTO dept (name, budget) VALUES (?, ?)", ("ops", 500.0)),
    ("INSERT INTO dept (name, budget) VALUES (?, ?)", ("hr", None)),
    ("INSERT INTO emp (name, dept_id, salary, bonus, hired) VALUES "
     "('ada', 1, 120.0, 10.0, '2001-01-01'), "
     "('bob', 1, 80.0, NULL, '2002-02-02'), "
     "('cyd', 2, 95.5, 5.0, '2003-03-03'), "
     "('dee', 2, 80.0, 2.5, '2004-04-04'), "
     "('eli', NULL, NULL, NULL, NULL), "
     "('fay', 3, 60.25, 1.0, '2005-05-05')", ()),
    # constraint violations must fail identically and change nothing
    Err("INSERT INTO dept (name) VALUES ('eng')"),
    Err("INSERT INTO emp (name, dept_id) VALUES ('ada', 1)"),
    Err("INSERT INTO emp (name) VALUES (NULL)"),
    Err("INSERT INTO dept (id, name) VALUES (1, 'dup-pk')"),
    ("SELECT count(*) FROM dept", ()),
    ("SELECT count(*) FROM emp", ()),
    # --- basic SELECT / WHERE -------------------------------------------
    ("SELECT id, name FROM emp ORDER BY id", ()),
    ("SELECT name FROM emp WHERE dept_id = 1 ORDER BY name", ()),
    ("SELECT name FROM emp WHERE dept_id = ? ORDER BY name DESC", (2,)),
    ("SELECT name FROM emp WHERE salary > 80.0 ORDER BY name", ()),
    ("SELECT name FROM emp WHERE salary >= 80.0 ORDER BY name", ()),
    ("SELECT name FROM emp WHERE salary < 95.5 ORDER BY name", ()),
    ("SELECT name FROM emp WHERE salary <= ? ORDER BY name", (95.5,)),
    ("SELECT name FROM emp WHERE salary BETWEEN 70 AND 100 ORDER BY name", ()),
    ("SELECT name FROM emp WHERE salary NOT BETWEEN 70 AND 100 "
     "ORDER BY name", ()),
    ("SELECT name FROM emp WHERE salary <> 80.0 ORDER BY name", ()),
    ("SELECT name FROM emp WHERE dept_id = 1 AND salary > 100 "
     "ORDER BY name", ()),
    ("SELECT name FROM emp WHERE dept_id = 1 OR salary < 70 "
     "ORDER BY name", ()),
    ("SELECT name FROM emp WHERE NOT (dept_id = 1) ORDER BY name", ()),
    ("SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY name", ()),
    ("SELECT name FROM emp WHERE name NOT LIKE 'a%' ORDER BY name", ()),
    ("SELECT name FROM emp WHERE dept_id IN (1, 3) ORDER BY name", ()),
    ("SELECT name FROM emp WHERE dept_id NOT IN (1, 3) ORDER BY name", ()),
    ("SELECT name FROM emp WHERE dept_id IN "
     "(SELECT id FROM dept WHERE budget > 600) ORDER BY name", ()),
    # --- NULL semantics --------------------------------------------------
    ("SELECT name FROM emp WHERE salary IS NULL ORDER BY name", ()),
    ("SELECT name FROM emp WHERE salary IS NOT NULL ORDER BY name", ()),
    ("SELECT name FROM emp WHERE bonus > 0 ORDER BY name", ()),  # NULL no-match
    ("SELECT name FROM emp WHERE bonus = bonus ORDER BY name", ()),
    ("SELECT count(*), count(salary), count(bonus) FROM emp", ()),
    ("SELECT count(*) FROM emp WHERE dept_id IS NULL OR salary > 90", ()),
    ("SELECT coalesce(bonus, -1.0) FROM emp ORDER BY id", ()),
    ("SELECT ifnull(salary, 0.0) FROM emp ORDER BY id", ()),
    ("SELECT nullif(salary, 80.0) FROM emp ORDER BY id", ()),
    # NULL ordering: first on ASC, last on DESC (sqlite semantics)
    ("SELECT name, salary FROM emp ORDER BY salary, name", ()),
    ("SELECT name, salary FROM emp ORDER BY salary DESC, name", ()),
    ("SELECT name, dept_id FROM emp ORDER BY dept_id DESC, name DESC", ()),
    # --- expressions and scalar functions -------------------------------
    ("SELECT name, salary + coalesce(bonus, 0) FROM emp "
     "WHERE salary IS NOT NULL ORDER BY name", ()),
    ("SELECT name, salary * 2.0 - 10.0 FROM emp "
     "WHERE salary IS NOT NULL ORDER BY name", ()),
    ("SELECT upper(name), lower(name), length(name) FROM emp "
     "ORDER BY id", ()),
    ("SELECT substr(name, 1, 2) FROM emp ORDER BY id", ()),
    ("SELECT name || '-' || hired FROM emp WHERE hired IS NOT NULL "
     "ORDER BY id", ()),
    ("SELECT abs(-5), round(2.567, 2), round(95.5)", ()),
    ("SELECT CASE WHEN salary > 90 THEN 'high' WHEN salary > 70 "
     "THEN 'mid' ELSE 'low' END FROM emp WHERE salary IS NOT NULL "
     "ORDER BY id", ()),
    ("SELECT CAST('12' AS INTEGER), CAST(3 AS TEXT), CAST(2 AS REAL)", ()),
    ("SELECT replace(name, 'a', 'o') FROM emp ORDER BY id", ()),
    # --- aggregates / GROUP BY / HAVING ---------------------------------
    ("SELECT sum(salary), avg(salary), min(salary), max(salary) "
     "FROM emp", ()),
    ("SELECT sum(bonus) FROM emp WHERE name = 'eli'", ()),  # empty -> NULL
    ("SELECT count(DISTINCT dept_id) FROM emp", ()),
    ("SELECT dept_id, count(*) AS c FROM emp GROUP BY dept_id "
     "ORDER BY c DESC, dept_id", ()),
    ("SELECT dept_id, sum(salary) AS total FROM emp "
     "WHERE salary IS NOT NULL GROUP BY dept_id ORDER BY dept_id", ()),
    ("SELECT dept_id, avg(salary) AS a FROM emp GROUP BY dept_id "
     "HAVING avg(salary) > 85 ORDER BY dept_id", ()),
    ("SELECT dept_id, count(*) FROM emp GROUP BY dept_id "
     "HAVING count(*) > 1 ORDER BY dept_id", ()),
    ("SELECT stddev(salary) FROM emp", ()),
    # --- joins -----------------------------------------------------------
    ("SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_id = d.id "
     "ORDER BY e.name", ()),
    ("SELECT e.name, d.name FROM emp e LEFT JOIN dept d "
     "ON e.dept_id = d.id ORDER BY e.name", ()),
    ("SELECT d.name, count(e.id) AS headcount FROM dept d "
     "LEFT JOIN emp e ON e.dept_id = d.id GROUP BY d.name "
     "ORDER BY d.name", ()),
    ("SELECT e.name, d.budget FROM emp e JOIN dept d "
     "ON e.dept_id = d.id WHERE d.budget > 600 ORDER BY e.name", ()),
    ("SELECT e1.name, e2.name FROM emp e1 JOIN emp e2 "
     "ON e1.dept_id = e2.dept_id AND e1.id < e2.id "
     "ORDER BY e1.name, e2.name", ()),
    ("SELECT e.name, d.name FROM emp e CROSS JOIN dept d "
     "ORDER BY e.name, d.name LIMIT 5", ()),
    # --- ORDER BY / LIMIT / OFFSET / DISTINCT ---------------------------
    ("SELECT name FROM emp ORDER BY salary DESC, name LIMIT 3", ()),
    ("SELECT name FROM emp ORDER BY name LIMIT 2 OFFSET 2", ()),
    ("SELECT name FROM emp ORDER BY name LIMIT ? OFFSET ?", (3, 1)),
    ("SELECT DISTINCT dept_id FROM emp ORDER BY dept_id", ()),
    ("SELECT DISTINCT salary FROM emp WHERE salary IS NOT NULL "
     "ORDER BY salary DESC", ()),
    ("SELECT name FROM emp ORDER BY 1 DESC LIMIT 4", ()),
    # --- compound selects ------------------------------------------------
    ("SELECT name FROM emp WHERE dept_id = 1 UNION "
     "SELECT name FROM emp WHERE salary > 90 ORDER BY name", ()),
    ("SELECT dept_id FROM emp UNION ALL SELECT id FROM dept "
     "ORDER BY 1", ()),
    ("SELECT name FROM emp EXCEPT SELECT name FROM emp "
     "WHERE dept_id = 1 ORDER BY name", ()),
    ("SELECT dept_id FROM emp INTERSECT SELECT id FROM dept "
     "ORDER BY 1", ()),
    # --- UPDATE / DELETE -------------------------------------------------
    ("UPDATE emp SET bonus = 0.0 WHERE bonus IS NULL", ()),
    ("SELECT name, bonus FROM emp ORDER BY id", ()),
    ("UPDATE emp SET salary = salary * 1.1 WHERE dept_id = 2", ()),
    ("SELECT name, salary FROM emp WHERE dept_id = 2 ORDER BY id", ()),
    Err("UPDATE emp SET name = NULL WHERE id = 1"),
    ("DELETE FROM emp WHERE salary IS NULL", ()),
    ("SELECT count(*) FROM emp", ()),
    ("INSERT INTO emp (name, dept_id, salary) "
     "SELECT name || '2', dept_id, salary FROM emp WHERE dept_id = 1", ()),
    ("SELECT name FROM emp ORDER BY name", ()),
    ("DELETE FROM emp WHERE name LIKE '%2'", ()),
    ("SELECT count(*) FROM emp", ()),
    # --- ALTER TABLE -----------------------------------------------------
    ("ALTER TABLE dept ADD COLUMN location TEXT", ()),
    ("UPDATE dept SET location = 'hq' WHERE id = 1", ()),
    ("SELECT name, location FROM dept ORDER BY id", ()),
    # --- bulk-load mode --------------------------------------------------
    # MiniSQL defers secondary-index maintenance inside the pragma pair;
    # sqlite ignores the (unknown) pragma.  Results must stay identical
    # both during the bulk window (full scans) and after the rebuild.
    ("PRAGMA bulk_load(on)", ()),
    ("INSERT INTO emp (name, dept_id, salary, bonus, hired) VALUES "
     "('gus', 3, 70.0, 0.0, '2006-06-06'), "
     "('hal', 3, 71.0, 0.0, '2007-07-07'), "
     "('ivy', 1, 72.0, 0.0, '2008-08-08')", ()),
    ("SELECT name FROM emp WHERE dept_id = 3 ORDER BY name", ()),
    ("SELECT name FROM emp WHERE salary BETWEEN 69 AND 73 ORDER BY name", ()),
    ("UPDATE emp SET salary = 73.5 WHERE name = 'gus'", ()),
    ("SELECT name, salary FROM emp WHERE dept_id = 3 ORDER BY name", ()),
    # a violation inside the bulk window fails on both and changes nothing
    Err("INSERT INTO dept (name) VALUES ('eng')"),
    ("SELECT count(*) FROM dept", ()),
    ("PRAGMA bulk_load = off", ()),
    ("SELECT name FROM emp WHERE salary BETWEEN 69 AND 74 ORDER BY name", ()),
    ("SELECT name FROM emp WHERE dept_id = 1 ORDER BY name", ()),
    ("DELETE FROM emp WHERE name IN ('gus', 'hal', 'ivy')", ()),
    ("SELECT count(*) FROM emp", ()),
]


def _normalise(rows):
    out = []
    for row in rows:
        out.append(tuple(
            round(v, 9) if isinstance(v, float) and math.isfinite(v) else v
            for v in row
        ))
    return out


@pytest.fixture(
    params=["on", "off", "columnar"],
    ids=["compile-on", "compile-off", "columnar"],
)
def backends(request):
    """Backend pair, run with MiniSQL's query compiler, on the pure
    interpreter, and with columnar storage plus vectorized execution —
    the corpus must pass identically every way."""
    sqlite_conn = connect("sqlite://:memory:")
    minisql_conn = connect("minisql://:memory:")
    if request.param == "columnar":
        minisql_conn.execute("PRAGMA compile(on)")
        minisql_conn.execute("PRAGMA columnar(on)")
    else:
        minisql_conn.execute(f"PRAGMA compile({request.param})")
    yield sqlite_conn, minisql_conn
    sqlite_conn.close()
    minisql_conn.close()


def test_corpus_is_large_enough():
    assert len(CORPUS) >= 60


def test_corpus_identical_on_both_backends(backends):
    sqlite_conn, minisql_conn = backends
    for position, entry in enumerate(CORPUS):
        if isinstance(entry, Err):
            for conn in backends:
                with pytest.raises(IntegrityError):
                    conn.execute(entry.sql, entry.params)
                conn.rollback()
            continue
        sql, params = entry
        results = []
        for conn in backends:
            cursor = conn.execute(sql, params)
            if sql.lstrip().upper().startswith("SELECT"):
                results.append(_normalise(cursor.fetchall()))
            else:
                conn.commit()
                results.append(None)
        assert results[0] == results[1], (
            f"statement #{position} diverged: {sql!r}\n"
            f"  sqlite : {results[0]!r}\n"
            f"  minisql: {results[1]!r}"
        )


def test_divergence_is_detected(backends):
    """The harness itself must be able to fail: perturb one backend."""
    sqlite_conn, minisql_conn = backends
    for conn in backends:
        conn.execute("CREATE TABLE probe (v INTEGER)")
        conn.execute("INSERT INTO probe VALUES (1)")
    minisql_conn.execute("INSERT INTO probe VALUES (2)")
    a = sqlite_conn.query("SELECT count(*) FROM probe")
    b = minisql_conn.query("SELECT count(*) FROM probe")
    assert a != b
