"""Hand-computed expected values for the toolkit statistics and the
derived-metric expression evaluator.

Every assertion here is against a number worked out by hand (shown in
the comments), not against a numpy/secondary implementation — these pin
the exact semantics (ddof=1 stddev, max/mean imbalance, left-assoc
arithmetic, divide-by-zero convention) independent of the library code.
"""

import math

import pytest

from repro.core.model import DataSource
from repro.core.model.derived_expr import (
    evaluate_metric_expression, metric_names_in,
)
from repro.core.toolkit import (
    event_statistics, event_values, group_breakdown, load_imbalance,
    top_events,
)


def make_trial(values_by_event, inclusive_by_event=None):
    """Trial where event e has the given exclusive value on thread i."""
    ds = DataSource()
    ds.add_metric("TIME")
    n_threads = len(next(iter(values_by_event.values())))
    for t in range(n_threads):
        ds.add_thread(t, 0, 0)
    for name, values in values_by_event.items():
        event = ds.add_interval_event(name)
        inclusives = (inclusive_by_event or {}).get(name, values)
        for t, (exc, inc) in enumerate(zip(values, inclusives)):
            fp = ds.get_thread(t, 0, 0).get_or_create_function_profile(event)
            fp.set_exclusive(0, exc)
            fp.set_inclusive(0, inc)
            fp.calls = 1
    ds.generate_statistics()
    return ds


class TestEventStatisticsByHand:
    def test_two_four_six_eight(self):
        # values 2,4,6,8: total 20, mean 5, min 2, max 8
        # sample variance = ((-3)^2 + (-1)^2 + 1^2 + 3^2) / (4-1) = 20/3
        ds = make_trial({"f": [2.0, 4.0, 6.0, 8.0]})
        s = event_statistics(ds, "f")
        assert s.n_threads == 4
        assert s.total == 20.0
        assert s.mean == 5.0
        assert s.minimum == 2.0
        assert s.maximum == 8.0
        assert s.stddev == pytest.approx(math.sqrt(20.0 / 3.0))
        # imbalance = max/mean = 8/5
        assert s.imbalance == pytest.approx(1.6)

    def test_single_thread_has_zero_stddev(self):
        s = event_statistics(make_trial({"f": [7.0]}), "f")
        assert s.stddev == 0.0
        assert s.mean == 7.0

    def test_all_zero_imbalance_is_one(self):
        # mean 0 would divide by zero; defined as balanced
        s = event_statistics(make_trial({"f": [0.0, 0.0]}), "f")
        assert s.imbalance == 1.0

    def test_inclusive_channel(self):
        ds = make_trial(
            {"f": [1.0, 3.0]}, inclusive_by_event={"f": [10.0, 30.0]}
        )
        assert list(event_values(ds, "f")) == [1.0, 3.0]
        assert list(event_values(ds, "f", inclusive=True)) == [10.0, 30.0]
        assert event_statistics(ds, "f", inclusive=True).mean == 20.0


class TestRankingsByHand:
    # Per-thread exclusives:    a: 9, 1   b: 4, 4   c: 5, 0
    #   mean:   a=5.0  b=4.0  c=2.5   → mean order  a, b, c
    #   max:    a=9    b=4    c=5     → max order   a, c, b
    #   total:  a=10   b=8    c=5     → total order a, b, c
    VALUES = {"a": [9.0, 1.0], "b": [4.0, 4.0], "c": [5.0, 0.0]}

    def test_by_max_differs_from_by_mean(self):
        ds = make_trial(self.VALUES)
        assert [s.event for s in top_events(ds, by="mean_exclusive")] == [
            "a", "b", "c",
        ]
        assert [s.event for s in top_events(ds, by="max_exclusive")] == [
            "a", "c", "b",
        ]

    def test_by_total(self):
        ds = make_trial(self.VALUES)
        ranked = top_events(ds, n=2, by="total_exclusive")
        assert [(s.event, s.total) for s in ranked] == [("a", 10.0), ("b", 8.0)]

    def test_unknown_ranking_rejected(self):
        with pytest.raises(ValueError, match="unknown ranking"):
            top_events(make_trial({"a": [1.0]}), by="median_exclusive")


class TestTrialLevelByHand:
    def test_group_breakdown_sums(self):
        # compute: 3+5 (t0) + 2+0 (t1) = 10 ; MPI: 1 (t0) + 4 (t1) = 5
        ds = DataSource()
        ds.add_metric("TIME")
        compute = ds.add_interval_event("work", "TAU_DEFAULT")
        comm = ds.add_interval_event("MPI_Send()", "MPI")
        other = ds.add_interval_event("pack", "TAU_DEFAULT")
        for t, (w, m, p) in enumerate([(3.0, 1.0, 5.0), (2.0, 4.0, 0.0)]):
            thread = ds.add_thread(t, 0, 0)
            thread.get_or_create_function_profile(compute).set_exclusive(0, w)
            thread.get_or_create_function_profile(comm).set_exclusive(0, m)
            thread.get_or_create_function_profile(other).set_exclusive(0, p)
        totals = group_breakdown(ds)
        assert totals["TAU_DEFAULT"] == 10.0
        assert totals["MPI"] == 5.0

    def test_load_imbalance(self):
        # per-thread durations (max inclusive): 10, 20, 30, 40
        # mean 25, max 40 → imbalance 1.6
        ds = make_trial(
            {"main": [1.0, 1.0, 1.0, 1.0]},
            inclusive_by_event={"main": [10.0, 20.0, 30.0, 40.0]},
        )
        assert load_imbalance(ds) == pytest.approx(1.6)

    def test_perfectly_balanced_is_one(self):
        ds = make_trial(
            {"main": [5.0, 5.0]}, inclusive_by_event={"main": [9.0, 9.0]}
        )
        assert load_imbalance(ds) == 1.0


def ev(expr, **values):
    return evaluate_metric_expression(expr, lambda n: values[n])


class TestDerivedExpressionsByHand:
    def test_flops_rate(self):
        # 6e9 fp ops in 3e6 usec → 2000 ops/usec
        assert ev("PAPI_FP_OPS / TIME", PAPI_FP_OPS=6e9, TIME=3e6) == 2000.0

    def test_left_associativity(self):
        # 10 - 4 - 3 = (10-4)-3 = 3, not 10-(4-3) = 9
        assert ev("10 - 4 - 3") == 3.0
        # 8 / 4 / 2 = (8/4)/2 = 1, not 8/(4/2) = 4
        assert ev("8 / 4 / 2") == 1.0

    def test_precedence_mixed(self):
        # 2 + 3 * 4 - 6 / 2 = 2 + 12 - 3 = 11
        assert ev("2 + 3 * 4 - 6 / 2") == 11.0

    def test_nested_parentheses(self):
        # ((2 + 1) * (5 - 3)) / 4 = (3 * 2) / 4 = 1.5
        assert ev("((2 + 1) * (5 - 3)) / 4") == 1.5

    def test_unary_minus_binds_tighter_than_multiply(self):
        # -A * B with A=2, B=3 → (-2) * 3 = -6
        assert ev("-A * B", A=2.0, B=3.0) == -6.0

    def test_double_negation(self):
        assert ev("--A", A=2.5) == 2.5

    def test_divide_by_zero_inside_expression(self):
        # A / 0 contributes 0.0 (TAU convention); 3 + 0 = 3
        assert ev("B + A / 0", A=2.0, B=3.0) == 3.0
        # the convention applies to a zero-valued metric too
        assert ev("A / Z", A=2.0, Z=0.0) == 0.0

    def test_scientific_notation_values(self):
        # 2.5e2 / 1e-1 = 250 / 0.1 = 2500
        assert ev("2.5e2 / 1e-1") == 2500.0

    def test_miss_ratio(self):
        # 250 misses / 1000 accesses = 0.25
        assert ev(
            '"L1 DCM" / "L1 DCA"', **{"L1 DCM": 250.0, "L1 DCA": 1000.0}
        ) == 0.25

    def test_metric_names_in_mixed(self):
        names = metric_names_in('PAPI_FP_OPS / "WALL CLOCK" + 2e3 * TIME')
        assert names == ["PAPI_FP_OPS", "WALL CLOCK", "TIME"]
