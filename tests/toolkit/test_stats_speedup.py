"""Toolkit tests: statistics and the §5.2 speedup analyzer."""

import numpy as np
import pytest

from repro.core.model import DataSource, group
from repro.core.toolkit import (
    SpeedupAnalyzer, all_event_statistics, event_statistics, event_values,
    group_breakdown, load_imbalance, thread_metric_matrix, top_events,
)


def make_trial(values_by_event: dict[str, list[float]]) -> DataSource:
    """Build a trial where event e has exclusive=inclusive=values[i] on
    thread i."""
    ds = DataSource()
    ds.add_metric("TIME")
    n_threads = len(next(iter(values_by_event.values())))
    for t in range(n_threads):
        ds.add_thread(t, 0, 0)
    for name, values in values_by_event.items():
        event = ds.add_interval_event(name)
        for t, value in enumerate(values):
            if value is None:
                continue
            fp = ds.get_thread(t, 0, 0).get_or_create_function_profile(event)
            fp.set_inclusive(0, value)
            fp.set_exclusive(0, value)
            fp.calls = 1
    ds.generate_statistics()
    return ds


class TestEventStatistics:
    def test_basic(self):
        ds = make_trial({"f": [10.0, 20.0, 30.0, 40.0]})
        stats = event_statistics(ds, "f")
        assert stats.minimum == 10.0
        assert stats.maximum == 40.0
        assert stats.mean == 25.0
        assert stats.total == 100.0
        assert stats.stddev == pytest.approx(np.std([10, 20, 30, 40], ddof=1))

    def test_missing_thread_counts_as_zero(self):
        ds = make_trial({"f": [10.0, None]})
        stats = event_statistics(ds, "f")
        assert stats.minimum == 0.0
        assert stats.mean == 5.0

    def test_unknown_event_raises(self):
        ds = make_trial({"f": [1.0]})
        with pytest.raises(KeyError):
            event_statistics(ds, "g")

    def test_imbalance(self):
        ds = make_trial({"f": [10.0, 10.0, 10.0, 50.0]})
        assert event_statistics(ds, "f").imbalance == pytest.approx(50.0 / 20.0)

    def test_top_events_ranking(self):
        ds = make_trial({"a": [1.0, 1.0], "b": [10.0, 10.0], "c": [5.0, 5.0]})
        names = [s.event for s in top_events(ds, n=2)]
        assert names == ["b", "c"]

    def test_all_event_statistics_covers_all(self):
        ds = make_trial({"a": [1.0], "b": [2.0]})
        assert {s.event for s in all_event_statistics(ds)} == {"a", "b"}


class TestMatrixAndGroups:
    def test_thread_metric_matrix(self):
        ds = make_trial({"a": [1.0, 2.0], "b": [3.0, 4.0]})
        matrix, names = thread_metric_matrix(ds)
        assert matrix.shape == (2, 2)
        assert matrix[1, names.index("b")] == 4.0

    def test_group_breakdown(self):
        ds = DataSource()
        ds.add_metric("TIME")
        t = ds.add_thread(0, 0, 0)
        for name, g, v in [
            ("solve", group.COMPUTATION, 70.0),
            ("MPI_Send()", group.COMMUNICATION, 20.0),
            ("write", group.IO, 10.0),
        ]:
            fp = t.get_or_create_function_profile(ds.add_interval_event(name, g))
            fp.set_exclusive(0, v)
            fp.set_inclusive(0, v)
        breakdown = group_breakdown(ds)
        assert breakdown[group.COMPUTATION] == 70.0
        assert breakdown[group.IO] == 10.0

    def test_load_imbalance(self):
        ds = make_trial({"main": [100.0, 100.0, 100.0, 140.0]})
        assert load_imbalance(ds) == pytest.approx(140.0 / 110.0)


class TestSpeedupAnalyzer:
    def _perfect_scaling(self):
        an = SpeedupAnalyzer()
        for p in (1, 2, 4):
            an.add_trial(p, make_trial({"work": [100.0 / p] * p}))
        return an

    def test_linear_speedup(self):
        an = self._perfect_scaling()
        (curve,) = an.analyze(["work"])
        assert [pt.mean for pt in curve.points] == pytest.approx([1.0, 2.0, 4.0])
        assert curve.classify() == "scalable"

    def test_min_max_spread_from_imbalance(self):
        an = SpeedupAnalyzer()
        an.add_trial(1, make_trial({"work": [100.0]}))
        an.add_trial(4, make_trial({"work": [20.0, 25.0, 25.0, 30.0]}))
        (curve,) = an.analyze(["work"])
        point = curve.points[-1]
        assert point.minimum == pytest.approx(100.0 / 30.0)
        assert point.maximum == pytest.approx(100.0 / 20.0)
        assert point.minimum < point.mean < point.maximum

    def test_serial_routine_saturates(self):
        an = SpeedupAnalyzer()
        for p in (1, 2, 4, 8):
            an.add_trial(p, make_trial({"serial": [50.0] * p}))
        (curve,) = an.analyze()
        assert curve.points[-1].mean == pytest.approx(1.0)
        assert curve.classify() == "saturating"

    def test_degrading_routine(self):
        an = SpeedupAnalyzer()
        an.add_trial(1, make_trial({"comm": [10.0]}))
        an.add_trial(2, make_trial({"comm": [8.0] * 2}))
        an.add_trial(4, make_trial({"comm": [20.0] * 4}))
        (curve,) = an.analyze()
        assert curve.classify() == "degrading"

    def test_efficiency(self):
        an = self._perfect_scaling()
        (curve,) = an.analyze()
        assert curve.points[-1].efficiency == pytest.approx(1.0)

    def test_routine_missing_in_larger_run_skipped(self):
        an = SpeedupAnalyzer()
        an.add_trial(1, make_trial({"a": [10.0], "b": [5.0]}))
        an.add_trial(2, make_trial({"a": [5.0, 5.0]}))
        curves = {c.event: c for c in an.analyze()}
        assert len(curves["b"].points) == 1  # only the baseline point

    def test_application_speedup(self):
        an = self._perfect_scaling()
        points = an.application_speedup()
        assert points[-1].mean == pytest.approx(4.0)

    def test_duplicate_processor_count_rejected(self):
        an = SpeedupAnalyzer()
        an.add_trial(2, make_trial({"a": [1.0, 1.0]}))
        with pytest.raises(ValueError):
            an.add_trial(2, make_trial({"a": [1.0, 1.0]}))

    def test_single_trial_rejected(self):
        an = SpeedupAnalyzer()
        an.add_trial(1, make_trial({"a": [1.0]}))
        with pytest.raises(ValueError, match=">= 2"):
            an.analyze()

    def test_report_contains_min_mean_max(self):
        an = self._perfect_scaling()
        text = an.report()
        assert "min" in text and "mean" in text and "max" in text
        assert "work" in text
