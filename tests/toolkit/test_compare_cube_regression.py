"""Toolkit tests: comparison, CUBE algebra, regression detection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import DataSource
from repro.core.toolkit import (
    biggest_changes, compare_trials, comparison_report, detect_regressions,
    diff, mean, merge, regression_report,
)


def trial(values: dict[str, list[float]], metrics=("TIME",)) -> DataSource:
    ds = DataSource()
    for m in metrics:
        ds.add_metric(m)
    n = len(next(iter(values.values()))) if values else 0
    for t in range(n):
        ds.add_thread(t, 0, 0)
    for name, vals in values.items():
        event = ds.add_interval_event(name)
        for t, v in enumerate(vals):
            if v is None:
                continue
            fp = ds.get_thread(t, 0, 0).get_or_create_function_profile(event)
            for mi in range(len(metrics)):
                fp.set_inclusive(mi, v)
                fp.set_exclusive(mi, v)
            fp.calls = 1
    ds.generate_statistics()
    return ds


class TestComparison:
    def test_delta_and_ratio(self):
        a = trial({"f": [10.0, 10.0]})
        b = trial({"f": [15.0, 15.0]})
        (c,) = compare_trials(a, b)
        assert c.delta == 5.0
        assert c.ratio == 1.5
        assert c.percent_change == pytest.approx(50.0)

    def test_new_event(self):
        a = trial({"f": [10.0]})
        b = trial({"f": [10.0], "g": [5.0]})
        comparisons = {c.event: c for c in compare_trials(a, b)}
        assert comparisons["g"].ratio == float("inf")

    def test_removed_event(self):
        a = trial({"f": [10.0], "g": [5.0]})
        b = trial({"f": [10.0]})
        comparisons = {c.event: c for c in compare_trials(a, b)}
        assert comparisons["g"].right_mean == 0.0

    def test_biggest_changes_ordering(self):
        a = trial({"f": [10.0], "g": [10.0]})
        b = trial({"f": [12.0], "g": [30.0]})
        changes = biggest_changes(a, b)
        assert changes[0].event == "g"

    def test_report_renders(self):
        a = trial({"f": [10.0]})
        b = trial({"f": [20.0]})
        text = comparison_report(a, b, "v1", "v2")
        assert "v1" in text and "f" in text and "+100.0%" in text


class TestCubeAlgebra:
    def test_diff_positive_when_left_slower(self):
        a = trial({"f": [10.0, 10.0]})
        b = trial({"f": [4.0, 4.0]})
        d = diff(a, b)
        fp = d.get_thread(0, 0, 0).function_profiles[
            d.get_interval_event("f").index
        ]
        assert fp.get_exclusive(0) == 6.0

    def test_diff_handles_one_sided_events(self):
        a = trial({"f": [10.0], "only_a": [3.0]})
        b = trial({"f": [10.0], "only_b": [2.0]})
        d = diff(a, b)
        t = d.get_thread(0, 0, 0)
        assert t.function_profiles[d.get_interval_event("only_a").index].get_exclusive(0) == 3.0
        assert t.function_profiles[d.get_interval_event("only_b").index].get_exclusive(0) == -2.0

    def test_merge_sums(self):
        a = trial({"f": [10.0]})
        b = trial({"f": [5.0]})
        m = merge(a, b)
        fp = m.get_thread(0, 0, 0).function_profiles[
            m.get_interval_event("f").index
        ]
        assert fp.get_exclusive(0) == 15.0
        assert fp.calls == 2

    def test_merge_multi_metric_alignment(self):
        a = trial({"f": [10.0]}, metrics=("TIME", "FLOPS"))
        b = trial({"f": [5.0]}, metrics=("FLOPS", "TIME"))  # different order!
        m = merge(a, b)
        time_index = m.get_metric("TIME").index
        fp = m.get_thread(0, 0, 0).function_profiles[
            m.get_interval_event("f").index
        ]
        assert fp.get_exclusive(time_index) == 15.0

    def test_mean_of_three(self):
        trials = [trial({"f": [3.0]}), trial({"f": [6.0]}), trial({"f": [9.0]})]
        avg = mean(trials)
        fp = avg.get_thread(0, 0, 0).function_profiles[
            avg.get_interval_event("f").index
        ]
        assert fp.get_exclusive(0) == pytest.approx(6.0)

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_diff_then_merge_is_identity_like(self):
        a = trial({"f": [10.0], "g": [2.0]})
        b = trial({"f": [4.0], "g": [1.0]})
        recovered = merge(diff(a, b), b)
        fp = recovered.get_thread(0, 0, 0).function_profiles[
            recovered.get_interval_event("f").index
        ]
        assert fp.get_exclusive(0) == pytest.approx(10.0)

    @settings(max_examples=30, deadline=None)
    @given(
        values_a=st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=4),
        values_b=st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=4),
    )
    def test_property_merge_commutes(self, values_a, values_b):
        n = min(len(values_a), len(values_b))
        a = trial({"f": values_a[:n]})
        b = trial({"f": values_b[:n]})
        ab = merge(a, b)
        ba = merge(b, a)
        for t in range(n):
            fa = ab.get_thread(t, 0, 0).function_profiles[
                ab.get_interval_event("f").index
            ]
            fb = ba.get_thread(t, 0, 0).function_profiles[
                ba.get_interval_event("f").index
            ]
            assert fa.get_exclusive(0) == pytest.approx(fb.get_exclusive(0))


class TestRegressionDetection:
    def _history(self, series: dict[str, list[float]]):
        length = len(next(iter(series.values())))
        return [
            (f"v{i}", trial({name: [vals[i]] * 2 for name, vals in series.items()}))
            for i in range(length)
        ]

    def test_clean_history_no_regressions(self):
        history = self._history({"f": [10.0, 10.1, 9.9, 10.0]})
        assert detect_regressions(history) == []

    def test_jump_detected(self):
        history = self._history({"f": [10.0, 10.1, 9.9, 20.0]})
        regs = detect_regressions(history)
        assert len(regs) == 1
        assert regs[0].event == "f"
        assert regs[0].trial_label == "v3"
        assert regs[0].factor == pytest.approx(2.0, rel=0.05)

    def test_small_relative_change_ignored(self):
        history = self._history({"f": [10.0, 10.0, 10.0, 11.0]})
        assert detect_regressions(history, min_relative=0.15) == []

    def test_new_event_not_flagged(self):
        a = trial({"f": [10.0]})
        b = trial({"f": [10.0], "new": [5.0]})
        regs = detect_regressions([("v0", a), ("v1", b)])
        assert all(r.event != "new" for r in regs)

    def test_window_limits_baseline(self):
        # slow drift within the window should not trigger
        history = self._history({"f": [10, 11, 12, 13, 14, 15.0]})
        regs = detect_regressions(history, window=3, min_relative=0.5)
        assert regs == []

    def test_report(self):
        history = self._history({"f": [10.0, 10.0, 30.0]})
        regs = detect_regressions(history)
        text = regression_report(regs)
        assert "f" in text and "3.00x" in text

    def test_empty_report(self):
        assert "No regressions" in regression_report([])
