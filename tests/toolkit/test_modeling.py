"""Tests for Prophesy-style scaling-model fitting (paper §6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.toolkit import (
    best_model, fit_scaling_models, predict_routines, prediction_report,
)
from repro.tau.apps import EVH1

P = [1, 2, 4, 8, 16, 32]


class TestModelFitting:
    def test_amdahl_recovered_exactly(self):
        values = [100.0 + 900.0 / p for p in P]
        model = best_model(P, values)
        assert model.name == "amdahl"
        assert model.r_squared == pytest.approx(1.0)
        assert model.parameters[0] == pytest.approx(100.0, rel=1e-3)
        assert model.serial_fraction == pytest.approx(0.1, rel=1e-3)

    def test_power_law_recovered(self):
        values = [50.0 * p**0.5 for p in P]
        model = best_model(P, values)
        assert model.name == "power"
        assert model.parameters[1] == pytest.approx(0.5, rel=1e-3)

    def test_logp_recovered(self):
        values = [10.0 + 3.0 * np.log2(p) for p in P]
        model = best_model(P, values)
        assert model.name == "logp"
        assert model.parameters[1] == pytest.approx(3.0, rel=1e-3)

    def test_prediction_extrapolates(self):
        values = [100.0 + 900.0 / p for p in P]
        model = best_model(P, values)
        assert model.predict(64) == pytest.approx(100.0 + 900.0 / 64, rel=1e-3)

    def test_all_families_returned_sorted(self):
        values = [100.0 + 900.0 / p for p in P]
        models = fit_scaling_models(P, values)
        assert len(models) >= 2
        r2 = [m.r_squared for m in models]
        assert r2 == sorted(r2, reverse=True)

    def test_too_few_points(self):
        with pytest.raises(ValueError, match=">= 3"):
            fit_scaling_models([1, 2], [1.0, 2.0])

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            fit_scaling_models(P, [1, 2, 3, 0, 5, 6])

    def test_min_r2_gate(self):
        rng = np.random.default_rng(0)
        noise = rng.uniform(1.0, 100.0, size=len(P))  # unfittable
        with pytest.raises(ValueError, match="no model reached"):
            best_model(P, noise, min_r2=0.999)

    def test_serial_fraction_none_for_other_models(self):
        values = [50.0 * p**0.5 for p in P]
        model = best_model(P, values)
        assert model.serial_fraction is None

    @settings(max_examples=25, deadline=None)
    @given(
        serial=st.floats(min_value=1.0, max_value=500.0),
        parallel=st.floats(min_value=10.0, max_value=5000.0),
    )
    def test_property_amdahl_roundtrip(self, serial, parallel):
        values = [serial + parallel / p for p in P]
        models = fit_scaling_models(P, values)
        amdahl = next(m for m in models if m.name == "amdahl")
        assert amdahl.parameters[0] == pytest.approx(serial, rel=1e-2, abs=1e-2)
        assert amdahl.parameters[1] == pytest.approx(parallel, rel=1e-2)


class TestRoutinePrediction:
    @pytest.fixture(scope="class")
    def trials(self):
        app = EVH1(problem_size=1.0, timesteps=1)
        return [(p, app.run(p)) for p in (1, 2, 4, 8, 16)]

    def test_predictions_produced(self, trials):
        predictions = predict_routines(trials, target_processors=64)
        names = [p.event for p in predictions]
        assert "riemann" in names
        assert all(p.model.r_squared >= 0.9 for p in predictions)

    def test_compute_routines_fit_inverse_p(self, trials):
        predictions = {p.event: p for p in predict_routines(trials, 64)}
        riemann = predictions["riemann"]
        # near-perfect strong scaling: exponent ~ -1 (power) or amdahl
        if riemann.model.name == "power":
            assert riemann.model.parameters[1] == pytest.approx(-1.0, abs=0.15)

    def test_prediction_accuracy_against_real_run(self, trials):
        """The model trained on P<=16 must predict P=32 within 10%."""
        from repro.core.toolkit import event_statistics

        predictions = {p.event: p for p in predict_routines(trials, 32)}
        actual_trial = EVH1(problem_size=1.0, timesteps=1).run(32)
        actual = event_statistics(
            actual_trial, "riemann", inclusive=True
        ).mean
        predicted = predictions["riemann"].predicted
        assert predicted == pytest.approx(actual, rel=0.10)

    def test_sorted_by_predicted_cost(self, trials):
        predictions = predict_routines(trials, 64)
        values = [p.predicted for p in predictions]
        assert values == sorted(values, reverse=True)

    def test_report(self, trials):
        predictions = predict_routines(trials, 64)
        text = prediction_report(predictions[:3], 64)
        assert "P=64" in text
        assert "R²" in text
