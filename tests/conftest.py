"""Shared fixtures: every DB-facing test runs against both engines."""

from __future__ import annotations

import itertools

import pytest

from repro.db import connect
from repro.db.minisql import reset_shared_databases

_COUNTER = itertools.count()


@pytest.fixture(params=["sqlite", "minisql"])
def backend(request) -> str:
    """The two runnable storage engines."""
    return request.param


@pytest.fixture
def db_url(backend: str, tmp_path) -> str:
    """A fresh private database URL for the selected backend."""
    if backend == "sqlite":
        return f"sqlite://{tmp_path}/test_{next(_COUNTER)}.db"
    return "minisql://:memory:"


@pytest.fixture
def conn(db_url: str):
    connection = connect(db_url)
    yield connection
    connection.close()


@pytest.fixture(autouse=True)
def _clean_shared_minisql():
    yield
    reset_shared_databases()
