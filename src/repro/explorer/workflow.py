"""Scriptable analysis workflows.

Paper §7: *"the support in PerfDMF for ... developing reusable and
scriptable profile analysis functions will appeal to tools developers
and users alike."*  (The real PerfExplorer 2.0 grew exactly this: data
-mining workflows expressed as scripts.)

A workflow is a JSON-serialisable list of operation dicts executed
against one PerfDMF session.  Operations read and write named slots in a
shared context, so steps compose::

    workflow = [
        {"op": "load_trial", "trial": 3, "as": "t"},
        {"op": "cluster", "input": "t", "k": 2, "metric": "PAPI_FP_OPS",
         "as": "clusters"},
        {"op": "describe", "input": "t", "event": "hydro_kernel",
         "as": "stats"},
        {"op": "save_analysis", "name": "nightly", "results": ["clusters",
         "stats"]},
    ]
    results = run_workflow(session, workflow)

Because workflows are data, they persist in the database (via the
analysis-result store), travel over the client/server protocol, and
re-run reproducibly — the "reusable analysis function" the paper asks
for, without arbitrary code execution.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..core.session.dbsession import PerfDMFSession
from ..core.toolkit.stats import event_values
from .clustering import cluster_trial, summarize_clusters
from .results import ResultStore
from .rproxy import NumpyAnalysisBackend


class WorkflowError(ValueError):
    """Raised for malformed workflows or failing steps."""


class WorkflowContext:
    """Execution state: the session plus named result slots."""

    def __init__(self, session: PerfDMFSession):
        self.session = session
        self.slots: dict[str, Any] = {}
        self.backend = NumpyAnalysisBackend()
        self.store = ResultStore(session)

    def get(self, name: str) -> Any:
        try:
            return self.slots[name]
        except KeyError:
            raise WorkflowError(
                f"no slot {name!r}; available: {sorted(self.slots)}"
            ) from None

    def put(self, name: Optional[str], value: Any) -> None:
        if name:
            self.slots[name] = value


OperationFn = Callable[[WorkflowContext, dict[str, Any]], Any]
_OPERATIONS: dict[str, OperationFn] = {}


def operation(name: str) -> Callable[[OperationFn], OperationFn]:
    def register(fn: OperationFn) -> OperationFn:
        _OPERATIONS[name] = fn
        return fn
    return register


def available_operations() -> list[str]:
    return sorted(_OPERATIONS)


def run_workflow(
    session: PerfDMFSession, steps: list[dict[str, Any]]
) -> dict[str, Any]:
    """Execute ``steps``; returns the final slot table."""
    if not isinstance(steps, list):
        raise WorkflowError("a workflow is a list of operation dicts")
    context = WorkflowContext(session)
    for index, step in enumerate(steps):
        if not isinstance(step, dict) or "op" not in step:
            raise WorkflowError(f"step {index} is not an operation dict")
        op_name = step["op"]
        fn = _OPERATIONS.get(op_name)
        if fn is None:
            raise WorkflowError(
                f"unknown operation {op_name!r}; available: "
                f"{available_operations()}"
            )
        try:
            result = fn(context, step)
        except WorkflowError:
            raise
        except Exception as exc:
            raise WorkflowError(
                f"step {index} ({op_name}) failed: {exc}"
            ) from exc
        context.put(step.get("as"), result)
    return context.slots


# -- operations ----------------------------------------------------------------


@operation("load_trial")
def _op_load_trial(context: WorkflowContext, step: dict[str, Any]):
    """Load a stored trial into a slot.  Params: trial (id)."""
    return context.session.load_datasource(int(step["trial"]))


@operation("cluster")
def _op_cluster(context: WorkflowContext, step: dict[str, Any]):
    """k-means over a loaded trial.  Params: input, k?, metric?, max_k?."""
    source = context.get(step["input"])
    metric_index = 0
    metric_name = step.get("metric")
    if metric_name is not None:
        names = [m.name for m in source.metrics]
        if metric_name not in names:
            raise WorkflowError(f"trial has no metric {metric_name!r}")
        metric_index = names.index(metric_name)
    result = cluster_trial(
        source,
        k=step.get("k"),
        metric=metric_index,
        max_k=int(step.get("max_k", 6)),
        seed=int(step.get("seed", 0)),
    )
    return {
        "k": result.k,
        "sizes": result.sizes,
        "silhouette": result.silhouette,
        "labels": result.labels.tolist(),
        "summary": summarize_clusters(result),
    }


@operation("describe")
def _op_describe(context: WorkflowContext, step: dict[str, Any]):
    """Descriptive statistics of one event.  Params: input, event, metric?."""
    source = context.get(step["input"])
    metric_index = 0
    if "metric" in step:
        names = [m.name for m in source.metrics]
        metric_index = names.index(step["metric"])
    values = event_values(source, step["event"], metric_index)
    return context.backend.describe(values)


@operation("correlate")
def _op_correlate(context: WorkflowContext, step: dict[str, Any]):
    """Correlation of two events.  Params: input, x, y."""
    source = context.get(step["input"])
    return context.backend.correlate(
        event_values(source, step["x"]), event_values(source, step["y"])
    )


@operation("top_events")
def _op_top_events(context: WorkflowContext, step: dict[str, Any]):
    """The n most expensive events.  Params: input, n?."""
    from ..core.toolkit.stats import top_events

    source = context.get(step["input"])
    return [
        {"event": s.event, "mean": s.mean, "max": s.maximum,
         "imbalance": s.imbalance}
        for s in top_events(source, n=int(step.get("n", 10)))
    ]


@operation("diff")
def _op_diff(context: WorkflowContext, step: dict[str, Any]):
    """CUBE difference of two loaded trials.  Params: left, right."""
    from ..core.toolkit.cube_algebra import diff

    return diff(context.get(step["left"]), context.get(step["right"]))


@operation("derive_metric")
def _op_derive(context: WorkflowContext, step: dict[str, Any]):
    """In-memory derived metric.  Params: input, name, expr."""
    source = context.get(step["input"])
    metric = source.create_derived_metric(step["name"], step["expr"])
    return metric.name


@operation("filter_events")
def _op_filter(context: WorkflowContext, step: dict[str, Any]):
    """Event names matching a group.  Params: input, group."""
    source = context.get(step["input"])
    return [e.name for e in source.events_in_group(step["group"])]


@operation("save_analysis")
def _op_save(context: WorkflowContext, step: dict[str, Any]):
    """Persist named slots via the extended schema.

    Params: name, results (slot names), trial? (id), method?.
    JSON-serialisable slots only — trials themselves cannot be saved.
    """
    payload = {}
    for slot in step.get("results", []):
        value = context.get(slot)
        if hasattr(value, "interval_events"):
            raise WorkflowError(
                f"slot {slot!r} holds a trial; save analysis results, "
                "not profiles"
            )
        payload[slot] = value
    return context.store.save_analysis(
        step.get("trial"),
        step.get("name", "workflow"),
        step.get("method", "workflow"),
        {"steps": len(payload)},
        payload,
    )
