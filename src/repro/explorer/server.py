"""The PerfExplorer analysis server (Figure 3).

*"The client makes requests to an analysis server back end, which is
integrated with a performance database, using PerfDMF. ... the analysis
server selects the data of interest, gets the relevant profile data and
hands it off to an analysis application ... the results are saved to
the database, using the PerfDMF API."*

The server owns a :class:`PerfDMFSession`, an analysis backend (the R
substitute), and a :class:`ResultStore`.  Requests are dispatched by
method name; each handler touches the database only through the PerfDMF
API, never raw SQL — that separation is the Figure 3 architecture.
"""

from __future__ import annotations

import base64
import socket
import threading
import time
import traceback
from contextlib import nullcontext
from typing import Any, Optional

import numpy as np

from repro.obs.log import get_logger
from repro.obs.metrics import registry as _registry
from repro.obs.trace import tracer as _tracer

from ..core.session.dbsession import PerfDMFSession
from ..core.toolkit.stats import event_values
from .charts import (
    correlation_matrix, group_fraction_chart, imbalance_chart, speedup_chart,
)
from .clustering import cluster_trial, summarize_clusters
from .protocol import (
    READ_ONLY_METHODS, MessageStream, encode_message, extract_trace_context,
)
from .results import ResultStore
from .rproxy import AnalysisBackend, NumpyAnalysisBackend

_log = get_logger("repro.explorer.server")

#: Methods a read-only replica server will dispatch: every read-only
#: analysis method plus the replication introspection endpoint.
REPLICA_SAFE_METHODS = READ_ONLY_METHODS | {"replication_status"}


class AnalysisServer:
    """Dispatches PerfExplorer requests against one PerfDMF database.

    ``read_only=True`` turns the server into a replica front end: only
    :data:`REPLICA_SAFE_METHODS` are dispatched, everything else is
    rejected before touching the session (replicas apply writes solely
    through WAL replay, never through the RPC surface).  ``replica``
    optionally attaches the :class:`~repro.db.minisql.replica.Replica`
    feeding this server so ``replication_status`` and the health
    endpoint can report lag.
    """

    def __init__(
        self,
        database_url: str,
        backend: Optional[AnalysisBackend] = None,
        read_only: bool = False,
        replica: Optional[object] = None,
    ):
        # A read-only front end must not write — not even idempotent
        # schema DDL: a replica's schema arrives via checkpoint + WAL
        # replay, and any local write would diverge from the primary.
        self.session = PerfDMFSession(database_url, create=not read_only)
        self.backend = backend or NumpyAnalysisBackend()
        self.results = ResultStore(self.session)
        self.read_only = read_only
        self.replica = replica
        self._shipper = None
        self._handlers = {
            "ping": self._ping,
            "list_applications": self._list_applications,
            "list_experiments": self._list_experiments,
            "list_trials": self._list_trials,
            "list_metrics": self._list_metrics,
            "list_events": self._list_events,
            "cluster_trial": self._cluster_trial,
            "describe_event": self._describe_event,
            "correlate_events": self._correlate_events,
            "list_analyses": self._list_analyses,
            "get_analysis": self._get_analysis,
            "run_workflow": self._run_workflow,
            "speedup_chart": self._speedup_chart,
            "correlation_matrix": self._correlation_matrix,
            "group_fraction_chart": self._group_fraction_chart,
            "imbalance_chart": self._imbalance_chart,
            "get_stats": self._get_stats,
            "repl_snapshot": self._repl_snapshot,
            "wal_ship": self._wal_ship,
            "replication_status": self._replication_status,
            "server_load": self._server_load,
        }
        #: Set by the socket front end at start(): a zero-argument
        #: callable reporting its live dispatch load (see _server_load).
        self.load_probe = None

    # -- dispatch ----------------------------------------------------------------

    def handle_request(self, method: str, params: dict[str, Any]) -> Any:
        handler = self._handlers.get(method)
        if handler is None:
            raise ValueError(f"unknown method {method!r}")
        if self.read_only and method not in REPLICA_SAFE_METHODS:
            raise PermissionError(
                f"read-only replica: method {method!r} not allowed"
            )
        return handler(**params)

    # -- handlers -------------------------------------------------------------------

    def _ping(self) -> str:
        return "pong"

    def _list_applications(self) -> list[dict[str, Any]]:
        return [
            {"id": a.id, "name": a.name} for a in self.session.get_application_list()
        ]

    def _list_experiments(self, application: int) -> list[dict[str, Any]]:
        self.session.set_application(application)
        out = [
            {"id": e.id, "name": e.name}
            for e in self.session.get_experiment_list()
        ]
        self.session.reset_selection()
        return out

    def _list_trials(self, experiment: int) -> list[dict[str, Any]]:
        self.session.set_experiment(experiment)
        out = [
            {
                "id": t.id,
                "name": t.name,
                "node_count": t.get("node_count"),
            }
            for t in self.session.get_trial_list()
        ]
        self.session.reset_selection()
        return out

    def _list_metrics(self, trial: int) -> list[str]:
        return self.session.get_metrics(trial)

    def _list_events(self, trial: int) -> list[dict[str, Any]]:
        return self.session.get_interval_events(trial)

    def _cluster_trial(
        self,
        trial: int,
        k: Optional[int] = None,
        metric_name: Optional[str] = None,
        max_k: int = 6,
        seed: int = 0,
        save: bool = True,
        method: str = "kmeans",
    ) -> dict[str, Any]:
        """The paper's flagship operation: select data, cluster, save."""
        source = self.session.load_datasource(trial)
        metric_index = 0
        if metric_name is not None:
            names = [m.name for m in source.metrics]
            if metric_name not in names:
                raise ValueError(f"trial {trial} has no metric {metric_name!r}")
            metric_index = names.index(metric_name)
        if method == "kmeans":
            result = cluster_trial(
                source, k=k, metric=metric_index, max_k=max_k, seed=seed
            )
        elif method == "hierarchical":
            from .clustering import hierarchical_cluster

            if k is None:
                raise ValueError("hierarchical clustering requires explicit k")
            result = hierarchical_cluster(source, k=k, metric=metric_index)
        else:
            raise ValueError(
                f"unknown clustering method {method!r}; "
                "use 'kmeans' or 'hierarchical'"
            )
        settings_id = None
        if save:
            settings_id = self.results.save_cluster_result(
                trial, result,
                parameters={
                    "k": k, "metric": metric_name, "max_k": max_k,
                    "seed": seed, "method": method,
                },
            )
        return {
            "k": result.k,
            "sizes": result.sizes,
            "silhouette": result.silhouette,
            "labels": result.labels.tolist(),
            "summary": summarize_clusters(result),
            "settings_id": settings_id,
        }

    def _describe_event(
        self, trial: int, event: str, metric_name: Optional[str] = None
    ) -> dict[str, float]:
        source = self.session.load_datasource(trial)
        metric_index = 0
        if metric_name is not None:
            names = [m.name for m in source.metrics]
            metric_index = names.index(metric_name)
        values = event_values(source, event, metric_index)
        return self.backend.describe(values)

    def _correlate_events(
        self, trial: int, event_x: str, event_y: str
    ) -> dict[str, float]:
        source = self.session.load_datasource(trial)
        x = event_values(source, event_x)
        y = event_values(source, event_y)
        return self.backend.correlate(x, y)

    def _run_workflow(self, steps: list[dict[str, Any]]) -> dict[str, Any]:
        """Execute a scripted analysis workflow server-side.

        Trials held in slots stay on the server; only JSON-serialisable
        slots come back over the wire.
        """
        from .workflow import run_workflow

        slots = run_workflow(self.session, steps)
        return {
            name: value
            for name, value in slots.items()
            if not hasattr(value, "interval_events")
        }

    def _experiment_trials(self, experiment: int) -> list[tuple[int, "object"]]:
        """Load every trial of an experiment as (processors, DataSource)."""
        self.session.set_experiment(experiment)
        out = []
        for trial in self.session.get_trial_list():
            processors = trial.get("node_count") or 1
            out.append((processors, self.session.load_datasource(trial)))
        self.session.reset_selection()
        return out

    def _speedup_chart(
        self, experiment: int, events: Optional[list[str]] = None
    ) -> dict[str, Any]:
        trials = self._experiment_trials(experiment)
        if len(trials) < 2:
            raise ValueError(
                f"experiment {experiment} has {len(trials)} trial(s); "
                "speedup needs >= 2"
            )
        return speedup_chart(trials, events)

    def _correlation_matrix(
        self, trial: int, events: Optional[list[str]] = None
    ) -> dict[str, Any]:
        source = self.session.load_datasource(trial)
        return correlation_matrix(source, events)

    def _group_fraction_chart(self, experiment: int) -> dict[str, Any]:
        return group_fraction_chart(self._experiment_trials(experiment))

    def _imbalance_chart(self, trial: int, top: int = 10) -> dict[str, Any]:
        return imbalance_chart(self.session.load_datasource(trial), top=top)

    def _server_load(self) -> dict[str, Any]:
        """Lightweight load probe for client-side least-loaded routing.

        Deliberately a separate method from ``replication_status`` (whose
        payload is a stable contract) and far cheaper than ``get_stats``:
        three integers, no registry snapshot, no db counters."""
        probe = self.load_probe
        if probe is None:
            return {"in_flight": 0, "queued": 0, "connections": 0}
        return probe()

    def _get_stats(self) -> dict[str, Any]:
        """The server's live metrics registry (plus its database
        counters), for ``repro stats --server`` and remote monitoring."""
        self.session.connection.stats()  # publish db counters as gauges
        # Request accounting is incremented after dispatch; register the
        # instruments up front so even the first snapshot carries them.
        _registry.counter("server.requests")
        _registry.histogram("server.request_seconds")
        _registry.counter("server.admission_shed_total")
        return {"ts": time.time(), "metrics": _registry.snapshot()}

    def _list_analyses(self, trial: Optional[int] = None) -> list[dict[str, Any]]:
        return [
            {"id": i, "name": n, "method": m}
            for i, n, m in self.results.list_analyses(trial)
        ]

    def _get_analysis(self, settings_id: int) -> dict[str, Any]:
        return self.results.load_analysis(settings_id)

    # -- replication ----------------------------------------------------------------

    def _database(self):
        """The underlying MiniSQL Database, if this session runs on one."""
        raw = getattr(self.session.connection, "_raw", None)
        return getattr(raw, "_database", None)

    def _get_shipper(self):
        if self._shipper is None:
            from repro.db.minisql.replica import WalShipper

            database = self._database()
            if database is None or database.wal is None:
                raise ValueError(
                    "WAL shipping requires a WAL-backed MiniSQL database "
                    "(connect with minisql://...?wal=...)"
                )
            self._shipper = WalShipper(database)
        return self._shipper

    def _repl_snapshot(self) -> dict[str, Any]:
        """Bootstrap payload for a new replica: checkpoint script + LSNs."""
        return self._get_shipper().snapshot()

    def _wal_ship(
        self,
        after_lsn: int,
        replica_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> dict[str, Any]:
        """Ship WAL frames past ``after_lsn`` (base64, CRC framing intact)."""
        shipper = self._get_shipper()
        if limit is None:
            out = shipper.fetch(after_lsn, replica_id=replica_id)
        else:
            out = shipper.fetch(after_lsn, replica_id=replica_id, limit=limit)
        frames = out.pop("frames", None)
        if frames is not None:
            out["frames_b64"] = base64.b64encode(frames).decode("ascii")
        return out

    def _replication_status(self) -> dict[str, Any]:
        if self.replica is not None:
            return self.replica.status()
        database = self._database()
        if database is not None and database.wal is not None:
            return self._get_shipper().status()
        return {"role": "standalone"}


class ThreadedSocketServer:
    """TCP front end: accepts clients, one thread per connection.

    Superseded as the default by the event-loop core
    (:class:`~repro.explorer.eventloop.SocketServer`, re-exported from
    this module as ``SocketServer``), but kept fully working: the E16/
    E17 benchmarks run both cores side by side so the regression gate
    compares like-for-like, and ``perfdmf serve --core threaded``
    selects it explicitly.

    With ``telemetry_port`` set (0 = any free port), ``start()`` also
    mounts a :class:`~repro.obs.telemetry.TelemetryServer` so the
    process serves ``/metrics``, ``/healthz`` and ``/stats.json`` over
    HTTP while the RPC listener handles analysis traffic; its bound
    address lands in ``telemetry_address``.
    """

    def __init__(
        self,
        server: AnalysisServer,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry_port: Optional[int] = None,
        max_in_flight: Optional[int] = None,
    ):
        self.analysis = server
        #: Admission control: with a bound set, a request arriving while
        #: ``max_in_flight`` are already dispatched is *shed* — answered
        #: immediately with a retryable RETRY_LATER error instead of
        #: queueing behind work the server cannot keep up with.
        self.max_in_flight = max_in_flight
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self.address = self._listener.getsockname()
        self._threads: list[threading.Thread] = []
        self._clients: set[socket.socket] = set()
        self._clients_lock = threading.Lock()
        self._running = False
        self._accept_thread: Optional[threading.Thread] = None
        self._telemetry_port = telemetry_port
        self._telemetry = None
        self.telemetry_address: Optional[tuple[str, int]] = None
        # In-flight request accounting for graceful shutdown: stop() with
        # drain=True waits on the condition until the count reaches zero.
        self._in_flight = 0
        self._idle = threading.Condition()

    def _health(self) -> dict:
        with self._idle:
            in_flight = self._in_flight
        health = {
            "serving": self._running,
            "address": f"{self.address[0]}:{self.address[1]}",
            "in_flight_requests": in_flight,
        }
        if self.max_in_flight is not None:
            health["max_in_flight"] = self.max_in_flight
        replica = getattr(self.analysis, "replica", None)
        if replica is not None:
            records, seconds = replica.replication_lag()
            health["replication"] = {
                "role": "replica",
                "state": replica.state,
                "lag_records": records,
                "lag_seconds": seconds,
            }
        return health

    def start(self) -> tuple[str, int]:
        self._running = True
        if self._telemetry_port is not None:
            from repro.obs.telemetry import TelemetryServer

            self._telemetry = TelemetryServer(
                host=self.address[0], port=self._telemetry_port,
                health=self._health,
            )
            self.telemetry_address = self._telemetry.start()
            _log.info(
                "telemetry_listening",
                host=self.telemetry_address[0],
                port=self.telemetry_address[1],
            )
        self.analysis.load_probe = self._load_snapshot
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        return self.address

    def _load_snapshot(self) -> dict:
        """The ``server_load`` RPC payload: how busy this front end is.

        The threaded core has no dispatch queue — a request is either
        executing on its connection thread or not admitted at all."""
        with self._idle:
            in_flight = self._in_flight
        with self._clients_lock:
            connections = len(self._clients)
        return {
            "in_flight": in_flight,
            "queued": 0,
            "connections": connections,
        }

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            if not self._running:
                # Raced with stop(): the listener woke us with one last
                # connection; refuse it rather than serve past shutdown.
                try:
                    client.close()
                except OSError:
                    pass
                return
            with self._clients_lock:
                self._clients.add(client)
            thread = threading.Thread(
                target=self._serve_client, args=(client,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_client(self, sock: socket.socket) -> None:
        from .protocol import ProtocolError

        stream = MessageStream(sock, fault_point="net.server")
        try:
            while True:
                request = stream.receive()
                if request is None:
                    return
                if not self._admit():
                    self._shed(stream, request)
                    continue
                try:
                    self._handle_one(stream, request)
                finally:
                    self._release()
        except (ProtocolError, OSError) as exc:
            # Expected transport-level endings: client went away mid-frame,
            # reset the connection, or we are shutting down.
            _registry.counter("server.client_disconnects").inc()
            _log.info("client_disconnect", error=str(exc))
        except Exception:
            # Anything else is a server bug — it must never vanish
            # silently (that hid dispatcher errors for two releases).
            _registry.counter("server.client_errors").inc()
            _log.error("client_loop_error", traceback=traceback.format_exc())
        finally:
            stream.close()
            with self._clients_lock:
                self._clients.discard(sock)

    def _admit(self) -> bool:
        """Claim an in-flight slot; False when admission control sheds."""
        with self._idle:
            if (
                self.max_in_flight is not None
                and self._in_flight >= self.max_in_flight
            ):
                return False
            self._in_flight += 1
            return True

    def _release(self) -> None:
        with self._idle:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.notify_all()

    def _shed(self, stream: MessageStream, request: dict) -> None:
        """Refuse an over-limit request with a retryable error.

        The request was never dispatched, so the client may retry it —
        even a mutating one — after backing off (``retry_later`` flags
        that distinction on the wire)."""
        _registry.counter("server.admission_shed_total").inc()
        _log.warning(
            "request_shed",
            method=request.get("method"),
            max_in_flight=self.max_in_flight,
        )
        stream.send(
            {
                "id": request.get("id"),
                "error": "RETRY_LATER: server at max in-flight requests",
                "retry_later": True,
            }
        )

    def _handle_one(self, stream: MessageStream, request: dict) -> None:
        """Dispatch one request: trace-context adoption, structured
        request log with latency and result size, metrics."""
        request_id = request.get("id")
        method = request.get("method", "")
        # A client-propagated trace context nests our server span under
        # the client's request span (one cross-process timeline).
        remote = extract_trace_context(request) if _tracer.enabled else None
        context = (
            _tracer.context(remote[0], remote[1])
            if remote is not None else nullcontext()
        )
        started = time.perf_counter()
        with context:
            with _tracer.span(f"server.{method or 'unknown'}"):
                try:
                    result = self.analysis.handle_request(
                        method, request.get("params", {}) or {}
                    )
                    response = {"id": request_id, "result": result}
                    status = "ok"
                except Exception as exc:  # deliberate: errors go to the client
                    response = {
                        "id": request_id,
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(limit=3),
                    }
                    status = "error"
        encoded = encode_message(response)
        latency_ms = round((time.perf_counter() - started) * 1000.0, 3)
        _registry.counter("server.requests").inc()
        if status == "error":
            _registry.counter("server.errors").inc()
        _registry.histogram("server.request_seconds").observe(
            latency_ms / 1000.0
        )
        _log.info(
            "request",
            method=method,
            id=request_id,
            status=status,
            latency_ms=latency_ms,
            result_bytes=len(encoded),
        )
        stream.send_bytes(encoded)

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting connections; with ``drain`` (the default), wait
        up to ``timeout`` seconds for in-flight requests to complete so
        clients get their responses instead of a reset socket."""
        self._running = False
        # shutdown() before close(): close() alone does not wake a thread
        # blocked in accept() — the in-flight syscall keeps the open file
        # description (and the LISTEN port) alive, and the next client to
        # connect would be served by the half-dead accept loop.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        if self._telemetry is not None:
            self._telemetry.stop()
            self._telemetry = None
        if drain:
            deadline = time.monotonic() + timeout
            with self._idle:
                while self._in_flight > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        _log.warning(
                            "shutdown_timeout", in_flight=self._in_flight
                        )
                        break
                    self._idle.wait(remaining)
        # Close lingering client connections: their ESTABLISHED sockets
        # would otherwise hold the port and block a restart on the same
        # address (and the handler threads would block in receive()
        # forever).
        with self._clients_lock:
            lingering = list(self._clients)
            self._clients.clear()
        for client in lingering:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.close()
            except OSError:
                pass


# The event-loop core is the default SocketServer; existing callers
# (tests, CLI, benchmarks, replica harnesses) pick it up by name with
# the same constructor surface and lifecycle.  Imported at the bottom
# because eventloop shares this module's protocol/obs imports but needs
# no symbol defined above — and keeping ``SocketServer`` importable from
# ``repro.explorer.server`` preserves every call site.
from .eventloop import SocketServer  # noqa: E402  (re-export)

__all__ = [
    "AnalysisServer", "SocketServer", "ThreadedSocketServer",
    "REPLICA_SAFE_METHODS",
]
