"""The analysis-backend interface — PerfDMF's "R" hand-off point.

Paper §5.3: *"the analysis server selects the data of interest, gets the
relevant profile data and hands it off to an analysis application, R.
When R is done with the analysis, the results are saved to the
database."*

We have no R; :class:`NumpyAnalysisBackend` reimplements the operations
PerfExplorer used it for (k-means, PCA, descriptive statistics,
correlation) on numpy/scipy.  The interface stays pluggable —
:class:`AnalysisBackend` is what a real R bridge would implement — so
the server code is backend-agnostic, mirroring the paper's design.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np
from scipy import stats as scipy_stats

from .clustering import (
    ClusterResult, cluster_trial, kmeans, pca_reduce, silhouette_score,
    summarize_clusters,
)


class AnalysisBackend:
    """What the PerfExplorer server requires of its statistics engine."""

    name = "abstract"

    def kmeans(self, matrix: np.ndarray, k: int, seed: int = 0):
        raise NotImplementedError

    def pca(self, matrix: np.ndarray, components: int = 2):
        raise NotImplementedError

    def describe(self, values: np.ndarray) -> dict[str, float]:
        raise NotImplementedError

    def correlate(self, x: np.ndarray, y: np.ndarray) -> dict[str, float]:
        raise NotImplementedError


class NumpyAnalysisBackend(AnalysisBackend):
    """The default backend: numpy/scipy standing in for GNU R."""

    name = "numpy"

    def kmeans(self, matrix: np.ndarray, k: int, seed: int = 0):
        return kmeans(matrix, k, seed)

    def pca(self, matrix: np.ndarray, components: int = 2):
        return pca_reduce(matrix, components)

    def describe(self, values: np.ndarray) -> dict[str, float]:
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return {"n": 0.0}
        return {
            "n": float(values.size),
            "min": float(values.min()),
            "max": float(values.max()),
            "mean": float(values.mean()),
            "median": float(np.median(values)),
            "stddev": float(values.std(ddof=1)) if values.size > 1 else 0.0,
            "skewness": float(scipy_stats.skew(values)) if values.size > 2 else 0.0,
            "kurtosis": float(scipy_stats.kurtosis(values)) if values.size > 3 else 0.0,
        }

    def correlate(self, x: np.ndarray, y: np.ndarray) -> dict[str, float]:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if len(x) != len(y) or len(x) < 2:
            raise ValueError("correlate() needs two equal-length series, n >= 2")
        pearson = scipy_stats.pearsonr(x, y)
        spearman = scipy_stats.spearmanr(x, y)
        return {
            "pearson_r": float(pearson.statistic),
            "pearson_p": float(pearson.pvalue),
            "spearman_r": float(spearman.statistic),
            "spearman_p": float(spearman.pvalue),
        }


DEFAULT_BACKEND = NumpyAnalysisBackend()
