"""Persistence of analysis results through the extended PerfDMF schema.

Paper §5.3: *"Because PerfDMF is flexible and extensible, the
PerfExplorer developers were able to extend the PerfDMF database API to
support saving and retrieving analysis results."*  The
ANALYSIS_SETTINGS / ANALYSIS_RESULT tables (see schema DDL) hold one row
per analysis run plus typed result items; cluster memberships and
centroids round-trip losslessly.
"""

from __future__ import annotations

import json
from typing import Any, Optional

import numpy as np

from ..core.session.dbsession import PerfDMFSession
from .clustering import ClusterResult


class ResultStore:
    """Save/load analysis results against a PerfDMF session."""

    def __init__(self, session: PerfDMFSession):
        self.session = session

    # -- generic analysis runs ------------------------------------------------

    def save_analysis(
        self,
        trial_id: Optional[int],
        name: str,
        method: str,
        parameters: dict[str, Any],
        results: dict[str, Any],
    ) -> int:
        """Persist one analysis run; returns the settings id."""
        conn = self.session.connection
        settings_id = conn.insert(
            "INSERT INTO analysis_settings (trial, name, method, parameters) "
            "VALUES (?, ?, ?, ?)",
            (trial_id, name, method, json.dumps(parameters, sort_keys=True)),
        )
        rows = [
            (settings_id, "item", key, json.dumps(value, sort_keys=True))
            for key, value in results.items()
        ]
        conn.executemany(
            "INSERT INTO analysis_result (settings, result_type, item_key, value) "
            "VALUES (?, ?, ?, ?)",
            rows,
        )
        conn.commit()
        return settings_id

    def load_analysis(self, settings_id: int) -> dict[str, Any]:
        conn = self.session.connection
        header = conn.query_one(
            "SELECT trial, name, method, parameters FROM analysis_settings "
            "WHERE id = ?",
            (settings_id,),
        )
        if header is None:
            raise LookupError(f"no analysis settings id {settings_id}")
        trial_id, name, method, parameters = header
        items = conn.query(
            "SELECT item_key, value FROM analysis_result WHERE settings = ? "
            "ORDER BY id",
            (settings_id,),
        )
        return {
            "trial": trial_id,
            "name": name,
            "method": method,
            "parameters": json.loads(parameters) if parameters else {},
            "results": {key: json.loads(value) for key, value in items},
        }

    def list_analyses(self, trial_id: Optional[int] = None) -> list[tuple[int, str, str]]:
        conn = self.session.connection
        if trial_id is None:
            rows = conn.query(
                "SELECT id, name, method FROM analysis_settings ORDER BY id"
            )
        else:
            rows = conn.query(
                "SELECT id, name, method FROM analysis_settings WHERE trial = ? "
                "ORDER BY id",
                (trial_id,),
            )
        return [(int(r[0]), r[1], r[2]) for r in rows]

    # -- cluster results ------------------------------------------------------------

    def save_cluster_result(
        self,
        trial_id: int,
        result: ClusterResult,
        name: str = "cluster analysis",
        parameters: Optional[dict[str, Any]] = None,
    ) -> int:
        payload = {
            "k": result.k,
            "labels": result.labels.tolist(),
            "centroids": result.centroids.tolist(),
            "inertia": result.inertia,
            "silhouette": result.silhouette,
            "feature_names": result.feature_names,
        }
        return self.save_analysis(
            trial_id, name, "kmeans", parameters or {}, payload
        )

    def load_cluster_result(self, settings_id: int) -> ClusterResult:
        record = self.load_analysis(settings_id)
        results = record["results"]
        return ClusterResult(
            k=int(results["k"]),
            labels=np.asarray(results["labels"], dtype=np.intp),
            centroids=np.asarray(results["centroids"], dtype=float),
            inertia=float(results["inertia"]),
            feature_names=list(results["feature_names"]),
            silhouette=results.get("silhouette"),
        )
