"""Cluster analysis for parallel profiles (PerfExplorer's core, §5.3).

*"Because current visualization tools are incapable of displaying
thousands of data points with hundreds of dimensions in a meaningful
way to a user, statistical analysis methods are used to perform cluster
analysis on the data, and then do summarization of the clusters."*

Implemented: feature-matrix construction from a trial (threads ×
events), optional normalisation and PCA reduction, seeded k-means
(k-means++ initialisation, Lloyd iterations), silhouette-based k
selection, and per-cluster summarisation — the pipeline PerfExplorer
delegated to R, rebuilt on numpy/scipy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.model import ColumnarTrial, DataSource
from ..core.toolkit.stats import thread_metric_matrix


@dataclass
class ClusterResult:
    """Outcome of one k-means run."""

    k: int
    labels: np.ndarray  # (n_threads,) cluster index per thread
    centroids: np.ndarray  # (k, n_features)
    inertia: float
    feature_names: list[str]
    silhouette: Optional[float] = None

    @property
    def sizes(self) -> list[int]:
        return [int((self.labels == c).sum()) for c in range(self.k)]

    def members(self, cluster: int) -> np.ndarray:
        return np.nonzero(self.labels == cluster)[0]


def build_feature_matrix(
    source: DataSource | ColumnarTrial,
    metric: int = 0,
    normalise: str = "fraction",
) -> tuple[np.ndarray, list[str]]:
    """(threads × events) feature matrix for clustering.

    ``normalise``:

    * ``"fraction"`` — each thread's row divided by its row sum, so
      clusters reflect *where* a thread spends time, not how long it
      ran (PerfExplorer's default view);
    * ``"zscore"`` — per-event standardisation;
    * ``"none"`` — raw values.
    """
    matrix, names = thread_metric_matrix(source, metric)
    if normalise == "fraction":
        row_sums = matrix.sum(axis=1, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            matrix = np.where(row_sums > 0, matrix / row_sums, 0.0)
    elif normalise == "zscore":
        mean = matrix.mean(axis=0, keepdims=True)
        std = matrix.std(axis=0, keepdims=True)
        safe_std = np.where(std > 0, std, 1.0)
        matrix = np.where(std > 0, (matrix - mean) / safe_std, 0.0)
    elif normalise != "none":
        raise ValueError(f"unknown normalisation {normalise!r}")
    return matrix, names


def pca_reduce(
    matrix: np.ndarray, components: int = 2
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Project onto the top principal components.

    Returns (projected data, component vectors, explained-variance
    fractions).  Used both to shrink hundred-dimensional profiles before
    clustering and for 2-D scatter summaries.
    """
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    # economy SVD: threads may be many, events ~100
    u, s, vt = np.linalg.svd(centered, full_matrices=False)
    components = min(components, len(s))
    projected = u[:, :components] * s[:components]
    variance = s**2
    explained = (
        variance[:components] / variance.sum()
        if variance.sum() > 0
        else np.zeros(components)
    )
    return projected, vt[:components], explained


def kmeans(
    matrix: np.ndarray,
    k: int,
    seed: int = 0,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Seeded k-means (k-means++ init, Lloyd iterations, vectorised).

    Returns (labels, centroids, inertia).
    """
    n, _d = matrix.shape
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for {n} observations")
    rng = np.random.default_rng(seed)
    centroids = _kmeanspp_init(matrix, k, rng)
    labels = np.zeros(n, dtype=np.intp)
    for _ in range(max_iterations):
        distances = _sq_distances(matrix, centroids)
        new_labels = distances.argmin(axis=1)
        new_centroids = centroids.copy()
        for c in range(k):
            members = matrix[new_labels == c]
            if len(members):
                new_centroids[c] = members.mean(axis=0)
            else:
                # re-seed an empty cluster at the farthest point
                farthest = distances.min(axis=1).argmax()
                new_centroids[c] = matrix[farthest]
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        labels = new_labels
        if shift < tolerance:
            break
    inertia = float(_sq_distances(matrix, centroids).min(axis=1).sum())
    return labels, centroids, inertia


def _kmeanspp_init(matrix: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    n = matrix.shape[0]
    centroids = [matrix[rng.integers(n)]]
    for _ in range(1, k):
        d2 = _sq_distances(matrix, np.asarray(centroids)).min(axis=1)
        total = d2.sum()
        if total <= 0:
            centroids.append(matrix[rng.integers(n)])
            continue
        probabilities = d2 / total
        centroids.append(matrix[rng.choice(n, p=probabilities)])
    return np.asarray(centroids)


def _sq_distances(matrix: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    # ||x - c||^2 = ||x||^2 - 2 x·c + ||c||^2, vectorised
    x2 = (matrix**2).sum(axis=1, keepdims=True)
    c2 = (centroids**2).sum(axis=1)[None, :]
    cross = matrix @ centroids.T
    return np.maximum(x2 - 2 * cross + c2, 0.0)


def silhouette_score(matrix: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient (sampled for very large inputs)."""
    n = matrix.shape[0]
    unique = np.unique(labels)
    if len(unique) < 2:
        return 0.0
    if n > 2000:  # keep O(n^2) work bounded
        rng = np.random.default_rng(0)
        idx = rng.choice(n, 2000, replace=False)
        matrix = matrix[idx]
        labels = labels[idx]
        n = 2000
    distances = np.sqrt(_sq_distances(matrix, matrix))
    scores = np.zeros(n)
    for i in range(n):
        same = labels == labels[i]
        same[i] = False
        a = distances[i, same].mean() if same.any() else 0.0
        b = np.inf
        for c in unique:
            if c == labels[i]:
                continue
            mask = labels == c
            if mask.any():
                b = min(b, distances[i, mask].mean())
        denom = max(a, b)
        scores[i] = (b - a) / denom if denom > 0 else 0.0
    return float(scores.mean())


def cluster_trial(
    source: DataSource | ColumnarTrial,
    k: Optional[int] = None,
    metric: int = 0,
    max_k: int = 6,
    seed: int = 0,
    normalise: str = "fraction",
    pca_components: Optional[int] = None,
) -> ClusterResult:
    """The full PerfExplorer clustering pipeline on one trial.

    With ``k=None`` the best k in [2, max_k] is chosen by silhouette.
    """
    matrix, names = build_feature_matrix(source, metric, normalise)
    if pca_components is not None:
        matrix, _components, _explained = pca_reduce(matrix, pca_components)
        names = [f"PC{i + 1}" for i in range(matrix.shape[1])]
    if k is not None:
        labels, centroids, inertia = kmeans(matrix, k, seed)
        return ClusterResult(
            k=k, labels=labels, centroids=centroids, inertia=inertia,
            feature_names=names,
            silhouette=silhouette_score(matrix, labels),
        )
    best: Optional[ClusterResult] = None
    upper = min(max_k, matrix.shape[0] - 1)
    for candidate in range(2, max(upper + 1, 3)):
        labels, centroids, inertia = kmeans(matrix, candidate, seed)
        score = silhouette_score(matrix, labels)
        result = ClusterResult(
            k=candidate, labels=labels, centroids=centroids,
            inertia=inertia, feature_names=names, silhouette=score,
        )
        if best is None or (score or 0) > (best.silhouette or 0):
            best = result
    assert best is not None
    return best


def hierarchical_cluster(
    source: DataSource | ColumnarTrial | np.ndarray,
    k: int,
    metric: int = 0,
    method: str = "ward",
    normalise: str = "fraction",
) -> ClusterResult:
    """Agglomerative clustering (PerfExplorer's second method).

    Builds the scipy linkage over the thread feature matrix and cuts the
    dendrogram at ``k`` clusters.  Centroids are recomputed from the
    members so the result is interchangeable with the k-means output.
    """
    from scipy.cluster import hierarchy

    if isinstance(source, np.ndarray):
        matrix = source
        names = [f"f{i}" for i in range(matrix.shape[1])]
    else:
        matrix, names = build_feature_matrix(source, metric, normalise)
    n = matrix.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k={k} out of range for {n} observations")
    linkage = hierarchy.linkage(matrix, method=method)
    labels = hierarchy.fcluster(linkage, t=k, criterion="maxclust") - 1
    labels = labels.astype(np.intp)
    actual_k = int(labels.max()) + 1
    centroids = np.vstack(
        [
            matrix[labels == c].mean(axis=0)
            if (labels == c).any()
            else np.zeros(matrix.shape[1])
            for c in range(actual_k)
        ]
    )
    inertia = float(
        sum(
            ((matrix[labels == c] - centroids[c]) ** 2).sum()
            for c in range(actual_k)
        )
    )
    return ClusterResult(
        k=actual_k,
        labels=labels,
        centroids=centroids,
        inertia=inertia,
        feature_names=names,
        silhouette=silhouette_score(matrix, labels),
    )


def summarize_clusters(
    result: ClusterResult, top_features: int = 5
) -> list[dict]:
    """Per-cluster summaries: size and most-distinguishing features.

    Distinguishing features are those whose centroid value deviates most
    from the global mean — the "summarization of the clusters" the paper
    describes as PerfExplorer's output.
    """
    global_mean = result.centroids.mean(axis=0)
    summaries = []
    for c in range(result.k):
        deviation = result.centroids[c] - global_mean
        order = np.argsort(-np.abs(deviation))[:top_features]
        summaries.append(
            {
                "cluster": c,
                "size": result.sizes[c],
                "features": [
                    {
                        "name": result.feature_names[j],
                        "centroid": float(result.centroids[c, j]),
                        "deviation": float(deviation[j]),
                    }
                    for j in order
                ],
            }
        )
    return summaries
