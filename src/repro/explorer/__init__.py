"""``repro.explorer`` — PerfExplorer, the data-mining client/server (§5.3)."""

from .charts import (
    correlation_matrix, group_fraction_chart, imbalance_chart, speedup_chart,
)
from .client import AnalysisError, PerfExplorerClient
from .clustering import (
    ClusterResult, build_feature_matrix, cluster_trial, hierarchical_cluster,
    kmeans, pca_reduce, silhouette_score, summarize_clusters,
)
from .protocol import MessageStream, ProtocolError
from .results import ResultStore
from .rproxy import AnalysisBackend, NumpyAnalysisBackend
from .server import AnalysisServer, SocketServer, ThreadedSocketServer
from .workflow import (
    WorkflowError, available_operations, run_workflow,
)

__all__ = [
    "AnalysisServer", "SocketServer", "ThreadedSocketServer",
    "PerfExplorerClient", "AnalysisError",
    "ClusterResult", "cluster_trial", "kmeans", "pca_reduce",
    "silhouette_score", "summarize_clusters", "build_feature_matrix",
    "hierarchical_cluster",
    "ResultStore", "AnalysisBackend", "NumpyAnalysisBackend",
    "MessageStream", "ProtocolError",
    "speedup_chart", "correlation_matrix", "group_fraction_chart",
    "imbalance_chart",
    "run_workflow", "available_operations", "WorkflowError",
]
