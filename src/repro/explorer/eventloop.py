"""Event-loop serving core for PerfExplorer (the async `SocketServer`).

One reactor thread multiplexes every client connection through a
:mod:`selectors`-based event loop — the same zero-dependency discipline
as the rest of the codebase.  The thread-per-connection core (kept as
:class:`~repro.explorer.server.ThreadedSocketServer` for like-for-like
benchmarking) spends one OS thread, one 8 MiB stack, and a scheduler
slot per client even when the client is idle; this core holds thousands
of mostly-idle connections on one thread:

* **non-blocking accept** — the listener is part of the selector; an
  accept burst drains in one loop pass, with ``max_connections``
  refusing (and counting) connections past the cap;
* **incremental frame assembly** — each connection owns a receive
  buffer; newline-framed requests (``protocol.py`` framing) are carved
  out as bytes arrive, so a half-written frame costs a buffer, not a
  blocked thread;
* **dispatch off the loop** — decoded requests go to a bounded
  worker-thread pool (``executor_threads``), so MiniSQL execution,
  numpy folds, and WAL shipping never stall the loop; replies come
  back through a completion queue and a wakeup pipe;
* **pipelining** — a client may send N requests before reading any
  reply; request *k*'s reply is buffered until replies ``0..k-1`` have
  been flushed, so per-connection reply order always matches request
  order even though the pool executes out of order;
* **admission control at the dispatch queue** — with ``max_in_flight``
  set, a request arriving while that many are queued-or-executing is
  shed with a retryable RETRY_LATER (``server.admission_shed_total``),
  exactly the threaded core's contract measured at the new queue;
* **drain-on-stop** — ``stop(drain=True)`` lets dispatched requests
  finish and answers queued-but-not-dispatched ones with RETRY_LATER
  (``server.drain_shed_total``), then flushes every buffered reply
  before closing sockets;
* **slowloris reaping** — a connection stalled mid-frame past
  ``partial_frame_timeout`` (half a length prefix, then silence), or
  idle past ``idle_timeout`` with nothing in flight, is closed and
  counted in ``server.idle_reaped_total``.

The wire shim hooks are preserved: receives pass
``faults.net_point(..., "net.server.recv")`` and every queued reply
applies the armed ``net.server.send`` fault (drop / trunc / delay /
reset), so the chaos harness drives this core exactly like the old one.
"""

from __future__ import annotations

import collections
import selectors
import socket
import threading
import time
import traceback
from contextlib import nullcontext
from typing import Any, Optional

from repro.obs.log import get_logger
from repro.obs.metrics import registry as _registry
from repro.obs.trace import tracer as _tracer
from repro.testing import faults

from .protocol import (
    ProtocolError, decode_message, encode_message, extract_trace_context,
)

#: Request logs carry the same logger name as the threaded core — the
#: serving core is an implementation detail, not a log topology change.
_log = get_logger("repro.explorer.server")

_RECV_CHUNK = 65536
#: Largest slice handed to one ``send()`` call — bounds how long a
#: single fat reply (a WAL segment ship, a big chart) can hog the loop
#: before other connections get their turn.
_SEND_CHUNK = 262144


class _Connection:
    """Per-connection state, owned exclusively by the reactor thread."""

    __slots__ = (
        "sock", "recv_buffer", "send_buffer", "next_seq", "next_reply",
        "ready", "open_requests", "last_recv", "partial_since", "closed",
    )

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.recv_buffer = bytearray()
        self.send_buffer = bytearray()
        self.next_seq = 0      # next request sequence number to assign
        self.next_reply = 0    # next reply sequence number to flush
        #: seq -> encoded reply bytes (None = server bug, close instead).
        self.ready: dict[int, Optional[bytes]] = {}
        self.open_requests = 0
        self.last_recv = time.monotonic()
        self.partial_since: Optional[float] = None
        self.closed = False


class SocketServer:
    """TCP front end: one event-loop thread multiplexing every client.

    Drop-in replacement for the thread-per-connection core — same
    constructor surface, ``start()``/``stop()`` lifecycle, admission
    control, drain semantics, request log, metrics, and telemetry
    mounting — plus:

    ``executor_threads``
        Size of the bounded worker pool requests are dispatched onto
        (default 8; the loop itself never executes a handler).
    ``max_connections``
        Refuse (close immediately, count in
        ``server.connections_refused_total``) connections past this
        many concurrent clients.
    ``idle_timeout`` / ``partial_frame_timeout``
        Reap connections idle past / stalled mid-frame past these many
        seconds (``server.idle_reaped_total``).  ``idle_timeout`` is
        off by default — analysis clients legitimately sit idle between
        requests; the partial-frame guard is on (30 s) because half a
        frame followed by silence is never legitimate.

    With ``telemetry_port`` set (0 = any free port), ``start()`` also
    mounts a :class:`~repro.obs.telemetry.TelemetryServer`; ``/healthz``
    carries live connection and dispatch-queue gauges.
    """

    def __init__(
        self,
        server: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry_port: Optional[int] = None,
        max_in_flight: Optional[int] = None,
        executor_threads: int = 8,
        max_connections: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        partial_frame_timeout: Optional[float] = 30.0,
    ):
        self.analysis = server
        self.max_in_flight = max_in_flight
        self.executor_threads = max(1, int(executor_threads))
        self.max_connections = max_connections
        self.idle_timeout = idle_timeout
        self.partial_frame_timeout = partial_frame_timeout
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self.address = self._listener.getsockname()
        self._telemetry_port = telemetry_port
        self._telemetry = None
        self.telemetry_address: Optional[tuple[str, int]] = None

        self._selector: Optional[selectors.BaseSelector] = None
        self._connections: dict[socket.socket, _Connection] = {}
        #: Loop wakeup pipe: workers push completions and poke this so a
        #: select() blocked on quiet sockets delivers replies immediately.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._completed: collections.deque = collections.deque()

        # Dispatch accounting, shared with the workers.  _in_flight
        # counts admitted requests (queued + executing) — the quantity
        # admission control bounds and stop(drain=True) waits on; the
        # queue's length alone separates "dispatched" from "queued".
        self._in_flight = 0
        self._idle = threading.Condition()
        self._queue: collections.deque = collections.deque()
        self._workers: list[threading.Thread] = []
        self._workers_live = False

        self._running = False
        self._draining = False
        self._stopped = False
        self._drained = threading.Event()
        self._loop_thread: Optional[threading.Thread] = None
        self._last_sweep = 0.0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        self._running = True
        if self._telemetry_port is not None:
            from repro.obs.telemetry import TelemetryServer

            self._telemetry = TelemetryServer(
                host=self.address[0], port=self._telemetry_port,
                health=self._health,
            )
            self.telemetry_address = self._telemetry.start()
            _log.info(
                "telemetry_listening",
                host=self.telemetry_address[0],
                port=self.telemetry_address[1],
            )
        # Expose the dispatch load through the analysis server so the
        # lightweight ``server_load`` RPC (client least-loaded routing)
        # reports this front end's queue depth and connection count.
        setattr(self.analysis, "load_probe", self._load_snapshot)
        self._workers_live = True
        for index in range(self.executor_threads):
            worker = threading.Thread(
                target=self._worker_loop, name=f"explorer-exec-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "accept")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._loop_thread = threading.Thread(
            target=self._loop, name="explorer-loop", daemon=True
        )
        self._loop_thread.start()
        return self.address

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting; with ``drain`` (default) let every dispatched
        request finish and answer queued-but-not-dispatched ones with
        RETRY_LATER, flushing all buffered replies before sockets close."""
        if self._stopped:
            return
        self._stopped = True
        deadline = time.monotonic() + timeout
        self._draining = True
        self._wake()
        if drain:
            # Queued-not-dispatched requests were never executed, so the
            # client may retry them — even mutating ones.  Pop them all
            # before waiting on the executing remainder.
            with self._idle:
                abandoned = list(self._queue)
                self._queue.clear()
                self._in_flight -= len(abandoned)
                if self._in_flight == 0:
                    self._idle.notify_all()
            for conn, seq, request in abandoned:
                _registry.counter("server.drain_shed_total").inc()
                self._completed.append(
                    (conn, seq, _retry_later_bytes(request, "shutting down"))
                )
            if abandoned:
                self._wake()
            with self._idle:
                while self._in_flight > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        _log.warning(
                            "shutdown_timeout", in_flight=self._in_flight
                        )
                        break
                    self._idle.wait(remaining)
            # Completions are delivered by the loop; wait for every
            # buffered reply to reach the kernel before closing.
            self._wake()
            self._drained.wait(timeout=max(0.0, deadline - time.monotonic()))
        self._running = False
        self._wake()
        with self._idle:
            self._workers_live = False
            self._idle.notify_all()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=5.0)
        if self._telemetry is not None:
            self._telemetry.stop()
            self._telemetry = None
        # The loop closes everything on exit; if it is wedged (or never
        # ran), fall back to closing here so restarts on the same
        # address never block on lingering sockets.
        self._close_listener()
        for conn in list(self._connections.values()):
            _force_close(conn.sock)
        self._connections.clear()
        try:
            self._wake_r.close()
            self._wake_w.close()
        except OSError:
            pass

    # -- health / load --------------------------------------------------------

    def _health(self) -> dict:
        with self._idle:
            in_flight = self._in_flight
            queued = len(self._queue)
        health = {
            "serving": self._running,
            "address": f"{self.address[0]}:{self.address[1]}",
            "in_flight_requests": in_flight,
            "connections": len(self._connections),
            "queued_requests": queued,
            "executor_threads": self.executor_threads,
        }
        if self.max_in_flight is not None:
            health["max_in_flight"] = self.max_in_flight
        if self.max_connections is not None:
            health["max_connections"] = self.max_connections
        replica = getattr(self.analysis, "replica", None)
        if replica is not None:
            records, seconds = replica.replication_lag()
            health["replication"] = {
                "role": "replica",
                "state": replica.state,
                "lag_records": records,
                "lag_seconds": seconds,
            }
        return health

    def _load_snapshot(self) -> dict:
        """The ``server_load`` RPC payload: how busy this front end is."""
        with self._idle:
            return {
                "in_flight": self._in_flight,
                "queued": len(self._queue),
                "connections": len(self._connections),
            }

    # -- reactor --------------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass  # pipe full (loop already pending) or torn down

    def _loop(self) -> None:
        try:
            while self._running:
                if self._draining:
                    self._close_listener()
                events = self._selector.select(timeout=0.1)
                for key, mask in events:
                    if key.data == "accept":
                        self._accept_ready()
                    elif key.data == "wake":
                        self._drain_wakeups()
                    else:
                        conn = key.data
                        if mask & selectors.EVENT_READ:
                            self._readable(conn)
                        if mask & selectors.EVENT_WRITE and not conn.closed:
                            self._writable(conn)
                self._deliver_completions()
                self._sweep_timeouts()
                if self._draining:
                    self._check_drained()
        except Exception:  # pragma: no cover - reactor bug backstop
            _registry.counter("server.client_errors").inc()
            _log.error("event_loop_error", traceback=traceback.format_exc())
        finally:
            self._close_listener()
            for conn in list(self._connections.values()):
                self._close(conn)
            try:
                self._selector.close()
            except OSError:
                pass

    def _close_listener(self) -> None:
        if self._listener is None:
            return
        listener, self._listener = self._listener, None
        if self._selector is not None:
            try:
                self._selector.unregister(listener)
            except (KeyError, ValueError, OSError):
                pass
        _force_close(listener)

    def _accept_ready(self) -> None:
        while True:
            listener = self._listener
            if listener is None:
                return
            try:
                client, _addr = listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            if self._draining or not self._running:
                _force_close(client)
                continue
            if (
                self.max_connections is not None
                and len(self._connections) >= self.max_connections
            ):
                _registry.counter("server.connections_refused_total").inc()
                _log.warning(
                    "connection_refused", max_connections=self.max_connections
                )
                _force_close(client)
                continue
            client.setblocking(False)
            conn = _Connection(client)
            self._connections[client] = conn
            self._selector.register(client, selectors.EVENT_READ, conn)
            _registry.gauge("server.open_connections").set(
                len(self._connections)
            )

    def _drain_wakeups(self) -> None:
        while True:
            try:
                if not self._wake_r.recv(4096):
                    return
            except (BlockingIOError, OSError):
                return

    def _readable(self, conn: _Connection) -> None:
        try:
            faults.net_point(conn.sock, "net.server.recv")
        except ConnectionResetError as exc:
            self._disconnect(conn, str(exc))
            return
        while not conn.closed:
            try:
                chunk = conn.sock.recv(_RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                self._disconnect(conn, str(exc))
                return
            if not chunk:
                if conn.recv_buffer:
                    self._disconnect(conn, "connection closed mid-frame")
                else:
                    self._close(conn)  # clean EOF
                return
            conn.recv_buffer += chunk
            if len(chunk) < _RECV_CHUNK:
                break
        if conn.closed:
            return
        conn.last_recv = time.monotonic()
        self._parse_frames(conn)

    def _parse_frames(self, conn: _Connection) -> None:
        while not conn.closed:
            newline = conn.recv_buffer.find(b"\n")
            if newline < 0:
                break
            line = bytes(conn.recv_buffer[:newline])
            del conn.recv_buffer[: newline + 1]
            try:
                request = decode_message(line)
            except ProtocolError as exc:
                self._disconnect(conn, str(exc))
                return
            self._ingest(conn, request)
        conn.partial_since = (
            time.monotonic() if conn.recv_buffer and not conn.closed else None
        )

    def _ingest(self, conn: _Connection, request: dict) -> None:
        """Assign the next reply slot and dispatch (or shed) one request."""
        seq = conn.next_seq
        conn.next_seq += 1
        conn.open_requests += 1
        if self._draining:
            _registry.counter("server.drain_shed_total").inc()
            self._ready(conn, seq, _retry_later_bytes(request, "shutting down"))
            return
        with self._idle:
            if (
                self.max_in_flight is not None
                and self._in_flight >= self.max_in_flight
            ):
                admitted = False
            else:
                admitted = True
                self._in_flight += 1
                self._queue.append((conn, seq, request))
                self._idle.notify()
        if not admitted:
            _registry.counter("server.admission_shed_total").inc()
            _log.warning(
                "request_shed",
                method=request.get("method"),
                max_in_flight=self.max_in_flight,
            )
            self._ready(
                conn, seq,
                _retry_later_bytes(request, "server at max in-flight requests"),
            )

    def _ready(self, conn: _Connection, seq: int, payload: Optional[bytes]) -> None:
        """Record reply ``seq`` and flush every in-order completed reply."""
        if conn.closed:
            return
        conn.ready[seq] = payload
        while conn.next_reply in conn.ready:
            data = conn.ready.pop(conn.next_reply)
            conn.next_reply += 1
            conn.open_requests -= 1
            if data is None:
                # A response the protocol could not encode: the worker
                # already counted the bug; kill the connection like the
                # threaded core's serve loop did.
                self._close(conn)
                return
            if not self._enqueue_send(conn, data):
                return

    def _enqueue_send(self, conn: _Connection, data: bytes) -> bool:
        """Queue one reply, applying any armed ``net.server.send`` fault.

        Returns False when the fault killed the connection."""
        fault = faults.net_fire("net.server.send")
        if fault is not None:
            if fault.mode == "drop":
                return True
            if fault.mode == "trunc":
                data = data[: int(fault.arg)]
            elif fault.mode == "reset":
                self._abort(conn)
                return False
            elif fault.mode == "delay":
                time.sleep(fault.arg)
        conn.send_buffer += data
        self._want_write(conn, True)
        self._writable(conn)  # opportunistic flush while the buffer is hot
        return not conn.closed

    def _writable(self, conn: _Connection) -> None:
        if conn.closed:
            return
        if not conn.send_buffer:
            self._want_write(conn, False)
            return
        try:
            view = memoryview(conn.send_buffer)
            try:
                sent = conn.sock.send(view[:_SEND_CHUNK])
            finally:
                view.release()
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            self._disconnect(conn, str(exc))
            return
        del conn.send_buffer[:sent]
        if not conn.send_buffer:
            self._want_write(conn, False)

    def _want_write(self, conn: _Connection, writable: bool) -> None:
        if conn.closed:
            return
        events = selectors.EVENT_READ
        if writable:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError, OSError):
            pass

    def _deliver_completions(self) -> None:
        while True:
            try:
                conn, seq, payload = self._completed.popleft()
            except IndexError:
                return
            self._ready(conn, seq, payload)

    def _sweep_timeouts(self) -> None:
        if self.idle_timeout is None and self.partial_frame_timeout is None:
            return
        now = time.monotonic()
        if now - self._last_sweep < 0.05:
            return
        self._last_sweep = now
        for conn in list(self._connections.values()):
            if conn.closed:
                continue
            if (
                self.partial_frame_timeout is not None
                and conn.partial_since is not None
                and now - conn.partial_since > self.partial_frame_timeout
            ):
                self._reap(conn, "partial_frame")
            elif (
                self.idle_timeout is not None
                and conn.open_requests == 0
                and not conn.send_buffer
                and now - conn.last_recv > self.idle_timeout
            ):
                self._reap(conn, "idle")

    def _reap(self, conn: _Connection, reason: str) -> None:
        _registry.counter("server.idle_reaped_total").inc()
        _log.info("connection_reaped", reason=reason)
        self._close(conn)

    def _check_drained(self) -> None:
        if self._drained.is_set() or self._completed:
            return
        with self._idle:
            busy = self._in_flight
        if busy:
            return
        for conn in self._connections.values():
            if conn.send_buffer or conn.ready:
                return
        self._drained.set()

    # -- teardown of one connection -------------------------------------------

    def _disconnect(self, conn: _Connection, reason: str) -> None:
        """Transport-level ending: client went away, reset, bad frame."""
        _registry.counter("server.client_disconnects").inc()
        _log.info("client_disconnect", error=reason)
        self._close(conn)

    def _close(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self._forget(conn)
        _force_close(conn.sock)

    def _abort(self, conn: _Connection) -> None:
        """RST teardown (chaos shim's reset mode)."""
        conn.closed = True
        self._forget(conn)
        faults.reset_socket(conn.sock)

    def _forget(self, conn: _Connection) -> None:
        if self._selector is not None:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
        self._connections.pop(conn.sock, None)
        _registry.gauge("server.open_connections").set(len(self._connections))

    # -- worker pool ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._idle:
                while not self._queue and self._workers_live:
                    self._idle.wait()
                if not self._queue:
                    return  # shutdown
                conn, seq, request = self._queue.popleft()
            payload = self._execute(request)
            with self._idle:
                self._in_flight -= 1
                if self._in_flight == 0:
                    self._idle.notify_all()
            self._completed.append((conn, seq, payload))
            self._wake()

    def _execute(self, request: dict) -> Optional[bytes]:
        """Dispatch one request on a worker: trace-context adoption,
        structured request log with latency and result size, metrics.
        Returns the encoded reply, or None on an unencodable response
        (a server bug — counted, logged, and fatal to the connection)."""
        request_id = request.get("id")
        method = request.get("method", "")
        remote = extract_trace_context(request) if _tracer.enabled else None
        context = (
            _tracer.context(remote[0], remote[1])
            if remote is not None else nullcontext()
        )
        started = time.perf_counter()
        with context:
            with _tracer.span(f"server.{method or 'unknown'}"):
                try:
                    result = self.analysis.handle_request(
                        method, request.get("params", {}) or {}
                    )
                    response = {"id": request_id, "result": result}
                    status = "ok"
                except Exception as exc:  # deliberate: errors go to the client
                    response = {
                        "id": request_id,
                        "error": f"{type(exc).__name__}: {exc}",
                        "traceback": traceback.format_exc(limit=3),
                    }
                    status = "error"
        try:
            encoded = encode_message(response)
        except Exception:
            # The handler's *result* cannot cross the wire — a server
            # bug that must never vanish silently.
            _registry.counter("server.client_errors").inc()
            _log.error("client_loop_error", traceback=traceback.format_exc())
            return None
        latency_ms = round((time.perf_counter() - started) * 1000.0, 3)
        _registry.counter("server.requests").inc()
        if status == "error":
            _registry.counter("server.errors").inc()
        _registry.histogram("server.request_seconds").observe(
            latency_ms / 1000.0
        )
        _log.info(
            "request",
            method=method,
            id=request_id,
            status=status,
            latency_ms=latency_ms,
            result_bytes=len(encoded),
        )
        return encoded


def _retry_later_bytes(request: dict, reason: str) -> bytes:
    return encode_message(
        {
            "id": request.get("id"),
            "error": f"RETRY_LATER: {reason}",
            "retry_later": True,
        }
    )


def _force_close(sock: Optional[socket.socket]) -> None:
    if sock is None:
        return
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
