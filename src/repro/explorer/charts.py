"""Chart-data producers for the PerfExplorer client.

The real PerfExplorer grew a charting pane (scalability curves,
correlation plots, stacked group bars) on top of the §5.3 architecture.
These functions compute those chart *series* — the client renders them
however it likes (our tests assert on the data; the CLI prints text).

Every producer takes PerfDMF-model inputs and returns plain dicts/lists
so the values serialise over the wire protocol unchanged.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from ..core.model import DataSource
from ..core.toolkit.speedup import SpeedupAnalyzer
from ..core.toolkit.stats import event_values, group_breakdown


def speedup_chart(
    trials: Sequence[tuple[int, DataSource]],
    events: Optional[list[str]] = None,
    metric: int = 0,
) -> dict[str, Any]:
    """Scalability chart: per-routine and whole-app speedup series.

    Returns ``{"processors": [...], "series": {event: [mean speedups]},
    "application": [...], "ideal": [...]}``.
    """
    analyzer = SpeedupAnalyzer(metric=metric)
    for processors, source in trials:
        analyzer.add_trial(processors, source)
    counts = analyzer.processor_counts
    series: dict[str, list[Optional[float]]] = {}
    for curve in analyzer.analyze(events):
        by_p = {pt.processors: pt.mean for pt in curve.points}
        series[curve.event] = [by_p.get(p) for p in counts]
    app_points = analyzer.application_speedup()
    base = counts[0]
    return {
        "processors": counts,
        "series": series,
        "application": [pt.mean for pt in app_points],
        "ideal": [p / base for p in counts],
    }


def correlation_matrix(
    source: DataSource,
    events: Optional[list[str]] = None,
    metric: int = 0,
) -> dict[str, Any]:
    """Pairwise Pearson correlations of per-thread event values.

    High off-diagonal structure is what the analyst scans for: strongly
    anti-correlated events indicate work shifting between routines
    across threads (the sPPM boundary effect shows up here too).
    """
    if events is None:
        events = list(source.interval_events)
    matrix = np.vstack(
        [event_values(source, name, metric) for name in events]
    )
    # drop constant rows to avoid undefined correlations
    live = matrix.std(axis=1) > 0
    kept = [name for name, keep in zip(events, live) if keep]
    if len(kept) < 2:
        return {"events": kept, "matrix": [[1.0] * len(kept)] * len(kept)}
    correlation = np.corrcoef(matrix[live])
    return {"events": kept, "matrix": correlation.round(6).tolist()}


def group_fraction_chart(
    trials: Sequence[tuple[int, DataSource]], metric: int = 0
) -> dict[str, Any]:
    """Stacked-bar data: fraction of total time per event group vs P."""
    processors = []
    groups: dict[str, list[float]] = {}
    all_groups: set[str] = set()
    breakdowns = []
    for p, source in sorted(trials, key=lambda t: t[0]):
        processors.append(p)
        breakdown = group_breakdown(source, metric)
        breakdowns.append(breakdown)
        all_groups.update(breakdown)
    for group in sorted(all_groups):
        series = []
        for breakdown in breakdowns:
            total = sum(breakdown.values()) or 1.0
            series.append(breakdown.get(group, 0.0) / total)
        groups[group] = series
    return {"processors": processors, "fractions": groups}


def imbalance_chart(
    source: DataSource, metric: int = 0, top: int = 10
) -> dict[str, Any]:
    """Per-event imbalance (max/mean over threads), worst first."""
    rows = []
    for name in source.interval_events:
        values = event_values(source, name, metric)
        mean = float(values.mean())
        if mean <= 0:
            continue
        rows.append(
            {
                "event": name,
                "mean": mean,
                "max": float(values.max()),
                "imbalance": float(values.max() / mean),
            }
        )
    rows.sort(key=lambda r: r["imbalance"], reverse=True)
    return {"events": rows[:top]}
