"""The PerfExplorer client.

*"Using the PerfExplorer client, the analyst selects a particular trial
of interest, sets analysis parameters, and then requests data mining
operations on the parallel dataset"* (§5.3).  The client is a thin
remote proxy: every call becomes one protocol request; results arrive
as plain dicts/lists.

Fault tolerance (ISSUE 9): the client accepts a *list* of endpoints —
the first is the primary, the rest are read replicas.  Read-only calls
fail over across endpoints; mutating calls go only to the primary.
Each endpoint sits behind a circuit breaker (closed → open after
``breaker_threshold`` consecutive failures → half-open probe after
``breaker_cooldown`` seconds), reconnect delays use jittered
exponential backoff with a cap, and ``max_lag_ms`` bounds how stale a
replica may be before reads fall back to the primary.  Reads rank the
surviving candidates least-loaded first (cheap ``server_load`` probes,
cached like the staleness probes; ties broken by replication lag, then
by sticky affinity to the active endpoint).  A server that
sheds a request under admission control answers ``RETRY_LATER``; the
client retries those (any method — a shed request never ran) with
backoff.
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from typing import Any, Optional, Union

from repro.obs.log import get_logger
from repro.obs.metrics import registry as _registry
from repro.obs.trace import tracer as _tracer

from .protocol import (
    READ_ONLY_METHODS, ConnectTimeout, MessageStream, ProtocolError,
    RetryLater, attach_trace_context,
)

__all__ = [
    "AnalysisError", "CircuitBreaker", "PerfExplorerClient",
    "READ_ONLY_METHODS", "RetryLater",
]

_log = get_logger("repro.explorer.client")

Endpoint = tuple[str, int]

#: Gauge encoding of breaker states (exported as
#: ``explorer.client.circuit_breaker_state``).
BREAKER_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


class AnalysisError(RuntimeError):
    """An error reported by the analysis server."""


class CircuitBreaker:
    """Per-endpoint circuit breaker.

    ``closed`` admits traffic; ``breaker_threshold`` consecutive
    failures trip it ``open`` (requests skip the endpoint entirely);
    after ``cooldown`` seconds the next :meth:`allow` transitions to
    ``half_open`` and admits a single probe — success closes the
    breaker, failure re-opens it and re-arms the cooldown.
    """

    def __init__(
        self,
        name: str = "",
        threshold: int = 3,
        cooldown: float = 1.0,
        clock=time.monotonic,
    ):
        self.name = name
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self._clock = clock
        self.failures = 0
        self._state = "closed"
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        """May a request be sent to this endpoint right now?"""
        if self._state == "open":
            if self._clock() - self._opened_at < self.cooldown:
                return False
            self._transition("half_open")
        return True

    def record_success(self) -> None:
        self.failures = 0
        if self._state != "closed":
            self._transition("closed")

    def record_failure(self) -> None:
        self.failures += 1
        if self._state == "half_open" or self.failures >= self.threshold:
            self._opened_at = self._clock()
            if self._state != "open":
                _registry.counter("explorer.client.circuit_breaker_opens").inc()
                self._transition("open")

    def _transition(self, new_state: str) -> None:
        _log.info(
            "circuit_breaker",
            endpoint=self.name,
            state=new_state,
            failures=self.failures,
        )
        self._state = new_state
        # Last-transition gauge: a flat registry holds one value, so
        # this reflects the most recently transitioning breaker — the
        # interesting one during an incident.
        _registry.gauge("explorer.client.circuit_breaker_state").set(
            BREAKER_STATE_CODES[new_state]
        )


def _as_endpoint(value: Union[str, Endpoint]) -> Endpoint:
    if isinstance(value, str):
        host, _, port = value.rpartition(":")
        if not host:
            raise ValueError(f"endpoint {value!r} is not host:port")
        return (host, int(port))
    host, port = value
    return (str(host), int(port))


def _addr(endpoint: Endpoint) -> str:
    return f"{endpoint[0]}:{endpoint[1]}"


class PerfExplorerClient:
    """A connected PerfExplorer client.

    Connecting retries with jittered exponential backoff
    (``connect_retries`` attempts, delay doubling from ``backoff`` up
    to ``backoff_cap``, each inflated by up to 50% jitter so a fleet of
    reconnecting clients does not stampede), raising
    :class:`ConnectTimeout` — carrying the attempted address list —
    when no endpoint ever accepts.  Read-only RPCs that die to a
    transport error reconnect and retry, then fail over to the next
    healthy endpoint; mutating RPCs go only to the primary (the first
    endpoint) and never retry.  With ``max_lag_ms`` set, reads consult
    each replica's ``replication_status`` (cached ``lag_probe_ttl``
    seconds) and skip replicas lagging past the bound.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 30.0,
        connect_retries: int = 3,
        backoff: float = 0.1,
        *,
        endpoints: Optional[list[Union[str, Endpoint]]] = None,
        backoff_cap: float = 5.0,
        max_lag_ms: Optional[float] = None,
        lag_probe_ttl: float = 1.0,
        retry_later_attempts: int = 2,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
        rng: Optional[random.Random] = None,
    ):
        if endpoints:
            self.endpoints = [_as_endpoint(e) for e in endpoints]
        elif host is not None and port is not None:
            self.endpoints = [(host, int(port))]
        else:
            raise ValueError("need host/port or a non-empty endpoints list")
        # Back-compat attributes: the primary endpoint.
        self.host, self.port = self.endpoints[0]
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.max_lag_ms = max_lag_ms
        self.lag_probe_ttl = lag_probe_ttl
        self.retry_later_attempts = max(0, retry_later_attempts)
        self._rng = rng if rng is not None else random.Random()
        self._ids = itertools.count(1)
        self._streams: dict[Endpoint, MessageStream] = {}
        self._breakers: dict[Endpoint, CircuitBreaker] = {
            ep: CircuitBreaker(
                name=_addr(ep),
                threshold=breaker_threshold,
                cooldown=breaker_cooldown,
            )
            for ep in self.endpoints
        }
        #: addr -> (monotonic probe time, lag in ms) staleness cache.
        self._lag_cache: dict[Endpoint, tuple[float, float]] = {}
        #: addr -> (probe time, load score, healthy) from ``server_load``.
        self._load_cache: dict[Endpoint, tuple[float, float, bool]] = {}
        self._active: Endpoint = self.endpoints[0]
        self._stream: Optional[MessageStream] = None
        self._connect()

    # -- plumbing ------------------------------------------------------------

    def breaker(self, endpoint: Union[str, Endpoint, None] = None) -> CircuitBreaker:
        """The circuit breaker guarding ``endpoint`` (default: primary)."""
        ep = self.endpoints[0] if endpoint is None else _as_endpoint(endpoint)
        return self._breakers[ep]

    def _delay(self, attempt: int) -> float:
        """Jittered exponential backoff: double from ``backoff`` up to
        ``backoff_cap``, inflated by up to 50% so simultaneous
        reconnectors spread out instead of stampeding in lockstep."""
        base = min(self.backoff_cap, self.backoff * (2 ** attempt))
        return base * (1.0 + 0.5 * self._rng.random())

    def _open(self, endpoint: Endpoint) -> MessageStream:
        """One connection attempt to one endpoint (no retry loop)."""
        sock = socket.create_connection(endpoint, timeout=self.timeout)
        stream = MessageStream(sock, fault_point="net.client")
        self._streams[endpoint] = stream
        self._activate(endpoint)
        return stream

    def _activate(self, endpoint: Endpoint) -> None:
        self._active = endpoint
        self._stream = self._streams.get(endpoint)

    def _drop(self, endpoint: Endpoint) -> None:
        stream = self._streams.pop(endpoint, None)
        if stream is not None:
            stream.close()
        if self._active == endpoint:
            self._stream = None

    def _connect(self) -> None:
        """Connect to the first reachable endpoint, round-robin with
        jittered exponential backoff between rounds."""
        attempts = max(1, self.connect_retries)
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            for endpoint in self.endpoints:
                try:
                    self._open(endpoint)
                except OSError as exc:
                    self._breakers[endpoint].record_failure()
                    last_error = exc
                    continue
                return
            if attempt + 1 < attempts:
                _registry.counter("explorer.client.reconnects").inc()
                time.sleep(self._delay(attempt))
        addresses = [_addr(ep) for ep in self.endpoints]
        raise ConnectTimeout(
            f"could not connect to {', '.join(addresses)} after "
            f"{attempts} attempts: {last_error}",
            addresses=addresses,
        ) from last_error

    def _connect_endpoint(self, endpoint: Endpoint) -> MessageStream:
        """Connect to one specific endpoint with the retry loop."""
        attempts = max(1, self.connect_retries)
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                return self._open(endpoint)
            except OSError as exc:
                self._breakers[endpoint].record_failure()
                last_error = exc
                if attempt + 1 < attempts:
                    _registry.counter("explorer.client.reconnects").inc()
                    time.sleep(self._delay(attempt))
        raise ConnectTimeout(
            f"could not connect to {_addr(endpoint)} after "
            f"{attempts} attempts: {last_error}",
            addresses=[_addr(endpoint)],
        ) from last_error

    # -- staleness-bounded read routing --------------------------------------

    def _lag_ms(self, endpoint: Endpoint) -> float:
        now = time.monotonic()
        cached = self._lag_cache.get(endpoint)
        if cached is not None and now - cached[0] < self.lag_probe_ttl:
            return cached[1]
        try:
            status = self._call_once(endpoint, "replication_status", {})
            if status.get("role") == "replica":
                lag = float(status.get("replication_lag_seconds", 0.0)) * 1000.0
            else:
                lag = 0.0  # a primary is never stale
        except Exception:
            lag = float("inf")
        self._lag_cache[endpoint] = (now, lag)
        return lag

    # -- least-loaded routing --------------------------------------------------

    def _load_score(self, endpoint: Endpoint) -> tuple[float, bool]:
        """(load, healthy) for an endpoint, from its ``server_load``
        probe (dispatch queue depth + executing requests), cached
        ``lag_probe_ttl`` seconds like the staleness probe.

        A server that answers but does not know the method (pre-probe
        builds, handler-stubbed tests) scores as unloaded — answering at
        all is the health signal.  A transport failure scores infinitely
        loaded *and* unhealthy, and drops the cached stream so the next
        real call starts from a fresh connection."""
        now = time.monotonic()
        cached = self._load_cache.get(endpoint)
        if cached is not None and now - cached[0] < self.lag_probe_ttl:
            return cached[1], cached[2]
        try:
            status = self._call_once(endpoint, "server_load", {})
            load = float(status.get("in_flight", 0) or 0)
            load += float(status.get("queued", 0) or 0)
            healthy = True
        except AnalysisError:
            load, healthy = 0.0, True
        except RetryLater:
            # Admission control shed the probe itself: saturated but up.
            load, healthy = float("inf"), True
        except Exception:
            load, healthy = float("inf"), False
            self._drop(endpoint)
        self._load_cache[endpoint] = (now, load, healthy)
        return load, healthy

    def _cached_lag(self, endpoint: Endpoint) -> float:
        """Last known lag without issuing a probe (0 when never probed:
        an endpoint we know nothing bad about should not be demoted)."""
        cached = self._lag_cache.get(endpoint)
        return cached[1] if cached is not None else 0.0

    def _read_candidates(self) -> list[Endpoint]:
        """Failover order for a read: breaker-open endpoints skipped;
        replicas past the staleness bound skipped; the rest ranked
        least-loaded first (``server_load`` probes, cached), ties broken
        by replication lag then by active-endpoint affinity — a sorted
        stable over the active-first base order, so equally-loaded
        endpoints keep the old active-sticky behaviour.  The primary
        always remains as the last resort."""
        primary = self.endpoints[0]
        ordered = [self._active] + [
            ep for ep in self.endpoints if ep != self._active
        ]
        candidates = [ep for ep in ordered if self._breakers[ep].allow()]
        if self.max_lag_ms is not None:
            fresh = [
                ep for ep in candidates
                if ep == primary or self._lag_ms(ep) <= self.max_lag_ms
            ]
            if fresh != candidates:
                _registry.counter("explorer.client.stale_replica_skips").inc()
            candidates = fresh
        if len(candidates) > 1:
            # Rank: healthy before probe-failed, then least-loaded, then
            # sticky affinity to the active endpoint, then least-lag.
            # Affinity outranks lag: a replica inside the staleness
            # bound keeps serving its client even though the primary's
            # lag is zero by definition — otherwise every bounded read
            # would snap back to the primary and the bound would be
            # pointless.
            scores = {}
            for ep in candidates:
                load, healthy = self._load_score(ep)
                scores[ep] = (
                    0 if healthy else 1,
                    load,
                    0 if ep == self._active else 1,
                    self._cached_lag(ep),
                )
            candidates.sort(key=lambda ep: scores[ep])
        if primary not in candidates:
            candidates.append(primary)
        return candidates

    # -- calls ----------------------------------------------------------------

    def call(self, rpc_method: str, /, **params: Any) -> Any:
        """One RPC, with failover, breaker accounting and shed-retry."""
        shed_round = 0
        while True:
            try:
                return self._call_failover(rpc_method, params)
            except RetryLater:
                if shed_round >= self.retry_later_attempts:
                    raise
                _registry.counter("explorer.client.shed_retries").inc()
                _log.warning("retry_later", method=rpc_method, round=shed_round)
                time.sleep(self._delay(shed_round))
                shed_round += 1

    def call_pipelined(
        self,
        calls: list[tuple[str, dict[str, Any]]],
        *,
        return_exceptions: bool = False,
    ) -> list[Any]:
        """Issue several RPCs down one connection without waiting for
        replies in between — the server guarantees per-connection reply
        order, so one round of writes followed by one round of reads
        replaces N request/response round trips.

        ``calls`` is a list of ``(method, params)`` pairs; results come
        back in call order.  All-read pipelines go to the best read
        candidate (least-loaded, staleness-bounded); any mutating call
        pins the whole pipeline to the primary.  Per-call server errors
        become :class:`AnalysisError`/:class:`RetryLater` — raised at
        the first one unless ``return_exceptions`` is set, in which case
        they appear in the result list.  A transport failure mid-
        pipeline raises: unlike single calls, some requests may already
        have executed, so nothing is transparently retried.
        """
        if not calls:
            return []
        normalized = [(method, dict(params or {})) for method, params in calls]
        read = all(m in READ_ONLY_METHODS for m, _ in normalized)
        endpoint = self._read_candidates()[0] if read else self.endpoints[0]
        stream = self._streams.get(endpoint)
        if stream is None:
            stream = self._connect_endpoint(endpoint)
        breaker = self._breakers[endpoint]
        results: list[Any] = []
        first_error: Optional[Exception] = None
        with _tracer.span("explorer.pipeline", calls=len(normalized)) as span:
            try:
                ids = []
                for method, params in normalized:
                    request_id = next(self._ids)
                    request = {
                        "id": request_id, "method": method, "params": params,
                    }
                    if _tracer.enabled:
                        attach_trace_context(
                            request, (span.trace_id, span.span_id)
                        )
                    stream.send(request)
                    ids.append(request_id)
                for request_id in ids:
                    response = stream.receive(timeout=self.timeout)
                    if response is None:
                        raise ProtocolError(
                            "server closed the connection mid-pipeline"
                        )
                    if response.get("id") != request_id:
                        raise ProtocolError(
                            f"pipelined response id {response.get('id')} != "
                            f"request id {request_id}: per-connection "
                            "ordering violated"
                        )
                    if "error" in response:
                        error = response["error"]
                        if (
                            response.get("retry_later")
                            or str(error).startswith("RETRY_LATER")
                        ):
                            exc: Exception = RetryLater(str(error))
                        else:
                            exc = AnalysisError(error)
                        results.append(exc)
                        if first_error is None:
                            first_error = exc
                    else:
                        results.append(response.get("result"))
            except (ProtocolError, OSError):
                breaker.record_failure()
                self._drop(endpoint)
                raise
        breaker.record_success()
        self._activate(endpoint)
        if first_error is not None and not return_exceptions:
            raise first_error
        return results

    def _call_failover(self, rpc_method: str, params: dict[str, Any]) -> Any:
        read = rpc_method in READ_ONLY_METHODS
        active_at_start = self._active
        candidates = self._read_candidates() if read else [self.endpoints[0]]
        last_exc: Optional[Exception] = None
        attempted: list[str] = []
        for index, endpoint in enumerate(candidates):
            if index > 0:
                _registry.counter("explorer.client.failovers").inc()
                _log.warning(
                    "failover", method=rpc_method, endpoint=_addr(endpoint)
                )
            elif read and endpoint != active_at_start:
                # The router moved this read off the previously-active
                # endpoint before even trying it.  Moving away from a
                # probe-failed endpoint is a failover (same observable
                # event as a mid-call one); moving away from a healthy
                # but busier endpoint is load balancing.
                cached = self._load_cache.get(active_at_start)
                if cached is not None and not cached[2]:
                    _registry.counter("explorer.client.failovers").inc()
                    _log.warning(
                        "failover", method=rpc_method, endpoint=_addr(endpoint)
                    )
                else:
                    _registry.counter("explorer.client.rebalances").inc()
                    _log.info(
                        "rebalance", method=rpc_method, endpoint=_addr(endpoint)
                    )
            try:
                return self._try_endpoint(endpoint, rpc_method, params, read)
            except (RetryLater, AnalysisError):
                raise  # the server answered; nothing to fail over from
            except ConnectTimeout as exc:
                attempted.extend(exc.addresses or [_addr(endpoint)])
                last_exc = exc
            except (ProtocolError, OSError) as exc:
                attempted.append(_addr(endpoint))
                last_exc = exc
                if not read:
                    raise
        assert last_exc is not None
        if isinstance(last_exc, ConnectTimeout) and len(candidates) > 1:
            raise ConnectTimeout(
                f"all endpoints unreachable ({', '.join(attempted)}): "
                f"{last_exc}",
                addresses=attempted,
            ) from last_exc
        raise last_exc

    def _try_endpoint(
        self,
        endpoint: Endpoint,
        rpc_method: str,
        params: dict[str, Any],
        read: bool,
    ) -> Any:
        """One call against one endpoint; reads transparently retry
        once on a fresh connection when a cached stream turns out to be
        dead (the pre-failover behaviour, now per endpoint)."""
        breaker = self._breakers[endpoint]
        try:
            result = self._call_once(endpoint, rpc_method, params)
        except (ConnectTimeout, RetryLater, AnalysisError):
            raise
        except (ProtocolError, OSError) as exc:
            breaker.record_failure()
            if not read:
                self._drop(endpoint)
                raise
            _log.warning(
                "retry", method=rpc_method, error=str(exc),
                error_type=type(exc).__name__,
            )
            _registry.counter("explorer.client.retries").inc()
            self._drop(endpoint)
            self._connect_endpoint(endpoint)
            try:
                result = self._call_once(endpoint, rpc_method, params)
            except (ProtocolError, OSError):
                breaker.record_failure()
                self._drop(endpoint)
                raise
        breaker.record_success()
        self._activate(endpoint)
        return result

    def _call_once(
        self, endpoint: Endpoint, rpc_method: str, params: dict[str, Any]
    ) -> Any:
        stream = self._streams.get(endpoint)
        if stream is None:
            stream = self._connect_endpoint(endpoint)
        request_id = next(self._ids)
        with _tracer.span("explorer.call", method=rpc_method) as call_span:
            request = {"id": request_id, "method": rpc_method, "params": params}
            if _tracer.enabled:
                attach_trace_context(
                    request, (call_span.trace_id, call_span.span_id)
                )
            stream.send(request)
            response = stream.receive(timeout=self.timeout)
        if response is None:
            raise ProtocolError("server closed the connection")
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')} != request id {request_id}"
            )
        if "error" in response:
            error = response["error"]
            if response.get("retry_later") or str(error).startswith("RETRY_LATER"):
                raise RetryLater(str(error))
            raise AnalysisError(error)
        return response.get("result")

    def close(self) -> None:
        for endpoint in list(self._streams):
            self._drop(endpoint)
        self._stream = None

    def __enter__(self) -> "PerfExplorerClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the analyst-facing operations ----------------------------------------------

    def ping(self) -> str:
        return self.call("ping")

    def get_stats(self) -> dict[str, Any]:
        """The server's metrics-registry snapshot (see ``repro stats
        --server``)."""
        return self.call("get_stats")

    def replication_status(self) -> dict[str, Any]:
        """The server's replication role and lag (primary/replica/standalone)."""
        return self.call("replication_status")

    def list_applications(self) -> list[dict[str, Any]]:
        return self.call("list_applications")

    def list_experiments(self, application: int) -> list[dict[str, Any]]:
        return self.call("list_experiments", application=application)

    def list_trials(self, experiment: int) -> list[dict[str, Any]]:
        return self.call("list_trials", experiment=experiment)

    def list_metrics(self, trial: int) -> list[str]:
        return self.call("list_metrics", trial=trial)

    def list_events(self, trial: int) -> list[dict[str, Any]]:
        return self.call("list_events", trial=trial)

    def cluster_trial(
        self,
        trial: int,
        k: Optional[int] = None,
        metric_name: Optional[str] = None,
        max_k: int = 6,
        seed: int = 0,
        save: bool = True,
        method: str = "kmeans",
    ) -> dict[str, Any]:
        return self.call(
            "cluster_trial", trial=trial, k=k, metric_name=metric_name,
            max_k=max_k, seed=seed, save=save, method=method,
        )

    def describe_event(
        self, trial: int, event: str, metric_name: Optional[str] = None
    ) -> dict[str, float]:
        return self.call(
            "describe_event", trial=trial, event=event, metric_name=metric_name
        )

    def correlate_events(
        self, trial: int, event_x: str, event_y: str
    ) -> dict[str, float]:
        return self.call(
            "correlate_events", trial=trial, event_x=event_x, event_y=event_y
        )

    def run_workflow(self, steps: list[dict[str, Any]]) -> dict[str, Any]:
        return self.call("run_workflow", steps=steps)

    def speedup_chart(
        self, experiment: int, events: Optional[list[str]] = None
    ) -> dict[str, Any]:
        return self.call("speedup_chart", experiment=experiment, events=events)

    def correlation_matrix(
        self, trial: int, events: Optional[list[str]] = None
    ) -> dict[str, Any]:
        return self.call("correlation_matrix", trial=trial, events=events)

    def group_fraction_chart(self, experiment: int) -> dict[str, Any]:
        return self.call("group_fraction_chart", experiment=experiment)

    def imbalance_chart(self, trial: int, top: int = 10) -> dict[str, Any]:
        return self.call("imbalance_chart", trial=trial, top=top)

    def list_analyses(self, trial: Optional[int] = None) -> list[dict[str, Any]]:
        return self.call("list_analyses", trial=trial)

    def get_analysis(self, settings_id: int) -> dict[str, Any]:
        return self.call("get_analysis", settings_id=settings_id)
