"""The PerfExplorer client.

*"Using the PerfExplorer client, the analyst selects a particular trial
of interest, sets analysis parameters, and then requests data mining
operations on the parallel dataset"* (§5.3).  The client is a thin
remote proxy: every call becomes one protocol request; results arrive
as plain dicts/lists.
"""

from __future__ import annotations

import itertools
import socket
import time
from typing import Any, Optional

from repro.obs.log import get_logger
from repro.obs.metrics import registry as _registry
from repro.obs.trace import tracer as _tracer

from .protocol import (
    ConnectTimeout, MessageStream, ProtocolError, attach_trace_context,
)

_log = get_logger("repro.explorer.client")

#: RPC methods that are safe to transparently retry after a transport
#: failure: they only read the archive, so re-executing them cannot
#: duplicate side effects.  Mutating calls (``cluster_trial`` with
#: ``save=True``, ``run_workflow``) surface the error to the caller.
READ_ONLY_METHODS = frozenset({
    "ping", "get_stats",
    "list_applications", "list_experiments", "list_trials",
    "list_metrics", "list_events", "list_analyses", "get_analysis",
    "describe_event", "correlate_events",
    "speedup_chart", "correlation_matrix", "group_fraction_chart",
    "imbalance_chart",
})


class AnalysisError(RuntimeError):
    """An error reported by the analysis server."""


class PerfExplorerClient:
    """A connected PerfExplorer client.

    Connecting retries with exponential backoff (``connect_retries``
    attempts, delay doubling from ``backoff``), raising
    :class:`ConnectTimeout` when the server never accepts — distinct
    from the :class:`ProtocolError` a live-but-misbehaving server
    produces mid-call.  Read-only RPCs that die to a transport error
    reconnect once and retry once; mutating RPCs never retry.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        connect_retries: int = 3,
        backoff: float = 0.1,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.backoff = backoff
        self._ids = itertools.count(1)
        self._stream: Optional[MessageStream] = None
        self._connect()

    # -- plumbing ------------------------------------------------------------

    def _connect(self) -> None:
        delay = self.backoff
        attempts = max(1, self.connect_retries)
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                last_error = exc
                if attempt + 1 < attempts:
                    _registry.counter("explorer.client.reconnects").inc()
                    time.sleep(delay)
                    delay *= 2
                continue
            self._stream = MessageStream(sock)
            return
        raise ConnectTimeout(
            f"could not connect to {self.host}:{self.port} after "
            f"{attempts} attempts: {last_error}"
        ) from last_error

    def call(self, rpc_method: str, /, **params: Any) -> Any:
        try:
            return self._call_once(rpc_method, params)
        except (ConnectTimeout, AnalysisError):
            raise
        except (ProtocolError, OSError) as exc:
            if rpc_method not in READ_ONLY_METHODS:
                raise
            # Idempotent read: reconnect (with backoff) and retry once.
            _log.warning(
                "retry", method=rpc_method, error=str(exc),
                error_type=type(exc).__name__,
            )
            _registry.counter("explorer.client.retries").inc()
            self.close()
            self._connect()
            return self._call_once(rpc_method, params)

    def _call_once(self, rpc_method: str, params: dict[str, Any]) -> Any:
        if self._stream is None:
            self._connect()
        request_id = next(self._ids)
        with _tracer.span("explorer.call", method=rpc_method) as call_span:
            request = {"id": request_id, "method": rpc_method, "params": params}
            if _tracer.enabled:
                attach_trace_context(
                    request, (call_span.trace_id, call_span.span_id)
                )
            self._stream.send(request)
            response = self._stream.receive(timeout=self.timeout)
        if response is None:
            raise ProtocolError("server closed the connection")
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')} != request id {request_id}"
            )
        if "error" in response:
            raise AnalysisError(response["error"])
        return response.get("result")

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "PerfExplorerClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the analyst-facing operations ----------------------------------------------

    def ping(self) -> str:
        return self.call("ping")

    def get_stats(self) -> dict[str, Any]:
        """The server's metrics-registry snapshot (see ``repro stats
        --server``)."""
        return self.call("get_stats")

    def list_applications(self) -> list[dict[str, Any]]:
        return self.call("list_applications")

    def list_experiments(self, application: int) -> list[dict[str, Any]]:
        return self.call("list_experiments", application=application)

    def list_trials(self, experiment: int) -> list[dict[str, Any]]:
        return self.call("list_trials", experiment=experiment)

    def list_metrics(self, trial: int) -> list[str]:
        return self.call("list_metrics", trial=trial)

    def list_events(self, trial: int) -> list[dict[str, Any]]:
        return self.call("list_events", trial=trial)

    def cluster_trial(
        self,
        trial: int,
        k: Optional[int] = None,
        metric_name: Optional[str] = None,
        max_k: int = 6,
        seed: int = 0,
        save: bool = True,
        method: str = "kmeans",
    ) -> dict[str, Any]:
        return self.call(
            "cluster_trial", trial=trial, k=k, metric_name=metric_name,
            max_k=max_k, seed=seed, save=save, method=method,
        )

    def describe_event(
        self, trial: int, event: str, metric_name: Optional[str] = None
    ) -> dict[str, float]:
        return self.call(
            "describe_event", trial=trial, event=event, metric_name=metric_name
        )

    def correlate_events(
        self, trial: int, event_x: str, event_y: str
    ) -> dict[str, float]:
        return self.call(
            "correlate_events", trial=trial, event_x=event_x, event_y=event_y
        )

    def run_workflow(self, steps: list[dict[str, Any]]) -> dict[str, Any]:
        return self.call("run_workflow", steps=steps)

    def speedup_chart(
        self, experiment: int, events: Optional[list[str]] = None
    ) -> dict[str, Any]:
        return self.call("speedup_chart", experiment=experiment, events=events)

    def correlation_matrix(
        self, trial: int, events: Optional[list[str]] = None
    ) -> dict[str, Any]:
        return self.call("correlation_matrix", trial=trial, events=events)

    def group_fraction_chart(self, experiment: int) -> dict[str, Any]:
        return self.call("group_fraction_chart", experiment=experiment)

    def imbalance_chart(self, trial: int, top: int = 10) -> dict[str, Any]:
        return self.call("imbalance_chart", trial=trial, top=top)

    def list_analyses(self, trial: Optional[int] = None) -> list[dict[str, Any]]:
        return self.call("list_analyses", trial=trial)

    def get_analysis(self, settings_id: int) -> dict[str, Any]:
        return self.call("get_analysis", settings_id=settings_id)
