"""Wire protocol for the PerfExplorer client/server split.

Newline-delimited JSON-RPC-style messages over TCP::

    {"id": 1, "method": "cluster_trial", "params": {"trial": 3, "k": 2}}
    {"id": 1, "result": {...}}
    {"id": 1, "error": "no such trial"}

Chosen for the same reasons the paper's authors chose open standards
(§4): self-describing, language-neutral, trivially inspectable.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Optional

from repro.testing import faults


class ProtocolError(RuntimeError):
    """Raised for malformed frames or protocol violations."""


class ConnectTimeout(ProtocolError):
    """Raised when establishing the TCP connection itself fails or times
    out — as opposed to a :class:`ProtocolError` mid-call, which means a
    live server sent something wrong.  Callers use the distinction to
    tell a dead/unreachable server from a misbehaving one.

    ``addresses`` lists every ``host:port`` the caller attempted, so a
    failover client's timeout names the whole endpoint set it exhausted
    rather than just the last one tried.
    """

    def __init__(self, message: str = "", addresses: Optional[list[str]] = None):
        super().__init__(message)
        self.addresses: list[str] = list(addresses or [])


class RetryLater(ProtocolError):
    """Server-side admission control shed this request before running
    it; the caller may safely retry after a backoff — even a mutating
    call, since a shed request was never dispatched."""


#: RPC methods that are safe to transparently retry after a transport
#: failure — and safe to serve from a read replica: they only read the
#: archive, so re-executing them cannot duplicate side effects.
#: Mutating calls (``cluster_trial`` with ``save=True``,
#: ``run_workflow``) go to the primary and surface errors to the caller.
READ_ONLY_METHODS = frozenset({
    "ping", "get_stats",
    "list_applications", "list_experiments", "list_trials",
    "list_metrics", "list_events", "list_analyses", "get_analysis",
    "describe_event", "correlate_events",
    "speedup_chart", "correlation_matrix", "group_fraction_chart",
    "imbalance_chart", "replication_status", "server_load",
})


def attach_trace_context(
    payload: dict[str, Any], context: Optional[tuple[str, Optional[str]]]
) -> dict[str, Any]:
    """Stamp a request with the caller's (trace_id, span_id).

    Server-side spans opened under :func:`extract_trace_context` then
    share the client's trace id and nest under its request span — one
    timeline across the process boundary.
    """
    if context is not None:
        payload["trace"] = {"trace_id": context[0], "parent_id": context[1]}
    return payload


def extract_trace_context(
    payload: dict[str, Any],
) -> Optional[tuple[str, Optional[str]]]:
    """Pull a propagated (trace_id, parent_id) off a request, if any."""
    trace = payload.get("trace")
    if not isinstance(trace, dict) or "trace_id" not in trace:
        return None
    return (str(trace["trace_id"]), trace.get("parent_id"))


def encode_message(payload: dict[str, Any]) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame is not a JSON object")
    return payload


class MessageStream:
    """Newline-framed message reader/writer over one socket.

    ``fault_point`` tags the stream for the network chaos shim
    (:mod:`repro.testing.faults`): sends route through
    ``faults.net_send(..., "<tag>.send")`` and receives pass
    ``faults.net_point(..., "<tag>.recv")``, so tests can drop,
    truncate, delay, or RST traffic at either side of the wire by
    name.  Untagged streams skip the shim entirely.
    """

    def __init__(self, sock: socket.socket, fault_point: Optional[str] = None):
        self.sock = sock
        self.fault_point = fault_point
        self._buffer = b""

    def send(self, payload: dict[str, Any]) -> None:
        self.send_bytes(encode_message(payload))

    def send_bytes(self, data: bytes) -> None:
        if self.fault_point is None:
            self.sock.sendall(data)
        else:
            faults.net_send(self.sock, data, self.fault_point + ".send")

    def receive(self, timeout: Optional[float] = None) -> Optional[dict[str, Any]]:
        """Read one message; None on clean EOF."""
        if self.fault_point is not None:
            faults.net_point(self.sock, self.fault_point + ".recv")
        self.sock.settimeout(timeout)
        while b"\n" not in self._buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise ProtocolError("connection closed mid-frame")
                return None
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        return decode_message(line)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()
