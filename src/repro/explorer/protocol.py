"""Wire protocol for the PerfExplorer client/server split.

Newline-delimited JSON-RPC-style messages over TCP::

    {"id": 1, "method": "cluster_trial", "params": {"trial": 3, "k": 2}}
    {"id": 1, "result": {...}}
    {"id": 1, "error": "no such trial"}

Chosen for the same reasons the paper's authors chose open standards
(§4): self-describing, language-neutral, trivially inspectable.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Optional


class ProtocolError(RuntimeError):
    """Raised for malformed frames or protocol violations."""


class ConnectTimeout(ProtocolError):
    """Raised when establishing the TCP connection itself fails or times
    out — as opposed to a :class:`ProtocolError` mid-call, which means a
    live server sent something wrong.  Callers use the distinction to
    tell a dead/unreachable server from a misbehaving one."""


def attach_trace_context(
    payload: dict[str, Any], context: Optional[tuple[str, Optional[str]]]
) -> dict[str, Any]:
    """Stamp a request with the caller's (trace_id, span_id).

    Server-side spans opened under :func:`extract_trace_context` then
    share the client's trace id and nest under its request span — one
    timeline across the process boundary.
    """
    if context is not None:
        payload["trace"] = {"trace_id": context[0], "parent_id": context[1]}
    return payload


def extract_trace_context(
    payload: dict[str, Any],
) -> Optional[tuple[str, Optional[str]]]:
    """Pull a propagated (trace_id, parent_id) off a request, if any."""
    trace = payload.get("trace")
    if not isinstance(trace, dict) or "trace_id" not in trace:
        return None
    return (str(trace["trace_id"]), trace.get("parent_id"))


def encode_message(payload: dict[str, Any]) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame is not a JSON object")
    return payload


class MessageStream:
    """Newline-framed message reader/writer over one socket."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buffer = b""

    def send(self, payload: dict[str, Any]) -> None:
        self.sock.sendall(encode_message(payload))

    def receive(self, timeout: Optional[float] = None) -> Optional[dict[str, Any]]:
        """Read one message; None on clean EOF."""
        self.sock.settimeout(timeout)
        while b"\n" not in self._buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise ProtocolError("connection closed mid-frame")
                return None
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        return decode_message(line)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()
