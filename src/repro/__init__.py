"""PerfDMF reproduction — a parallel performance data management framework.

A from-scratch Python implementation of *"Design and Implementation of a
Parallel Performance Data Management Framework"* (Huck, Malony, Bell,
Morris — ICPP 2005), including every substrate the paper depends on:

* :mod:`repro.core` — PerfDMF itself: the common profile model, seven
  format importers + XML, the relational schema, the DataSession
  query/management API, and the analysis toolkit;
* :mod:`repro.db` — the storage engines (sqlite + the pure-Python
  MiniSQL) behind one backend-neutral API;
* :mod:`repro.tau` — the measurement substrate: simulated counters,
  TAU-like instrumentation, the SPMD simulator, five synthetic
  applications, and native-format writers;
* :mod:`repro.paraprof` — the profile browser (text-mode ParaProf);
* :mod:`repro.explorer` — PerfExplorer, the data-mining client/server.

Quickstart::

    from repro.core.session import PerfDMFSession
    from repro.tau.apps import EVH1

    session = PerfDMFSession("sqlite://:memory:")
    app = session.create_application("evh1")
    exp = session.create_experiment(app, "scaling")
    trial = session.save_trial(EVH1().run(8), exp, "P=8")
    session.set_trial(trial)
    print(session.aggregate("mean", event_name="riemann"))
"""

__version__ = "1.0.0"

__all__ = ["core", "db", "tau", "paraprof", "explorer", "__version__"]
