"""TAU-style instrumentation API over the simulated machine.

A :class:`ThreadProfiler` mirrors TAU's measurement core for one thread:
timers with start/stop semantics and proper inclusive/exclusive
attribution through a timer stack, optional callpath recording
(``a => b`` events, like ``TAU_CALLPATH``), and user-defined atomic
events.  Work is charged to the innermost running timer via
:meth:`charge`.

Correctness invariants (tested):

* exclusive(e) ≤ inclusive(e) per (event, metric);
* Σ exclusive over all events = inclusive of the root timer;
* calls/subroutine counts consistent with the nesting structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.model import DataSource, group as groups
from ..core.model.events import CALLPATH_SEPARATOR
from .counters import CounterBank, WorkItem


class InstrumentationError(RuntimeError):
    """Raised for unbalanced start/stop sequences."""


@dataclass
class _TimerFrame:
    name: str
    group: str
    inclusive: list[float]  # per metric, accumulated at stop
    child_time: list[float]  # per metric, time attributed to children
    path: str  # full callpath string


class ThreadProfiler:
    """Measurement state for one simulated thread."""

    def __init__(
        self,
        datasource: DataSource,
        node_id: int,
        context_id: int = 0,
        thread_id: int = 0,
        counters: Optional[CounterBank] = None,
        callpaths: bool = False,
        speed_factor: float = 1.0,
    ):
        self.datasource = datasource
        self.counters = counters or CounterBank(seed=node_id)
        for metric_name in self.counters.metrics:
            datasource.add_metric(metric_name)
        self.thread = datasource.add_thread(node_id, context_id, thread_id)
        self.callpaths = callpaths
        self.speed_factor = speed_factor
        self._stack: list[_TimerFrame] = []
        self._n_metrics = len(self.counters.metrics)
        self._charge_counts: dict[str, int] = {}

    # -- timers ----------------------------------------------------------------

    def start(self, name: str, group: str = groups.DEFAULT) -> None:
        """Enter the timer ``name``."""
        if self._stack:
            parent_path = self._stack[-1].path
            path = f"{parent_path}{CALLPATH_SEPARATOR}{name}"
        else:
            path = name
        self._stack.append(
            _TimerFrame(
                name=name,
                group=group,
                inclusive=[0.0] * self._n_metrics,
                child_time=[0.0] * self._n_metrics,
                path=path,
            )
        )

    def stop(self, name: Optional[str] = None) -> None:
        """Leave the innermost timer (optionally verifying its name)."""
        if not self._stack:
            raise InstrumentationError("stop() without a running timer")
        frame = self._stack.pop()
        if name is not None and frame.name != name:
            raise InstrumentationError(
                f"stop({name!r}) but innermost timer is {frame.name!r}"
            )
        self._record(frame)
        if self._stack:
            parent = self._stack[-1]
            for m in range(self._n_metrics):
                parent.inclusive[m] += frame.inclusive[m]
                parent.child_time[m] += frame.inclusive[m]

    def _record(self, frame: _TimerFrame) -> None:
        event = self.datasource.add_interval_event(frame.name, frame.group)
        profile = self.thread.get_or_create_function_profile(event)
        for m in range(self._n_metrics):
            exclusive = frame.inclusive[m] - frame.child_time[m]
            profile.accumulate(
                m, frame.inclusive[m], exclusive,
                calls=1 if m == 0 else 0,
                subroutines=0,
            )
        # subroutine count: number of direct child timer invocations —
        # tracked through the child stop path below.
        if self.callpaths and CALLPATH_SEPARATOR not in frame.name and self._stack:
            cp_event = self.datasource.add_interval_event(
                frame.path, groups.CALLPATH
            )
            cp_profile = self.thread.get_or_create_function_profile(cp_event)
            for m in range(self._n_metrics):
                exclusive = frame.inclusive[m] - frame.child_time[m]
                cp_profile.accumulate(
                    m, frame.inclusive[m], exclusive,
                    calls=1 if m == 0 else 0,
                )
        if self._stack:
            parent_event = self.datasource.add_interval_event(
                self._stack[-1].name, self._stack[-1].group
            )
            parent_profile = self.thread.get_or_create_function_profile(parent_event)
            parent_profile.subroutines += 1

    def charge(self, work: WorkItem) -> dict[str, float]:
        """Charge ``work`` to the innermost running timer.

        The jitter stream is re-keyed per (callpath, charge index) so
        that identical logical charges draw identical noise regardless
        of what ran before them — replayed runs are exact prefixes,
        which snapshot capture depends on.
        """
        if not self._stack:
            raise InstrumentationError("charge() outside any timer")
        path = self._stack[-1].path
        index = self._charge_counts.get(path, 0)
        self._charge_counts[path] = index + 1
        self.counters.rekey(f"{path}#{index}")
        deltas = self.counters.advance(work, self.speed_factor)
        frame = self._stack[-1]
        for m, metric_name in enumerate(self.counters.metrics):
            frame.inclusive[m] += deltas[metric_name]
        return deltas

    # -- atomic (user) events --------------------------------------------------

    def trigger(self, name: str, value: float, group: str = groups.DEFAULT) -> None:
        """Record one sample of a user-defined atomic event."""
        event = self.datasource.add_atomic_event(name, group)
        profile = self.thread.get_or_create_user_event_profile(event)
        profile.add_sample(value)

    # -- scoping helpers ---------------------------------------------------------

    class _TimerContext:
        __slots__ = ("profiler", "name")

        def __init__(self, profiler: "ThreadProfiler", name: str):
            self.profiler = profiler
            self.name = name

        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb):
            self.profiler.stop(self.name)
            return False

    def timer(self, name: str, group: str = groups.DEFAULT) -> "_TimerContext":
        """``with profiler.timer("solve"): ...`` convenience wrapper."""
        self.start(name, group)
        return self._TimerContext(self, name)

    @property
    def depth(self) -> int:
        return len(self._stack)

    def finish(self) -> None:
        """Verify all timers are stopped (end-of-run check)."""
        if self._stack:
            raise InstrumentationError(
                f"timers still running at finish: "
                f"{[f.name for f in self._stack]}"
            )
