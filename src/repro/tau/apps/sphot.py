"""SPhot analog — an embarrassingly parallel Monte Carlo workload.

SPhot (ASCI Purple) is 2D photon transport: each rank tracks its share
of particles independently; the only communication is a final reduction
of tallies.  Its signature profile property is *stochastic load
imbalance* — per-rank runtimes vary with the particle histories drawn —
which PerfDMF's min/mean/max aggregate views surface directly.

Profile shape modelled:

* a dominant ``track_photons`` kernel whose work per rank varies
  deterministically-pseudo-randomly around the mean (±15%);
* per-particle tally bookkeeping and a source-sampling routine;
* one final ``MPI_Reduce`` whose wait time mirrors the imbalance.
"""

from __future__ import annotations

import numpy as np

from ...core.model import group as groups
from ..simulator import RankContext
from .base import SimulatedApplication

_BASE_PARTICLES = 4.0e4
_FLOPS_PER_PARTICLE = 900.0


class SPhot(SimulatedApplication):
    name = "sphot"
    description = "ASCI Purple Monte Carlo photon transport"
    default_metrics = ("TIME",)

    def _particles(self, rank: int, size: int) -> float:
        """Deterministic per-rank particle workload with ±15% spread."""
        rng = np.random.default_rng(self.seed * 7_919 + rank)
        return (
            _BASE_PARTICLES * self.problem_size / size
            * float(rng.uniform(0.85, 1.15))
        )

    def _track_seconds(self, rank: int, size: int) -> float:
        return self._particles(rank, size) * _FLOPS_PER_PARTICLE / 1.0e9

    def kernel(self, rank: RankContext) -> None:
        size = rank.size
        particles = self._particles(rank.rank, size)

        with rank.call("sphot_init", groups.DEFAULT):
            rank.compute(flops=5.0e5)

        with rank.call("source_sample", groups.COMPUTATION):
            rank.compute(flops=particles * 20.0, branches=particles * 6.0)

        with rank.call("track_photons", groups.COMPUTATION):
            rank.compute(
                flops=particles * _FLOPS_PER_PARTICLE,
                loads=particles * 300.0,
                branches=particles * 120.0,
            )

        with rank.call("tally", groups.COMPUTATION):
            rank.compute(flops=particles * 15.0)

        rank.mpi(
            "MPI_Reduce()",
            message_bytes=4096.0,
            collective=True,
            imbalance=lambda r: self._track_seconds(r, size),
        )
        rank.user_event("particles tracked", particles)
