"""Base class for the synthetic benchmark applications.

Each application models the documented profile *shape* of its namesake
(routine mix, scaling law, imbalance pattern); DESIGN.md records the
substitution rationale.  Applications are deterministic given
(ranks, seed) so every experiment in EXPERIMENTS.md is reproducible.
"""

from __future__ import annotations

from typing import Optional

from ...core.model import DataSource
from ..counters import MachineModel
from ..simulator import RankContext, SimulationConfig, run_simulation


class SimulatedApplication:
    """One synthetic application: subclasses implement :meth:`kernel`."""

    #: short identifier used for application names in the database
    name: str = "app"
    #: human description recorded in trial metadata
    description: str = ""
    #: default metric set for this application's instrumented runs
    default_metrics: tuple[str, ...] = ("TIME",)

    def __init__(self, problem_size: float = 1.0, seed: int = 42):
        self.problem_size = problem_size
        self.seed = seed

    def kernel(self, rank: RankContext) -> None:
        raise NotImplementedError

    def config(self, ranks: int, metrics: Optional[tuple[str, ...]] = None) -> SimulationConfig:
        return SimulationConfig(
            ranks=ranks,
            metrics=metrics or self.default_metrics,
            seed=self.seed,
            machine=self.machine_model(),
        )

    def machine_model(self) -> Optional[MachineModel]:
        return None  # default machine

    def run(self, ranks: int, metrics: Optional[tuple[str, ...]] = None) -> DataSource:
        """Simulate a run on ``ranks`` processes; returns the profile."""
        source = run_simulation(self.kernel, self.config(ranks, metrics))
        source.metadata["application"] = self.name
        source.metadata["description"] = self.description
        source.metadata["problem_size"] = str(self.problem_size)
        return source
