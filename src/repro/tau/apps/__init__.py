"""Synthetic benchmark applications (substitutes for the LLNL datasets).

Each class models the documented profile shape of its namesake; see
DESIGN.md §3 for the substitution rationale.
"""

from .base import SimulatedApplication
from .evh1 import EVH1
from .miranda import Miranda, NUM_EVENTS as MIRANDA_NUM_EVENTS
from .smg2000 import SMG2000
from .sphot import SPhot
from .sppm import SPPM

ALL_APPLICATIONS = (EVH1, SPPM, SMG2000, SPhot, Miranda)

__all__ = [
    "SimulatedApplication", "EVH1", "SPPM", "SMG2000", "SPhot", "Miranda",
    "MIRANDA_NUM_EVENTS", "ALL_APPLICATIONS",
]
