"""SMG2000 analog — a communication-bound multigrid workload.

SMG2000 (semicoarsening multigrid, ASCI Purple suite) is the classic
communication-bound benchmark: V-cycles touch progressively coarser
grids, so the compute per level shrinks geometrically while the number
of (small) messages stays nearly constant — at scale the profile is
dominated by MPI time.  Used in the paper's PerfExplorer dataset list.

Profile shape modelled:

* per V-cycle: relaxation / residual / restriction / interpolation on
  ``levels = log2`` levels with geometrically shrinking zone counts;
* halo exchange per level with small, latency-bound messages;
* setup phase with heavier one-off compute.
"""

from __future__ import annotations

import math

from ...core.model import group as groups
from ..simulator import RankContext
from .base import SimulatedApplication

_BASE_ZONES = 6.0e4
_FLOPS_PER_ZONE = 60.0


class SMG2000(SimulatedApplication):
    name = "smg2000"
    description = "ASCI Purple semicoarsening multigrid solver"
    default_metrics = ("TIME",)

    def __init__(self, problem_size: float = 1.0, seed: int = 42, cycles: int = 3):
        super().__init__(problem_size, seed)
        self.cycles = cycles

    def _level_zones(self, size: int, level: int) -> float:
        return _BASE_ZONES * self.problem_size / size / (2.0 ** level)

    def kernel(self, rank: RankContext) -> None:
        size = rank.size
        levels = max(3, int(math.log2(max(_BASE_ZONES / size, 8))) // 2)

        with rank.call("smg_setup", groups.DEFAULT):
            rank.compute(flops=_BASE_ZONES * self.problem_size / size * 12.0)

        for _cycle in range(self.cycles):
            with rank.call("smg_solve", groups.COMPUTATION):
                for level in range(levels):
                    zones = self._level_zones(size, level)
                    with rank.call("relax", groups.COMPUTATION):
                        rank.compute(flops=zones * _FLOPS_PER_ZONE)
                    with rank.call("residual", groups.COMPUTATION):
                        rank.compute(flops=zones * _FLOPS_PER_ZONE * 0.5)
                    # Halo exchange: small latency-bound messages whose
                    # size shrinks with the level but count does not.
                    rank.mpi(
                        "MPI_Send()",
                        message_bytes=max(zones ** (2.0 / 3.0) * 8.0, 64.0),
                    )
                    rank.mpi(
                        "MPI_Recv()",
                        message_bytes=max(zones ** (2.0 / 3.0) * 8.0, 64.0),
                    )
                    if level + 1 < levels:
                        with rank.call("restrict", groups.COMPUTATION):
                            rank.compute(flops=zones * _FLOPS_PER_ZONE * 0.2)
                for level in reversed(range(levels - 1)):
                    zones = self._level_zones(size, level)
                    with rank.call("interpolate", groups.COMPUTATION):
                        rank.compute(flops=zones * _FLOPS_PER_ZONE * 0.2)
            rank.mpi(
                "MPI_Allreduce()",
                message_bytes=8.0,
                collective=True,
                imbalance=lambda r: (r % 7) * 1.0e-5,
            )
