"""Miranda analog — the paper's large-scale stress workload.

§5.3: *"The Miranda application data was provided by LLNL, in the form
of TAU profile data from test runs on Bluegene/L ... from runs of 8K and
16K processors.  Over one hundred events were instrumented, and only
one metric was available, wall clock time.  The 16K processor run
consisted of over 1.6 million data points, and the PerfDMF API was able
to handle the data without problems."*  (§3.1 quotes the same dataset
as "101 events on 16K processors".)

We reproduce the dataset's published statistics exactly: **101
instrumented events, one wall-clock metric, 8K/16K (or any) thread
counts**, so 16K threads × 101 events = 1,633,280 data points.  The
per-thread values are generated vectorised (numpy) because building 1.6M
Python objects would dominate every E1/E2 measurement with allocator
noise; the shapes modelled are those of a spectral turbulence code:
FFT-heavy numerics, alltoall transposes whose cost grows with node
count, and mild lognormal per-thread jitter.
"""

from __future__ import annotations

import numpy as np

from ...core.model import ColumnarTrial, DataSource, group as groups
from ..simulator import RankContext
from .base import SimulatedApplication

#: number of instrumented interval events — matches the paper exactly.
NUM_EVENTS = 101


def _event_table() -> tuple[list[str], list[str], np.ndarray, np.ndarray]:
    """The 101-event catalogue: names, groups, base cost (usec), calls."""
    names: list[str] = []
    group_of: list[str] = []
    base: list[float] = []
    calls: list[float] = []

    def add(name: str, group: str, cost_usec: float, ncalls: float) -> None:
        names.append(name)
        group_of.append(group)
        base.append(cost_usec)
        calls.append(ncalls)

    add("main", groups.DEFAULT, 2.0e4, 1)
    # 30 spectral/numerics kernels
    for i in range(30):
        add(f"fft_kernel_{i:02d}", groups.COMPUTATION, 3.0e5 / (1.3 ** (i % 7)), 50 + i)
    # 20 physics update routines
    for i in range(20):
        add(f"physics_update_{i:02d}", groups.COMPUTATION, 1.5e5 / (1.2 ** (i % 5)), 30 + i)
    # 25 communication routines
    for i in range(25):
        routine = ["MPI_Alltoall()", "MPI_Isend()", "MPI_Irecv()", "MPI_Wait()",
                   "MPI_Allreduce()"][i % 5]
        add(f"{routine} [call {i:02d}]", groups.COMMUNICATION, 8.0e4, 100 + 4 * i)
    # 15 I/O and checkpoint routines
    for i in range(15):
        add(f"io_checkpoint_{i:02d}", groups.IO, 2.0e4, 2 + i % 3)
    # 10 infrastructure routines
    for i in range(10):
        add(f"infra_{i:02d}", groups.DEFAULT, 5.0e3, 10 + i)

    assert len(names) == NUM_EVENTS, len(names)
    return names, group_of, np.asarray(base), np.asarray(calls)


class Miranda(SimulatedApplication):
    name = "miranda"
    description = "LLNL Miranda turbulence code on BlueGene/L (8K/16K procs)"
    default_metrics = ("TIME",)

    # -- vectorised generation (the E1/E2 path) --------------------------------

    def generate(self, ranks: int) -> ColumnarTrial:
        """Generate the profile for a ``ranks``-processor run, vectorised."""
        names, group_of, base_usec, base_calls = _event_table()
        rng = np.random.default_rng(self.seed * 104_729 + ranks)

        trial = ColumnarTrial.allocate(
            event_names=names,
            metric_names=["TIME"],
            thread_triples=ColumnarTrial.flat_topology(ranks),
            event_groups=group_of,
        )
        n_events = len(names)
        # Per-thread lognormal jitter (sigma=0.08) and a smooth spatial
        # pattern: communication cost grows toward high ranks (torus
        # distance from the I/O nodes on BG/L racks).
        jitter = rng.lognormal(mean=0.0, sigma=0.08, size=(ranks, n_events))
        exclusive = base_usec[None, :] * jitter * self.problem_size
        comm_mask = np.array([g == groups.COMMUNICATION for g in group_of])
        gradient = 1.0 + 0.3 * (np.arange(ranks) / max(ranks - 1, 1))
        exclusive[:, comm_mask] *= gradient[:, None]
        io_mask = np.array([g == groups.IO for g in group_of])
        # I/O cost is bursty: every 64th rank is an I/O aggregator
        aggregators = (np.arange(ranks) % 64 == 0)
        exclusive[np.ix_(aggregators, io_mask)] *= 4.0

        # main is a pure parent: its exclusive is tiny, its inclusive is
        # the whole run; all other events are flat (inclusive=exclusive).
        exclusive[:, 0] = base_usec[0] * jitter[:, 0]
        inclusive = exclusive.copy()
        inclusive[:, 0] = exclusive.sum(axis=1)

        trial.exclusive[0][:, :] = exclusive
        trial.inclusive[0][:, :] = inclusive
        trial.calls[:, :] = base_calls[None, :] * np.maximum(
            1.0, rng.poisson(lam=1.0, size=(ranks, n_events))
        )
        trial.calls[:, 0] = 1.0
        trial.subroutines[:, 0] = n_events - 1
        trial.metadata.update(
            {
                "application": self.name,
                "description": self.description,
                "platform": "BlueGene/L (simulated)",
                "ranks": str(ranks),
            }
        )
        return trial

    # -- instrumented small-scale variant ------------------------------------------

    def kernel(self, rank: RankContext) -> None:
        """Instrumented kernel for small validation runs.

        Exercises the same routine mix through the measurement substrate
        so tests can cross-check the vectorised generator's shapes.
        """
        size = rank.size
        zones = 5.0e4 * self.problem_size / size
        with rank.call("mir_init", groups.DEFAULT):
            rank.compute(flops=1.0e6)
        for _step in range(2):
            with rank.call("fft_forward", groups.COMPUTATION):
                rank.compute(flops=zones * 80.0)
            rank.mpi(
                "MPI_Alltoall()",
                message_bytes=zones * 8.0,
                collective=True,
                imbalance=lambda r: (r % 5) * 2.0e-5,
            )
            with rank.call("spectral_update", groups.COMPUTATION):
                rank.compute(flops=zones * 120.0)
            with rank.call("fft_inverse", groups.COMPUTATION):
                rank.compute(flops=zones * 80.0)
        with rank.call("checkpoint", groups.IO):
            rank.io("write_restart", io_bytes=zones * 8.0)
