"""sPPM analog — the PerfExplorer clustering workload (§5.3).

sPPM (simplified Piecewise Parabolic Method) is the ASCI Purple
benchmark whose counter data Ahn & Vetter analysed: k-means over
per-thread PAPI metrics separates thread populations with *"interesting
floating point operation behavior"* — boundary-handling threads execute
markedly fewer FLOPs (and different cache behaviour) than interior
threads.  The paper reproduced that analysis with PerfExplorer.

Profile shape modelled:

* ~20 routines: hydrodynamics sweeps (high FLOP density), interface
  sharpening (branchy, cache-unfriendly), halo exchange, I/O dumps;
* **two thread populations**: ranks on the faces of the 3D domain
  decomposition do boundary work — fewer interior zones (≈25% fewer
  FLOPs) and heavier branch/miss rates.  Interior ranks are FLOP-dense.
  This bimodality is what the E5 clustering must discover;
* seven PAPI counters plus TIME (the LLNL collection limit).
"""

from __future__ import annotations

import math

from ...core.model import group as groups
from ..counters import DEFAULT_COUNTERS, WorkItem
from ..simulator import RankContext
from .base import SimulatedApplication

_BASE_ZONES = 1.2e5
_FLOPS_PER_ZONE = 420.0


def boundary_fraction(rank: int, size: int) -> bool:
    """True when ``rank`` sits on the face of the 1D-folded 3D grid.

    We fold ranks into a cube of side ``s = round(size ** (1/3))``; a
    rank is a *boundary* rank when any of its 3D coordinates touches a
    face.  For non-cubic counts the fold truncates, which is fine — we
    only need a deterministic, roughly face-proportional split.
    """
    side = max(2, round(size ** (1.0 / 3.0)))
    x = rank % side
    y = (rank // side) % side
    z = rank // (side * side)
    return 0 in (x, y) or side - 1 in (x, y) or z == 0 or z >= side - 1


class SPPM(SimulatedApplication):
    name = "sppm"
    description = "ASCI Purple sPPM gas dynamics benchmark — counter study"
    default_metrics = ("TIME",) + DEFAULT_COUNTERS

    def __init__(self, problem_size: float = 1.0, seed: int = 42, timesteps: int = 3):
        super().__init__(problem_size, seed)
        self.timesteps = timesteps

    def _is_boundary(self, rank: int, size: int) -> bool:
        return boundary_fraction(rank, size)

    def _zone_count(self, rank: int, size: int) -> float:
        zones = _BASE_ZONES * self.problem_size
        if self._is_boundary(rank, size):
            zones *= 0.75  # fewer interior zones on domain faces
        return zones

    def _sweep_seconds(self, rank: int, size: int) -> float:
        return self._zone_count(rank, size) * _FLOPS_PER_ZONE / 1.0e9

    def kernel(self, rank: RankContext) -> None:
        size = rank.size
        boundary = self._is_boundary(rank.rank, size)
        zones = self._zone_count(rank.rank, size)

        with rank.call("sppm_init", groups.DEFAULT):
            rank.compute(flops=1.0e6)

        for _step in range(self.timesteps):
            for direction in ("x", "y", "z"):
                with rank.call(f"sweep_{direction}", groups.COMPUTATION):
                    with rank.call("hydro_kernel", groups.COMPUTATION):
                        # FLOP-dense interior update
                        rank.compute(
                            flops=zones * _FLOPS_PER_ZONE * 0.7,
                            loads=zones * 120.0,
                            branches=zones * 8.0,
                        )
                    with rank.call("interface_sharpen", groups.COMPUTATION):
                        # branchy, cache-hostile; boundary ranks do much
                        # more of it (ghost-zone handling)
                        factor = 2.5 if boundary else 1.0
                        rank.compute(
                            flops=zones * _FLOPS_PER_ZONE * 0.08 * factor,
                            loads=zones * 220.0 * factor,
                            branches=zones * 45.0 * factor,
                        )
                    if boundary:
                        with rank.call("boundary_conditions", groups.COMPUTATION):
                            rank.compute(
                                flops=zones * _FLOPS_PER_ZONE * 0.05,
                                loads=zones * 90.0,
                                branches=zones * 30.0,
                            )
                rank.mpi(
                    "MPI_Isend()",
                    message_bytes=(zones ** (2.0 / 3.0)) * 48.0,
                )
                rank.mpi(
                    "MPI_Wait()",
                    message_bytes=0.0,
                    collective=True,
                    imbalance=lambda r: self._sweep_seconds(r, size) * 0.03,
                )
            rank.mpi(
                "MPI_Allreduce()",
                message_bytes=8.0,
                collective=True,
                imbalance=lambda r: self._sweep_seconds(r, size) * 0.02,
            )
            rank.user_event(
                "Timestep zones", zones
            )

        with rank.call("dump_state", groups.IO):
            rank.profiler.charge(WorkItem(io_bytes=zones * 24.0))
