"""EVH1 analog — the §5.2 speedup-analysis workload.

EVH1 (Enhanced Virginia Hydrodynamics #1) is a PPM hydrodynamics
benchmark from the PERC suite, used in the paper to exercise the trial
browser and speedup analyzer: *"Given performance data from experiments
with varying numbers of processors, the tool automatically calculates
the minimum, mean and maximum values for the speedup [of] every profiled
routine."*

Profile shape modelled:

* directional sweep routines (``sweepx1/2``, ``sweepy``, ``sweepz``)
  dominated by the Riemann solver and parabola fitting — near-perfect
  strong scaling (work ∝ N/P);
* a transpose phase built on ``MPI_Alltoall`` whose per-rank cost grows
  with P (message count ∝ P) — the classic scalability sink;
* small serial-ish bookkeeping (``init``, ``dtcon``) that stops scaling
  beyond a point (fixed cost per rank);
* boundary-condition imbalance: edge ranks do ~10% more work, giving
  the min/mean/max speedup spread §5.2 reports.
"""

from __future__ import annotations

from ...core.model import group as groups
from ..counters import WorkItem
from ..simulator import RankContext
from .base import SimulatedApplication

#: zones per rank at problem_size=1 and P=1.
_BASE_ZONES = 2.0e5
#: floating point work per zone per sweep step.
_FLOPS_PER_ZONE = 260.0


class EVH1(SimulatedApplication):
    name = "evh1"
    description = "PPM hydrodynamics benchmark (PERC suite) — strong scaling"
    default_metrics = ("TIME",)

    def __init__(self, problem_size: float = 1.0, seed: int = 42, timesteps: int = 4):
        super().__init__(problem_size, seed)
        self.timesteps = timesteps

    # -- imbalance model -----------------------------------------------------

    def _zone_factor(self, rank: int, size: int) -> float:
        """Edge ranks own boundary zones: ~10% extra work."""
        if size == 1:
            return 1.0
        return 1.10 if rank in (0, size - 1) else 1.0

    def _sweep_seconds(self, rank: int, size: int) -> float:
        """Deterministic sweep cost (used as the collective skew model)."""
        zones = _BASE_ZONES * self.problem_size / size * self._zone_factor(rank, size)
        return zones * _FLOPS_PER_ZONE / 1.0e9

    # -- kernel ------------------------------------------------------------------

    def kernel(self, rank: RankContext) -> None:
        size = rank.size
        zones = _BASE_ZONES * self.problem_size / size
        zones *= self._zone_factor(rank.rank, size)

        with rank.call("init", groups.DEFAULT):
            # fixed per-rank setup cost: does not shrink with P
            rank.compute(flops=2.0e6)
            rank.io("read_input", io_bytes=5.0e5)

        for _step in range(self.timesteps):
            with rank.call("dtcon", groups.COMPUTATION):
                # timestep control: small compute + allreduce
                rank.compute(flops=zones * 4)
            rank.mpi(
                "MPI_Allreduce()",
                message_bytes=8.0,
                collective=True,
                imbalance=lambda r: self._sweep_seconds(r, size) * 0.02,
            )

            for sweep in ("sweepx1", "sweepy", "sweepx2", "sweepz"):
                with rank.call(sweep, groups.COMPUTATION):
                    with rank.call("riemann", groups.COMPUTATION):
                        rank.compute(flops=zones * _FLOPS_PER_ZONE * 0.55)
                    with rank.call("parabola", groups.COMPUTATION):
                        rank.compute(flops=zones * _FLOPS_PER_ZONE * 0.30)
                    with rank.call("remap", groups.COMPUTATION):
                        rank.compute(flops=zones * _FLOPS_PER_ZONE * 0.15)
                # transpose between sweep directions: each rank exchanges
                # its whole slab (zones*8 bytes) split into P messages,
                # paying per-peer latency — the term that stops scaling.
                # Latency is folded in as equivalent bytes so the single
                # mpi() call carries the full cost model.
                latency_equivalent_bytes = (
                    size * rank.machine.latency_seconds * rank.machine.bytes_per_second
                )
                rank.mpi(
                    "MPI_Alltoall()",
                    message_bytes=zones * 8.0 + latency_equivalent_bytes,
                    collective=True,
                    imbalance=lambda r: self._sweep_seconds(r, size) * 0.05,
                )

        with rank.call("output", groups.IO):
            rank.profiler.charge(WorkItem(io_bytes=zones * 16.0))
        rank.user_event("zones processed", zones * self.timesteps)
