"""Snapshot capture for simulated applications.

Real TAU writes cumulative profile snapshots at runtime triggers; the
simulator equivalent replays the application at increasing timestep
counts with the *same seed*.  Because the per-rank RNG streams are
deterministic, the k-step profile is an exact prefix of the (k+1)-step
profile, which gives genuine cumulative snapshots (monotonicity holds
by construction and is asserted in tests).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.model import DataSource
from ..core.model.snapshot import SnapshotSeries

#: A factory: given a timestep count, return a runnable application.
AppFactory = Callable[[int], "object"]


def capture_series(
    app_factory: AppFactory,
    ranks: int,
    steps: Sequence[int],
    seconds_per_step: float = 1.0,
) -> SnapshotSeries:
    """Capture a snapshot series by replaying at each step count.

    ``app_factory(n_steps)`` must build the application configured for
    ``n_steps`` timesteps with a fixed seed; ``steps`` must increase.
    """
    if list(steps) != sorted(set(steps)):
        raise ValueError("steps must be strictly increasing")
    series = SnapshotSeries()
    for n_steps in steps:
        app = app_factory(n_steps)
        source: DataSource = app.run(ranks)
        series.add(
            timestamp=n_steps * seconds_per_step,
            source=source,
            label=f"after step {n_steps}",
        )
    return series
