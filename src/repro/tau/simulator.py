"""SPMD parallel-application simulator.

The paper's evaluation data came from production runs at LLNL (sPPM,
SMG2000, SPhot, Miranda, EVH1 on up to 16K BlueGene/L processors).  We
have no such machine, so this module substitutes a deterministic SPMD
simulator: an *application kernel* is a Python function executed once
per rank against a :class:`RankContext` that exposes TAU-like
instrumentation (`call`, `compute`, `mpi`, `io`, `user_event`) over the
simulated cost model in :mod:`repro.tau.counters`.

Collective operations need cross-rank coupling (everyone waits for the
slowest rank).  Ranks run independently here, so collectives take an
*imbalance closure*: a deterministic function ``rank → local cost`` that
every rank can evaluate for all peers, letting each rank compute the
true max without message exchange.  This preserves the property the
paper's analyses depend on — per-rank communication time reflecting
global load imbalance — while staying embarrassingly parallel to
simulate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.model import DataSource, group as groups
from .counters import CounterBank, MachineModel, WorkItem
from .instrumentation import ThreadProfiler
from .topology import Topology

AppKernel = Callable[["RankContext"], None]


@dataclass
class SimulationConfig:
    """Everything that determines a run (fully deterministic per seed)."""

    ranks: int
    metrics: tuple[str, ...] = ("TIME",)
    seed: int = 42
    callpaths: bool = False
    machine: Optional[MachineModel] = None
    topology: Optional[Topology] = None
    #: per-rank relative speed; default = homogeneous machine
    speed_of: Optional[Callable[[int], float]] = None


class RankContext:
    """The per-rank view an application kernel programs against."""

    def __init__(self, config: SimulationConfig, rank: int, datasource: DataSource):
        self.config = config
        self.rank = rank
        self.size = config.ranks
        topology = config.topology or Topology.flat(config.ranks)
        node, context, thread = topology.triple_for(rank)
        speed = config.speed_of(rank) if config.speed_of else 1.0
        counters = CounterBank(
            metrics=config.metrics,
            machine=config.machine,
            seed=config.seed * 1_000_003 + rank,
        )
        self.profiler = ThreadProfiler(
            datasource, node, context, thread,
            counters=counters,
            callpaths=config.callpaths,
            speed_factor=speed,
        )
        self.machine = counters.machine

    # -- structured regions ------------------------------------------------------

    def call(self, name: str, group: str = groups.DEFAULT):
        """``with rank.call("solve"): ...`` — a timed region."""
        return self.profiler.timer(name, group)

    # -- work primitives -----------------------------------------------------------

    def compute(
        self,
        flops: float,
        loads: Optional[float] = None,
        stores: Optional[float] = None,
        branches: Optional[float] = None,
    ) -> None:
        """Charge a computational kernel to the current region."""
        loads = flops * 0.6 if loads is None else loads
        stores = flops * 0.25 if stores is None else stores
        branches = flops * 0.08 if branches is None else branches
        self.profiler.charge(
            WorkItem(flops=flops, loads=loads, stores=stores, branches=branches)
        )

    def mpi(
        self,
        routine: str,
        message_bytes: float = 0.0,
        collective: bool = False,
        imbalance: Optional[Callable[[int], float]] = None,
    ) -> None:
        """Execute an MPI routine inside its own timer.

        For collectives, ``imbalance(rank) -> seconds`` describes each
        rank's arrival skew; every rank pays the gap between its own
        arrival and the latest arrival plus a log(P) combining cost.
        """
        with self.call(routine, groups.COMMUNICATION):
            wait = 0.0
            if collective:
                skews = (
                    [imbalance(r) for r in range(self.size)]
                    if imbalance is not None
                    else [0.0] * self.size
                )
                my_skew = skews[self.rank]
                wait = max(skews) - my_skew
                wait += math.log2(max(self.size, 2)) * self.machine.latency_seconds
            self.profiler.charge(
                WorkItem(message_bytes=message_bytes, wait_seconds=wait)
            )
            if message_bytes > 0:
                self.user_event("Message size sent", message_bytes)

    def io(self, routine: str, io_bytes: float) -> None:
        with self.call(routine, groups.IO):
            self.profiler.charge(WorkItem(io_bytes=io_bytes))

    def idle(self, seconds: float) -> None:
        """Pure waiting inside the current region (load imbalance)."""
        self.profiler.charge(WorkItem(wait_seconds=seconds))

    def user_event(self, name: str, value: float) -> None:
        self.profiler.trigger(name, value)


def run_simulation(kernel: AppKernel, config: SimulationConfig) -> DataSource:
    """Execute ``kernel`` once per rank and return the merged profile."""
    datasource = DataSource()
    for metric_name in config.metrics:
        datasource.add_metric(metric_name)
    for rank in range(config.ranks):
        context = RankContext(config, rank, datasource)
        with context.call("main"):
            kernel(context)
        context.profiler.finish()
    datasource.generate_statistics()
    datasource.metadata.setdefault("simulator.seed", str(config.seed))
    datasource.metadata.setdefault("simulator.ranks", str(config.ranks))
    return datasource
