"""Simulated PAPI hardware counters.

The paper's PerfExplorer datasets carried *"up to 7 PAPI hardware
counters"* (§5.3).  Real counters require real hardware; this module
substitutes a deterministic cost/counter model: application kernels
describe their work as a :class:`WorkItem` (floating-point operations,
memory traffic, messages, I/O bytes) and each registered counter
advances as a fixed linear function of that work, with a small seeded
multiplicative jitter standing in for micro-architectural noise.

The substitution preserves what the downstream analyses consume: counter
*ratios* that differ systematically between code regions and thread
populations (the basis of the Ahn & Vetter clustering result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

#: Metric names mirroring the PAPI preset events used at LLNL.
PAPI_FP_OPS = "PAPI_FP_OPS"
PAPI_TOT_CYC = "PAPI_TOT_CYC"
PAPI_TOT_INS = "PAPI_TOT_INS"
PAPI_L1_DCM = "PAPI_L1_DCM"
PAPI_L2_DCM = "PAPI_L2_DCM"
PAPI_BR_INS = "PAPI_BR_INS"
PAPI_LD_INS = "PAPI_LD_INS"
TIME = "TIME"

#: The 7-counter set the sPPM study collected (plus wall clock).
DEFAULT_COUNTERS = (
    PAPI_FP_OPS, PAPI_TOT_CYC, PAPI_TOT_INS, PAPI_L1_DCM,
    PAPI_L2_DCM, PAPI_BR_INS, PAPI_LD_INS,
)


@dataclass
class WorkItem:
    """One unit of simulated work, in abstract machine quantities."""

    flops: float = 0.0
    loads: float = 0.0
    stores: float = 0.0
    branches: float = 0.0
    message_bytes: float = 0.0
    io_bytes: float = 0.0
    #: synchronisation / idle component, seconds of pure waiting
    wait_seconds: float = 0.0

    def scaled(self, factor: float) -> "WorkItem":
        return WorkItem(
            flops=self.flops * factor,
            loads=self.loads * factor,
            stores=self.stores * factor,
            branches=self.branches * factor,
            message_bytes=self.message_bytes * factor,
            io_bytes=self.io_bytes * factor,
            wait_seconds=self.wait_seconds * factor,
        )


@dataclass(frozen=True)
class MachineModel:
    """Cost coefficients for the simulated machine.

    Defaults are loosely calibrated to a 2005-era 1 GFLOP/s node with a
    high-latency interconnect (BlueGene/L-ish), so profile shapes —
    compute/communication ratios, cache-miss rates — land in a
    realistic range.
    """

    flops_per_second: float = 1.0e9
    bytes_per_second: float = 5.0e8  #: network bandwidth
    latency_seconds: float = 5.0e-6  #: per-message latency
    io_bytes_per_second: float = 2.0e8
    cycles_per_second: float = 1.4e9
    l1_miss_rate: float = 0.04  #: misses per load
    l2_miss_rate: float = 0.008

    def seconds_for(self, work: WorkItem) -> float:
        """Wall-clock cost of one work item."""
        compute = work.flops / self.flops_per_second
        memory = (work.loads + work.stores) * 8.0 / (self.bytes_per_second * 10)
        network = 0.0
        if work.message_bytes > 0:
            network = self.latency_seconds + work.message_bytes / self.bytes_per_second
        io = work.io_bytes / self.io_bytes_per_second if work.io_bytes else 0.0
        return compute + memory + network + io + work.wait_seconds


class CounterBank:
    """Per-thread counter accumulation with deterministic jitter.

    ``advance(work)`` returns the per-metric deltas for one work item.
    Metric 0 is always wall-clock TIME (seconds scaled to microseconds,
    TAU's native unit).
    """

    #: microseconds per second — TAU profiles store time in usec.
    USEC = 1.0e6

    def __init__(
        self,
        metrics: tuple[str, ...] = (TIME,),
        machine: MachineModel | None = None,
        seed: int = 0,
        jitter: float = 0.02,
    ):
        if not metrics or metrics[0] != TIME:
            metrics = (TIME,) + tuple(m for m in metrics if m != TIME)
        self.metrics = metrics
        self.machine = machine or MachineModel()
        self._base_seed = seed
        self.rng = np.random.default_rng(seed)
        self.jitter = jitter

    def _jitter(self) -> float:
        if self.jitter <= 0:
            return 1.0
        return float(1.0 + self.rng.normal(0.0, self.jitter))

    def rekey(self, jitter_key: str) -> None:
        """Re-derive the jitter stream from ``jitter_key``.

        Called by the instrumentation layer with (event path, charge
        index) so the same logical charge always draws the same jitter —
        this is what makes snapshot replays exact cumulative prefixes
        (see :mod:`repro.tau.snapshots`).
        """
        import zlib

        digest = zlib.crc32(jitter_key.encode("utf-8"))
        self.rng = np.random.default_rng((self._base_seed << 32) ^ digest)

    def advance(self, work: WorkItem, speed_factor: float = 1.0) -> dict[str, float]:
        """Per-metric deltas for ``work`` on a thread running at
        ``speed_factor`` × nominal speed (load imbalance knob)."""
        machine = self.machine
        seconds = machine.seconds_for(work) / max(speed_factor, 1e-9)
        seconds *= max(self._jitter(), 0.01)
        deltas: dict[str, float] = {}
        for metric in self.metrics:
            if metric == TIME:
                deltas[metric] = seconds * self.USEC
            elif metric == PAPI_FP_OPS:
                deltas[metric] = work.flops * max(self._jitter(), 0.01)
            elif metric == PAPI_TOT_CYC:
                deltas[metric] = seconds * machine.cycles_per_second
            elif metric == PAPI_TOT_INS:
                deltas[metric] = (
                    work.flops * 1.1 + (work.loads + work.stores) + work.branches
                ) * max(self._jitter(), 0.01)
            elif metric == PAPI_L1_DCM:
                deltas[metric] = work.loads * machine.l1_miss_rate * max(self._jitter(), 0.01)
            elif metric == PAPI_L2_DCM:
                deltas[metric] = work.loads * machine.l2_miss_rate * max(self._jitter(), 0.01)
            elif metric == PAPI_BR_INS:
                deltas[metric] = work.branches * max(self._jitter(), 0.01)
            elif metric == PAPI_LD_INS:
                deltas[metric] = work.loads * max(self._jitter(), 0.01)
            else:
                # Unknown counters scale with instructions.
                deltas[metric] = (work.flops + work.loads) * max(self._jitter(), 0.01)
        return deltas
