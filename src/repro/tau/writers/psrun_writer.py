"""Writer for PerfSuite ``psrun`` XML output.

psrun measures whole-process hardware counter totals and writes one XML
document per process (``<hwpcreport>``).  There is no per-function
breakdown — PerfDMF's importer maps the whole run to a single "Entire
application" event with one metric per counter, which is exactly what
this writer emits.
"""

from __future__ import annotations

import os
from pathlib import Path
from xml.sax.saxutils import escape

from ...core.model import DataSource


def write_psrun_output(
    source: DataSource, directory: str | os.PathLike
) -> list[Path]:
    """Write one ``psrun.<rank>.xml`` file per thread under ``directory``."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    usec = 1.0e6
    time_metric = source.time_metric()
    written: list[Path] = []
    for thread in source.all_threads():
        path = base / f"psrun.{thread.node_id}.xml"
        written.append(path)
        wall = thread.max_inclusive(time_metric.index) / usec
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('<?xml version="1.0" encoding="UTF-8"?>\n')
            fh.write('<hwpcreport version="1.0" generator="psrun (simulated)">\n')
            fh.write("  <executableinfo>\n")
            fh.write("    <name>simulated.exe</name>\n")
            fh.write("  </executableinfo>\n")
            fh.write("  <machineinfo>\n")
            fh.write("    <cpuinfo><clockspeed>1400.0</clockspeed></cpuinfo>\n")
            fh.write("  </machineinfo>\n")
            fh.write(f"  <wallclock units=\"seconds\">{wall:.6f}</wallclock>\n")
            fh.write("  <hwpcevents>\n")
            for metric in source.metrics:
                if metric is time_metric:
                    continue
                # whole-process total = inclusive of the longest-running
                # (root) event on this thread
                total = max(
                    (
                        p.get_inclusive(metric.index)
                        for p in thread.function_profiles.values()
                    ),
                    default=0.0,
                )
                fh.write(
                    f'    <hwpcevent name="{escape(metric.name)}" '
                    f'derived="false">{total:.0f}</hwpcevent>\n'
                )
            fh.write("  </hwpcevents>\n")
            fh.write("</hwpcreport>\n")
    return written
