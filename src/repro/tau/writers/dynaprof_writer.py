"""Writer for dynaprof (papiprof) text output.

dynaprof instruments binaries with DynInst and reports per-probe PAPI
totals.  Its text output (one file per process) has an exclusive and an
inclusive section, each a simple name/percent/total/calls table::

    Exclusive Profile of metric PAPI_FP_OPS.

    Name                     Percent      Total       Calls
    -------------------------------------------------------
    TOTAL                    100          1.234e+09   1
    main                     45.2         5.578e+08   1
    ...

    Inclusive Profile of metric PAPI_FP_OPS.
    ...
"""

from __future__ import annotations

import os
from pathlib import Path

from ...core.model import DataSource


def write_dynaprof_output(
    source: DataSource, directory: str | os.PathLike, metric: int = 0
) -> list[Path]:
    """Write one ``<app>.dynaprof.N`` file per thread."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    metric_name = (
        source.metrics[metric].name if source.metrics else "WALLCLOCK"
    )
    written: list[Path] = []
    for thread in source.all_threads():
        rank = thread.node_id
        path = base / f"app.dynaprof.{rank}"
        written.append(path)
        with open(path, "w", encoding="utf-8") as fh:
            _section(fh, thread, metric, metric_name, inclusive=False)
            fh.write("\n")
            _section(fh, thread, metric, metric_name, inclusive=True)
    return written


def _section(fh, thread, metric: int, metric_name: str, inclusive: bool) -> None:
    kind = "Inclusive" if inclusive else "Exclusive"
    fh.write(f"{kind} Profile of metric {metric_name}.\n\n")
    fh.write(f"{'Name':<28s} {'Percent':<12s} {'Total':<14s} {'Calls':<8s}\n")
    fh.write("-" * 64 + "\n")
    get = (
        (lambda p: p.get_inclusive(metric))
        if inclusive
        else (lambda p: p.get_exclusive(metric))
    )
    profiles = sorted(
        thread.function_profiles.values(), key=get, reverse=True
    )
    if inclusive:
        total = max((get(p) for p in profiles), default=0.0)
    else:
        total = sum(get(p) for p in profiles)
    fh.write(f"{'TOTAL':<28s} {'100':<12s} {total:<14.6g} {1:<8d}\n")
    for profile in profiles:
        value = get(profile)
        pct = 100.0 * value / total if total > 0 else 0.0
        fh.write(
            f"{profile.event.name:<28s} {pct:<12.4g} {value:<14.6g} "
            f"{int(profile.calls):<8d}\n"
        )
