"""Native-format profile writers.

Each writer emits files structurally faithful to the real tool's output
so that :mod:`repro.core.io_`'s importers parse realistic input — the
same pairing PerfDMF was tested against (paper §3.1's six formats, plus
SvPablo).
"""

from .dynaprof_writer import write_dynaprof_output
from .gprof_writer import write_gprof_output
from .hpm_writer import write_hpm_output
from .mpip_writer import write_mpip_report
from .psrun_writer import write_psrun_output
from .svpablo_writer import write_svpablo_output
from .tau_writer import write_tau_profiles

__all__ = [
    "write_tau_profiles", "write_gprof_output", "write_mpip_report",
    "write_dynaprof_output", "write_hpm_output", "write_psrun_output",
    "write_svpablo_output",
]
