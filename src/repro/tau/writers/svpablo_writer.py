"""Writer for (simplified) SvPablo self-describing profile data.

The paper lists SvPablo support as in progress ("Support for SvPablo is
being added").  We complete it.  SvPablo captures per-construct counts
and durations in SDDF (Self-Defining Data Format); we emit a simplified
line-oriented SDDF-like rendering that keeps the self-describing record
header / data record split::

    #1: "SvPablo profile" {
      "event name" CHAR[];
      "rank" INT;
      "count" INT;
      "exclusive usec" DOUBLE;
      "inclusive usec" DOUBLE;
    };;
    "SvPablo profile" { "main", 0, 1, 10.5, 1000.25 };;
"""

from __future__ import annotations

import os
from pathlib import Path

from ...core.model import DataSource

_HEADER = '''/* SvPablo SDDF (simplified, simulated) */
#1: "SvPablo profile" {
  "event name" CHAR[];
  "rank" INT;
  "count" INT;
  "exclusive usec" DOUBLE;
  "inclusive usec" DOUBLE;
};;
'''


def write_svpablo_output(
    source: DataSource, path: str | os.PathLike, metric: int = 0
) -> Path:
    """Write the whole trial into one SDDF-like file."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(_HEADER)
        for thread in source.all_threads():
            rank = thread.node_id
            for profile in thread.function_profiles.values():
                name = profile.event.name.replace('"', "'")
                fh.write(
                    f'"SvPablo profile" {{ "{name}", {rank}, '
                    f"{int(profile.calls)}, {profile.get_exclusive(metric):.16g}, "
                    f"{profile.get_inclusive(metric):.16g} }};;\n"
                )
    return out
