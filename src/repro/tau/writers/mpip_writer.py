"""Writer for mpiP text reports.

mpiP (LLNL) produces one text report per run summarising MPI behaviour.
PerfDMF's importer consumes three sections, which we emit:

* ``@--- MPI Time (seconds) ---`` — per-task application vs MPI time;
* ``@--- Callsites ---`` — callsite id → routine name mapping;
* ``@--- Callsite Time statistics (all, milliseconds) ---`` —
  per-callsite, per-rank count/max/mean/min rows, plus ``*`` aggregate
  rows.

The report covers only events in the MPI group; application (non-MPI)
time appears as the per-task ``AppTime`` and becomes a synthetic
"Application" event on import.
"""

from __future__ import annotations

import os
from pathlib import Path

from ...core.model import DataSource, group as groups


def write_mpip_report(
    source: DataSource, path: str | os.PathLike, metric: int = 0
) -> Path:
    """Write a single mpiP-style report for the whole trial."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    usec = 1.0e6

    threads = list(source.all_threads())
    mpi_events = [
        e for e in source.interval_events.values()
        if groups.COMMUNICATION in e.groups
    ]

    with open(out, "w", encoding="utf-8") as fh:
        fh.write("@ mpiP\n")
        fh.write("@ Command : simulated application\n")
        fh.write(f"@ MPI Task Assignment : {len(threads)} tasks\n")
        fh.write("@\n")

        fh.write("@--- MPI Time (seconds) " + "-" * 40 + "\n")
        fh.write("Task    AppTime    MPITime     MPI%\n")
        total_app = total_mpi = 0.0
        for task, thread in enumerate(threads):
            app_time = thread.max_inclusive(metric) / usec
            mpi_time = sum(
                thread.function_profiles[e.index].get_inclusive(metric)
                for e in mpi_events
                if e.index in thread.function_profiles
            ) / usec
            pct = 100.0 * mpi_time / app_time if app_time > 0 else 0.0
            fh.write(f"{task:4d} {app_time:10.4g} {mpi_time:10.4g} {pct:8.2f}\n")
            total_app += app_time
            total_mpi += mpi_time
        pct = 100.0 * total_mpi / total_app if total_app > 0 else 0.0
        fh.write(f"   * {total_app:10.4g} {total_mpi:10.4g} {pct:8.2f}\n")
        fh.write("\n")

        fh.write("@--- Callsites: " + str(len(mpi_events)) + " " + "-" * 40 + "\n")
        fh.write(" ID Lev File/Address        Line Parent_Funct             MPI_Call\n")
        for site_id, event in enumerate(mpi_events, start=1):
            call = event.name.replace("MPI_", "").rstrip("()")
            fh.write(
                f"{site_id:3d}   0 simulated.c          {100 + site_id:4d} "
                f"application              {_bare_call(event.name)}\n"
            )
        fh.write("\n")

        fh.write(
            "@--- Callsite Time statistics (all, milliseconds): "
            f"{len(mpi_events) * (len(threads) + 1)} " + "-" * 20 + "\n"
        )
        fh.write("Name              Site Rank  Count      Max     Mean      Min   App%   MPI%\n")
        for site_id, event in enumerate(mpi_events, start=1):
            name = _bare_call(event.name)
            agg_count = 0
            agg_total = 0.0
            agg_max = 0.0
            agg_min = float("inf")
            for task, thread in enumerate(threads):
                profile = thread.function_profiles.get(event.index)
                if profile is None or profile.calls == 0:
                    continue
                count = int(profile.calls)
                total_ms = profile.get_inclusive(metric) / 1000.0
                mean_ms = total_ms / count
                # max/min per call are not tracked; approximate with mean
                max_ms = mean_ms * 1.5
                min_ms = mean_ms * 0.5
                app_time = thread.max_inclusive(metric) / 1000.0
                app_pct = 100.0 * total_ms / app_time if app_time > 0 else 0.0
                fh.write(
                    f"{name:<17s} {site_id:4d} {task:4d} {count:6d} "
                    f"{max_ms:8.4g} {mean_ms:8.4g} {min_ms:8.4g} "
                    f"{app_pct:6.2f} {min(app_pct * 1.2, 100.0):6.2f}\n"
                )
                agg_count += count
                agg_total += total_ms
                agg_max = max(agg_max, max_ms)
                agg_min = min(agg_min, min_ms)
            if agg_count:
                fh.write(
                    f"{name:<17s} {site_id:4d}    * {agg_count:6d} "
                    f"{agg_max:8.4g} {agg_total / agg_count:8.4g} {agg_min:8.4g} "
                    f"{0.0:6.2f} {0.0:6.2f}\n"
                )
        fh.write("\n@--- End of Report " + "-" * 50 + "\n")
    return out


def _bare_call(event_name: str) -> str:
    """``MPI_Send() [call 3]`` → ``Send``, matching mpiP's short names."""
    name = event_name.split("[", 1)[0].strip()
    name = name.replace("MPI_", "").rstrip("()")
    return name
