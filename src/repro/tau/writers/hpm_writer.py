"""Writer for IBM HPMToolkit (libhpm) output.

HPMToolkit writes one text file per process (``perfhpm<rank>.<pid>``),
with one block per instrumented section: wall-clock time plus the
hardware counter totals gathered in that section.  Figure 2 of the paper
shows ParaProf browsing an HPMToolkit trial imported through PerfDMF —
this writer produces that input.
"""

from __future__ import annotations

import os
from pathlib import Path

from ...core.model import DataSource

#: Counter descriptions in libhpm's "NAME (description): value" style.
_DESCRIPTIONS = {
    "PAPI_FP_OPS": "Floating point operations",
    "PAPI_TOT_CYC": "Processor cycles",
    "PAPI_TOT_INS": "Instructions completed",
    "PAPI_L1_DCM": "Level 1 data cache misses",
    "PAPI_L2_DCM": "Level 2 data cache misses",
    "PAPI_BR_INS": "Branch instructions",
    "PAPI_LD_INS": "Load instructions",
}


def write_hpm_output(
    source: DataSource, directory: str | os.PathLike
) -> list[Path]:
    """Write one ``perfhpm<rank>`` file per thread under ``directory``."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    usec = 1.0e6
    time_metric = source.time_metric()
    counter_metrics = [m for m in source.metrics if m is not time_metric]
    written: list[Path] = []
    for thread in source.all_threads():
        path = base / f"perfhpm{thread.node_id:04d}.{thread.context_id}.{thread.thread_id}"
        written.append(path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("libhpm (Version 2.5.4) summary (simulated)\n")
            fh.write(f"Total execution time of instrumented code (wall time):"
                     f" {thread.max_inclusive(time_metric.index) / usec:.6f} seconds\n\n")
            for section_id, profile in enumerate(
                thread.function_profiles.values(), start=1
            ):
                fh.write("#" * 60 + "\n")
                fh.write(
                    f"Instrumented section: {section_id} - Label: "
                    f"{profile.event.name}\n"
                )
                fh.write(" file: simulated.f, lines: 1 <--> 99\n")
                fh.write(f" Count: {int(profile.calls)}\n")
                fh.write(
                    f" Wall Clock Time: "
                    f"{profile.get_inclusive(time_metric.index) / usec:.6f} seconds\n"
                )
                fh.write(
                    f" Exclusive Wall Clock Time: "
                    f"{profile.get_exclusive(time_metric.index) / usec:.6f} seconds\n"
                )
                for metric in counter_metrics:
                    description = _DESCRIPTIONS.get(metric.name, "counter")
                    fh.write(
                        f" {metric.name} ({description}): "
                        f"{profile.get_inclusive(metric.index):.0f}\n"
                    )
                fh.write("\n")
    return written
