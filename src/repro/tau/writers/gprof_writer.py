"""Writer for gprof text output (``gprof -p -q`` style).

Emits the two classic sections PerfDMF's gprof importer understands:

* the **flat profile** (``gprof -p``): per-function self seconds,
  cumulative seconds, call counts;
* the **call graph** (``gprof -q``): index blocks with parent/child
  lines, used to recover subroutine counts.

gprof is a sequential profiler — one output file per process.  Time is
written in seconds (the importer converts to microseconds).
"""

from __future__ import annotations

import os
from pathlib import Path

from ...core.model import DataSource

_FLAT_HEADER = """Flat profile:

Each sample counts as 0.01 seconds.
  %   cumulative   self              self     total
 time   seconds   seconds    calls  ms/call  ms/call  name
"""

_GRAPH_HEADER = """
\t\t     Call graph (explanation follows)


granularity: each sample hit covers 2 byte(s) for 0.01% of {total:.2f} seconds

index % time    self  children    called     name
"""


def write_gprof_output(
    source: DataSource, directory: str | os.PathLike, metric: int = 0
) -> list[Path]:
    """Write one ``gprof.out.N.C.T`` file per thread under ``directory``."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for thread in source.all_threads():
        path = base / (
            f"gprof.out.{thread.node_id}.{thread.context_id}.{thread.thread_id}"
        )
        written.append(path)
        with open(path, "w", encoding="utf-8") as fh:
            _write_one(fh, thread, metric)
    return written


def _write_one(fh, thread, metric: int) -> None:
    profiles = sorted(
        thread.function_profiles.values(),
        key=lambda p: p.get_exclusive(metric),
        reverse=True,
    )
    usec = 1.0e6
    total_self = sum(p.get_exclusive(metric) for p in profiles) / usec
    fh.write(_FLAT_HEADER)
    cumulative = 0.0
    for profile in profiles:
        self_seconds = profile.get_exclusive(metric) / usec
        cumulative += self_seconds
        pct = 100.0 * self_seconds / total_self if total_self > 0 else 0.0
        calls = int(profile.calls)
        self_ms = self_seconds * 1000.0 / calls if calls else 0.0
        total_ms = profile.get_inclusive(metric) / usec * 1000.0 / calls if calls else 0.0
        fh.write(
            f"{pct:6.2f} {cumulative:10.2f} {self_seconds:9.2f} "
            f"{calls:8d} {self_ms:8.2f} {total_ms:8.2f}  {profile.event.name}\n"
        )
    fh.write(_GRAPH_HEADER.format(total=max(total_self, 0.01)))
    for index, profile in enumerate(profiles, start=1):
        self_seconds = profile.get_exclusive(metric) / usec
        child_seconds = (
            profile.get_inclusive(metric) - profile.get_exclusive(metric)
        ) / usec
        pct = (
            100.0 * profile.get_inclusive(metric) / usec / total_self
            if total_self > 0
            else 0.0
        )
        calls = int(profile.calls)
        fh.write(
            f"[{index}] {min(pct, 100.0):8.1f} {self_seconds:7.2f} "
            f"{child_seconds:9.2f} {calls:7d}         {profile.event.name} [{index}]\n"
        )
        fh.write("-----------------------------------------------\n")
