"""Writer for TAU's native profile format.

Emits the classic ``profile.N.C.T`` flat files TAU produces, one per
thread of execution, in the layout PerfDMF's TAU importer scans:

* single metric: ``<dir>/profile.N.C.T``;
* multiple metrics: ``<dir>/MULTI__<METRIC>/profile.N.C.T``.

File structure (matching TAU 2.x)::

    <n> templated_functions_MULTI_TIME
    # Name Calls Subrs Excl Incl ProfileCalls #
    "main" 1 14 10.5 1000.25 0 GROUP="TAU_DEFAULT"
    ...
    0 aggregates
    <m> userevents
    # eventname numevents max min mean sumsqr
    "message size" 100 1024 8 500.5 2.5e+07
"""

from __future__ import annotations

import os
from pathlib import Path

from ...core.model import DataSource


def _metric_token(name: str) -> str:
    """Metric name as it appears in file headers/directory names."""
    return name.replace(" ", "_")


def write_tau_profiles(source: DataSource, directory: str | os.PathLike) -> list[Path]:
    """Write ``source`` as TAU profile files under ``directory``.

    Returns the list of files written.  Multi-metric trials produce one
    ``MULTI__<METRIC>`` subdirectory per metric, as TAU does when
    configured with multiple counters.
    """
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    multi = source.num_metrics > 1
    for metric in source.metrics:
        if multi:
            metric_dir = base / f"MULTI__{_metric_token(metric.name)}"
            metric_dir.mkdir(exist_ok=True)
        else:
            metric_dir = base
        for thread in source.all_threads():
            path = metric_dir / (
                f"profile.{thread.node_id}.{thread.context_id}.{thread.thread_id}"
            )
            written.append(path)
            with open(path, "w", encoding="utf-8") as fh:
                _write_one(fh, source, thread, metric.index, metric.name)
    return written


def _quote(name: str) -> str:
    return '"' + name.replace('"', "'") + '"'


def _write_one(fh, source: DataSource, thread, metric_index: int, metric_name: str) -> None:
    profiles = [
        p for p in thread.function_profiles.values()
    ]
    fh.write(
        f"{len(profiles)} templated_functions_MULTI_{_metric_token(metric_name)}\n"
    )
    fh.write("# Name Calls Subrs Excl Incl ProfileCalls #")
    if source.metadata:
        fh.write("<metadata>")
        for key, value in sorted(source.metadata.items()):
            fh.write(
                f"<attribute><name>{_xml_escape(key)}</name>"
                f"<value>{_xml_escape(str(value))}</value></attribute>"
            )
        fh.write("</metadata>")
    fh.write("\n")
    for profile in profiles:
        exclusive = profile.get_exclusive(metric_index)
        inclusive = profile.get_inclusive(metric_index)
        fh.write(
            f"{_quote(profile.event.name)} {profile.calls:g} "
            f"{profile.subroutines:g} {exclusive:.16g} {inclusive:.16g} 0 "
            f'GROUP="{profile.event.group}"\n'
        )
    fh.write("0 aggregates\n")
    user_profiles = list(thread.user_event_profiles.values())
    fh.write(f"{len(user_profiles)} userevents\n")
    if user_profiles:
        fh.write("# eventname numevents max min mean sumsqr\n")
        for up in user_profiles:
            fh.write(
                f"{_quote(up.event.name)} {up.count:g} {up.max_value:.16g} "
                f"{up.min_value:.16g} {up.mean_value:.16g} {up.sumsqr:.16g}\n"
            )


def _xml_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
