"""``repro.tau`` — the measurement substrate (simulated TAU).

Provides the instrumentation API, simulated PAPI counters, the SPMD
application simulator, five synthetic applications, and writers that
emit native files for all six profile formats PerfDMF imports.
"""

from .counters import (
    DEFAULT_COUNTERS, CounterBank, MachineModel, WorkItem,
)
from .instrumentation import InstrumentationError, ThreadProfiler
from .simulator import RankContext, SimulationConfig, run_simulation
from .topology import Topology

__all__ = [
    "CounterBank", "MachineModel", "WorkItem", "DEFAULT_COUNTERS",
    "ThreadProfiler", "InstrumentationError",
    "RankContext", "SimulationConfig", "run_simulation", "Topology",
]
