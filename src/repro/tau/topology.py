"""Topology descriptions for simulated runs.

Maps MPI-style ranks onto PerfDMF's (node, context, thread) hierarchy.
Flat MPI runs map rank → node; hybrid runs pack several threads per
node the way the LLNL datasets did.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Topology:
    """Shape of a simulated parallel machine allocation."""

    nodes: int
    contexts_per_node: int = 1
    threads_per_context: int = 1

    @property
    def total_threads(self) -> int:
        return self.nodes * self.contexts_per_node * self.threads_per_context

    def triple_for(self, rank: int) -> tuple[int, int, int]:
        """The (node, context, thread) triple of global rank ``rank``."""
        if not 0 <= rank < self.total_threads:
            raise ValueError(f"rank {rank} out of range 0..{self.total_threads - 1}")
        per_node = self.contexts_per_node * self.threads_per_context
        node = rank // per_node
        within = rank % per_node
        context = within // self.threads_per_context
        thread = within % self.threads_per_context
        return (node, context, thread)

    def rank_for(self, node: int, context: int, thread: int) -> int:
        """Inverse of :meth:`triple_for`."""
        per_node = self.contexts_per_node * self.threads_per_context
        return node * per_node + context * self.threads_per_context + thread

    @classmethod
    def flat(cls, ranks: int) -> "Topology":
        """One rank per node: the classic MPI-everywhere layout."""
        return cls(nodes=ranks)

    @classmethod
    def hybrid(cls, nodes: int, threads_per_node: int) -> "Topology":
        """One context per node, many threads (MPI+OpenMP style)."""
        return cls(nodes=nodes, threads_per_context=threads_per_node)
