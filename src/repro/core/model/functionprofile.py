"""Per-(thread, event) measurement records.

A :class:`FunctionProfile` is PerfDMF's *event profile* object (paper
§4: *"for each node, context, thread, event, metric combination, there
is an event profile object which stores the performance data for that
particular combination"*).  One FunctionProfile covers all metrics of
one event on one thread; per-metric values live in parallel lists.

Captured fields mirror INTERVAL_LOCATION_PROFILE (paper §3.2):
inclusive value, exclusive value, number of calls, number of
subroutines, inclusive-per-call; the percentage columns are computed,
not stored.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from .events import IntervalEvent


class FunctionProfile:
    """Cumulative data for one interval event on one thread."""

    __slots__ = ("event", "_inclusive", "_exclusive", "calls", "subroutines")

    def __init__(self, event: "IntervalEvent", num_metrics: int = 1):
        self.event = event
        self._inclusive = [0.0] * num_metrics
        self._exclusive = [0.0] * num_metrics
        self.calls = 0.0
        self.subroutines = 0.0

    # -- metric accessors -----------------------------------------------------

    @property
    def num_metrics(self) -> int:
        return len(self._inclusive)

    def get_inclusive(self, metric: int = 0) -> float:
        return self._inclusive[metric]

    def set_inclusive(self, metric: int, value: float) -> None:
        self._inclusive[metric] = float(value)

    def get_exclusive(self, metric: int = 0) -> float:
        return self._exclusive[metric]

    def set_exclusive(self, metric: int, value: float) -> None:
        self._exclusive[metric] = float(value)

    def get_inclusive_per_call(self, metric: int = 0) -> float:
        if self.calls == 0:
            return 0.0
        return self._inclusive[metric] / self.calls

    def add_metric_slot(self, count: int = 1) -> None:
        """Extend per-metric storage (derived-metric support)."""
        self._inclusive.extend([0.0] * count)
        self._exclusive.extend([0.0] * count)

    def accumulate(
        self,
        metric: int,
        inclusive: float,
        exclusive: float,
        calls: float = 0.0,
        subroutines: float = 0.0,
    ) -> None:
        """Add a sample (importers may see an event several times)."""
        self._inclusive[metric] += inclusive
        self._exclusive[metric] += exclusive
        if metric == 0:
            # calls/subroutines are per-event, counted once
            self.calls += calls
            self.subroutines += subroutines

    def iter_metrics(self) -> Iterator[tuple[int, float, float]]:
        """Yield (metric index, inclusive, exclusive) for every metric."""
        for i, (inc, exc) in enumerate(zip(self._inclusive, self._exclusive)):
            yield i, inc, exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FunctionProfile({self.event.name!r}, "
            f"incl={self._inclusive}, excl={self._exclusive}, "
            f"calls={self.calls})"
        )


class UserEventProfile:
    """Summary statistics for one atomic event on one thread.

    Mirrors ATOMIC_LOCATION_PROFILE: sample count, max, min, mean and
    standard deviation (paper §3.2).  Importers either set the summary
    directly or feed raw samples through :meth:`add_sample`.
    """

    __slots__ = ("event", "count", "max_value", "min_value", "mean_value", "_sumsqr")

    def __init__(self, event) -> None:
        self.event = event
        self.count = 0
        self.max_value = 0.0
        self.min_value = 0.0
        self.mean_value = 0.0
        self._sumsqr = 0.0

    def add_sample(self, value: float) -> None:
        value = float(value)
        if self.count == 0:
            self.min_value = value
            self.max_value = value
        else:
            self.min_value = min(self.min_value, value)
            self.max_value = max(self.max_value, value)
        total = self.mean_value * self.count + value
        self.count += 1
        self.mean_value = total / self.count
        self._sumsqr += value * value

    def set_summary(
        self,
        count: int,
        max_value: float,
        min_value: float,
        mean_value: float,
        sumsqr: float | None = None,
        stddev: float | None = None,
    ) -> None:
        """Install precomputed summary values (the common importer path)."""
        self.count = int(count)
        self.max_value = float(max_value)
        self.min_value = float(min_value)
        self.mean_value = float(mean_value)
        if sumsqr is not None:
            self._sumsqr = float(sumsqr)
        elif stddev is not None:
            # reconstruct sum of squares from the population stddev
            self._sumsqr = (stddev**2 + self.mean_value**2) * self.count
        else:
            self._sumsqr = self.mean_value**2 * self.count

    @property
    def sumsqr(self) -> float:
        return self._sumsqr

    @property
    def stddev(self) -> float:
        """Population standard deviation, TAU's convention for user events."""
        if self.count == 0:
            return 0.0
        variance = self._sumsqr / self.count - self.mean_value**2
        return variance**0.5 if variance > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UserEventProfile({self.event.name!r}, n={self.count}, "
            f"mean={self.mean_value})"
        )
