"""Callpath utilities.

TAU callpath profiles name events ``"main => solve => MPI_Send()"``.
These helpers reconstruct the call graph (networkx digraph), derive a
flat profile from callpath data, and answer parent/child queries — the
machinery behind ParaProf's callgraph displays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import networkx as nx

from .events import CALLPATH_SEPARATOR, IntervalEvent

if TYPE_CHECKING:  # pragma: no cover
    from .datasource import DataSource
    from .thread import Thread


def is_callpath_name(name: str) -> bool:
    return CALLPATH_SEPARATOR in name


def split_callpath(name: str) -> list[str]:
    """``"a => b => c"`` → ``["a", "b", "c"]``."""
    return [part.strip() for part in name.split(CALLPATH_SEPARATOR)]


def join_callpath(components: list[str]) -> str:
    return CALLPATH_SEPARATOR.join(components)


def build_call_graph(datasource: "DataSource") -> nx.DiGraph:
    """Build the trial's call graph from its callpath events.

    Nodes are flat event names; an edge (a, b) means a directly calls b
    somewhere in the trial.  Edge attribute ``paths`` counts how many
    distinct callpath events witness the edge.
    """
    graph = nx.DiGraph()
    for event in datasource.interval_events.values():
        components = split_callpath(event.name)
        for component in components:
            if not graph.has_node(component):
                graph.add_node(component)
        for caller, callee in zip(components, components[1:]):
            if graph.has_edge(caller, callee):
                graph[caller][callee]["paths"] += 1
            else:
                graph.add_edge(caller, callee, paths=1)
    return graph


def callpath_depth(event: IntervalEvent) -> int:
    """Number of frames in the event's path (flat events have depth 1)."""
    return len(split_callpath(event.name))


def children_of(datasource: "DataSource", parent_path: str) -> list[IntervalEvent]:
    """Callpath events exactly one level below ``parent_path``."""
    prefix = parent_path.strip()
    depth = len(split_callpath(prefix)) + 1
    out = []
    for event in datasource.interval_events.values():
        if not event.is_callpath():
            continue
        if callpath_depth(event) != depth:
            continue
        if event.parent_name == prefix:
            out.append(event)
    return out


def flatten_callpaths(datasource: "DataSource") -> "DataSource":
    """Derive a flat profile from a callpath profile.

    For each leaf name, exclusive values and call counts sum over every
    path ending in that leaf; the flat inclusive value is the sum over
    *top-level occurrences only* (paths where the leaf first appears),
    approximated here by paths whose leaf does not appear earlier in the
    path — the standard way to avoid double-counting recursive frames.
    """
    from .datasource import DataSource

    flat = DataSource()
    for metric in datasource.metrics:
        flat.add_metric(metric.name, derived=metric.derived)
    for source_thread in datasource.all_threads():
        thread = flat.add_thread(*source_thread.triple)
        for profile in source_thread.function_profiles.values():
            components = split_callpath(profile.event.name)
            leaf = components[-1]
            event = flat.add_interval_event(leaf, group=profile.event.group)
            target = thread.get_or_create_function_profile(event)
            first_occurrence = leaf not in components[:-1]
            for m, inc, exc in profile.iter_metrics():
                target.set_exclusive(m, target.get_exclusive(m) + exc)
                if first_occurrence:
                    target.set_inclusive(m, target.get_inclusive(m) + inc)
            target.calls += profile.calls
            target.subroutines += profile.subroutines
    flat.generate_statistics()
    return flat


def root_events(datasource: "DataSource") -> list[IntervalEvent]:
    """Events that never appear as a callee (entry points like main)."""
    graph = build_call_graph(datasource)
    roots = [n for n in graph.nodes if graph.in_degree(n) == 0]
    out = []
    for event in datasource.interval_events.values():
        if not event.is_callpath() and event.name in roots:
            out.append(event)
    return out
