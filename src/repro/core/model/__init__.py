"""PerfDMF's common parallel-profile representation (paper §3.1/§4).

Profile data is organised by node, context, thread, metric and event;
for each combination an aggregate measurement is recorded.  The model
has two interchangeable forms: the object graph (:class:`DataSource`)
and the vectorised :class:`ColumnarTrial` for large-scale trials.
"""

from .callpath import (
    build_call_graph, callpath_depth, children_of, flatten_callpaths,
    is_callpath_name, join_callpath, root_events, split_callpath,
)
from .columnar import ColumnarTrial
from .datasource import DataSource
from .derived_expr import (
    DerivedExpressionError, evaluate_metric_expression, metric_names_in,
)
from .events import CALLPATH_SEPARATOR, AtomicEvent, IntervalEvent
from .functionprofile import FunctionProfile, UserEventProfile
from .metric import TIME, Metric
from .thread import MEAN_ID, TOTAL_ID, Context, Node, Thread
from . import group

__all__ = [
    "DataSource", "ColumnarTrial", "Metric", "TIME",
    "IntervalEvent", "AtomicEvent", "CALLPATH_SEPARATOR",
    "FunctionProfile", "UserEventProfile",
    "Node", "Context", "Thread", "MEAN_ID", "TOTAL_ID",
    "group",
    "build_call_graph", "callpath_depth", "children_of", "flatten_callpaths",
    "is_callpath_name", "join_callpath", "root_events", "split_callpath",
    "evaluate_metric_expression", "metric_names_in", "DerivedExpressionError",
]
