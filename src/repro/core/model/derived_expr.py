"""Tiny arithmetic-expression evaluator for derived metrics.

Derived metrics (paper §3.2/§4: ParaProf *"could generate rudimentary
derived data"*, stored back via the PerfDMF API) are defined by
expressions over existing metric names::

    FLOPS       = PAPI_FP_OPS / TIME
    MISS_RATIO  = PAPI_L1_DCM / PAPI_L1_DCA

Grammar: metric names (bare identifiers or double-quoted strings),
numeric literals, ``+ - * /``, unary minus, parentheses.  Division by
zero yields 0.0 (TAU's convention — a routine with zero time has no
meaningful rate).
"""

from __future__ import annotations

from typing import Callable

_OPS = "+-*/()"


class DerivedExpressionError(ValueError):
    """Raised for malformed derived-metric expressions."""


def tokenize_expression(text: str) -> list[str]:
    """Split a derived-metric expression into tokens."""
    tokens: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _OPS:
            tokens.append(ch)
            i += 1
            continue
        if ch == '"':
            end = text.find('"', i + 1)
            if end < 0:
                raise DerivedExpressionError(f"unterminated quoted name in {text!r}")
            tokens.append(text[i : end + 1])
            i = end + 1
            continue
        if ch.isdigit() or ch == ".":
            j = i
            while j < n and (text[j].isdigit() or text[j] in ".eE" or
                             (text[j] in "+-" and text[j - 1] in "eE")):
                j += 1
            tokens.append(text[i:j])
            i = j
            continue
        # bare metric name: letters, digits, underscores, colons
        j = i
        while j < n and (text[j].isalnum() or text[j] in "_:"):
            j += 1
        if j == i:
            raise DerivedExpressionError(f"unexpected character {ch!r} in {text!r}")
        tokens.append(text[i:j])
        i = j
    return tokens


def evaluate_metric_expression(
    expression: str, lookup: Callable[[str], float]
) -> float:
    """Evaluate ``expression``; ``lookup(name)`` resolves metric values."""
    tokens = tokenize_expression(expression)
    if not tokens:
        raise DerivedExpressionError("empty expression")
    parser = _Parser(tokens, lookup)
    value = parser.parse_additive()
    if parser.pos != len(tokens):
        raise DerivedExpressionError(
            f"trailing tokens in expression: {tokens[parser.pos:]}"
        )
    return value


def metric_names_in(expression: str) -> list[str]:
    """List the metric names referenced by an expression (for validation)."""
    names = []
    for token in tokenize_expression(expression):
        if token in _OPS:
            continue
        if token[0].isdigit() or token[0] == ".":
            continue
        if token.startswith('"'):
            names.append(token[1:-1])
        else:
            names.append(token)
    return names


class _Parser:
    def __init__(self, tokens: list[str], lookup: Callable[[str], float]):
        self.tokens = tokens
        self.lookup = lookup
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def parse_additive(self) -> float:
        value = self.parse_multiplicative()
        while self.peek() in ("+", "-"):
            op = self.tokens[self.pos]
            self.pos += 1
            rhs = self.parse_multiplicative()
            value = value + rhs if op == "+" else value - rhs
        return value

    def parse_multiplicative(self) -> float:
        value = self.parse_unary()
        while self.peek() in ("*", "/"):
            op = self.tokens[self.pos]
            self.pos += 1
            rhs = self.parse_unary()
            if op == "*":
                value *= rhs
            else:
                value = value / rhs if rhs != 0 else 0.0
        return value

    def parse_unary(self) -> float:
        if self.peek() == "-":
            self.pos += 1
            return -self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> float:
        token = self.peek()
        if token is None:
            raise DerivedExpressionError("unexpected end of expression")
        if token == "(":
            self.pos += 1
            value = self.parse_additive()
            if self.peek() != ")":
                raise DerivedExpressionError("missing closing parenthesis")
            self.pos += 1
            return value
        self.pos += 1
        if token[0].isdigit() or token[0] == ".":
            try:
                return float(token)
            except ValueError:
                raise DerivedExpressionError(f"bad number {token!r}") from None
        name = token[1:-1] if token.startswith('"') else token
        try:
            return float(self.lookup(name))
        except KeyError:
            raise DerivedExpressionError(f"unknown metric {name!r}") from None
