"""Interval and atomic event definitions.

Trials track two kinds of performance events (paper §3.2):

* **interval events** — named code regions (functions, loops, phases)
  for which cumulative timer/counter data is recorded;
* **atomic events** — TAU "user events": point measurements whose value
  varies per occurrence (message sizes, heap usage), summarised as
  count/min/max/mean/standard deviation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import group as groups_mod

#: Separator used in callpath event names ("main => solve => MPI_Send()").
CALLPATH_SEPARATOR = " => "


@dataclass
class IntervalEvent:
    """A named code region ("function" in classic profiler vocabulary)."""

    name: str
    index: int = -1  #: position within the trial's event list
    group: str = groups_mod.DEFAULT
    db_id: int | None = None

    @property
    def groups(self) -> tuple[str, ...]:
        return groups_mod.split_groups(self.group)

    def is_callpath(self) -> bool:
        return CALLPATH_SEPARATOR in self.name

    @property
    def leaf_name(self) -> str:
        """For a callpath event, the innermost frame; else the name."""
        return self.name.rsplit(CALLPATH_SEPARATOR, 1)[-1].strip()

    @property
    def parent_name(self) -> str | None:
        """For a callpath event, the path minus the leaf; else None."""
        if not self.is_callpath():
            return None
        return self.name.rsplit(CALLPATH_SEPARATOR, 1)[0].strip()

    def path_components(self) -> list[str]:
        return [c.strip() for c in self.name.split(CALLPATH_SEPARATOR)]

    def __str__(self) -> str:
        return self.name


@dataclass
class AtomicEvent:
    """A user-defined point-measurement event."""

    name: str
    index: int = -1
    group: str = groups_mod.DEFAULT
    db_id: int | None = None

    def __str__(self) -> str:
        return self.name
