"""The node / context / thread execution hierarchy.

PerfDMF structures profile data *"in a node, context, and thread
manner"* (paper §4), following TAU's generalised representation: a
machine has nodes (MPI processes or hosts), each node has contexts
(address spaces), each context has threads.  Flat MPI runs map rank →
node with a single context and thread.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from .functionprofile import FunctionProfile, UserEventProfile

if TYPE_CHECKING:  # pragma: no cover
    from .events import AtomicEvent, IntervalEvent

#: Sentinel ids for the aggregate pseudo-threads PerfDMF keeps alongside
#: real threads (INTERVAL_MEAN_SUMMARY / INTERVAL_TOTAL_SUMMARY rows).
MEAN_ID = -1
TOTAL_ID = -2


class Thread:
    """One thread of execution and its event profiles."""

    __slots__ = (
        "node_id", "context_id", "thread_id", "num_metrics",
        "function_profiles", "user_event_profiles",
    )

    def __init__(self, node_id: int, context_id: int, thread_id: int, num_metrics: int = 1):
        self.node_id = node_id
        self.context_id = context_id
        self.thread_id = thread_id
        self.num_metrics = num_metrics
        self.function_profiles: dict[int, FunctionProfile] = {}
        self.user_event_profiles: dict[int, UserEventProfile] = {}

    @property
    def triple(self) -> tuple[int, int, int]:
        return (self.node_id, self.context_id, self.thread_id)

    def is_aggregate(self) -> bool:
        return self.node_id in (MEAN_ID, TOTAL_ID)

    # -- interval profiles ----------------------------------------------------

    def get_function_profile(self, event: "IntervalEvent") -> Optional[FunctionProfile]:
        return self.function_profiles.get(event.index)

    def get_or_create_function_profile(self, event: "IntervalEvent") -> FunctionProfile:
        profile = self.function_profiles.get(event.index)
        if profile is None:
            profile = FunctionProfile(event, self.num_metrics)
            self.function_profiles[event.index] = profile
        return profile

    def iter_function_profiles(self) -> Iterator[FunctionProfile]:
        return iter(self.function_profiles.values())

    def add_metric_slot(self, count: int = 1) -> None:
        self.num_metrics += count
        for profile in self.function_profiles.values():
            profile.add_metric_slot(count)

    # -- atomic profiles --------------------------------------------------------

    def get_user_event_profile(self, event: "AtomicEvent") -> Optional[UserEventProfile]:
        return self.user_event_profiles.get(event.index)

    def get_or_create_user_event_profile(self, event: "AtomicEvent") -> UserEventProfile:
        profile = self.user_event_profiles.get(event.index)
        if profile is None:
            profile = UserEventProfile(event)
            self.user_event_profiles[event.index] = profile
        return profile

    # -- per-thread statistics ---------------------------------------------------

    def max_inclusive(self, metric: int = 0) -> float:
        """The largest inclusive value on this thread — by TAU convention
        the duration of the whole run, used as the 100% reference."""
        best = 0.0
        for profile in self.function_profiles.values():
            value = profile.get_inclusive(metric)
            if value > best:
                best = value
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Thread(n={self.node_id}, c={self.context_id}, t={self.thread_id})"


class Context:
    """An address space within a node."""

    __slots__ = ("node_id", "context_id", "threads")

    def __init__(self, node_id: int, context_id: int):
        self.node_id = node_id
        self.context_id = context_id
        self.threads: dict[int, Thread] = {}

    def get_thread(self, thread_id: int) -> Optional[Thread]:
        return self.threads.get(thread_id)


class Node:
    """A machine node (MPI process or host)."""

    __slots__ = ("node_id", "contexts")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.contexts: dict[int, Context] = {}

    def get_context(self, context_id: int) -> Optional[Context]:
        return self.contexts.get(context_id)
