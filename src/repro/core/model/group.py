"""Event groups.

Profiling tools tag interval events with a group: computation,
communication, I/O, etc. (paper §3.2: *"The INTERVAL_EVENT table
contains the name of the event, an event group (i.e. computation,
communication, etc.)"*).  Groups drive ParaProf's contextual
highlighting and the toolkit's per-group breakdowns.
"""

from __future__ import annotations

#: TAU's default group for uninstrumented/unclassified events.
DEFAULT = "TAU_DEFAULT"
#: MPI and other message-passing routines.
COMMUNICATION = "MPI"
#: Numerical kernels.
COMPUTATION = "COMPUTE"
#: File and network I/O.
IO = "IO"
#: Memory management.
MEMORY = "MEMORY"
#: TAU callpath-phase events.
CALLPATH = "TAU_CALLPATH"

KNOWN_GROUPS = (DEFAULT, COMMUNICATION, COMPUTATION, IO, MEMORY, CALLPATH)


def split_groups(spec: str | None) -> tuple[str, ...]:
    """Split a ``'GROUP_A|GROUP_B'`` specification into its group names."""
    if not spec:
        return (DEFAULT,)
    parts = tuple(p.strip() for p in spec.split("|") if p.strip())
    return parts or (DEFAULT,)


def join_groups(groups: tuple[str, ...] | list[str]) -> str:
    """Inverse of :func:`split_groups`."""
    return "|".join(groups)


def classify_event_name(name: str) -> str:
    """Guess a group from an event name (used by importers whose source
    format carries no group information, e.g. gprof)."""
    bare = name.strip()
    if bare.startswith("MPI_") or bare.startswith("PMPI_"):
        return COMMUNICATION
    lowered = bare.lower()
    if any(tag in lowered for tag in ("read", "write", "open", "close", "flush", "io_")):
        return IO
    if any(tag in lowered for tag in ("alloc", "free", "memcpy", "memset")):
        return MEMORY
    if " => " in bare:
        return CALLPATH
    return DEFAULT
