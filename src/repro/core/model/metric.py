"""Metric objects.

A *metric* names one measured (or derived) quantity: wall-clock time,
``PAPI_FP_OPS``, cache misses, or a derived quantity such as FLOPs/sec.
The paper (§3.2): *"Because there can be more than one metric per trial,
the schema includes a METRIC table ... derived metrics can be saved with
the profile data in the database using the PerfDMF API."*
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Canonical name of the wall-clock metric every profiling tool provides.
TIME = "TIME"


@dataclass
class Metric:
    """One measurement dimension within a trial."""

    name: str
    index: int = -1  #: position within the trial's metric list
    derived: bool = False  #: True when produced by analysis, not measurement
    db_id: int | None = None  #: database id once stored

    def is_time(self) -> bool:
        """Heuristically recognise time metrics (TAU conventions)."""
        upper = self.name.upper()
        return "TIME" in upper and "PAPI" not in upper

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Metric):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)
