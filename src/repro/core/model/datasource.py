"""The in-memory trial container shared by every PerfDMF component.

A :class:`DataSource` holds one trial's complete parallel profile: the
metric list, the interval/atomic event tables, and the node → context →
thread hierarchy with per-thread event profiles.  Importers populate it,
the DB session persists/loads it, the analysis toolkit consumes it.

It also computes the two aggregate views the schema stores explicitly
(paper §3.2): INTERVAL_TOTAL_SUMMARY and INTERVAL_MEAN_SUMMARY —
totals and means over all (node, context, thread) combinations.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .events import AtomicEvent, IntervalEvent
from .functionprofile import FunctionProfile
from .group import DEFAULT
from .metric import Metric
from .thread import MEAN_ID, TOTAL_ID, Context, Node, Thread


class DataSource:
    """One trial's profile data in PerfDMF's common representation."""

    def __init__(self) -> None:
        self.metrics: list[Metric] = []
        self.interval_events: dict[str, IntervalEvent] = {}
        self.atomic_events: dict[str, AtomicEvent] = {}
        self.nodes: dict[int, Node] = {}
        self._threads: list[Thread] = []
        self.mean_data: Optional[Thread] = None
        self.total_data: Optional[Thread] = None
        #: free-form trial metadata harvested by importers
        self.metadata: dict[str, str] = {}

    # -- metrics ------------------------------------------------------------

    def add_metric(self, name: str, derived: bool = False) -> Metric:
        """Register (or fetch) a metric by name."""
        for metric in self.metrics:
            if metric.name == name:
                return metric
        metric = Metric(name=name, index=len(self.metrics), derived=derived)
        self.metrics.append(metric)
        if metric.index > 0:
            for thread in self.all_threads(include_aggregates=True):
                if thread.num_metrics < len(self.metrics):
                    thread.add_metric_slot(len(self.metrics) - thread.num_metrics)
        return metric

    def get_metric(self, name: str) -> Optional[Metric]:
        for metric in self.metrics:
            if metric.name == name:
                return metric
        return None

    @property
    def num_metrics(self) -> int:
        return len(self.metrics)

    def time_metric(self) -> Optional[Metric]:
        """The wall-clock metric, if one exists."""
        for metric in self.metrics:
            if metric.is_time():
                return metric
        return self.metrics[0] if self.metrics else None

    # -- events ----------------------------------------------------------------

    def add_interval_event(self, name: str, group: str = DEFAULT) -> IntervalEvent:
        event = self.interval_events.get(name)
        if event is None:
            event = IntervalEvent(
                name=name, index=len(self.interval_events), group=group
            )
            self.interval_events[name] = event
        return event

    def get_interval_event(self, name: str) -> Optional[IntervalEvent]:
        return self.interval_events.get(name)

    def add_atomic_event(self, name: str, group: str = DEFAULT) -> AtomicEvent:
        event = self.atomic_events.get(name)
        if event is None:
            event = AtomicEvent(name=name, index=len(self.atomic_events), group=group)
            self.atomic_events[name] = event
        return event

    def get_atomic_event(self, name: str) -> Optional[AtomicEvent]:
        return self.atomic_events.get(name)

    @property
    def num_interval_events(self) -> int:
        return len(self.interval_events)

    def events_in_group(self, group: str) -> list[IntervalEvent]:
        return [e for e in self.interval_events.values() if group in e.groups]

    # -- thread hierarchy ----------------------------------------------------------

    def add_thread(self, node_id: int, context_id: int, thread_id: int) -> Thread:
        """Fetch-or-create the thread at (node, context, thread)."""
        node = self.nodes.get(node_id)
        if node is None:
            node = Node(node_id)
            self.nodes[node_id] = node
        context = node.contexts.get(context_id)
        if context is None:
            context = Context(node_id, context_id)
            node.contexts[context_id] = context
        thread = context.threads.get(thread_id)
        if thread is None:
            thread = Thread(node_id, context_id, thread_id, max(1, self.num_metrics))
            context.threads[thread_id] = thread
            self._threads.append(thread)
        return thread

    def get_thread(self, node_id: int, context_id: int, thread_id: int) -> Optional[Thread]:
        node = self.nodes.get(node_id)
        if node is None:
            return None
        context = node.contexts.get(context_id)
        if context is None:
            return None
        return context.threads.get(thread_id)

    def all_threads(self, include_aggregates: bool = False) -> Iterator[Thread]:
        yield from self._threads
        if include_aggregates:
            if self.mean_data is not None:
                yield self.mean_data
            if self.total_data is not None:
                yield self.total_data

    @property
    def num_threads(self) -> int:
        return len(self._threads)

    def thread_triples(self) -> list[tuple[int, int, int]]:
        return [t.triple for t in self._threads]

    # topology helpers ---------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def contexts_per_node(self) -> int:
        return max((len(n.contexts) for n in self.nodes.values()), default=0)

    @property
    def max_threads_per_context(self) -> int:
        best = 0
        for node in self.nodes.values():
            for context in node.contexts.values():
                best = max(best, len(context.threads))
        return best

    # -- aggregate statistics -----------------------------------------------------

    def generate_statistics(self) -> None:
        """(Re)compute the mean/total pseudo-threads over all real threads.

        Totals sum each field over every thread that recorded the event;
        means divide by the *total* thread count (TAU convention — a
        thread that never called the event contributes zero).
        """
        n_metrics = max(1, self.num_metrics)
        n_threads = self.num_threads
        total = Thread(TOTAL_ID, 0, 0, n_metrics)
        mean = Thread(MEAN_ID, 0, 0, n_metrics)
        if n_threads == 0:
            self.total_data, self.mean_data = total, mean
            return
        for thread in self._threads:
            for event_index, profile in thread.function_profiles.items():
                tp = total.function_profiles.get(event_index)
                if tp is None:
                    tp = FunctionProfile(profile.event, n_metrics)
                    total.function_profiles[event_index] = tp
                for m, inc, exc in profile.iter_metrics():
                    tp.set_inclusive(m, tp.get_inclusive(m) + inc)
                    tp.set_exclusive(m, tp.get_exclusive(m) + exc)
                tp.calls += profile.calls
                tp.subroutines += profile.subroutines
        for event_index, tp in total.function_profiles.items():
            mp = FunctionProfile(tp.event, n_metrics)
            for m, inc, exc in tp.iter_metrics():
                mp.set_inclusive(m, inc / n_threads)
                mp.set_exclusive(m, exc / n_threads)
            mp.calls = tp.calls / n_threads
            mp.subroutines = tp.subroutines / n_threads
            mean.function_profiles[event_index] = mp
        self.total_data, self.mean_data = total, mean

    # -- derived metrics -------------------------------------------------------------

    def create_derived_metric(self, name: str, expression: str) -> Metric:
        """Compute a new metric from existing ones, e.g. ``"FLOPS" =
        "PAPI_FP_OPS / TIME"``.

        The expression may reference metric names (quote names containing
        spaces with double quotes), numeric literals and ``+ - * / ()``.
        The derived values are computed per function profile for both the
        inclusive and exclusive columns.
        """
        from .derived_expr import evaluate_metric_expression

        if self.get_metric(name) is not None:
            raise ValueError(f"metric {name!r} already exists")
        metric = self.add_metric(name, derived=True)
        index_by_name = {m.name: m.index for m in self.metrics}
        for thread in self.all_threads(include_aggregates=True):
            for profile in thread.function_profiles.values():
                inclusive = evaluate_metric_expression(
                    expression,
                    lambda mname, p=profile: p.get_inclusive(index_by_name[mname]),
                )
                exclusive = evaluate_metric_expression(
                    expression,
                    lambda mname, p=profile: p.get_exclusive(index_by_name[mname]),
                )
                profile.set_inclusive(metric.index, inclusive)
                profile.set_exclusive(metric.index, exclusive)
        return metric

    # -- consistency checks ------------------------------------------------------------

    def validate(self) -> list[str]:
        """Sanity-check invariants; returns a list of problem descriptions."""
        problems: list[str] = []
        for thread in self._threads:
            if thread.num_metrics < self.num_metrics:
                problems.append(
                    f"thread {thread.triple} has {thread.num_metrics} metric "
                    f"slots, trial has {self.num_metrics} metrics"
                )
            for profile in thread.function_profiles.values():
                if profile.calls < 0:
                    problems.append(
                        f"negative call count for {profile.event.name} on "
                        f"{thread.triple}"
                    )
                for m, inc, exc in profile.iter_metrics():
                    if exc - inc > 1e-6 * max(1.0, abs(inc)):
                        problems.append(
                            f"exclusive > inclusive for {profile.event.name} "
                            f"metric {m} on {thread.triple}"
                        )
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataSource(threads={self.num_threads}, "
            f"events={self.num_interval_events}, metrics={self.num_metrics})"
        )
