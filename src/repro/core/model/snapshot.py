"""Snapshot (time-series) profiles.

TAU can capture *profile snapshots* — the cumulative profile state at
several points during a run — turning a single trial into a time series.
PerfDMF gained snapshot support in the TAU distribution this paper
describes; we model a snapshot series as an ordered list of
(timestamp, DataSource) pairs with utilities to difference consecutive
snapshots into *intervals* (what happened between two captures) and to
extract per-event time series for drift analysis.

Invariant: snapshots are cumulative, so every per-event value is
monotonically non-decreasing across the series (checked by
:meth:`SnapshotSeries.validate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from .datasource import DataSource


@dataclass
class Snapshot:
    """One capture: the cumulative profile at ``timestamp`` (seconds)."""

    timestamp: float
    source: DataSource
    label: str = ""


class SnapshotSeries:
    """An ordered collection of snapshots from one run."""

    def __init__(self) -> None:
        self.snapshots: list[Snapshot] = []

    def add(self, timestamp: float, source: DataSource, label: str = "") -> Snapshot:
        if self.snapshots and timestamp <= self.snapshots[-1].timestamp:
            raise ValueError(
                f"snapshot timestamps must increase: {timestamp} after "
                f"{self.snapshots[-1].timestamp}"
            )
        snapshot = Snapshot(timestamp, source, label or f"t={timestamp:g}s")
        self.snapshots.append(snapshot)
        return snapshot

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[Snapshot]:
        return iter(self.snapshots)

    @property
    def final(self) -> DataSource:
        """The last (complete-run) profile."""
        if not self.snapshots:
            raise ValueError("empty snapshot series")
        return self.snapshots[-1].source

    # -- interval extraction -------------------------------------------------

    def intervals(self) -> list[tuple[str, DataSource]]:
        """Difference consecutive snapshots into per-interval profiles.

        Interval k holds the activity between snapshot k and k+1; uses
        the CUBE difference algebra, so the result is again a normal
        DataSource usable with every analysis routine.
        """
        from ..toolkit.cube_algebra import diff

        out = []
        for before, after in zip(self.snapshots, self.snapshots[1:]):
            label = f"{before.label} .. {after.label}"
            out.append((label, diff(after.source, before.source)))
        return out

    # -- time series ------------------------------------------------------------

    def event_series(
        self,
        event_name: str,
        metric: int = 0,
        per_interval: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(timestamps, mean-exclusive values) for one event.

        ``per_interval=True`` returns the increments between snapshots
        instead of the cumulative values — the "activity rate" view.
        """
        from ..toolkit.stats import event_statistics

        timestamps = np.array([s.timestamp for s in self.snapshots])
        values = []
        for snapshot in self.snapshots:
            if event_name in snapshot.source.interval_events:
                values.append(
                    event_statistics(snapshot.source, event_name, metric).mean
                )
            else:
                values.append(0.0)
        series = np.array(values)
        if per_interval:
            return timestamps[1:], np.diff(series)
        return timestamps, series

    # -- validation ----------------------------------------------------------------

    def validate(self) -> list[str]:
        """Check the cumulative-monotonicity invariant."""
        problems: list[str] = []
        for before, after in zip(self.snapshots, self.snapshots[1:]):
            for name, event in before.source.interval_events.items():
                after_event = after.source.get_interval_event(name)
                if after_event is None:
                    problems.append(
                        f"event {name!r} vanished between {before.label} "
                        f"and {after.label}"
                    )
                    continue
                for thread in before.source.all_threads():
                    after_thread = after.source.get_thread(*thread.triple)
                    if after_thread is None:
                        continue
                    profile = thread.function_profiles.get(event.index)
                    after_profile = after_thread.function_profiles.get(
                        after_event.index
                    )
                    if profile is None:
                        continue
                    if after_profile is None:
                        problems.append(
                            f"profile for {name!r} on {thread.triple} "
                            f"vanished at {after.label}"
                        )
                        continue
                    for m, inc, _exc in profile.iter_metrics():
                        if after_profile.get_inclusive(m) < inc - 1e-9:
                            problems.append(
                                f"{name!r} metric {m} decreased on "
                                f"{thread.triple} at {after.label}"
                            )
        return problems


def drift_report(
    series: SnapshotSeries, metric: int = 0, threshold: float = 1.5
) -> list[dict]:
    """Detect events whose activity rate drifts over the run.

    Compares each event's per-interval increment in the last interval to
    its first-interval increment; a ratio above ``threshold`` means the
    event is getting more expensive as the run progresses (e.g. a
    growing workload, fragmentation, load-balance decay).
    """
    if len(series) < 3:
        return []
    out = []
    for name in series.final.interval_events:
        _ts, increments = series.event_series(name, metric, per_interval=True)
        if len(increments) < 2:
            continue
        first, last = increments[0], increments[-1]
        if first <= 0:
            continue
        ratio = last / first
        if ratio >= threshold:
            out.append(
                {
                    "event": name,
                    "first_interval": float(first),
                    "last_interval": float(last),
                    "ratio": float(ratio),
                }
            )
    out.sort(key=lambda r: r["ratio"], reverse=True)
    return out
