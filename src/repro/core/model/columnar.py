"""Columnar (numpy) trial representation for large-scale profiles.

The object model (:class:`~repro.core.model.datasource.DataSource`) is
convenient but allocates one Python object per (thread, event) pair; at
the paper's headline scale — 101 events × 16K threads = 1.6M data
points (§5.3) — that costs hundreds of MB and seconds of GC time.
:class:`ColumnarTrial` stores the same data as dense numpy arrays of
shape ``(num_threads, num_events)`` per field and metric, following the
hpc-python guidance to keep bulk numeric data vectorised.

Both representations convert losslessly into each other, and the DB
session layer ingests either; the E1/E2 benchmarks use this one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from .datasource import DataSource
from .group import DEFAULT


@dataclass
class ColumnarTrial:
    """Dense per-trial profile storage.

    Arrays indexed ``[thread, event]``; the per-metric arrays live in
    ``inclusive[m]`` / ``exclusive[m]``.  ``calls``/``subroutines`` are
    per-event (shared by all metrics), matching the schema.
    """

    event_names: list[str]
    event_groups: list[str]
    metric_names: list[str]
    thread_triples: np.ndarray  # (n_threads, 3) int32: node, context, thread
    inclusive: list[np.ndarray]  # per metric, (n_threads, n_events) float64
    exclusive: list[np.ndarray]
    calls: np.ndarray  # (n_threads, n_events) float64
    subroutines: np.ndarray
    metadata: dict[str, str] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    @classmethod
    def allocate(
        cls,
        event_names: list[str],
        metric_names: list[str],
        thread_triples: np.ndarray | list[tuple[int, int, int]],
        event_groups: Optional[list[str]] = None,
    ) -> "ColumnarTrial":
        triples = np.asarray(thread_triples, dtype=np.int32).reshape(-1, 3)
        n_threads = triples.shape[0]
        n_events = len(event_names)
        shape = (n_threads, n_events)
        return cls(
            event_names=list(event_names),
            event_groups=list(event_groups) if event_groups else [DEFAULT] * n_events,
            metric_names=list(metric_names),
            thread_triples=triples,
            inclusive=[np.zeros(shape) for _ in metric_names],
            exclusive=[np.zeros(shape) for _ in metric_names],
            calls=np.zeros(shape),
            subroutines=np.zeros(shape),
        )

    @classmethod
    def flat_topology(cls, n_ranks: int) -> np.ndarray:
        """Thread triples for a flat MPI run: rank → node, c=0, t=0."""
        triples = np.zeros((n_ranks, 3), dtype=np.int32)
        triples[:, 0] = np.arange(n_ranks, dtype=np.int32)
        return triples

    # -- shape info --------------------------------------------------------------

    @property
    def num_threads(self) -> int:
        return int(self.thread_triples.shape[0])

    @property
    def num_events(self) -> int:
        return len(self.event_names)

    @property
    def num_metrics(self) -> int:
        return len(self.metric_names)

    @property
    def num_data_points(self) -> int:
        """The paper's "data points" figure: threads × events × metrics."""
        return self.num_threads * self.num_events * self.num_metrics

    # -- aggregate statistics ------------------------------------------------------

    def total_summary(self, metric: int) -> dict[str, np.ndarray]:
        """Per-event totals over all threads (INTERVAL_TOTAL_SUMMARY)."""
        return {
            "inclusive": self.inclusive[metric].sum(axis=0),
            "exclusive": self.exclusive[metric].sum(axis=0),
            "calls": self.calls.sum(axis=0),
            "subroutines": self.subroutines.sum(axis=0),
        }

    def mean_summary(self, metric: int) -> dict[str, np.ndarray]:
        """Per-event means over all threads (INTERVAL_MEAN_SUMMARY)."""
        n = max(1, self.num_threads)
        totals = self.total_summary(metric)
        return {k: v / n for k, v in totals.items()}

    def inclusive_percent(self, metric: int) -> np.ndarray:
        """Inclusive percentage relative to each thread's run duration."""
        reference = self.inclusive[metric].max(axis=1, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            pct = np.where(
                reference > 0, 100.0 * self.inclusive[metric] / reference, 0.0
            )
        return pct

    def exclusive_percent(self, metric: int) -> np.ndarray:
        reference = self.inclusive[metric].max(axis=1, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            pct = np.where(
                reference > 0, 100.0 * self.exclusive[metric] / reference, 0.0
            )
        return pct

    def inclusive_per_call(self, metric: int) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.calls > 0, self.inclusive[metric] / self.calls, 0.0)

    def imbalance(self, metric: int = 0) -> np.ndarray:
        """Per-event load-imbalance ratio max/mean of exclusive values."""
        exc = self.exclusive[metric]
        means = exc.mean(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(means > 0, exc.max(axis=0) / means, 1.0)

    # -- bulk row iteration (DB ingest path) -------------------------------------------

    def iter_location_rows(self, metric: int) -> Iterator[tuple]:
        """Yield INTERVAL_LOCATION_PROFILE rows for one metric.

        Row layout: (event_index, node, context, thread, inclusive,
        inclusive_pct, exclusive, exclusive_pct, inclusive_per_call,
        calls, subroutines).  Percentages and per-call values are
        vectorised up front; the generator then walks the arrays.
        """
        inc = self.inclusive[metric]
        exc = self.exclusive[metric]
        inc_pct = self.inclusive_percent(metric)
        exc_pct = self.exclusive_percent(metric)
        per_call = self.inclusive_per_call(metric)
        triples = self.thread_triples
        calls = self.calls
        subrs = self.subroutines
        n_threads, n_events = inc.shape
        for t in range(n_threads):
            node, ctx, thr = (int(x) for x in triples[t])
            row_inc = inc[t]
            row_exc = exc[t]
            row_ip = inc_pct[t]
            row_ep = exc_pct[t]
            row_pc = per_call[t]
            row_calls = calls[t]
            row_subrs = subrs[t]
            for e in range(n_events):
                yield (
                    e, node, ctx, thr,
                    float(row_inc[e]), float(row_ip[e]),
                    float(row_exc[e]), float(row_ep[e]),
                    float(row_pc[e]), float(row_calls[e]), float(row_subrs[e]),
                )

    def location_rows(self, metric: int) -> list[tuple]:
        """Materialise :meth:`iter_location_rows` for one metric in bulk.

        Same row layout, but each column is flattened with numpy and the
        tuples assembled by one ``zip`` — the per-cell ``float()`` calls
        of the generator dominate ingest time at 4K+ ranks, and this
        path avoids them entirely.  Used by the bulk-load ingest.
        """
        inc = self.inclusive[metric]
        n_threads, n_events = inc.shape
        triples = self.thread_triples
        repeat = np.repeat
        return list(zip(
            np.tile(np.arange(n_events), n_threads).tolist(),
            repeat(triples[:, 0], n_events).tolist(),
            repeat(triples[:, 1], n_events).tolist(),
            repeat(triples[:, 2], n_events).tolist(),
            inc.ravel().tolist(),
            self.inclusive_percent(metric).ravel().tolist(),
            self.exclusive[metric].ravel().tolist(),
            self.exclusive_percent(metric).ravel().tolist(),
            self.inclusive_per_call(metric).ravel().tolist(),
            self.calls.ravel().tolist(),
            self.subroutines.ravel().tolist(),
        ))

    # -- conversions ---------------------------------------------------------------------

    @classmethod
    def from_datasource(cls, source: DataSource) -> "ColumnarTrial":
        events = list(source.interval_events.values())
        event_names = [e.name for e in events]
        event_groups = [e.group for e in events]
        metric_names = [m.name for m in source.metrics] or ["TIME"]
        triples = np.asarray(source.thread_triples(), dtype=np.int32).reshape(-1, 3)
        trial = cls.allocate(event_names, metric_names, triples, event_groups)
        index_of_event = {e.index: i for i, e in enumerate(events)}
        for t, thread in enumerate(source.all_threads()):
            for event_index, profile in thread.function_profiles.items():
                e = index_of_event[event_index]
                for m, inc, exc in profile.iter_metrics():
                    if m >= trial.num_metrics:
                        continue
                    trial.inclusive[m][t, e] = inc
                    trial.exclusive[m][t, e] = exc
                trial.calls[t, e] = profile.calls
                trial.subroutines[t, e] = profile.subroutines
        trial.metadata = dict(source.metadata)
        return trial

    def to_datasource(self) -> DataSource:
        source = DataSource()
        for name in self.metric_names:
            source.add_metric(name)
        events = [
            source.add_interval_event(name, group)
            for name, group in zip(self.event_names, self.event_groups)
        ]
        for t in range(self.num_threads):
            node, ctx, thr = (int(x) for x in self.thread_triples[t])
            thread = source.add_thread(node, ctx, thr)
            for e, event in enumerate(events):
                if self.calls[t, e] == 0 and all(
                    self.inclusive[m][t, e] == 0 for m in range(self.num_metrics)
                ):
                    continue  # sparse: event never ran on this thread
                profile = thread.get_or_create_function_profile(event)
                for m in range(self.num_metrics):
                    profile.set_inclusive(m, float(self.inclusive[m][t, e]))
                    profile.set_exclusive(m, float(self.exclusive[m][t, e]))
                profile.calls = float(self.calls[t, e])
                profile.subroutines = float(self.subroutines[t, e])
        source.metadata = dict(self.metadata)
        source.generate_statistics()
        return source
