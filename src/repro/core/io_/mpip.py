"""Importer for mpiP text reports.

One mpiP report covers the whole run.  The importer reconstructs:

* per-task application time (``@--- MPI Time``) as an ``Application``
  event whose inclusive time is AppTime;
* per-callsite, per-rank MPI times (``@--- Callsite Time statistics``)
  as ``MPI_<Name>() [site <id>]`` events in the MPI group (count × mean
  gives total time; ``*`` aggregate rows are skipped — PerfDMF computes
  its own summaries).
"""

from __future__ import annotations

import os
import re

from ...core.model import DataSource, group as groups
from .base import ProfileParseError, discover_files

_TASK_RE = re.compile(
    r"^\s*(?P<task>\d+|\*)\s+(?P<app>[\d.eE+-]+)\s+(?P<mpi>[\d.eE+-]+)\s+"
    r"(?P<pct>[\d.eE+-]+)\s*$"
)
_SITE_STAT_RE = re.compile(
    r"^(?P<name>\S+)\s+(?P<site>\d+)\s+(?P<rank>\d+|\*)\s+(?P<count>\d+)\s+"
    r"(?P<max>[\d.eE+-]+)\s+(?P<mean>[\d.eE+-]+)\s+(?P<min>[\d.eE+-]+)\s+"
    r"(?P<apppct>[\d.eE+-]+)\s+(?P<mpipct>[\d.eE+-]+)\s*$"
)
_USEC = 1.0e6
_MS_TO_USEC = 1.0e3


def parse_mpip(target: str | os.PathLike) -> DataSource:
    """Parse an mpiP report file (or a directory containing one)."""
    files = discover_files(target, suffix=".mpiP") or discover_files(target)
    if not files:
        raise FileNotFoundError(f"no mpiP report found at {target}")
    path = files[0]
    source = DataSource()
    source.add_metric("TIME")

    section = None
    app_event = source.add_interval_event("Application", groups.DEFAULT)
    saw_header = False
    with open(path, encoding="utf-8", errors="replace") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.rstrip("\n")
            if line.startswith("@ mpiP"):
                saw_header = True
                continue
            if line.startswith("@---"):
                if "MPI Time" in line:
                    section = "mpitime"
                elif "Callsite Time statistics" in line:
                    section = "sitestats"
                elif "Callsites" in line:
                    section = "callsites"
                else:
                    section = None
                continue
            if not line.strip() or line.startswith("@"):
                continue
            if section == "mpitime":
                match = _TASK_RE.match(line)
                if not match or match.group("task") == "*":
                    continue
                task = int(match.group("task"))
                thread = source.add_thread(task, 0, 0)
                app_usec = float(match.group("app")) * _USEC
                profile = thread.get_or_create_function_profile(app_event)
                profile.set_inclusive(0, app_usec)
                mpi_usec = float(match.group("mpi")) * _USEC
                profile.set_exclusive(0, max(app_usec - mpi_usec, 0.0))
                profile.calls = 1
            elif section == "sitestats":
                match = _SITE_STAT_RE.match(line)
                if not match or match.group("rank") == "*":
                    continue
                if match.group("name") == "Name":
                    continue
                rank = int(match.group("rank"))
                thread = source.add_thread(rank, 0, 0)
                event_name = (
                    f"MPI_{match.group('name')}() [site {int(match.group('site'))}]"
                )
                event = source.add_interval_event(event_name, groups.COMMUNICATION)
                profile = thread.get_or_create_function_profile(event)
                count = float(match.group("count"))
                total_usec = count * float(match.group("mean")) * _MS_TO_USEC
                profile.set_inclusive(0, total_usec)
                profile.set_exclusive(0, total_usec)
                profile.calls = count
                app_profile = thread.get_or_create_function_profile(app_event)
                app_profile.subroutines += count
    if not saw_header:
        raise ProfileParseError("missing '@ mpiP' header", path)
    if source.num_threads == 0:
        raise ProfileParseError("no task data found in mpiP report", path)
    source.generate_statistics()
    return source
