"""Profile input/output: importers for seven formats + common XML.

Paper §3.1: *"Currently supported profile formats include gprof, TAU
profiles, dynaprof, mpiP, HPMtoolkit (IBM), and Perfsuite (psrun).
(Support for SvPablo is being added.)"* — all seven are implemented,
plus import/export of PerfDMF's common XML representation.
"""

from .cube import cube_string, export_cube, parse_cube
from .snapshot_xml import export_snapshots, parse_snapshots
from .base import ProfileParseError, discover_files, natural_sort_key
from .bulk import IngestReport, ingest_profiles, parse_columnar, parse_profiles
from .dynaprof import parse_dynaprof
from .gprof import parse_gprof
from .hpm import parse_hpm
from .mpip import parse_mpip
from .psrun import parse_psrun
from .registry import FORMAT_NAMES, detect_format, get_parser, load_profile
from .svpablo import parse_svpablo
from .tau import parse_tau_profiles
from .xml_export import export_xml, xml_string
from .xml_import import parse_xml, parse_xml_string

__all__ = [
    "ProfileParseError", "discover_files", "natural_sort_key",
    "parse_tau_profiles", "parse_gprof", "parse_mpip", "parse_dynaprof",
    "parse_hpm", "parse_psrun", "parse_svpablo",
    "export_xml", "xml_string", "parse_xml", "parse_xml_string",
    "export_cube", "cube_string", "parse_cube",
    "export_snapshots", "parse_snapshots",
    "load_profile", "detect_format", "get_parser", "FORMAT_NAMES",
    "IngestReport", "ingest_profiles", "parse_columnar", "parse_profiles",
]
