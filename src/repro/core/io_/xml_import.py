"""Import of PerfDMF common XML (inverse of :mod:`.xml_export`)."""

from __future__ import annotations

import os
import xml.etree.ElementTree as ET

from ...core.model import DataSource
from .base import ProfileParseError


def parse_xml(target: str | os.PathLike) -> DataSource:
    """Parse a PerfDMF common-XML profile document."""
    try:
        tree = ET.parse(target)
    except ET.ParseError as exc:
        raise ProfileParseError(f"malformed XML: {exc}", target) from None
    root = tree.getroot()
    if root.tag != "perfdmf_profile":
        raise ProfileParseError(
            f"expected <perfdmf_profile> root, found <{root.tag}>", target
        )
    return from_element(root)


def parse_xml_string(text: str) -> DataSource:
    root = ET.fromstring(text)
    if root.tag != "perfdmf_profile":
        raise ProfileParseError(f"expected <perfdmf_profile> root, found <{root.tag}>")
    return from_element(root)


def from_element(root: ET.Element) -> DataSource:
    source = DataSource()

    metadata = root.find("metadata")
    if metadata is not None:
        for attribute in metadata.findall("attribute"):
            name = attribute.get("name")
            if name is not None:
                source.metadata[name] = attribute.get("value", "")

    metric_names: dict[int, str] = {}
    metrics_el = root.find("metrics")
    if metrics_el is not None:
        for metric_el in metrics_el.findall("metric"):
            index = int(metric_el.get("id", "0"))
            name = metric_el.get("name", f"metric_{index}")
            derived = metric_el.get("derived", "false") == "true"
            metric_names[index] = name
            source.add_metric(name, derived=derived)

    interval_by_id = {}
    interval_el = root.find("interval_events")
    if interval_el is not None:
        for event_el in interval_el.findall("event"):
            event = source.add_interval_event(
                event_el.get("name", "?"), event_el.get("group", "TAU_DEFAULT")
            )
            interval_by_id[int(event_el.get("id", event.index))] = event

    atomic_by_id = {}
    atomic_el = root.find("atomic_events")
    if atomic_el is not None:
        for event_el in atomic_el.findall("event"):
            event = source.add_atomic_event(
                event_el.get("name", "?"), event_el.get("group", "TAU_DEFAULT")
            )
            atomic_by_id[int(event_el.get("id", event.index))] = event

    threads_el = root.find("threads")
    if threads_el is not None:
        for thread_el in threads_el.findall("thread"):
            thread = source.add_thread(
                int(thread_el.get("node", "0")),
                int(thread_el.get("context", "0")),
                int(thread_el.get("thread", "0")),
            )
            for ip in thread_el.findall("interval_profile"):
                event = interval_by_id[int(ip.get("event", "0"))]
                profile = thread.get_or_create_function_profile(event)
                profile.calls = float(ip.get("calls", "0"))
                profile.subroutines = float(ip.get("subroutines", "0"))
                for value_el in ip.findall("value"):
                    m = int(value_el.get("metric", "0"))
                    profile.set_inclusive(m, float(value_el.get("inclusive", "0")))
                    profile.set_exclusive(m, float(value_el.get("exclusive", "0")))
            for ap in thread_el.findall("atomic_profile"):
                event = atomic_by_id[int(ap.get("event", "0"))]
                up = thread.get_or_create_user_event_profile(event)
                up.set_summary(
                    count=int(ap.get("count", "0")),
                    max_value=float(ap.get("max", "0")),
                    min_value=float(ap.get("min", "0")),
                    mean_value=float(ap.get("mean", "0")),
                    sumsqr=float(ap.get("sumsqr", "0")),
                )
    source.generate_statistics()
    return source
